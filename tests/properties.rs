//! Workspace-level property tests: the optimizer and simulator hold their
//! invariants on randomized circuits.

use proptest::prelude::*;
use transistor_reordering::prelude::*;

fn harness() -> (Library, PowerModel) {
    let lib = Library::standard();
    let model = PowerModel::new(&lib, Process::default());
    (lib, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Optimizing any random circuit preserves its logic function.
    #[test]
    fn optimize_preserves_function(seed in 0u64..1000, gates in 10usize..60, vectors in prop::collection::vec(any::<u64>(), 8)) {
        let (lib, model) = harness();
        let c = generators::random_circuit(8, gates, seed, &lib);
        let stats = Scenario::a().input_stats(8, seed);
        let best = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        let worst = optimize(&c, &lib, &model, &stats, Objective::MaximizePower);
        for v in &vectors {
            let inputs: Vec<bool> = (0..8).map(|i| (v >> i) & 1 == 1).collect();
            let reference = c.evaluate(&lib, &inputs);
            prop_assert_eq!(best.circuit.evaluate(&lib, &inputs), reference.clone());
            prop_assert_eq!(worst.circuit.evaluate(&lib, &inputs), reference);
        }
    }

    /// best ≤ default ≤ worst under the model, for any circuit and stats.
    #[test]
    fn optimizer_brackets_default(seed in 0u64..1000, gates in 10usize..80) {
        let (lib, model) = harness();
        let c = generators::random_circuit(10, gates, seed, &lib);
        let stats = Scenario::a().input_stats(10, seed ^ 0xF00);
        let net_stats = propagate(&c, &lib, &stats);
        let default_p = circuit_power(&c, &model, &net_stats).total;
        let best = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        let worst = optimize(&c, &lib, &model, &stats, Objective::MaximizePower);
        prop_assert!(best.power_after <= default_p + 1e-18);
        prop_assert!(worst.power_after + 1e-18 >= default_p);
    }

    /// Propagated statistics are always valid (P ∈ [0,1], D ≥ 0, finite).
    #[test]
    fn propagation_yields_valid_stats(seed in 0u64..1000, gates in 10usize..100) {
        let (lib, _) = harness();
        let c = generators::random_circuit(12, gates, seed, &lib);
        let stats = Scenario::a().input_stats(12, seed);
        for s in propagate(&c, &lib, &stats) {
            prop_assert!((0.0..=1.0).contains(&s.probability()));
            prop_assert!(s.density().is_finite());
            prop_assert!(s.density() >= 0.0);
        }
    }

    /// The switch-level simulator's final state always matches the
    /// functional model once inputs go quiet.
    #[test]
    fn simulator_settles_to_functional_state(seed in 0u64..200, gates in 5usize..30) {
        let (lib, _) = harness();
        let process = Process::default();
        let timing = TimingModel::new(&lib, process.clone());
        let c = generators::random_circuit(6, gates, seed, &lib);
        // Toggle inputs early, then leave lots of settling time.
        let drives: Vec<InputDrive> = (0..6)
            .map(|i| InputDrive::Waveform {
                initial: (seed >> i) & 1 == 1,
                toggles: vec![1.0e-6 + i as f64 * 1.0e-7],
            })
            .collect();
        let cfg = SimConfig { duration: 1.0e-3, warmup: 0.0, seed };
        let r = simulate_with_drives(&c, &lib, &process, &timing, &drives, &cfg);
        let finals: Vec<bool> = (0..6).map(|i| ((seed >> i) & 1 == 1) ^ true).collect();
        let expect = c.evaluate(&lib, &finals);
        prop_assert_eq!(&r.final_values, &expect);
    }

    /// Simulated energy is non-negative and deterministic.
    #[test]
    fn simulation_deterministic(seed in 0u64..200) {
        let (lib, _) = harness();
        let process = Process::default();
        let timing = TimingModel::new(&lib, process.clone());
        let c = generators::random_circuit(6, 20, seed, &lib);
        let stats = Scenario::a().input_stats(6, seed);
        let cfg = SimConfig { duration: 5.0e-5, warmup: 5.0e-6, seed };
        let a = simulate(&c, &lib, &process, &timing, &stats, &cfg);
        let b = simulate(&c, &lib, &process, &timing, &stats, &cfg);
        prop_assert!(a.energy >= 0.0);
        prop_assert_eq!(a.energy, b.energy);
    }
}
