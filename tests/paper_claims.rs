//! The paper's headline claims, as assertions.
//!
//! Each test encodes one claim from the paper and checks our
//! implementation reproduces its *shape* (winners, orderings,
//! crossovers); absolute numbers are calibration-dependent and recorded
//! in `EXPERIMENTS.md` instead.

use transistor_reordering::prelude::*;

/// Table 1(b): the best ordering of the OAI21 gate depends on which input
/// is hot, and best-vs-worst is worth double-digit percent.
#[test]
fn table1_best_ordering_flips_with_activity() {
    let lib = Library::standard();
    let model = PowerModel::new(&lib, Process::default());
    let cell = lib.cell(&CellKind::oai21()).expect("oai21");
    let n = cell.configurations().len();
    assert_eq!(n, 4, "Fig. 1(a): four configurations");

    let case1: Vec<SignalStats> = [1.0e4, 1.0e5, 1.0e6]
        .iter()
        .map(|&d| SignalStats::new(0.5, d))
        .collect();
    let case2: Vec<SignalStats> = [1.0e6, 1.0e5, 1.0e4]
        .iter()
        .map(|&d| SignalStats::new(0.5, d))
        .collect();
    let load = 8.0 * FEMTO;
    let (best1, worst1) = model.best_and_worst(cell.kind(), &case1, load);
    let (best2, _) = model.best_and_worst(cell.kind(), &case2, load);
    assert_ne!(best1, best2, "the winner must flip between the two cases");

    let p_best = model.gate_power(cell.kind(), best1, &case1, load).total;
    let p_worst = model.gate_power(cell.kind(), worst1, &case1, load).total;
    let reduction = 100.0 * (p_worst - p_best) / p_worst;
    assert!(
        (10.0..=30.0).contains(&reduction),
        "case-1 reduction {reduction:.1}% outside the paper's ~19% band"
    );
}

/// §5: the speed rule ("critical transistor near the output") conflicts
/// with the power-optimal ordering whenever the timing-critical input is
/// not the activity-critical one. Input 0 is hot (power wants it near
/// the output, shielding the internal stack nodes); input 2 is the
/// late-arriving timing-critical input (speed wants *it* near the
/// output). Both cannot win.
#[test]
fn power_and_delay_rules_conflict() {
    let lib = Library::standard();
    let model = PowerModel::new(&lib, Process::default());
    let timing = TimingModel::new(&lib, Process::default());
    let cell = lib.cell_by_name("nand3").expect("nand3");
    let n = cell.configurations().len();
    // Input 0 is hot; input 2 is timing-critical but cold.
    let stats = [
        SignalStats::new(0.5, 1.0e6),
        SignalStats::new(0.5, 1.0e4),
        SignalStats::new(0.5, 1.0e4),
    ];
    let load = 6.0 * FEMTO;
    let (best_power, _) = model.best_and_worst(cell.kind(), &stats, load);
    // Fastest configuration *for the critical input 2*.
    let best_delay_crit = (0..n)
        .min_by(|&a, &b| {
            timing
                .gate_delay(cell.kind(), a, 2, load)
                .total_cmp(&timing.gate_delay(cell.kind(), b, 2, load))
        })
        .expect("non-empty");
    assert_ne!(
        best_power, best_delay_crit,
        "expected the power/delay tension of the paper's §5"
    );
    // Quantified: the power winner is measurably slower through input 2.
    let slow = timing.gate_delay(cell.kind(), best_power, 2, load);
    let fast = timing.gate_delay(cell.kind(), best_delay_crit, 2, load);
    assert!(
        slow > fast * 1.05,
        "power-optimal config should cost >5% delay on the critical input: {fast} vs {slow}"
    );
}

/// Fig. 5 / §4.3: the pivot search generates every reordering, and the
/// count matches Table 2's arithmetic for every library cell.
#[test]
fn exploration_is_exhaustive_for_every_cell() {
    let lib = Library::standard();
    for cell in lib.cells() {
        let topo = &cell.configurations()[0];
        let found = pivot::find_all_reorderings(topo);
        assert_eq!(
            found.len() as u64,
            topo.configuration_count(),
            "{}",
            cell.name()
        );
    }
}

/// §4.2: reordering an individual gate never changes what downstream
/// gates see, so the greedy traversal is globally optimal w.r.t. the
/// model. We verify the strongest consequence: optimizing gates in any
/// order yields the same total power.
#[test]
fn greedy_traversal_is_order_independent() {
    let lib = Library::standard();
    let model = PowerModel::new(&lib, Process::default());
    let c = generators::comparator(6, &lib);
    let stats = Scenario::a().input_stats(c.primary_inputs().len(), 99);
    let seq = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
    let par = optimize_parallel(&c, &lib, &model, &stats, Objective::MinimizePower, 4);
    assert_eq!(seq.circuit, par.circuit);
    assert!((seq.power_after - par.power_after).abs() < 1e-21);
}

/// §1.1: in the ripple-carry adder, equilibrium probabilities carry no
/// information (all ≈ 0.5-ish) while transition density clearly separates
/// the carry chain from the operands.
#[test]
fn carry_chain_motivation() {
    let lib = Library::standard();
    let c = generators::ripple_carry_adder(12, &lib);
    let stats = Scenario::b().input_stats(c.primary_inputs().len(), 0);
    let nets = propagate(&c, &lib, &stats);
    let d_first = nets[c.primary_outputs()[0].0].density();
    let d_late = nets[c.primary_outputs()[10].0].density();
    assert!(
        d_late > 1.25 * d_first,
        "carry chain should accumulate density: {d_first} → {d_late}"
    );
    // Probabilities stay in a narrow band around 0.5.
    for i in 0..12 {
        let p = nets[c.primary_outputs()[i].0].probability();
        assert!((0.35..=0.65).contains(&p), "sum bit {i} probability {p}");
    }
}

/// §5 conclusion: optimizing for power typically leaves the critical path
/// roughly unchanged (small average delta, either sign) — check the best
/// netlist's delay stays within ±25% on the quick suite.
#[test]
fn delay_impact_is_bounded() {
    let lib = Library::standard();
    let model = PowerModel::new(&lib, Process::default());
    let timing = TimingModel::new(&lib, Process::default());
    for case in suite::quick_suite(&lib) {
        let stats = Scenario::a().input_stats(case.circuit.primary_inputs().len(), 1);
        let best = optimize(
            &case.circuit,
            &lib,
            &model,
            &stats,
            Objective::MinimizePower,
        );
        let d0 = critical_path_delay(&case.circuit, &timing);
        let d1 = critical_path_delay(&best.circuit, &timing);
        let delta = 100.0 * (d1 - d0) / d0;
        assert!(
            delta.abs() < 25.0,
            "{}: delay change {delta:.1}% out of band",
            case.name
        );
    }
}

/// Table 2 instances: all instances of a cell have the same transistor
/// count (the paper: same area ⇒ optimized circuits cost no area).
#[test]
fn instances_cost_no_area() {
    let lib = Library::standard();
    for cell in lib.cells() {
        let t = cell.transistor_count();
        for config in cell.configurations() {
            assert_eq!(config.transistor_count(), t, "{}", cell.name());
        }
    }
}
