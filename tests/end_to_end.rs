//! End-to-end pipeline tests spanning every crate: parse → map →
//! propagate → optimize → simulate.

use transistor_reordering::prelude::*;

fn harness() -> (Library, Process, PowerModel, TimingModel) {
    let lib = Library::standard();
    let process = Process::default();
    let model = PowerModel::new(&lib, process.clone());
    let timing = TimingModel::new(&lib, process.clone());
    (lib, process, model, timing)
}

#[test]
fn bench_to_optimized_netlist() {
    let (lib, process, model, timing) = harness();
    // Parse the embedded c17, map it, optimize it, simulate it.
    let generic = bench::c17();
    let circuit = map::map_default(&generic, &lib);
    assert!(circuit.validate(&lib).is_ok());

    let stats = Scenario::a().input_stats(circuit.primary_inputs().len(), 17);
    let best = optimize(&circuit, &lib, &model, &stats, Objective::MinimizePower);
    let worst = optimize(&circuit, &lib, &model, &stats, Objective::MaximizePower);
    assert!(best.power_after <= worst.power_after);

    // Mapped + optimized netlists stay functionally equal to the source.
    for m in 0..32usize {
        let v: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
        let want = generic.evaluate_outputs(&v);
        for c in [&best.circuit, &worst.circuit] {
            let nets = c.evaluate(&lib, &v);
            let got: Vec<bool> = c.primary_outputs().iter().map(|o| nets[o.0]).collect();
            assert_eq!(got, want, "input {m:05b}");
        }
    }

    // And the simulator agrees with the model's ranking.
    let cfg = SimConfig {
        duration: 1.0e-3,
        warmup: 1.0e-4,
        seed: 3,
    };
    let p_best = simulate(&best.circuit, &lib, &process, &timing, &stats, &cfg).power;
    let p_worst = simulate(&worst.circuit, &lib, &process, &timing, &stats, &cfg).power;
    assert!(
        p_best < p_worst,
        "simulation contradicts the model: best {p_best} vs worst {p_worst}"
    );
}

#[test]
fn suite_optimization_always_improves_the_model() {
    let (lib, _, model, _) = harness();
    for case in suite::quick_suite(&lib) {
        let n = case.circuit.primary_inputs().len();
        let stats = Scenario::a().input_stats(n, 0xE2E);
        let best = optimize(
            &case.circuit,
            &lib,
            &model,
            &stats,
            Objective::MinimizePower,
        );
        let worst = optimize(
            &case.circuit,
            &lib,
            &model,
            &stats,
            Objective::MaximizePower,
        );
        assert!(
            best.power_after <= best.power_before + 1e-18,
            "{}: best regressed",
            case.name
        );
        assert!(
            worst.power_after + 1e-18 >= best.power_after,
            "{}: worst below best",
            case.name
        );
    }
}

#[test]
fn model_vs_simulator_rank_agreement_on_single_gates() {
    // For a strong majority of multi-configuration cells, the
    // configuration the model calls best must simulate cheaper than the
    // one it calls worst. Exact agreement on every cell is NOT a claim of
    // the paper — its own Table 3 M/S columns disagree per circuit (M is
    // even negative for some rows); with the steep profile used here the
    // known offenders are aoi31/oai31, where the hot input sits in a deep
    // stack and the model's steady-state weighting overcounts its
    // transitions (see EXPERIMENTS.md).
    let (lib, process, model, timing) = harness();
    let mut agree = 0usize;
    let mut total = 0usize;
    for cell in lib.cells() {
        let n_cfg = cell.configurations().len();
        if n_cfg < 2 {
            continue;
        }
        // Steep activity gradient across the inputs.
        let stats: Vec<SignalStats> = (0..cell.arity())
            .map(|i| SignalStats::new(0.5, 10f64.powi(4 + (i % 3) as i32)))
            .collect();
        let (best, worst) = model.best_and_worst(cell.kind(), &stats, 4.0e-15);
        if best == worst {
            continue;
        }
        let build = |config: usize| {
            let mut c = Circuit::new("single");
            let ins: Vec<NetId> = (0..cell.arity())
                .map(|i| c.add_input(format!("i{i}")))
                .collect();
            let (g, y) = c.add_gate(cell.kind().clone(), ins, "y");
            let (_, z) = c.add_gate(CellKind::Inv, vec![y], "z");
            c.mark_output(z);
            c.set_config(g, config);
            c
        };
        let cfg = SimConfig {
            duration: 4.0e-3,
            warmup: 2.0e-4,
            seed: 1234,
        };
        let sim = |config: usize| {
            let c = build(config);
            let r = simulate(&c, &lib, &process, &timing, &stats, &cfg);
            // Energy of the gate under test only (index 0).
            r.per_gate_energy[0]
        };
        let e_best = sim(best);
        let e_worst = sim(worst);
        total += 1;
        if e_best < e_worst {
            agree += 1;
        }
        assert!(
            e_best < e_worst * 1.6,
            "{}: catastrophic inversion (best {e_best:.3e} J vs worst {e_worst:.3e} J)",
            cell.name()
        );
    }
    assert!(
        agree * 100 >= total * 75,
        "model/simulator rank agreement too low: {agree}/{total}"
    );
}

#[test]
fn scenario_b_headroom_half_of_a_on_adders() {
    // The paper's headline shape: Scenario B savings ≈ half of A.
    let (lib, _, model, _) = harness();
    let c = generators::ripple_carry_adder(16, &lib);
    let n = c.primary_inputs().len();
    let headroom = |stats: &[SignalStats]| {
        let best = optimize(&c, &lib, &model, stats, Objective::MinimizePower);
        let worst = optimize(&c, &lib, &model, stats, Objective::MaximizePower);
        100.0 * (worst.power_after - best.power_after) / worst.power_after
    };
    let a: f64 = (0..4)
        .map(|s| headroom(&Scenario::a().input_stats(n, s)))
        .sum::<f64>()
        / 4.0;
    let b = headroom(&Scenario::b().input_stats(n, 0));
    assert!(a > 5.0, "Scenario A headroom too small: {a:.1}%");
    assert!(b > 0.0, "Scenario B has no headroom");
    assert!(b < a, "B ({b:.1}%) should be below A ({a:.1}%)");
}

#[test]
fn delay_bounded_optimizer_end_to_end() {
    let (lib, _, model, timing) = harness();
    let c = generators::array_multiplier(4, &lib);
    let stats = Scenario::a().input_stats(c.primary_inputs().len(), 77);
    let r = optimize_delay_bounded(&c, &lib, &model, &timing, &stats);
    let d_before = critical_path_delay(&c, &timing);
    let d_after = critical_path_delay(&r.circuit, &timing);
    assert!(d_after <= d_before * (1.0 + 1e-9));
    assert!(r.power_after <= r.power_before + 1e-18);
    // It still finds something on a multiplier.
    assert!(r.changed_gates > 0);
}

#[test]
fn bdd_backend_runs_the_small_suite_and_the_new_large_circuits() {
    // The `tr-opt --prob bdd` pipeline (Flow is exactly what the CLI
    // drives): the full 13-circuit small suite plus the new ≥16-bit
    // reconvergent generators, end to end, with exact statistics.
    // (`mult8`, the third new workload, is exercised in release builds
    // by the `p6_bdd_propagate` bench and the tr-power equivalence
    // tests — its BDD has ~125k live nodes, too slow for a debug test.)
    let env = FlowEnv::new();
    let mut circuits: Vec<(String, Circuit)> = suite::small_suite(&env.library)
        .into_iter()
        .map(|c| (c.name, c.circuit))
        .collect();
    circuits.push((
        "csel32".into(),
        generators::carry_select_adder(32, 8, &env.library),
    ));
    circuits.push((
        "cskip24".into(),
        generators::carry_skip_adder(24, 4, &env.library),
    ));
    for (name, circuit) in circuits {
        let n = circuit.primary_inputs().len();
        let report = Flow::from_circuit(circuit)
            .scenario(Scenario::a(), 0xB00)
            .prob(transistor_reordering::power::PropagationMode::ExactBdd)
            .run(&env)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.prob_mode, "bdd", "{name}");
        assert_eq!(report.inputs, n, "{name}");
        let err = report
            .independence_error
            .unwrap_or_else(|| panic!("{name}: exact backend must measure the error"));
        assert!((0.0..=1.0).contains(&err), "{name}: error {err}");
        assert!(
            report.power.model_after_w <= report.power.model_before_w + 1e-18,
            "{name}: minimize regressed"
        );
    }
}

#[test]
fn exact_propagation_improves_on_reconvergent_logic() {
    // On c17 (5 inputs, reconvergent), exact and approximate propagation
    // must both be valid statistics, and the exact one is available.
    let (lib, _, _, _) = harness();
    let circuit = map::map_default(&bench::c17(), &lib);
    let stats = Scenario::a().input_stats(circuit.primary_inputs().len(), 4);
    let approx = propagate(&circuit, &lib, &stats);
    let exact = propagate_exact(&circuit, &lib, &stats).expect("5 inputs fit");
    assert_eq!(approx.len(), exact.len());
    for (a, e) in approx.iter().zip(&exact) {
        assert!((0.0..=1.0).contains(&a.probability()));
        assert!((0.0..=1.0).contains(&e.probability()));
        assert!(a.density() >= 0.0 && e.density() >= 0.0);
    }
}
