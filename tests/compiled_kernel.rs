//! Whole-circuit equivalence for the compiled optimizer, on every circuit
//! of the full `tr_netlist::suite`:
//!
//! 1. the configurations `optimize` picks are *identical* to a per-gate
//!    brute-force argmin/argmax over the public `gate_power` API (the
//!    fast path and the straightforward path of the model must be the
//!    same decision procedure, bitwise);
//! 2. the parallel traversal returns the identical circuit;
//! 3. under the retained naive reference evaluator, every chosen
//!    configuration is exactly as optimal as the reference's own
//!    argmin/argmax to 1e-12 relative. (Index equality across the two
//!    evaluators is asserted only when the reference sees a unique
//!    optimum: gates with repeated input nets have several mathematically
//!    tied configurations, where float rounding may legally break the tie
//!    differently.)

use transistor_reordering::power::reference;
use transistor_reordering::prelude::*;

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()) + 1e-30
}

#[test]
fn optimize_picks_reference_optimal_configs_on_the_full_suite() {
    let lib = Library::standard();
    let process = Process::default();
    let model = PowerModel::new(&lib, process.clone());
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    for case in suite::standard_suite(&lib) {
        let circuit = &case.circuit;
        let stats = Scenario::a().input_stats(circuit.primary_inputs().len(), 0xC0DE);
        let net_stats = propagate(circuit, &lib, &stats);
        let loads = external_loads(circuit, &model);

        let best = optimize(circuit, &lib, &model, &stats, Objective::MinimizePower);
        let worst = optimize(circuit, &lib, &model, &stats, Objective::MaximizePower);
        // The parallel traversal is the same decision procedure.
        let best_par = optimize_parallel(
            circuit,
            &lib,
            &model,
            &stats,
            Objective::MinimizePower,
            threads,
        );
        assert_eq!(best.circuit, best_par.circuit, "{}", case.name);

        for (i, gate) in circuit.gates().iter().enumerate() {
            let cell = lib.cell(&gate.cell).expect("library cell");
            let inputs: Vec<SignalStats> = gate.inputs.iter().map(|n| net_stats[n.0]).collect();
            let load = loads[gate.output.0];
            let chosen_best = best.circuit.gates()[i].config;
            let chosen_worst = worst.circuit.gates()[i].config;

            // (1) Exact agreement with the public API's own argmin/argmax
            // (ties to the lowest index, as documented).
            let totals: Vec<f64> = (0..cell.configurations().len())
                .map(|c| model.gate_power(cell.kind(), c, &inputs, load).total)
                .collect();
            let mut api_best = 0usize;
            let mut api_worst = 0usize;
            for (c, &t) in totals.iter().enumerate() {
                if t < totals[api_best] {
                    api_best = c;
                }
                if t > totals[api_worst] {
                    api_worst = c;
                }
            }
            assert_eq!(chosen_best, api_best, "{} gate {i}", case.name);
            assert_eq!(chosen_worst, api_worst, "{} gate {i}", case.name);

            // (3) Reference-evaluator optimality of the chosen configs.
            let (ref_best, ref_worst) = reference::best_and_worst(cell, &process, &inputs, load);
            let ref_p = |c: usize| reference::gate_power(cell, &process, c, &inputs, load).total;
            assert!(
                rel_close(ref_p(chosen_best), ref_p(ref_best), 1e-12),
                "{} gate {i} ({}): best config {} not reference-optimal (ref picks {})",
                case.name,
                cell.name(),
                chosen_best,
                ref_best
            );
            assert!(
                rel_close(ref_p(chosen_worst), ref_p(ref_worst), 1e-12),
                "{} gate {i} ({}): worst config {} not reference-pessimal (ref picks {})",
                case.name,
                cell.name(),
                chosen_worst,
                ref_worst
            );
            // Repeated input nets create mathematically tied configs; only
            // a unique reference optimum pins the exact index.
            let unique = |target: usize| {
                totals
                    .iter()
                    .enumerate()
                    .filter(|&(c, _)| c != target)
                    .all(|(c, _)| !rel_close(ref_p(c), ref_p(target), 1e-12))
            };
            if unique(ref_best) {
                assert_eq!(chosen_best, ref_best, "{} gate {i}", case.name);
            }
            if unique(ref_worst) {
                assert_eq!(chosen_worst, ref_worst, "{} gate {i}", case.name);
            }
        }
    }
}
