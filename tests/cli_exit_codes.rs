//! End-to-end exit-code contract of the `tr-opt` binary:
//! 0 success, 1 pipeline failure, 2 usage error, 3 batch completed
//! with failed cells (good cells' reports still on stdout, the failure
//! summary on stderr).

use std::process::Command;

fn tr_opt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tr-opt"))
}

/// A tiny valid ISCAS `.bench` netlist.
const GOOD_BENCH: &str = "\
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
";

#[test]
fn usage_errors_exit_2() {
    let out = tr_opt().arg("optimize").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "missing <netlist> is usage");
    let out = tr_opt()
        .args(["frobnicate", "x.bench"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "unknown command is usage");
    let out = tr_opt()
        .args(["batch", "--suite", "small", "--degrade", "maybe"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "bad --degrade value is usage");
    let out = tr_opt()
        .args(["serve", "--queue-depth", "0"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "zero queue depth is usage");
    let out = tr_opt()
        .args(["serve", "--out", "x.trnet"])
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "serve takes no artifact flags: per-request outputs are rejected"
    );
}

#[test]
fn pipeline_errors_exit_1() {
    let out = tr_opt()
        .args(["optimize", "/nonexistent/ghost.bench"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn batch_partial_failure_exits_3_with_surviving_reports() {
    let dir = std::env::temp_dir().join(format!("tr-opt-exit3-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("good.bench"), GOOD_BENCH).unwrap();
    std::fs::write(dir.join("corrupt.bench"), "y = NAND(a, b)\nOUTPUT(y)\n").unwrap();

    let out = tr_opt()
        .args(["batch", "--scenarios", "a:1", "--report", "json"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(out.status.code(), Some(3), "partial failure is exit 3");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    // The good cell's report made it out.
    assert!(
        stdout.contains("\"circuit\":\"good\""),
        "good cell's report on stdout: {stdout}"
    );
    // The summary names the failed cell.
    assert!(
        stderr.contains("cells failed: corrupt"),
        "failure summary on stderr: {stderr}"
    );
}

#[test]
fn clean_batch_exits_0() {
    let dir = std::env::temp_dir().join(format!("tr-opt-exit0-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("good.bench"), GOOD_BENCH).unwrap();
    let out = tr_opt()
        .args(["batch", "--scenarios", "a:1", "--report", "csv"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The partitioned backend is reachable from the command line and its
/// shape lands in the JSON report; its tuning flags are rejected when
/// they cannot apply.
#[test]
fn partitioned_backend_flags_round_trip() {
    let dir = std::env::temp_dir().join(format!("tr-opt-part-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("good.bench"), GOOD_BENCH).unwrap();
    let out = tr_opt()
        .args([
            "optimize",
            "--prob",
            "part",
            "--region-nodes",
            "4096",
            "--cut-width",
            "8",
            "--json",
        ])
        .arg(dir.join("good.bench"))
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("\"prob_mode\":\"part\""),
        "report: {stdout}"
    );
    assert!(stdout.contains("\"max_cut_width\":8"), "report: {stdout}");
    assert!(
        stdout.contains("\"partition_regions\":1"),
        "a one-gate circuit is a single region: {stdout}"
    );
    assert!(
        stdout.contains("\"partition_error_bound\":0"),
        "one region means exact: {stdout}"
    );

    // The tuning flags are meaningless without `--prob part`.
    let out = tr_opt()
        .args(["optimize", "x.bench", "--region-nodes", "4096"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "flags without part are usage");
}

/// A budget-blown governed run under `--degrade on` (the default) still
/// exits 0 and reports how it degraded.
#[test]
fn degraded_run_exits_0_and_records_the_rung() {
    let dir = std::env::temp_dir().join(format!("tr-opt-degrade-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("good.bench"), GOOD_BENCH).unwrap();
    let out = tr_opt()
        .args(["optimize", "--prob", "bdd", "--deadline-ms", "0", "--json"])
        .arg(dir.join("good.bench"))
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"degraded\":true"), "report: {stdout}");
    assert!(
        stdout.contains("\"degrade_rung\":\"independent-fallback\""),
        "report: {stdout}"
    );
}
