//! Seeded, deterministic property tests for the paper's §4.2 monotonicity
//! invariant, exercised on **every** generator circuit of `tr-netlist`:
//!
//! 1. transistor reordering never changes a gate's Boolean function —
//!    checked at the library level (every configuration of every cell
//!    computes the same output function) and at the circuit level (the
//!    optimized netlists evaluate identically to the original on random
//!    input vectors);
//! 2. `optimize(MinimizePower)` never reports more power than
//!    `optimize(MaximizePower)` under the same statistics, and both
//!    bracket the unoptimized mapping.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transistor_reordering::prelude::*;

/// Every circuit generator in `tr_netlist::generators`, at a size that
/// keeps the whole suite under a few seconds.
fn generator_circuits(lib: &Library) -> Vec<(&'static str, Circuit)> {
    vec![
        ("ripple_carry_adder", generators::ripple_carry_adder(6, lib)),
        (
            "carry_lookahead_adder",
            generators::carry_lookahead_adder(6, lib),
        ),
        (
            "carry_select_adder",
            generators::carry_select_adder(8, 4, lib),
        ),
        ("array_multiplier", generators::array_multiplier(4, lib)),
        ("parity_tree", generators::parity_tree(8, lib)),
        ("decoder", generators::decoder(4, lib)),
        ("comparator", generators::comparator(6, lib)),
        ("mux_tree", generators::mux_tree(3, lib)),
        ("alu", generators::alu(4, lib)),
        ("barrel_shifter", generators::barrel_shifter(8, lib)),
        ("priority_encoder", generators::priority_encoder(8, lib)),
        ("gray_to_binary", generators::gray_to_binary(8, lib)),
        (
            "random_circuit",
            generators::random_circuit(8, 40, 0xD00D, lib),
        ),
    ]
}

/// Library level: every configuration of every Table 2 cell computes the
/// same output function as configuration 0 — reordering is invisible to
/// downstream logic by construction.
#[test]
fn every_cell_configuration_preserves_the_function() {
    let lib = Library::standard();
    for cell in lib.cells() {
        let configs = cell.configurations();
        let n = cell.arity();
        let reference = GateGraph::build(&configs[0], n).output_function();
        for (i, topo) in configs.iter().enumerate() {
            let y = GateGraph::build(topo, n).output_function();
            assert_eq!(
                y,
                reference,
                "{} configuration {i} changes the gate function",
                cell.name()
            );
        }
    }
}

/// Circuit level: on every generator circuit, the minimize- and
/// maximize-power netlists agree with the original mapping on seeded
/// random input vectors.
#[test]
fn reordering_preserves_circuit_function_on_every_generator() {
    let lib = Library::standard();
    let model = PowerModel::new(&lib, Process::default());
    let mut rng = StdRng::seed_from_u64(0x51CA_D096);
    for (name, circuit) in generator_circuits(&lib) {
        let n_in = circuit.primary_inputs().len();
        let stats = Scenario::a().input_stats(n_in, 7);
        let best = optimize(&circuit, &lib, &model, &stats, Objective::MinimizePower);
        let worst = optimize(&circuit, &lib, &model, &stats, Objective::MaximizePower);
        for _case in 0..32 {
            let inputs: Vec<bool> = (0..n_in).map(|_| rng.gen_bool(0.5)).collect();
            let reference = circuit.evaluate(&lib, &inputs);
            assert_eq!(
                best.circuit.evaluate(&lib, &inputs),
                reference,
                "{name}: MinimizePower changed the circuit function"
            );
            assert_eq!(
                worst.circuit.evaluate(&lib, &inputs),
                reference,
                "{name}: MaximizePower changed the circuit function"
            );
        }
    }
}

/// Objective ordering: minimized power ≤ default mapping ≤ maximized
/// power under the model, on every generator circuit and across several
/// seeded scenarios.
#[test]
fn minimize_never_exceeds_maximize_on_every_generator() {
    let lib = Library::standard();
    let model = PowerModel::new(&lib, Process::default());
    let mut rng = StdRng::seed_from_u64(0xBEE5);
    for (name, circuit) in generator_circuits(&lib) {
        let n_in = circuit.primary_inputs().len();
        for scenario in [Scenario::a(), Scenario::b()] {
            let seed = rng.gen_range(0u64..1_000_000);
            let stats = scenario.input_stats(n_in, seed);
            let default_p = {
                let nets = propagate(&circuit, &lib, &stats);
                circuit_power(&circuit, &model, &nets).total
            };
            let best = optimize(&circuit, &lib, &model, &stats, Objective::MinimizePower);
            let worst = optimize(&circuit, &lib, &model, &stats, Objective::MaximizePower);
            assert!(
                best.power_after <= worst.power_after + 1e-18,
                "{name} (seed {seed}): min power {} > max power {}",
                best.power_after,
                worst.power_after
            );
            assert!(
                best.power_after <= default_p + 1e-18,
                "{name} (seed {seed}): min power above default mapping"
            );
            assert!(
                worst.power_after + 1e-18 >= default_p,
                "{name} (seed {seed}): max power below default mapping"
            );
            // The reported before-power is the default mapping's power.
            assert!((best.power_before - default_p).abs() <= 1e-15 * default_p.max(1.0));
        }
    }
}

/// The delay-bounded variant obeys the same function-preservation and
/// power-ordering invariants while never lengthening the critical path.
#[test]
fn delay_bounded_variant_holds_the_invariants() {
    let lib = Library::standard();
    let model = PowerModel::new(&lib, Process::default());
    let timing = TimingModel::new(&lib, Process::default());
    let mut rng = StdRng::seed_from_u64(0xDE1A);
    for (name, circuit) in generator_circuits(&lib) {
        let n_in = circuit.primary_inputs().len();
        let stats = Scenario::a().input_stats(n_in, 11);
        let bounded = optimize_delay_bounded(&circuit, &lib, &model, &timing, &stats);
        let free = optimize(&circuit, &lib, &model, &stats, Objective::MinimizePower);
        assert!(
            free.power_after <= bounded.power_after + 1e-18,
            "{name}: unconstrained optimum worse than the constrained one"
        );
        let d0 = critical_path_delay(&circuit, &timing);
        let d1 = critical_path_delay(&bounded.circuit, &timing);
        assert!(
            d1 <= d0 * (1.0 + 1e-9),
            "{name}: delay-bounded run grew the critical path {d0} → {d1}"
        );
        for _case in 0..16 {
            let inputs: Vec<bool> = (0..n_in).map(|_| rng.gen_bool(0.5)).collect();
            assert_eq!(
                bounded.circuit.evaluate(&lib, &inputs),
                circuit.evaluate(&lib, &inputs),
                "{name}: delay-bounded reordering changed the function"
            );
        }
    }
}
