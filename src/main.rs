//! `tr-opt` — the command-line front end of the transistor-reordering
//! optimizer.
//!
//! ```text
//! tr-opt optimize <netlist> [--scenario a|b] [--seed N] [--prob indep|bdd|part|monte]
//!                 [--region-nodes N] [--cut-width N]
//!                 [--objective min|max] [--delay-bound none|local|slack]
//!                 [--simulate] [--vcd FILE] [--out FILE] [--trace FILE] [--json]
//! tr-opt analyze  <netlist> [--scenario a|b] [--seed N] [--prob indep|bdd|part|monte]
//!                 [--trace FILE]
//! tr-opt batch    <dir|files...> [--suite small|quick|full|large] [--scenarios M]
//!                 [--prob indep|bdd|part|monte] [--report json|csv] [--simulate]
//!                 [--threads N] [--trace FILE]
//! tr-opt library
//! ```
//!
//! Every command is a thin veneer over `tr_flow`: `optimize` runs one
//! [`Flow`], `batch` stamps a `Flow` template over circuits × scenarios
//! on a thread pool. `<netlist>` may be ISCAS `.bench`, combinational
//! `.blif` (both get technology-mapped onto the Table 2 library) or the
//! native mapped format `.trnet` written by `--out`.
//!
//! Exit codes: 0 success, 1 pipeline failure (bad netlist, I/O), 2
//! usage error, 3 batch completed with failed cells (partial results
//! are on stdout, the failure summary on stderr).

use std::process::ExitCode;
use std::time::Instant;
use transistor_reordering::flow::{
    load_path, max_probability_deviation, parse_prob_mode, BatchJob, BatchRunner, DelayBound,
    DurationPolicy, Error, Flow, FlowEnv, FlowReport, PropagationMode, RunBudget, ScenarioSpec,
    SimOptions,
};
use transistor_reordering::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "optimize" => cmd_optimize(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "library" => cmd_library(),
        "--version" | "-V" | "version" => {
            println!("tr-opt {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(Error::Usage(format!("unknown command `{other}`\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

const USAGE: &str = "\
tr-opt — low-power transistor reordering (Musoll & Cortadella, DATE 1996)

USAGE:
  tr-opt optimize <netlist> [options]   pick per-gate transistor orderings
  tr-opt analyze  <netlist> [options]   report power/delay without changes
  tr-opt batch    <inputs> [options]    run the flow over circuits × scenarios
  tr-opt serve    [options]             run the optimization daemon (HTTP)
  tr-opt library                        print the Table 2 cell library
  tr-opt --version                      print the version

OPTIONS (optimize/analyze):
  --scenario a|b        input statistics (default a: random P,D)
  --seed N              RNG seed for scenario A and the simulator
  --prob indep|bdd|part|monte
                        probability backend (default indep; bdd = exact
                        ROBDD statistics, reconvergence handled exactly;
                        part = cone-partitioned BDD, exact within regions)
  --region-nodes N      partitioned backend: live-node budget per region
                        (default 8192; only meaningful with --prob part)
  --cut-width N         partitioned backend: max cut nets per region
                        (default 24; 0 = never cut, exactly full-BDD;
                        only meaningful with --prob part)
  --objective min|max   minimize (default) or maximize power
  --delay-bound MODE    none (default) | local | slack
  --fixpoint            iterate optimize ↔ re-propagate dirty cones until
                        no gate changes (reports iterations and the
                        stale-vs-fresh power discrepancy; --delay-bound
                        none only)
  --threads N           optimizer worker threads (default: all cores;
                        applies to --delay-bound none)
  --simulate            validate with the switch-level simulator
  --vcd FILE            dump a simulation waveform (implies --simulate)
  --out FILE            write the optimized netlist (native format)
  --trace FILE          write a Chrome trace-event JSON self-profile of
                        the run (open in Perfetto or chrome://tracing;
                        summarize with `trace_summary FILE`)
  --json                print the full flow report as JSON (optimize only)
  --deadline-ms N       wall-clock budget for the run (optimize only)
  --node-budget N       live-node budget for the exact BDD backend
                        (optimize only)
  --degrade on|off      on (default): a blown budget degrades gracefully
                        (exact → info-measure reorder retry → independent
                        fallback; the report records `degraded` and the
                        ladder rung). off: a blown budget is an error

OPTIONS (batch):
  <inputs>              netlist files and/or directories of netlists
  --suite small|quick|full|large   use the built-in benchmark suite
                        instead (small = the 13-circuit ≤100-gate set;
                        large = the ≥1000-gate stress set)
  --scenarios M         comma-separated matrix of a:SEED and b:CLOCK_HZ
                        entries (default a:1,a:2,b:2e7,b:5e7)
  --report json|csv     one line per (circuit, scenario) on stdout
                        (default json)
  --prob indep|bdd|part|monte as above
  --region-nodes N      as above
  --cut-width N         as above
  --objective min|max   as above
  --delay-bound MODE    as above
  --fixpoint            as above
  --simulate            switch-level-validate every cell (quick profile)
  --threads N           worker threads (default: all cores)
  --deadline-ms N       per-cell wall-clock budget
  --node-budget N       per-cell BDD live-node budget
  --degrade on|off      as above (per cell)
  --trace FILE          one merged self-profile for the whole batch, every
                        worker on its own named track

OPTIONS (serve):
  --addr HOST:PORT      listen address (default 127.0.0.1:7878; :0 picks
                        a free port, printed on startup)
  --threads N           worker threads (default: all cores)
  --queue-depth N       admission queue bound; excess connections get 429
                        (default 64)
  --max-deadline-ms N   cap on per-request deadline_ms; requests without
                        one inherit the cap (default: uncapped)
  --max-node-budget N   cap on per-request node_budget (default: uncapped)
  --max-request-threads N
                        cap on per-request optimizer threads (default 4)
  --cache-nodes N       warm-cache budget, live BDD nodes (default 4e6)
  --cache-bytes N       warm-cache budget, approx heap bytes (default 256 MiB)
  --trace FILE          write a Chrome trace of the server's whole life
                        (accept loop, queue waits, worker spans) on exit
  Endpoints: POST /optimize /analyze /batch (JSON; batch streams JSONL),
  GET /healthz /metrics. SIGTERM/SIGINT drain in-flight work, then exit.

FORMATS: .bench (ISCAS), .blif (combinational subset), .trnet (native)";

struct Options {
    path: String,
    scenario: Scenario,
    seed: u64,
    prob: Option<String>,
    region_nodes: Option<usize>,
    cut_width: Option<usize>,
    objective: Objective,
    delay_bound: DelayBound,
    fixpoint: bool,
    threads: usize,
    simulate: bool,
    vcd: Option<String>,
    out: Option<String>,
    trace: Option<String>,
    json: bool,
    budget: RunBudget,
    degrade: bool,
}

/// Default worker count: everything the machine offers.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The value following a flag, or a usage error naming the flag.
fn flag_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a str, Error> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| Error::Usage(format!("missing value for {flag}")))
}

/// Shared `--objective` parsing for `optimize`/`analyze`/`batch`.
fn parse_objective(value: Option<&str>) -> Result<Objective, Error> {
    match value {
        Some("min") => Ok(Objective::MinimizePower),
        Some("max") => Ok(Objective::MaximizePower),
        other => Err(Error::Usage(format!("bad --objective {other:?}"))),
    }
}

/// Shared `--degrade on|off` parsing.
fn parse_degrade(value: Option<&str>) -> Result<bool, Error> {
    match value {
        Some("on") => Ok(true),
        Some("off") => Ok(false),
        other => Err(Error::Usage(format!(
            "bad --degrade {other:?} (want on|off)"
        ))),
    }
}

/// Shared `--deadline-ms`/`--node-budget` parsing onto a [`RunBudget`].
fn parse_budget_flag(
    budget: &mut RunBudget,
    flag: &str,
    it: &mut std::slice::Iter<'_, String>,
) -> Result<(), Error> {
    let value = flag_value(it, flag)?;
    match flag {
        "--deadline-ms" => {
            let ms: u64 = value
                .parse()
                .map_err(|e| Error::Usage(format!("bad --deadline-ms: {e}")))?;
            *budget = budget.deadline_ms(ms);
        }
        "--node-budget" => {
            let nodes: usize = value
                .parse()
                .map_err(|e| Error::Usage(format!("bad --node-budget: {e}")))?;
            if nodes == 0 {
                return Err(Error::Usage("--node-budget must be at least 1".into()));
            }
            *budget = budget.bdd_nodes(nodes);
        }
        other => unreachable!("not a budget flag: {other}"),
    }
    Ok(())
}

/// Shared `--threads` parsing (must be a positive integer).
fn parse_threads(it: &mut std::slice::Iter<'_, String>) -> Result<usize, Error> {
    let threads: usize = flag_value(it, "--threads")?
        .parse()
        .map_err(|e| Error::Usage(format!("bad --threads: {e}")))?;
    if threads == 0 {
        return Err(Error::Usage("--threads must be at least 1".into()));
    }
    Ok(threads)
}

/// Shared `--region-nodes`/`--cut-width` value parsing.
fn parse_usize_flag(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, Error> {
    flag_value(it, flag)?
        .parse()
        .map_err(|e| Error::Usage(format!("bad {flag}: {e}")))
}

/// Applies `--region-nodes`/`--cut-width` overrides to a parsed
/// propagation mode. The flags only shape the partitioned backend, so
/// combining them with any other `--prob` is a usage error rather than
/// a silent no-op.
fn apply_partition_overrides(
    mode: &mut PropagationMode,
    region_nodes: Option<usize>,
    cut_width: Option<usize>,
) -> Result<(), Error> {
    if region_nodes.is_none() && cut_width.is_none() {
        return Ok(());
    }
    match mode {
        PropagationMode::PartitionedBdd {
            max_region_nodes,
            max_cut_width,
        } => {
            if let Some(n) = region_nodes {
                *max_region_nodes = n;
            }
            if let Some(w) = cut_width {
                *max_cut_width = w;
            }
            Ok(())
        }
        _ => Err(Error::Usage(
            "--region-nodes/--cut-width require --prob part".into(),
        )),
    }
}

fn parse_options(args: &[String]) -> Result<Options, Error> {
    let mut opts = Options {
        path: String::new(),
        scenario: Scenario::a(),
        seed: 1,
        prob: None,
        region_nodes: None,
        cut_width: None,
        objective: Objective::MinimizePower,
        delay_bound: DelayBound::Unbounded,
        fixpoint: false,
        threads: default_threads(),
        simulate: false,
        vcd: None,
        out: None,
        trace: None,
        json: false,
        budget: RunBudget::default(),
        degrade: true,
    };
    let usage = |msg: String| Error::Usage(msg);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scenario" => {
                opts.scenario = match it.next().map(String::as_str) {
                    Some("a") | Some("A") => Scenario::a(),
                    Some("b") | Some("B") => Scenario::b(),
                    other => return Err(usage(format!("bad --scenario {other:?}"))),
                }
            }
            "--seed" => {
                opts.seed = flag_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| usage(format!("bad --seed: {e}")))?;
            }
            "--prob" => opts.prob = Some(flag_value(&mut it, "--prob")?.to_string()),
            "--region-nodes" => {
                opts.region_nodes = Some(parse_usize_flag(&mut it, "--region-nodes")?);
            }
            "--cut-width" => opts.cut_width = Some(parse_usize_flag(&mut it, "--cut-width")?),
            "--objective" => opts.objective = parse_objective(it.next().map(String::as_str))?,
            "--delay-bound" => {
                opts.delay_bound = DelayBound::parse(flag_value(&mut it, "--delay-bound")?)?;
            }
            "--fixpoint" => opts.fixpoint = true,
            "--threads" => opts.threads = parse_threads(&mut it)?,
            "--simulate" => opts.simulate = true,
            "--vcd" => {
                opts.vcd = Some(flag_value(&mut it, "--vcd")?.to_string());
                opts.simulate = true;
            }
            "--out" => opts.out = Some(flag_value(&mut it, "--out")?.to_string()),
            "--trace" => opts.trace = Some(flag_value(&mut it, "--trace")?.to_string()),
            "--json" => opts.json = true,
            flag @ ("--deadline-ms" | "--node-budget") => {
                parse_budget_flag(&mut opts.budget, flag, &mut it)?;
            }
            "--degrade" => opts.degrade = parse_degrade(it.next().map(String::as_str))?,
            other if !other.starts_with('-') && opts.path.is_empty() => {
                opts.path = other.to_string();
            }
            other => return Err(usage(format!("unexpected argument `{other}`"))),
        }
    }
    if opts.path.is_empty() {
        return Err(usage("missing <netlist> argument".into()));
    }
    Ok(opts)
}

impl Options {
    /// Resolves `--prob` after all flags are parsed (so `--seed` applies
    /// to the Monte Carlo backend regardless of flag order).
    fn prob_mode(&self) -> Result<PropagationMode, Error> {
        let mut mode = match &self.prob {
            Some(s) => parse_prob_mode(s, self.seed)?,
            None => PropagationMode::Independent,
        };
        apply_partition_overrides(&mut mode, self.region_nodes, self.cut_width)?;
        Ok(mode)
    }
}

fn cmd_optimize(args: &[String]) -> Result<(), Error> {
    let opts = parse_options(args)?;
    let env = FlowEnv::new();

    let mut flow = Flow::open(&opts.path)
        .scenario(opts.scenario, opts.seed)
        .prob(opts.prob_mode()?)
        .objective(opts.objective)
        .delay_bound(opts.delay_bound)
        .fixpoint(opts.fixpoint)
        .threads(opts.threads)
        .budget(opts.budget)
        .degrade(opts.degrade)
        .headroom(false);
    if opts.simulate {
        // The waveform dump replaces the before/after comparison run.
        let sim = SimOptions::thorough(opts.seed ^ 0xC0FFEE);
        flow = flow.simulate(if opts.vcd.is_some() {
            sim
        } else {
            sim.with_baseline()
        });
    }
    if let Some(vcd_path) = &opts.vcd {
        flow = flow.vcd(vcd_path);
    }
    if let Some(out) = &opts.out {
        flow = flow.write_netlist(out);
    }
    if let Some(trace) = &opts.trace {
        flow = flow.trace(trace);
    }

    let (report, circuit) = flow.run_full(&env)?;
    if opts.json {
        println!("{}", report.to_json());
        return Ok(());
    }
    println!(
        "loaded: {} ({} gates, {} inputs, {} outputs, depth {})",
        report.circuit, report.gates, report.inputs, report.outputs, report.depth
    );
    println!(
        "model power: {:.4e} W → {:.4e} W ({:+.1}%), {} gates retuned",
        report.power.model_before_w,
        report.power.model_after_w,
        -report.power.reduction_percent,
        report.changed_gates
    );
    if let Some(err) = report.independence_error {
        println!(
            "probability backend: {} (independence error up to {:.3e} in P)",
            report.prob_mode, err
        );
    }
    if report.degraded {
        println!(
            "degraded: {} ({})",
            report.degrade_rung.as_deref().unwrap_or("?"),
            report.degrade_reason.as_deref().unwrap_or("?")
        );
    }
    if let Some(iters) = report.fixpoint_iters {
        println!(
            "fixpoint: {iters} iterations, {} cone re-propagations",
            report.repropagations
        );
    }
    if let Some(disc) = report.stale_power_discrepancy_w {
        println!("stale-statistics discrepancy: {disc:.3e} W");
    }
    println!(
        "critical path: {:.3} ns → {:.3} ns ({:+.1}%)",
        report.delay.critical_path_before_s * 1e9,
        report.delay.critical_path_after_s * 1e9,
        report.delay.increase_percent
    );
    println!("{}", instance_demand(&circuit, &env.library).render());
    if let Some(sim) = &report.sim {
        match (&opts.vcd, sim.baseline_w) {
            (Some(vcd_path), _) => println!(
                "simulated: {:.4e} W over {:.0} µs; waveform → {vcd_path}",
                sim.optimized_w,
                (sim.duration_s - sim.warmup_s) * 1e6
            ),
            (None, Some(before)) => println!(
                "simulated: {:.4e} W → {:.4e} W ({:+.1}%)",
                before,
                sim.optimized_w,
                100.0 * (sim.optimized_w - before) / before
            ),
            (None, None) => println!("simulated: {:.4e} W", sim.optimized_w),
        }
    }
    if let Some(out) = &opts.out {
        println!("netlist → {out}");
    }
    if let Some(trace) = &opts.trace {
        println!("trace → {trace}");
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), Error> {
    let opts = parse_options(args)?;
    if opts.json {
        return Err(Error::Usage(
            "--json is only supported by `tr-opt optimize` (analyze prints text)".into(),
        ));
    }
    if !opts.budget.is_unbounded() {
        return Err(Error::Usage(
            "--deadline-ms/--node-budget are only supported by `tr-opt optimize` and \
             `tr-opt batch`"
                .into(),
        ));
    }
    let env = FlowEnv::new();
    // Analyze bypasses `Flow`, so the self-profile is managed here: the
    // backend spans (BDD builds, GCs, region evaluations) still land in
    // the file.
    if opts.trace.is_some() {
        tr_trace::reset();
        tr_trace::enable();
        tr_trace::set_thread_name("analyze-main");
    }
    let circuit = {
        let _load = tr_trace::span!("analyze.load");
        load_path(
            std::path::Path::new(&opts.path),
            &env.library,
            &Default::default(),
        )?
    };
    let stats = opts
        .scenario
        .input_stats(circuit.primary_inputs().len(), opts.seed);
    println!("{circuit}");
    let mut hist: Vec<(String, usize)> = circuit.cell_histogram().into_iter().collect();
    hist.sort();
    let summary: Vec<String> = hist.iter().map(|(n, c)| format!("{n}×{c}")).collect();
    println!("cells: {}", summary.join(" "));
    let mode = opts.prob_mode()?;
    let stats_span = tr_trace::span!("analyze.stats", gates = circuit.gates().len());
    let nets = propagate_with_mode(&circuit, &env.library, &stats, mode)?;
    if mode != PropagationMode::Independent {
        let indep = propagate(&circuit, &env.library, &stats);
        let err = max_probability_deviation(&nets, &indep);
        println!("probability backend: {mode} (independence error up to {err:.3e} in P)");
    }
    drop(stats_span);
    let power = circuit_power(&circuit, &env.model, &nets);
    println!(
        "model power: {:.4e} W (output nodes {:.4e} W, internal {:.4e} W)",
        power.total,
        power.output_total(),
        power.internal_total()
    );
    println!(
        "critical path: {:.3} ns over depth {}",
        critical_path_delay(&circuit, &env.timing) * 1e9,
        circuit.logic_depth()
    );
    if opts.fixpoint {
        // Read-only: run the fixed-point loop to report its convergence
        // behavior without touching the netlist.
        let rep = optimize_to_fixpoint(
            &circuit,
            &env.library,
            &env.model,
            &stats,
            mode,
            FixpointOptions {
                objective: opts.objective,
                ..FixpointOptions::default()
            },
        )?;
        println!(
            "fixpoint: {} after {} iterations ({} cone re-propagations, {} nets re-derived)",
            if rep.converged() {
                "converged"
            } else {
                "hit the iteration cap"
            },
            rep.iterations,
            rep.repropagations,
            rep.refreshed_nets
        );
        println!(
            "fixpoint power: {:.4e} W → {:.4e} W, stale-statistics discrepancy {:.3e} W",
            rep.result.power_before,
            rep.result.power_after,
            rep.stale_discrepancy_w()
        );
    }
    if let Some(trace) = &opts.trace {
        tr_trace::disable();
        tr_trace::write_chrome_trace(trace).map_err(|e| Error::io(trace.as_str(), e))?;
        println!("trace → {trace}");
    }
    Ok(())
}

/// Batch report format.
enum ReportFormat {
    Json,
    Csv,
}

fn cmd_batch(args: &[String]) -> Result<(), Error> {
    let usage = |msg: String| Error::Usage(msg);
    let mut inputs: Vec<String> = Vec::new();
    let mut suite_name: Option<String> = None;
    let mut scenarios: Option<String> = None;
    let mut report_format = ReportFormat::Json;
    let mut prob: Option<String> = None;
    let mut region_nodes: Option<usize> = None;
    let mut cut_width: Option<usize> = None;
    let mut objective = Objective::MinimizePower;
    let mut delay_bound = DelayBound::Unbounded;
    let mut fixpoint = false;
    let mut simulate = false;
    let mut threads = default_threads();
    let mut budget = RunBudget::default();
    let mut degrade = true;
    let mut trace: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--suite" => suite_name = Some(flag_value(&mut it, "--suite")?.to_string()),
            "--scenarios" => scenarios = Some(flag_value(&mut it, "--scenarios")?.to_string()),
            "--report" => {
                report_format = match it.next().map(String::as_str) {
                    Some("json") => ReportFormat::Json,
                    Some("csv") => ReportFormat::Csv,
                    other => return Err(usage(format!("bad --report {other:?}"))),
                }
            }
            "--prob" => prob = Some(flag_value(&mut it, "--prob")?.to_string()),
            "--region-nodes" => {
                region_nodes = Some(parse_usize_flag(&mut it, "--region-nodes")?);
            }
            "--cut-width" => cut_width = Some(parse_usize_flag(&mut it, "--cut-width")?),
            "--objective" => objective = parse_objective(it.next().map(String::as_str))?,
            "--delay-bound" => {
                delay_bound = DelayBound::parse(flag_value(&mut it, "--delay-bound")?)?;
            }
            "--fixpoint" => fixpoint = true,
            "--simulate" => simulate = true,
            "--threads" => threads = parse_threads(&mut it)?,
            flag @ ("--deadline-ms" | "--node-budget") => {
                parse_budget_flag(&mut budget, flag, &mut it)?;
            }
            "--degrade" => degrade = parse_degrade(it.next().map(String::as_str))?,
            "--trace" => trace = Some(flag_value(&mut it, "--trace")?.to_string()),
            other if !other.starts_with('-') => inputs.push(other.to_string()),
            other => return Err(usage(format!("unexpected argument `{other}`"))),
        }
    }

    let env = FlowEnv::new();
    let mut jobs: Vec<BatchJob> = Vec::new();
    if let Some(name) = &suite_name {
        let cases = match name.as_str() {
            "small" => suite::small_suite(&env.library),
            "quick" => suite::quick_suite(&env.library),
            "full" => suite::standard_suite(&env.library),
            "large" => suite::large_suite(&env.library),
            other => return Err(usage(format!("bad --suite `{other}`"))),
        };
        jobs.extend(
            cases
                .into_iter()
                .map(|c| BatchJob::from_circuit(c.name, c.circuit)),
        );
    }
    for input in &inputs {
        let path = std::path::Path::new(input);
        if path.is_dir() {
            jobs.extend(BatchJob::from_dir(path)?);
        } else {
            jobs.push(BatchJob::from_path(path));
        }
    }
    if jobs.is_empty() {
        return Err(usage(
            "no inputs: pass netlist files/directories or --suite small|quick|full|large".into(),
        ));
    }
    let matrix = match &scenarios {
        Some(s) => ScenarioSpec::parse_matrix(s)?,
        None => ScenarioSpec::default_matrix(),
    };

    let mut template = Flow::from_source(transistor_reordering::flow::Source::Circuit(
        Circuit::new("template"),
    ))
    .objective(objective)
    .delay_bound(delay_bound)
    .fixpoint(fixpoint)
    .budget(budget)
    .degrade(degrade);
    if let Some(trace) = &trace {
        // The runner hoists a traced template to the run level: one
        // merged file, every worker on its own named track.
        template = template.trace(trace);
    }
    // The Monte Carlo backend takes one fixed seed across the grid —
    // per-cell scenarios already vary the input statistics.
    let mut mode = match &prob {
        Some(s) => parse_prob_mode(s, 0xBDD5EED)?,
        None => PropagationMode::Independent,
    };
    apply_partition_overrides(&mut mode, region_nodes, cut_width)?;
    if prob.is_some() {
        template = template.prob(mode);
    }
    if simulate {
        template = template.simulate(SimOptions {
            duration: DurationPolicy::Auto {
                target_toggles: 400.0,
            },
            warmup_frac: 0.1,
            seed: 0xBA7C4,
            baseline: false,
        });
    }

    eprintln!(
        "batch: {} circuits × {} scenarios = {} runs on {} threads",
        jobs.len(),
        matrix.len(),
        jobs.len() * matrix.len(),
        threads
    );
    if matches!(report_format, ReportFormat::Csv) {
        println!("{}", FlowReport::csv_header());
    }
    let t0 = Instant::now();
    // A load failure (scenario "-") stands for every cell of its job.
    let mut failed_cells = 0usize;
    let mut failures: Vec<String> = Vec::new();
    let mut completed = 0usize;
    let results = BatchRunner::new(template)
        .threads(threads)
        .run(&env, &jobs, &matrix, |result| match &result.outcome {
            Ok(report) => {
                completed += 1;
                match report_format {
                    ReportFormat::Json => println!("{}", report.to_json()),
                    ReportFormat::Csv => println!("{}", report.to_csv_row()),
                }
                // One progress line per completed cell, so a long batch
                // shows where the time went while it runs.
                let rung = match report.degrade_rung.as_deref() {
                    Some(r) => format!(", degraded: {r}"),
                    None => String::new(),
                };
                eprintln!(
                    "  {} × {}: {:.2} s{rung}",
                    result.job, result.scenario, report.timings.total_s
                );
            }
            Err(e) => {
                failed_cells += if result.scenario == "-" {
                    matrix.len()
                } else {
                    1
                };
                failures.push(format!("{}×{}", result.job, result.scenario));
                eprintln!("  {} × {}: {e}", result.job, result.scenario);
            }
        });
    drop(results);
    eprintln!(
        "batch: {completed} runs in {:.2} s ({:.1} runs/s)",
        t0.elapsed().as_secs_f64(),
        completed as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    );
    if failed_cells > 0 {
        // One machine-grepable summary line naming every failed cell;
        // the per-cell diagnostics streamed above as they happened.
        eprintln!(
            "batch: {failed_cells}/{} cells failed: {}",
            jobs.len() * matrix.len(),
            failures.join(" ")
        );
        return Err(Error::Batch {
            failed: failed_cells,
            total: jobs.len() * matrix.len(),
        });
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), Error> {
    let mut config = tr_serve::ServeConfig {
        threads: default_threads(),
        watch_signals: true,
        ..Default::default()
    };
    let mut trace: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => config.addr = flag_value(&mut it, "--addr")?.to_string(),
            "--threads" => config.threads = parse_threads(&mut it)?,
            "--queue-depth" => {
                config.queue_depth = parse_usize_flag(&mut it, "--queue-depth")?;
                if config.queue_depth == 0 {
                    return Err(Error::Usage("--queue-depth must be at least 1".into()));
                }
            }
            "--max-deadline-ms" => {
                config.max_deadline_ms = Some(
                    flag_value(&mut it, "--max-deadline-ms")?
                        .parse()
                        .map_err(|e| Error::Usage(format!("bad --max-deadline-ms: {e}")))?,
                );
            }
            "--max-node-budget" => {
                config.max_node_budget = Some(parse_usize_flag(&mut it, "--max-node-budget")?);
            }
            "--max-request-threads" => {
                config.max_request_threads = parse_usize_flag(&mut it, "--max-request-threads")?;
                if config.max_request_threads == 0 {
                    return Err(Error::Usage(
                        "--max-request-threads must be at least 1".into(),
                    ));
                }
            }
            "--cache-nodes" => config.cache_nodes = parse_usize_flag(&mut it, "--cache-nodes")?,
            "--cache-bytes" => config.cache_bytes = parse_usize_flag(&mut it, "--cache-bytes")?,
            "--trace" => trace = Some(flag_value(&mut it, "--trace")?.to_string()),
            other => return Err(Error::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    // The trace spans the server's whole life: the accept loop, every
    // queue wait and every worker's request spans on named tracks.
    if trace.is_some() {
        tr_trace::reset();
        tr_trace::enable();
    }
    let server = tr_serve::Server::bind(config).map_err(|e| Error::io("serve", e))?;
    // Machine-readable startup line (the smoke test and loadgen watch
    // for it to learn the resolved port).
    println!("tr-serve listening on http://{}", server.addr());
    server.run().map_err(|e| Error::io("serve", e))?;
    eprintln!("tr-serve: drained, exiting");
    if let Some(path) = &trace {
        tr_trace::disable();
        tr_trace::write_chrome_trace(path).map_err(|e| Error::io(path.as_str(), e))?;
        eprintln!("trace → {path}");
    }
    Ok(())
}

fn cmd_library() -> Result<(), Error> {
    let library = Library::standard();
    println!(
        "{:<8} {:>4} {:>7} {:>9} {:>10}",
        "cell", "#in", "#trans", "#configs", "#instances"
    );
    for cell in library.cells() {
        println!(
            "{:<8} {:>4} {:>7} {:>9} {:>10}",
            cell.name(),
            cell.arity(),
            cell.transistor_count(),
            cell.configurations().len(),
            cell.instances().len()
        );
    }
    Ok(())
}
