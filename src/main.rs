//! `tr-opt` — the command-line front end of the transistor-reordering
//! optimizer.
//!
//! ```text
//! tr-opt optimize <netlist> [--scenario a|b] [--seed N] [--objective min|max]
//!                 [--delay-bound none|local|slack] [--simulate] [--vcd FILE]
//!                 [--out FILE]
//! tr-opt analyze  <netlist> [--scenario a|b] [--seed N]
//! tr-opt library
//! ```
//!
//! `<netlist>` may be ISCAS `.bench`, combinational `.blif` (both get
//! technology-mapped onto the Table 2 library) or the native mapped
//! format `.trnet` written by `--out`.

use std::process::ExitCode;
use transistor_reordering::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "optimize" => cmd_optimize(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "library" => cmd_library(),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
tr-opt — low-power transistor reordering (Musoll & Cortadella, DATE 1996)

USAGE:
  tr-opt optimize <netlist> [options]   pick per-gate transistor orderings
  tr-opt analyze  <netlist> [options]   report power/delay without changes
  tr-opt library                        print the Table 2 cell library

OPTIONS (optimize/analyze):
  --scenario a|b        input statistics (default a: random P,D)
  --seed N              RNG seed for scenario A and the simulator
  --objective min|max   minimize (default) or maximize power
  --delay-bound MODE    none (default) | local | slack
  --threads N           optimizer worker threads (default: all cores;
                        applies to --delay-bound none)
  --simulate            validate with the switch-level simulator
  --vcd FILE            dump a simulation waveform (implies --simulate)
  --out FILE            write the optimized netlist (native format)

FORMATS: .bench (ISCAS), .blif (combinational subset), .trnet (native)";

struct Options {
    path: String,
    scenario: Scenario,
    seed: u64,
    objective: Objective,
    delay_bound: String,
    threads: usize,
    simulate: bool,
    vcd: Option<String>,
    out: Option<String>,
}

/// Default worker count: everything the machine offers.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        path: String::new(),
        scenario: Scenario::a(),
        seed: 1,
        objective: Objective::MinimizePower,
        delay_bound: "none".into(),
        threads: default_threads(),
        simulate: false,
        vcd: None,
        out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scenario" => {
                opts.scenario = match it.next().map(String::as_str) {
                    Some("a") | Some("A") => Scenario::a(),
                    Some("b") | Some("B") => Scenario::b(),
                    other => return Err(format!("bad --scenario {other:?}")),
                }
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("missing value for --seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--objective" => {
                opts.objective = match it.next().map(String::as_str) {
                    Some("min") => Objective::MinimizePower,
                    Some("max") => Objective::MaximizePower,
                    other => return Err(format!("bad --objective {other:?}")),
                }
            }
            "--delay-bound" => {
                let v = it.next().ok_or("missing value for --delay-bound")?;
                if !["none", "local", "slack"].contains(&v.as_str()) {
                    return Err(format!("bad --delay-bound `{v}`"));
                }
                opts.delay_bound = v.clone();
            }
            "--threads" => {
                opts.threads = it
                    .next()
                    .ok_or("missing value for --threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if opts.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--simulate" => opts.simulate = true,
            "--vcd" => {
                opts.vcd = Some(it.next().ok_or("missing value for --vcd")?.clone());
                opts.simulate = true;
            }
            "--out" => opts.out = Some(it.next().ok_or("missing value for --out")?.clone()),
            other if !other.starts_with('-') && opts.path.is_empty() => {
                opts.path = other.to_string();
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.path.is_empty() {
        return Err("missing <netlist> argument".into());
    }
    Ok(opts)
}

fn load_circuit(path: &str, library: &Library) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("netlist");
    if path.ends_with(".bench") {
        let generic = bench::parse(stem, &text).map_err(|e| e.to_string())?;
        Ok(map::map_default(&generic, library))
    } else if path.ends_with(".blif") {
        let generic = blif::parse(&text).map_err(|e| e.to_string())?;
        Ok(map::map_default(&generic, library))
    } else {
        tr_netlist::format::parse(&text, library).map_err(|e| e.to_string())
    }
}

fn cmd_optimize(args: &[String]) -> Result<(), String> {
    let opts = parse_options(args)?;
    let library = Library::standard();
    let process = Process::default();
    let model = PowerModel::new(&library, process.clone());
    let timing = TimingModel::new(&library, process.clone());
    let circuit = load_circuit(&opts.path, &library)?;
    let stats = opts
        .scenario
        .input_stats(circuit.primary_inputs().len(), opts.seed);

    println!("loaded: {circuit}");
    let result = match (opts.delay_bound.as_str(), opts.objective) {
        ("local", Objective::MinimizePower) => {
            optimize_delay_bounded(&circuit, &library, &model, &timing, &stats)
        }
        ("slack", Objective::MinimizePower) => {
            optimize_slack_aware(&circuit, &library, &model, &timing, &stats, 0.0)
        }
        ("none", obj) => optimize_parallel(&circuit, &library, &model, &stats, obj, opts.threads),
        (bound, _) => {
            return Err(format!(
                "--delay-bound {bound} only supports --objective min"
            ))
        }
    };
    println!(
        "model power: {:.4e} W → {:.4e} W ({:+.1}%), {} gates retuned",
        result.power_before,
        result.power_after,
        -result.reduction_percent(),
        result.changed_gates
    );
    let d0 = critical_path_delay(&circuit, &timing);
    let d1 = critical_path_delay(&result.circuit, &timing);
    println!(
        "critical path: {:.3} ns → {:.3} ns ({:+.1}%)",
        d0 * 1e9,
        d1 * 1e9,
        100.0 * (d1 - d0) / d0
    );
    println!("{}", instance_demand(&result.circuit, &library).render());

    if opts.simulate {
        let duration = 2000.0
            / stats
                .iter()
                .map(SignalStats::density)
                .fold(1.0f64, f64::max);
        let duration = duration.clamp(1.0e-6, 1.0e-2);
        let cfg = SimConfig {
            duration,
            warmup: duration * 0.1,
            seed: opts.seed ^ 0xC0FFEE,
        };
        if let Some(vcd_path) = &opts.vcd {
            let drives: Vec<InputDrive> =
                stats.iter().map(|s| InputDrive::Stochastic(*s)).collect();
            let (report, trace) =
                simulate_traced(&result.circuit, &library, &process, &timing, &drives, &cfg);
            vcd::write_to_file(&result.circuit, &trace, vcd_path)
                .map_err(|e| format!("writing {vcd_path}: {e}"))?;
            println!(
                "simulated: {:.4e} W over {:.0} µs; waveform → {vcd_path}",
                report.power,
                report.measured_time * 1e6
            );
        } else {
            let before = simulate(&circuit, &library, &process, &timing, &stats, &cfg);
            let after = simulate(&result.circuit, &library, &process, &timing, &stats, &cfg);
            println!(
                "simulated: {:.4e} W → {:.4e} W ({:+.1}%)",
                before.power,
                after.power,
                100.0 * (after.power - before.power) / before.power
            );
        }
    }
    if let Some(out) = &opts.out {
        std::fs::write(out, tr_netlist::format::write(&result.circuit))
            .map_err(|e| format!("writing {out}: {e}"))?;
        println!("netlist → {out}");
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let opts = parse_options(args)?;
    let library = Library::standard();
    let process = Process::default();
    let model = PowerModel::new(&library, process.clone());
    let timing = TimingModel::new(&library, process);
    let circuit = load_circuit(&opts.path, &library)?;
    let stats = opts
        .scenario
        .input_stats(circuit.primary_inputs().len(), opts.seed);
    println!("{circuit}");
    let mut hist: Vec<(String, usize)> = circuit.cell_histogram().into_iter().collect();
    hist.sort();
    let summary: Vec<String> = hist.iter().map(|(n, c)| format!("{n}×{c}")).collect();
    println!("cells: {}", summary.join(" "));
    let nets = propagate(&circuit, &library, &stats);
    let power = circuit_power(&circuit, &model, &nets);
    println!(
        "model power: {:.4e} W (output nodes {:.4e} W, internal {:.4e} W)",
        power.total,
        power.output_total(),
        power.internal_total()
    );
    println!(
        "critical path: {:.3} ns over depth {}",
        critical_path_delay(&circuit, &timing) * 1e9,
        circuit.logic_depth()
    );
    Ok(())
}

fn cmd_library() -> Result<(), String> {
    let library = Library::standard();
    println!(
        "{:<8} {:>4} {:>7} {:>9} {:>10}",
        "cell", "#in", "#trans", "#configs", "#instances"
    );
    for cell in library.cells() {
        println!(
            "{:<8} {:>4} {:>7} {:>9} {:>10}",
            cell.name(),
            cell.arity(),
            cell.transistor_count(),
            cell.configurations().len(),
            cell.instances().len()
        );
    }
    Ok(())
}
