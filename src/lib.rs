//! # transistor-reordering
//!
//! A full reproduction of *"Optimizing CMOS Circuits for Low Power Using
//! Transistor Reordering"* (E. Musoll and J. Cortadella, DATE 1996) as a
//! Rust workspace: the stochastic power model of static CMOS gates with
//! internal nodes, the exhaustive pivot-based exploration of transistor
//! orderings, the single-pass circuit optimizer, and everything the paper
//! depends on — a Table 2 cell library, a technology mapper, a benchmark
//! suite, an Elmore timing model and an event-driven switch-level
//! simulator for validation.
//!
//! This umbrella crate re-exports the workspace's public API under stable
//! module names; each subsystem is an independently usable crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`boolean`] | `tr-boolean` | truth-table Boolean algebra, `(P, D)` signal statistics, Najm density |
//! | [`bdd`] | `tr-bdd` | shared ROBDD engine (complement edges), exact whole-circuit signal statistics |
//! | [`spnet`] | `tr-spnet` | series-parallel networks, gate graphs, `H`/`G` path functions, pivot enumeration |
//! | [`gatelib`] | `tr-gatelib` | the Table 2 cell library, configurations, instances, process parameters |
//! | [`netlist`] | `tr-netlist` | circuits, `.bench` parsing, generators, technology mapping, benchmark suite |
//! | [`power`] | `tr-power` | the paper's extended power model and circuit-level propagation |
//! | [`timing`] | `tr-timing` | Elmore gate delays and static timing analysis |
//! | [`sim`] | `tr-sim` | the switch-level validation simulator |
//! | [`reorder`] | `tr-reorder` | the optimization algorithm (Fig. 3) and variants |
//! | [`flow`] | `tr-flow` | the typed end-to-end pipeline (`Flow`), structured reports, the parallel batch runner |
//! | [`serve`] | `tr-serve` | the warm-cache optimization daemon (`tr-opt serve`): HTTP/1.1 endpoints, content-addressed staged artifacts, bounded admission |
//!
//! ## Quickstart
//!
//! Optimize a ripple-carry adder for low power and check the headroom:
//!
//! ```
//! use transistor_reordering::prelude::*;
//!
//! let lib = Library::standard();
//! let model = PowerModel::new(&lib, Process::default());
//! let adder = generators::ripple_carry_adder(8, &lib);
//!
//! // Scenario A of the paper: random embedded-system input statistics.
//! let stats = Scenario::a().input_stats(adder.primary_inputs().len(), 42);
//! let best = optimize(&adder, &lib, &model, &stats, Objective::MinimizePower);
//! let worst = optimize(&adder, &lib, &model, &stats, Objective::MaximizePower);
//!
//! assert!(best.power_after < worst.power_after);
//! println!(
//!     "reordering headroom: {:.1}%",
//!     100.0 * (worst.power_after - best.power_after) / worst.power_after
//! );
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the `tr-bench`
//! crate for the binaries that regenerate every table and figure of the
//! paper (documented in `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tr_bdd as bdd;
pub use tr_boolean as boolean;
pub use tr_flow as flow;
pub use tr_gatelib as gatelib;
pub use tr_netlist as netlist;
pub use tr_power as power;
pub use tr_reorder as reorder;
pub use tr_serve as serve;
pub use tr_sim as sim;
pub use tr_spnet as spnet;
pub use tr_timing as timing;

/// One-stop imports for applications.
pub mod prelude {
    pub use tr_bdd::{Bdd, BuildOptions, CircuitBdds, OrderHeuristic};
    pub use tr_boolean::{sop, BoolFn, Expr, SignalStats};
    pub use tr_flow::{
        BatchJob, BatchRunner, DelayBound, Flow, FlowEnv, FlowReport, ScenarioSpec, SimOptions,
    };
    pub use tr_gatelib::{Cell, CellId, CellKind, Library, Process, FEMTO};
    pub use tr_netlist::{
        bench, blif, generators, map, suite, Circuit, CompiledCircuit, GateId, NetId, ResolvedGate,
    };
    pub use tr_power::scenario::Scenario;
    pub use tr_power::{
        circuit_power, circuit_total_compiled, external_loads, external_loads_compiled, monte,
        propagate, propagate_exact, propagate_exact_bdd, propagate_with_mode, IncrementalPower,
        IncrementalPropagator, PowerModel, PropagationMode, Scratch,
    };
    pub use tr_reorder::{
        delay_power_tradeoff, instance_demand, optimize, optimize_delay_bounded, optimize_parallel,
        optimize_slack_aware, optimize_to_fixpoint, optimize_with_net_stats, FixpointOptions,
        FixpointReport, FixpointTermination, InstanceDemand, Objective, OptimizeResult,
    };
    pub use tr_sim::{
        simulate, simulate_traced, simulate_with_drives, vcd, InputDrive, SimConfig, SimReport,
    };
    pub use tr_spnet::{pivot, shape, GateGraph, NodeId, SpTree, Topology};
    pub use tr_timing::{arrival_times, critical_path_delay, TimingModel};
}
