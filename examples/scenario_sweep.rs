//! Sweep the input-activity landscape: how much does transistor
//! reordering save as a function of how *skewed* the input densities are?
//!
//! The paper's Table 1 shows that the optimal ordering depends on which
//! input is hot; this example quantifies the flip side — when all inputs
//! look alike (Scenario B's uniform statistics), there is little to
//! exploit, and the headroom grows with the activity spread.
//!
//! Run: `cargo run --release --example scenario_sweep`

use transistor_reordering::prelude::*;

fn main() {
    let env = FlowEnv::new();
    let circuit = generators::alu(4, &env.library);
    let n = circuit.primary_inputs().len();
    println!("circuit: {circuit}");
    println!("\nheadroom (best-vs-worst model power) vs input-density skew:");
    println!(
        "{:>28} {:>10} {:>10} {:>10}",
        "density distribution", "M%", "best µW", "worst µW"
    );

    // Densities log-uniform over [1M/σ, 1M·σ]; σ = 1 is uniform.
    for spread in [1.0f64, 2.0, 5.0, 10.0, 50.0, 100.0] {
        let base = 3.0e5;
        let stats: Vec<SignalStats> = (0..n)
            .map(|i| {
                // Deterministic pseudo-random skew, stable across runs.
                let u = ((i as f64 * 0.6180339887) % 1.0) * 2.0 - 1.0; // [-1, 1)
                let d = base * spread.powf(u);
                SignalStats::new(0.5, d)
            })
            .collect();
        // The flow's headroom pass is exactly this best-vs-worst sweep.
        let report = Flow::from_circuit(circuit.clone())
            .input_stats(stats)
            .run(&env)
            .expect("in-memory flow");
        println!(
            "{:>22}σ={spread:<5} {:>10.1} {:>10.3} {:>10.3}",
            "",
            report.power.headroom_percent.expect("headroom pass"),
            report.power.model_best_w.expect("headroom pass") * 1e6,
            report.power.model_worst_w.expect("headroom pass") * 1e6
        );
    }

    println!("\nconclusion: the more asymmetric the input activity, the more the");
    println!("ordering of series transistors matters — uniform activity (σ=1)");
    println!("still leaves headroom from the charge-state asymmetry of the");
    println!("stacks, but skew multiplies it.");
}
