//! Explore the reordering structure of any library cell: its gate graph,
//! the path functions `H`/`G` of every node (the paper's Fig. 2), all
//! configurations with their instances (Table 2), and the power of each
//! configuration under a chosen activity profile (Table 1).
//!
//! Run: `cargo run --release --example library_explorer -- aoi211`
//! (defaults to the paper's oai21)

use transistor_reordering::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "oai21".to_string());
    let lib = Library::standard();
    let Some(cell) = lib.cell_by_name(&name) else {
        eprintln!("unknown cell `{name}`; available:");
        for c in lib.cells() {
            eprint!(" {}", c.name());
        }
        eprintln!();
        std::process::exit(1);
    };
    let model = PowerModel::new(&lib, Process::default());

    let input_names: Vec<String> = (0..cell.arity()).map(|i| format!("x{i}")).collect();
    let refs: Vec<&str> = input_names.iter().map(String::as_str).collect();

    println!(
        "cell {} — {} inputs, {} transistors",
        cell.name(),
        cell.arity(),
        cell.transistor_count()
    );
    println!("function: y = {}", readable_fn(cell.function()));
    println!();

    // Fig. 2: the default configuration's graph and path functions.
    let graph = cell.default_graph();
    println!("default configuration: {}", cell.configurations()[0]);
    println!("path functions (paper Fig. 2b):");
    for node in graph.power_nodes() {
        let h = graph.h_expr(node);
        let g = graph.g_expr(node);
        println!(
            "  H_{node} = {:<30} G_{node} = {}",
            h.render(&refs),
            g.render(&refs)
        );
    }
    println!();

    // Table 2: configurations and instances.
    println!(
        "{} configurations across {} instance(s):",
        cell.configurations().len(),
        cell.instances().len()
    );
    // Table 1-style power exploration with a steep activity gradient.
    let stats: Vec<SignalStats> = (0..cell.arity())
        .map(|i| SignalStats::new(0.5, 10f64.powi(4 + (i % 3) as i32)))
        .collect();
    println!(
        "activity profile: {:?} transitions/s",
        stats.iter().map(|s| s.density()).collect::<Vec<_>>()
    );
    let mut rows: Vec<(usize, f64)> = (0..cell.configurations().len())
        .map(|c| {
            let p = model.gate_power(cell.kind(), c, &stats, 8.0 * FEMTO).total;
            (c, p)
        })
        .collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    let worst = rows.last().expect("non-empty").1;
    for (c, p) in &rows {
        println!(
            "  config {c:>2} [instance {}] {:<32} {:>9.3} nW  ({:.2}× best, {:.0}% below worst)",
            cell.instance_of(*c),
            format!("{}", cell.configurations()[*c]),
            p * 1e9,
            p / rows[0].1,
            100.0 * (worst - p) / worst
        );
    }
    println!(
        "\nbest-vs-worst headroom for this profile: {:.1}%",
        100.0 * (worst - rows[0].1) / worst
    );
}

/// Renders the function as a sum of minterms only if small; otherwise a
/// summary.
fn readable_fn(f: &BoolFn) -> String {
    if f.nvars() <= 4 {
        format!("{f}")
    } else {
        format!("{} minterms over {} inputs", f.count_minterms(), f.nvars())
    }
}
