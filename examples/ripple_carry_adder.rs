//! The paper's §1.1 motivation, reproduced: in a ripple-carry adder whose
//! operand bits all share identical statistics (`P = 0.5`,
//! `D = 0.5`/cycle), the *carry chain* accumulates transition density —
//! useless transitions from carry generation and propagation — so the
//! equilibrium probability alone cannot distinguish the inputs of a
//! full adder, but the transition density can, and the best transistor
//! ordering changes along the chain.
//!
//! Run: `cargo run --release --example ripple_carry_adder`

use transistor_reordering::prelude::*;

fn main() {
    let lib = Library::standard();
    let model = PowerModel::new(&lib, Process::default());

    let bits = 16;
    let adder = generators::ripple_carry_adder(bits, &lib);
    let stats = Scenario::b().input_stats(adder.primary_inputs().len(), 0);
    let net_stats = propagate(&adder, &lib, &stats);

    println!(
        "{}-bit ripple-carry adder, Scenario B inputs (P=0.5, D=0.5/cycle)",
        bits
    );
    println!("\nsum-output statistics along the chain (density in transitions/s):");
    println!("{:>4} {:>12} {:>10}", "bit", "density", "P(1)");
    for i in 0..bits {
        let s = net_stats[adder.primary_outputs()[i].0];
        println!("{:>4} {:>12.3e} {:>10.3}", i, s.density(), s.probability());
    }
    let d0 = net_stats[adder.primary_outputs()[0].0].density();
    let dl = net_stats[adder.primary_outputs()[bits - 1].0].density();
    println!(
        "\ndensity grows {:.2}× from s0 to s{} while P stays ≈ 0.5 —",
        dl / d0,
        bits - 1
    );
    println!("equilibrium probability alone gives the optimizer nothing to work with.");

    // Show that the extra information pays: optimize and report where the
    // power went.
    let best = optimize(&adder, &lib, &model, &stats, Objective::MinimizePower);
    let worst = optimize(&adder, &lib, &model, &stats, Objective::MaximizePower);
    println!(
        "\nmodel power: best {:.3} µW, worst {:.3} µW — {:.1}% headroom from ordering alone",
        best.power_after * 1e6,
        worst.power_after * 1e6,
        100.0 * (worst.power_after - best.power_after) / worst.power_after
    );

    // Which cells changed? Histogram of touched gates.
    let mut touched: Vec<(String, usize)> = Vec::new();
    for (g_before, g_after) in adder.gates().iter().zip(best.circuit.gates()) {
        if g_before.config != g_after.config {
            let name = g_before.cell.name();
            match touched.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => touched.push((name, 1)),
            }
        }
    }
    println!("\ngates whose ordering changed (best vs default):");
    for (name, count) in &touched {
        println!("  {name:<8} ×{count}");
    }
}
