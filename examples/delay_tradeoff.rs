//! The power/delay trade-off, quantified — and a VCD waveform dump.
//!
//! The paper's §6 future work asks for "power reductions without
//! increasing the delay of the circuit". This example compares four
//! operating points on a multiplier:
//!
//! 1. the original mapping;
//! 2. unconstrained best-power (may slow the critical path);
//! 3. the *local* delay bound (no gate slower than its default);
//! 4. the *slack-aware* global bound (critical path may not grow, but
//!    off-critical gates spend their slack on cheaper orderings).
//!
//! It also dumps a switch-level waveform of the optimized circuit to
//! `target/delay_tradeoff.vcd` for inspection in GTKWave.
//!
//! Run: `cargo run --release --example delay_tradeoff`

use transistor_reordering::flow::DurationPolicy;
use transistor_reordering::prelude::*;

fn main() {
    let env = FlowEnv::new();
    let circuit = generators::array_multiplier(4, &env.library);
    let stats = Scenario::a().input_stats(circuit.primary_inputs().len(), 2026);
    println!("circuit: {circuit}");

    let t = delay_power_tradeoff(&circuit, &env.library, &env.model, &env.timing, &stats);
    let pct = |p: f64| 100.0 * (t.original - p) / t.original;
    println!("\nmodel power (W) and saving vs original:");
    println!(
        "  original            {:>12.4e}   ({:>5.1}%)",
        t.original, 0.0
    );
    println!(
        "  unconstrained best  {:>12.4e}   ({:>5.1}%)  delay {:+.1}%",
        t.unconstrained,
        pct(t.unconstrained),
        100.0 * (t.delay_unconstrained - t.delay_original) / t.delay_original
    );
    println!(
        "  local delay bound   {:>12.4e}   ({:>5.1}%)  delay ≤ 0%",
        t.locally_bounded,
        pct(t.locally_bounded)
    );
    println!(
        "  slack-aware bound   {:>12.4e}   ({:>5.1}%)  delay ≤ 0%",
        t.slack_aware,
        pct(t.slack_aware)
    );

    // The slack-aware operating point as one flow: optimize, confirm the
    // delay, simulate, and dump the waveform.
    let vcd_path = std::path::Path::new("target").join("delay_tradeoff.vcd");
    let report = Flow::from_circuit(circuit)
        .scenario(Scenario::a(), 2026)
        .delay_bound(DelayBound::Slack)
        .simulate(SimOptions {
            duration: DurationPolicy::Fixed(2.0e-5),
            warmup_frac: 0.0,
            seed: 11,
            baseline: false,
        })
        .vcd(&vcd_path)
        .run(&env)
        .expect("in-memory flow");
    let sim = report.sim.as_ref().expect("simulation requested");
    println!(
        "\ncritical path: {:.3} ns → {:.3} ns (gates touched: {})",
        report.delay.critical_path_before_s * 1e9,
        report.delay.critical_path_after_s * 1e9,
        report.changed_gates
    );
    println!(
        "wrote {} ({:.0} µs simulated, {:.3} µW)",
        vcd_path.display(),
        sim.duration_s * 1e6,
        sim.optimized_w * 1e6
    );
}
