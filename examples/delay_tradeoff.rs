//! The power/delay trade-off, quantified — and a VCD waveform dump.
//!
//! The paper's §6 future work asks for "power reductions without
//! increasing the delay of the circuit". This example compares four
//! operating points on a multiplier:
//!
//! 1. the original mapping;
//! 2. unconstrained best-power (may slow the critical path);
//! 3. the *local* delay bound (no gate slower than its default);
//! 4. the *slack-aware* global bound (critical path may not grow, but
//!    off-critical gates spend their slack on cheaper orderings).
//!
//! It also dumps a switch-level waveform of the optimized circuit to
//! `target/delay_tradeoff.vcd` for inspection in GTKWave.
//!
//! Run: `cargo run --release --example delay_tradeoff`

use transistor_reordering::prelude::*;

fn main() {
    let lib = Library::standard();
    let process = Process::default();
    let model = PowerModel::new(&lib, process.clone());
    let timing = TimingModel::new(&lib, process.clone());

    let circuit = generators::array_multiplier(4, &lib);
    let stats = Scenario::a().input_stats(circuit.primary_inputs().len(), 2026);
    println!("circuit: {circuit}");

    let t = delay_power_tradeoff(&circuit, &lib, &model, &timing, &stats);
    let pct = |p: f64| 100.0 * (t.original - p) / t.original;
    println!("\nmodel power (W) and saving vs original:");
    println!(
        "  original            {:>12.4e}   ({:>5.1}%)",
        t.original, 0.0
    );
    println!(
        "  unconstrained best  {:>12.4e}   ({:>5.1}%)  delay {:+.1}%",
        t.unconstrained,
        pct(t.unconstrained),
        100.0 * (t.delay_unconstrained - t.delay_original) / t.delay_original
    );
    println!(
        "  local delay bound   {:>12.4e}   ({:>5.1}%)  delay ≤ 0%",
        t.locally_bounded,
        pct(t.locally_bounded)
    );
    println!(
        "  slack-aware bound   {:>12.4e}   ({:>5.1}%)  delay ≤ 0%",
        t.slack_aware,
        pct(t.slack_aware)
    );

    // Confirm the slack-aware circuit's delay and dump a waveform.
    let slack = optimize_slack_aware(&circuit, &lib, &model, &timing, &stats, 0.0);
    let d0 = critical_path_delay(&circuit, &timing);
    let d1 = critical_path_delay(&slack.circuit, &timing);
    println!(
        "\ncritical path: {:.3} ns → {:.3} ns (gates touched: {})",
        d0 * 1e9,
        d1 * 1e9,
        slack.changed_gates
    );

    let drives: Vec<InputDrive> = stats.iter().map(|s| InputDrive::Stochastic(*s)).collect();
    let cfg = SimConfig {
        duration: 2.0e-5,
        warmup: 0.0,
        seed: 11,
    };
    let (report, trace) = simulate_traced(&slack.circuit, &lib, &process, &timing, &drives, &cfg);
    let path = std::path::Path::new("target").join("delay_tradeoff.vcd");
    if let Err(e) = vcd::write_to_file(&slack.circuit, &trace, &path) {
        eprintln!("could not write VCD: {e}");
    } else {
        println!(
            "wrote {} ({} value changes over {:.0} µs, {:.3} µW simulated)",
            path.display(),
            trace.events.len(),
            report.measured_time * 1e6,
            report.power * 1e6
        );
    }
}
