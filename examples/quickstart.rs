//! Quickstart: optimize one circuit end to end.
//!
//! Builds an 8-bit ripple-carry adder, runs the DATE'96 transistor-
//! reordering optimizer under both of the paper's input scenarios, and
//! validates the model's choice with the switch-level simulator.
//!
//! Run: `cargo run --release --example quickstart`

use transistor_reordering::prelude::*;

fn main() {
    // 1. The substrate: Table 2 cell library + generic 0.8 µm process.
    let lib = Library::standard();
    let process = Process::default();
    let model = PowerModel::new(&lib, process.clone());
    let timing = TimingModel::new(&lib, process.clone());

    // 2. A workload: 8-bit ripple-carry adder mapped onto the library.
    let adder = generators::ripple_carry_adder(8, &lib);
    println!("circuit: {adder}");

    // Use every core: the parallel traversal returns exactly the same
    // result as the sequential one (per-gate choices are independent).
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    for (name, scenario) in [
        ("A (random stats)", Scenario::a()),
        ("B (latched)", Scenario::b()),
    ] {
        let stats = scenario.input_stats(adder.primary_inputs().len(), 7);

        // 3. One traversal picks the best ordering for every gate…
        let best = optimize_parallel(
            &adder,
            &lib,
            &model,
            &stats,
            Objective::MinimizePower,
            threads,
        );
        // …and the worst ordering bounds the technique's headroom.
        let worst = optimize_parallel(
            &adder,
            &lib,
            &model,
            &stats,
            Objective::MaximizePower,
            threads,
        );

        // 4. Validate with the switch-level simulator.
        let sim_cfg = SimConfig {
            duration: 1.0e-3,
            warmup: 1.0e-4,
            seed: 99,
        };
        let p_best = simulate(&best.circuit, &lib, &process, &timing, &stats, &sim_cfg).power;
        let p_worst = simulate(&worst.circuit, &lib, &process, &timing, &stats, &sim_cfg).power;

        let d_orig = critical_path_delay(&adder, &timing);
        let d_best = critical_path_delay(&best.circuit, &timing);

        println!("\nscenario {name}:");
        println!(
            "  model:     best {:.3} µW  worst {:.3} µW  (headroom {:.1}%)",
            best.power_after * 1e6,
            worst.power_after * 1e6,
            100.0 * (worst.power_after - best.power_after) / worst.power_after
        );
        println!(
            "  simulated: best {:.3} µW  worst {:.3} µW  (headroom {:.1}%)",
            p_best * 1e6,
            p_worst * 1e6,
            100.0 * (p_worst - p_best) / p_worst
        );
        println!(
            "  delay:     {:.2} ns → {:.2} ns ({:+.1}%)  gates touched: {}",
            d_orig * 1e9,
            d_best * 1e9,
            100.0 * (d_best - d_orig) / d_orig,
            best.changed_gates
        );
    }
}
