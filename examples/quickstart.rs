//! Quickstart: optimize one circuit end to end.
//!
//! Builds an 8-bit ripple-carry adder and runs the DATE'96 transistor-
//! reordering flow — optimize under both of the paper's input scenarios,
//! measure the best-vs-worst headroom, validate with the switch-level
//! simulator — in one `Flow` invocation per scenario.
//!
//! Run: `cargo run --release --example quickstart`

use transistor_reordering::flow::DurationPolicy;
use transistor_reordering::prelude::*;

fn main() {
    // 1. The substrate: Table 2 cell library + generic 0.8 µm process.
    let env = FlowEnv::new();

    // 2. A workload: 8-bit ripple-carry adder mapped onto the library.
    let adder = generators::ripple_carry_adder(8, &env.library);
    println!("circuit: {adder}");

    // Use every core: the parallel traversal returns exactly the same
    // result as the sequential one (per-gate choices are independent).
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    for (name, scenario) in [
        ("A (random stats)", Scenario::a()),
        ("B (latched)", Scenario::b()),
    ] {
        // 3. One flow: the best ordering for every gate, the worst
        // ordering as the headroom bound, and a simulation of both.
        let report = Flow::from_circuit(adder.clone())
            .scenario(scenario, 7)
            .threads(threads)
            .simulate(SimOptions {
                duration: DurationPolicy::Fixed(1.0e-3),
                warmup_frac: 0.1,
                seed: 99,
                baseline: false,
            })
            .run(&env)
            .expect("in-memory flow");
        let sim = report.sim.as_ref().expect("simulation requested");

        println!("\nscenario {name}:");
        println!(
            "  model:     best {:.3} µW  worst {:.3} µW  (headroom {:.1}%)",
            report.power.model_best_w.expect("headroom pass") * 1e6,
            report.power.model_worst_w.expect("headroom pass") * 1e6,
            report.power.headroom_percent.expect("headroom pass")
        );
        println!(
            "  simulated: best {:.3} µW  worst {:.3} µW  (headroom {:.1}%)",
            sim.optimized_w * 1e6,
            sim.worst_w.expect("worst simulated") * 1e6,
            sim.reduction_percent.expect("worst simulated")
        );
        println!(
            "  delay:     {:.2} ns → {:.2} ns ({:+.1}%)  gates touched: {}",
            report.delay.critical_path_before_s * 1e9,
            report.delay.critical_path_after_s * 1e9,
            report.delay.increase_percent,
            report.changed_gates
        );
    }
}
