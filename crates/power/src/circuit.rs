//! Circuit-level probability/density propagation and power estimation.
//!
//! This is the `OBTAIN_PROBABILITIES` + per-gate information flow of the
//! paper's Fig. 3: net statistics are propagated through gate *functions*
//! (so they are independent of the chosen transistor ordering — the
//! monotonicity lemma of §4.2), then each gate's power is evaluated with
//! the extended model under its currently selected configuration.

use crate::model::{GatePower, PowerModel, Scratch, MAX_CELL_ARITY};
use tr_boolean::{prob, BoolFn, SignalStats, MAX_VARS};
use tr_gatelib::Library;
use tr_netlist::{Circuit, CompiledCircuit};

/// Per-gate and total power of a circuit (W).
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitPower {
    /// Power per gate, indexed like `circuit.gates()`.
    pub per_gate: Vec<GatePower>,
    /// Total power (W).
    pub total: f64,
}

impl CircuitPower {
    /// Total power dissipated at gate output nodes.
    pub fn output_total(&self) -> f64 {
        self.per_gate.iter().map(GatePower::output).sum()
    }

    /// Total power dissipated at internal gate nodes — the part classic
    /// output-only models cannot see.
    pub fn internal_total(&self) -> f64 {
        self.per_gate.iter().map(GatePower::internal).sum()
    }
}

/// Propagates `(P, D)` statistics from the primary inputs to every net
/// using per-gate exact probability and Najm density propagation
/// (independence assumed across gate inputs).
///
/// Returns one [`SignalStats`] per net.
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count, the
/// circuit is cyclic, or a cell is missing from the library.
pub fn propagate(
    circuit: &Circuit,
    library: &Library,
    pi_stats: &[SignalStats],
) -> Vec<SignalStats> {
    assert_eq!(
        pi_stats.len(),
        circuit.primary_inputs().len(),
        "one SignalStats per primary input"
    );
    let mut stats: Vec<SignalStats> = vec![SignalStats::constant(false); circuit.net_count()];
    for (i, &net) in circuit.primary_inputs().iter().enumerate() {
        stats[net.0] = pi_stats[i];
    }
    let order = circuit.topological_order().expect("cyclic circuit");
    for gid in order {
        let gate = circuit.gate(gid);
        let cell = library.cell(&gate.cell).expect("unknown cell");
        let inputs: Vec<SignalStats> = gate.inputs.iter().map(|n| stats[n.0]).collect();
        stats[gate.output.0] = prob::propagate(cell.function(), &inputs);
    }
    stats
}

/// Exact whole-circuit propagation: expresses every net as a global
/// Boolean function of the primary inputs, eliminating the reconvergent-
/// fanout error of [`propagate`]. Only feasible for circuits with at most
/// [`MAX_VARS`] primary inputs; returns `None` above that.
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count or the
/// circuit is cyclic.
pub fn propagate_exact(
    circuit: &Circuit,
    library: &Library,
    pi_stats: &[SignalStats],
) -> Option<Vec<SignalStats>> {
    let n = circuit.primary_inputs().len();
    if n > MAX_VARS {
        return None;
    }
    assert_eq!(pi_stats.len(), n, "one SignalStats per primary input");
    let mut funcs: Vec<BoolFn> = vec![BoolFn::zero(n); circuit.net_count()];
    for (i, &net) in circuit.primary_inputs().iter().enumerate() {
        funcs[net.0] = BoolFn::var(n, i);
    }
    let order = circuit.topological_order().expect("cyclic circuit");
    for gid in order {
        let gate = circuit.gate(gid);
        let cell = library.cell(&gate.cell).expect("unknown cell");
        let subs: Vec<BoolFn> = gate.inputs.iter().map(|i| funcs[i.0].clone()).collect();
        funcs[gate.output.0] = cell.function().compose(&subs);
    }
    Some(funcs.iter().map(|f| prob::propagate(f, pi_stats)).collect())
}

/// External load on every net: the sum of the input capacitances of the
/// gates it drives. (Wire capacitance is part of the gate's own output
/// node model.)
pub fn external_loads(circuit: &Circuit, model: &PowerModel) -> Vec<f64> {
    let mut loads = vec![0.0f64; circuit.net_count()];
    for gate in circuit.gates() {
        for (pin, net) in gate.inputs.iter().enumerate() {
            loads[net.0] += model.input_capacitance(&gate.cell, pin);
        }
    }
    loads
}

/// [`external_loads`] over a compiled view: interned-id capacitance
/// lookups, no per-pin hashing.
pub fn external_loads_compiled(compiled: &CompiledCircuit, model: &PowerModel) -> Vec<f64> {
    let mut loads = vec![0.0f64; compiled.net_count()];
    for gate in compiled.gates() {
        for (pin, net) in compiled.inputs(gate).iter().enumerate() {
            loads[net.0] += model.input_capacitance_by_id(gate.cell, pin);
        }
    }
    loads
}

/// Total circuit power over a compiled view, with per-gate configurations
/// supplied by `config_of` (gate index → configuration).
///
/// This is the optimizer's bookkeeping fast path: it never materializes a
/// [`GatePower`], reuses one [`Scratch`] across all gates, and sums in
/// gate order — bitwise identical to [`circuit_power`]'s total for the
/// same configurations.
///
/// # Panics
///
/// Panics if `net_stats`/`loads` are not net-indexed for this circuit or
/// a configuration is out of range.
pub fn circuit_total_compiled(
    compiled: &CompiledCircuit,
    model: &PowerModel,
    net_stats: &[SignalStats],
    loads: &[f64],
    scratch: &mut Scratch,
    mut config_of: impl FnMut(usize) -> usize,
) -> f64 {
    assert_eq!(
        net_stats.len(),
        compiled.net_count(),
        "one SignalStats per net"
    );
    assert_eq!(loads.len(), compiled.net_count(), "one load per net");
    let mut buf = [SignalStats::constant(false); MAX_CELL_ARITY];
    let mut total = 0.0;
    for (i, gate) in compiled.gates().iter().enumerate() {
        let nets = compiled.inputs(gate);
        for (slot, net) in buf.iter_mut().zip(nets) {
            *slot = net_stats[net.0];
        }
        total += model.total_power_into(
            gate.cell,
            config_of(i),
            &buf[..nets.len()],
            loads[gate.output.0],
            scratch,
        );
    }
    total
}

/// Evaluates the power of every gate under its currently selected
/// configuration, given per-net statistics (from [`propagate`] or
/// [`propagate_exact`]).
///
/// # Panics
///
/// Panics if `net_stats.len()` differs from the net count or a cell is
/// missing from the model.
pub fn circuit_power(
    circuit: &Circuit,
    model: &PowerModel,
    net_stats: &[SignalStats],
) -> CircuitPower {
    assert_eq!(
        net_stats.len(),
        circuit.net_count(),
        "one SignalStats per net"
    );
    let loads = external_loads(circuit, model);
    let mut scratch = Scratch::new();
    let mut buf = [SignalStats::constant(false); MAX_CELL_ARITY];
    let mut per_gate = Vec::with_capacity(circuit.gates().len());
    let mut total = 0.0;
    for gate in circuit.gates() {
        let id = model
            .cell_id(&gate.cell)
            .unwrap_or_else(|| panic!("cell {} not in model", gate.cell));
        for (slot, net) in buf.iter_mut().zip(&gate.inputs) {
            *slot = net_stats[net.0];
        }
        let gp = model.gate_power_by_id(
            id,
            gate.config,
            &buf[..gate.inputs.len()],
            loads[gate.output.0],
            &mut scratch,
        );
        total += gp.total;
        per_gate.push(gp);
    }
    CircuitPower { per_gate, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_gatelib::Process;
    use tr_netlist::{generators, CellKind};

    fn setup() -> (Library, PowerModel) {
        let lib = Library::standard();
        let model = PowerModel::new(&lib, Process::default());
        (lib, model)
    }

    #[test]
    fn propagate_through_inverter_chain() {
        let (lib, _) = setup();
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let (_, n1) = c.add_gate(CellKind::Inv, vec![a], "n1");
        let (_, n2) = c.add_gate(CellKind::Inv, vec![n1], "n2");
        c.mark_output(n2);
        let stats = propagate(&c, &lib, &[SignalStats::new(0.3, 1.0e5)]);
        assert!((stats[n1.0].probability() - 0.7).abs() < 1e-12);
        assert!((stats[n2.0].probability() - 0.3).abs() < 1e-12);
        // Inverters pass density through unchanged.
        assert!((stats[n2.0].density() - 1.0e5).abs() < 1e-6);
    }

    #[test]
    fn carry_chain_density_grows() {
        // The paper's §1.1 ripple-carry motivation: operand bits all have
        // identical statistics, yet carry density grows along the chain.
        let (lib, _) = setup();
        let rca = generators::ripple_carry_adder(8, &lib);
        let pi = vec![SignalStats::new(0.5, 0.5); rca.primary_inputs().len()];
        let stats = propagate(&rca, &lib, &pi);
        // Sum outputs s0..s7: density should be increasing overall.
        let densities: Vec<f64> = (0..8)
            .map(|i| stats[rca.primary_outputs()[i].0].density())
            .collect();
        // Density rises along the chain and saturates at the fixed point
        // of the full-adder density map (≈1.28 for P=0.5, D=0.5 inputs).
        assert!(
            densities[3] > densities[0] * 1.2,
            "carry accumulation missing: {densities:?}"
        );
        assert!(
            densities[7] > densities[0] * 1.2,
            "carry accumulation lost: {densities:?}"
        );
    }

    #[test]
    fn exact_matches_approximate_on_trees() {
        // A fanout-free tree has no reconvergence: both propagations must
        // agree exactly.
        let (lib, _) = setup();
        let mut c = Circuit::new("tree");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let e = c.add_input("e");
        let (_, n1) = c.add_gate(CellKind::Nand(2), vec![a, b], "n1");
        let (_, n2) = c.add_gate(CellKind::Nor(2), vec![d, e], "n2");
        let (_, y) = c.add_gate(CellKind::Nand(2), vec![n1, n2], "y");
        c.mark_output(y);
        let pi = vec![
            SignalStats::new(0.3, 1.0e5),
            SignalStats::new(0.6, 2.0e5),
            SignalStats::new(0.8, 3.0e5),
            SignalStats::new(0.1, 4.0e5),
        ];
        let approx = propagate(&c, &lib, &pi);
        let exact = propagate_exact(&c, &lib, &pi).unwrap();
        for n in 0..c.net_count() {
            assert!(
                (approx[n].probability() - exact[n].probability()).abs() < 1e-9,
                "net {n} probability"
            );
            assert!(
                (approx[n].density() - exact[n].density()).abs() < 1e-3,
                "net {n} density"
            );
        }
    }

    #[test]
    fn exact_diverges_under_reconvergence() {
        // y = NAND(a, a) = ¬a: the approximate model treats the two pins
        // as independent, the exact model knows better.
        let (lib, _) = setup();
        let mut c = Circuit::new("reconv");
        let a = c.add_input("a");
        let (_, y) = c.add_gate(CellKind::Nand(2), vec![a, a], "y");
        c.mark_output(y);
        let pi = vec![SignalStats::new(0.5, 2.0e5)];
        let approx = propagate(&c, &lib, &pi);
        let exact = propagate_exact(&c, &lib, &pi).unwrap();
        // Exact: P(y) = 0.5, D(y) = D(a). Approximate: P(y) = 0.75.
        assert!((exact[y.0].probability() - 0.5).abs() < 1e-12);
        assert!((approx[y.0].probability() - 0.75).abs() < 1e-12);
        assert!((exact[y.0].density() - 2.0e5).abs() < 1e-6);
    }

    #[test]
    fn circuit_power_positive_and_decomposes() {
        let (lib, model) = setup();
        let rca = generators::ripple_carry_adder(4, &lib);
        let pi = vec![SignalStats::new(0.5, 1.0e6); rca.primary_inputs().len()];
        let stats = propagate(&rca, &lib, &pi);
        let power = circuit_power(&rca, &model, &stats);
        assert!(power.total > 0.0);
        assert_eq!(power.per_gate.len(), rca.gates().len());
        let sum: f64 = power.per_gate.iter().map(|g| g.total).sum();
        assert!((sum - power.total).abs() < power.total * 1e-9);
        assert!(
            (power.output_total() + power.internal_total() - power.total).abs()
                < power.total * 1e-9
        );
        // Internal nodes must contribute measurably, else reordering
        // could never matter.
        assert!(power.internal_total() > 0.02 * power.total);
    }

    #[test]
    fn compiled_helpers_match_plain_paths() {
        let (lib, model) = setup();
        let rca = generators::ripple_carry_adder(6, &lib);
        let compiled = CompiledCircuit::compile(&rca, &lib).unwrap();
        let pi = vec![SignalStats::new(0.4, 7.0e5); rca.primary_inputs().len()];
        let stats = propagate(&rca, &lib, &pi);

        let loads = external_loads(&rca, &model);
        let loads_c = external_loads_compiled(&compiled, &model);
        assert_eq!(loads, loads_c);

        let full = circuit_power(&rca, &model, &stats);
        let mut scratch = Scratch::new();
        let total = circuit_total_compiled(&compiled, &model, &stats, &loads, &mut scratch, |i| {
            rca.gates()[i].config
        });
        assert_eq!(full.total, total);
    }

    #[test]
    fn quiescent_circuit_consumes_nothing() {
        let (lib, model) = setup();
        let rca = generators::ripple_carry_adder(4, &lib);
        let pi = vec![SignalStats::constant(true); rca.primary_inputs().len()];
        let stats = propagate(&rca, &lib, &pi);
        let power = circuit_power(&rca, &model, &stats);
        assert_eq!(power.total, 0.0);
    }

    #[test]
    fn external_loads_count_fanout() {
        let (_lib, model) = setup();
        let mut c = Circuit::new("fan");
        let a = c.add_input("a");
        let (_, n1) = c.add_gate(CellKind::Inv, vec![a], "n1");
        let (_, x) = c.add_gate(CellKind::Inv, vec![n1], "x");
        let (_, y) = c.add_gate(CellKind::Inv, vec![n1], "y");
        c.mark_output(x);
        c.mark_output(y);
        let loads = external_loads(&c, &model);
        let inv_in = model.input_capacitance(&CellKind::Inv, 0);
        assert!((loads[n1.0] - 2.0 * inv_in).abs() < 1e-21);
        assert!((loads[a.0] - inv_in).abs() < 1e-21);
        assert_eq!(loads[x.0], 0.0);
    }

    #[test]
    fn exact_refuses_large_circuits() {
        let (lib, _) = setup();
        let rca = generators::ripple_carry_adder(16, &lib); // 33 PIs
        let pi = vec![SignalStats::default(); rca.primary_inputs().len()];
        assert!(propagate_exact(&rca, &lib, &pi).is_none());
    }
}
