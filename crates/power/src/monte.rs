//! Monte Carlo cross-validation of the analytic propagation.
//!
//! [`propagate`](crate::propagate) assumes independence at gate inputs;
//! [`propagate_exact`](crate::propagate_exact) is exact but capped at
//! [`tr_boolean::MAX_VARS`] primary inputs, and
//! [`propagate_exact_bdd`](crate::propagate_exact_bdd) is exact for any
//! input count but needs the circuit's BDDs to fit in memory. This module
//! provides a fourth, assumption-free estimate for any circuit size:
//! sample the stationary input process at discrete steps, evaluate the
//! circuit functionally (zero delay), and count probabilities and
//! transitions. It converges like `1/√N` and is used by tests and
//! EXPERIMENTS.md to bound the independence error of the fast propagation.
//!
//! The estimator runs on a [`CompiledCircuit`]: each time step is one
//! by-id sweep over the resolved gates into a reused value buffer — no
//! cell hashing and no per-step allocation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tr_boolean::govern::{Governor, Interrupted};
use tr_boolean::SignalStats;
use tr_gatelib::Library;
use tr_netlist::CompiledCircuit;

/// Monte Carlo estimate of per-net `(P, D)` statistics.
///
/// The input process is simulated at `steps` discrete time points spaced
/// `dt` apart: each input holds a Markov 0–1 process with per-step flip
/// probabilities `p(0→1) = dt/t₀`, `p(1→0) = dt/t₁` from the requested
/// dwell times. This chain's stationary probability is the requested `P`
/// and its expected flip rate the requested `D` *exactly*; when `dt`
/// would push a probability past 0.5, **both** are scaled down together
/// (an asymmetric clamp would shift the stationary point toward 0.5 —
/// only the clamped input's density then reads low, never its
/// probability). Densities are reported back in transitions per second.
/// Inputs much slower than the simulated span `steps·dt` barely
/// transition during the run: their probability estimates stay unbiased
/// (the process starts in stationarity) but carry high variance.
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count,
/// `steps < 2`, or `dt <= 0`.
pub fn estimate(
    compiled: &CompiledCircuit,
    library: &Library,
    pi_stats: &[SignalStats],
    steps: usize,
    dt: f64,
    seed: u64,
) -> Vec<SignalStats> {
    estimate_governed(compiled, library, pi_stats, steps, dt, seed, None)
        .expect("ungoverned estimate cannot be interrupted")
}

/// [`estimate`] under an optional [`Governor`], checked once per sampled
/// time step (each step is one full-circuit sweep — a natural work
/// unit). An interrupted estimate returns no partial statistics: a
/// truncated sample would be silently biased toward the initial state.
///
/// # Errors
///
/// Returns [`Interrupted`] when the governor trips mid-run.
///
/// # Panics
///
/// As [`estimate`].
pub fn estimate_governed(
    compiled: &CompiledCircuit,
    library: &Library,
    pi_stats: &[SignalStats],
    steps: usize,
    dt: f64,
    seed: u64,
    governor: Option<&Governor>,
) -> Result<Vec<SignalStats>, Interrupted> {
    assert_eq!(
        pi_stats.len(),
        compiled.primary_inputs().len(),
        "one SignalStats per primary input"
    );
    assert!(steps >= 2, "need at least two samples");
    assert!(dt > 0.0, "dt must be positive");
    let mut rng = StdRng::seed_from_u64(seed);

    // Per-input per-step flip probabilities from the dwell times. The
    // stationary point of the (p01, p10) chain is p01/(p01+p10), so any
    // clamping must preserve the ratio: scaling both sides keeps the
    // stationary probability exact and only slows the clamped input's
    // transitions.
    let flip: Vec<Option<(f64, f64)>> = pi_stats
        .iter()
        .map(|s| {
            s.dwell_times().map(|(t0, t1)| {
                let (p01, p10) = (dt / t0, dt / t1);
                let scale = (0.5 / p01.max(p10)).min(1.0);
                (p01 * scale, p10 * scale)
            })
        })
        .collect();

    let mut inputs: Vec<bool> = pi_stats
        .iter()
        .map(|s| rng.gen_bool(s.probability()))
        .collect();
    let mut ones = vec![0u64; compiled.net_count()];
    let mut transitions = vec![0u64; compiled.net_count()];
    let mut prev = vec![false; compiled.net_count()];
    let mut vals = vec![false; compiled.net_count()];
    compiled.evaluate_into(library, &inputs, &mut prev);

    for _ in 1..steps {
        if let Some(g) = governor {
            g.check("monte")?;
        }
        for (i, v) in inputs.iter_mut().enumerate() {
            if let Some((p01, p10)) = flip[i] {
                let p = if *v { p10 } else { p01 };
                if rng.gen_bool(p) {
                    *v = !*v;
                }
            }
        }
        compiled.evaluate_into(library, &inputs, &mut vals);
        for (n, (&now, &before)) in vals.iter().zip(prev.iter()).enumerate() {
            if now {
                ones[n] += 1;
            }
            if now != before {
                transitions[n] += 1;
            }
        }
        std::mem::swap(&mut prev, &mut vals);
    }

    let total_time = (steps - 1) as f64 * dt;
    Ok((0..compiled.net_count())
        .map(|n| {
            let p = ones[n] as f64 / (steps - 1) as f64;
            let d = transitions[n] as f64 / total_time;
            SignalStats::new(p.clamp(0.0, 1.0), d)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate;
    use tr_netlist::generators;

    fn compiled(circuit: &tr_netlist::Circuit, lib: &Library) -> CompiledCircuit {
        CompiledCircuit::compile(circuit, lib).expect("valid circuit")
    }

    #[test]
    fn matches_analytic_on_tree_circuit() {
        // A NAND tree with every net read exactly once is fanout-free, so
        // the independence assumption is exact and Monte Carlo must
        // converge to the analytic values. (A *mapped* XOR parity tree
        // would not do: the XOR expansion itself reconverges.)
        let lib = Library::standard();
        let mut c = tr_netlist::Circuit::new("nandtree");
        let leaves: Vec<_> = (0..8).map(|i| c.add_input(format!("i{i}"))).collect();
        let mut layer = leaves;
        let mut tag = 0;
        while layer.len() > 1 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                let (_, y) = c.add_gate(
                    tr_gatelib::CellKind::Nand(2),
                    vec![pair[0], pair[1]],
                    format!("n{tag}"),
                );
                tag += 1;
                next.push(y);
            }
            layer = next;
        }
        c.mark_output(layer[0]);
        let stats = vec![SignalStats::new(0.5, 1.0e5); 8];
        let analytic = propagate(&c, &lib, &stats);
        // dt small vs dwell times (2·0.5/1e5 = 1e-5 s dwell).
        let mc = estimate(&compiled(&c, &lib), &lib, &stats, 150_000, 2.0e-7, 42);
        for (n, (a, m)) in analytic.iter().zip(&mc).enumerate() {
            assert!(
                (a.probability() - m.probability()).abs() < 0.05,
                "net {n}: P {a} vs {m}"
            );
            let rel = (a.density() - m.density()).abs() / a.density().max(1.0);
            assert!(rel < 0.12, "net {n}: D {} vs {}", a.density(), m.density());
        }
    }

    #[test]
    fn detects_reconvergence_bias() {
        // c17 has reconvergent fanout; Monte Carlo is the ground truth
        // there. The analytic propagation should still be close, but we
        // only assert MC's own sanity here (valid stats, inputs match).
        let lib = Library::standard();
        let c = tr_netlist::map::map_default(&tr_netlist::bench::c17(), &lib);
        let stats = vec![SignalStats::new(0.5, 1.0e5); 5];
        let mc = estimate(&compiled(&c, &lib), &lib, &stats, 30_000, 2.0e-7, 7);
        for (i, &net) in c.primary_inputs().iter().enumerate() {
            assert!((mc[net.0].probability() - 0.5).abs() < 0.05, "input {i}");
            let rel = (mc[net.0].density() - 1.0e5).abs() / 1.0e5;
            assert!(rel < 0.12, "input {i} density {}", mc[net.0].density());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let lib = Library::standard();
        let c = generators::parity_tree(4, &lib);
        let cc = compiled(&c, &lib);
        let stats = vec![SignalStats::new(0.4, 5.0e4); 4];
        let a = estimate(&cc, &lib, &stats, 2_000, 1.0e-6, 3);
        let b = estimate(&cc, &lib, &stats, 2_000, 1.0e-6, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn quiescent_inputs_stay_quiet() {
        let lib = Library::standard();
        let c = generators::parity_tree(4, &lib);
        let stats = vec![SignalStats::constant(true); 4];
        let mc = estimate(&compiled(&c, &lib), &lib, &stats, 1_000, 1.0e-6, 9);
        for s in &mc {
            assert_eq!(s.density(), 0.0);
        }
    }
}
