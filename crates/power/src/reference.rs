//! The naive minterm-walk power evaluator, retained as a test oracle.
//!
//! This module is the pre-compilation implementation of the paper's §3.3
//! model, kept verbatim in spirit: path functions and Boolean differences
//! are built on the fly and every probability is evaluated with the
//! `O(2ⁿ·n)` Parker–McCluskey minterm walk of
//! [`tr_boolean::prob::probability`]. It is deliberately slow and
//! allocation-heavy — its only job is to pin down the semantics the
//! compiled kernel in [`crate::PowerModel`] must reproduce (the proptest
//! suite in `tests/compiled_equivalence.rs` holds them together to 1e-12
//! relative). Do not use it in production paths.

use crate::model::{GatePower, NodePower};
use tr_boolean::{prob, SignalStats};
use tr_gatelib::{Cell, Process};
use tr_spnet::NodeId;

/// Evaluates one gate configuration with the naive evaluator.
///
/// Matches the contract of [`crate::PowerModel::gate_power`], but takes
/// the [`Cell`] directly (no precomputed model) and recomputes every path
/// function per call.
///
/// # Panics
///
/// Panics if `config` is out of range or `inputs` does not match the cell
/// arity.
pub fn gate_power(
    cell: &Cell,
    process: &Process,
    config: usize,
    inputs: &[SignalStats],
    external_load: f64,
) -> GatePower {
    let arity = cell.arity();
    assert_eq!(inputs.len(), arity, "need one SignalStats per cell input");
    let graph = cell.graph(config);
    let probs: Vec<f64> = inputs.iter().map(SignalStats::probability).collect();
    let mut nodes = Vec::new();
    let mut total = 0.0;
    for node in graph.power_nodes() {
        let h = graph.h_function(node);
        let g = graph.g_function(node);
        let ph = prob::probability(&h, &probs);
        let pg = prob::probability(&g, &probs);
        // Stationary charge probability; undriven nodes carry no power.
        let p_node = if ph + pg > 0.0 { ph / (ph + pg) } else { 0.0 };
        let mut density = 0.0;
        for (i, s) in inputs.iter().enumerate() {
            if s.density() == 0.0 {
                continue;
            }
            let dh = h.boolean_difference(i);
            let dg = g.boolean_difference(i);
            let up = if dh.is_zero() {
                0.0
            } else {
                prob::probability(&dh, &probs) * (1.0 - p_node)
            };
            let down = if dg.is_zero() {
                0.0
            } else {
                prob::probability(&dg, &probs) * p_node
            };
            density += (up + down) * s.density();
        }
        let cap = process.node_capacitance(&graph, node, 0.0)
            + if node == NodeId::Output {
                external_load
            } else {
                0.0
            };
        let power = process.switching_power(cap, density);
        total += power;
        nodes.push(NodePower {
            node,
            capacitance: cap,
            probability: p_node,
            density,
            power,
        });
    }
    GatePower { nodes, total }
}

/// Naive-evaluator counterpart of [`crate::PowerModel::best_and_worst`]:
/// exhaustive search over every configuration, ties to the lowest index.
///
/// # Panics
///
/// Panics if `inputs` does not match the cell arity.
pub fn best_and_worst(
    cell: &Cell,
    process: &Process,
    inputs: &[SignalStats],
    external_load: f64,
) -> (usize, usize) {
    let mut best = 0usize;
    let mut worst = 0usize;
    let mut best_p = f64::MAX;
    let mut worst_p = f64::MIN;
    for c in 0..cell.configurations().len() {
        let p = gate_power(cell, process, c, inputs, external_load).total;
        if p < best_p {
            best_p = p;
            best = c;
        }
        if p > worst_p {
            worst_p = p;
            worst = c;
        }
    }
    (best, worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_gatelib::Library;

    #[test]
    fn reference_matches_original_hand_checks() {
        // The same spot checks the compiled model passes: an inverter
        // passes density through and inverts probability.
        let lib = Library::standard();
        let process = Process::default();
        let inv = lib.cell_by_name("inv").unwrap();
        let gp = gate_power(inv, &process, 0, &[SignalStats::new(0.3, 2.0e5)], 0.0);
        assert_eq!(gp.nodes.len(), 1);
        assert!((gp.nodes[0].density - 2.0e5).abs() < 1e-6);
        assert!((gp.nodes[0].probability - 0.7).abs() < 1e-12);
    }

    #[test]
    fn reference_brackets_like_the_model() {
        let lib = Library::standard();
        let process = Process::default();
        let cell = lib.cell_by_name("oai21").unwrap();
        let inputs = [
            SignalStats::new(0.5, 1.0e4),
            SignalStats::new(0.5, 1.0e5),
            SignalStats::new(0.5, 1.0e6),
        ];
        let (best, worst) = best_and_worst(cell, &process, &inputs, 0.0);
        let pb = gate_power(cell, &process, best, &inputs, 0.0).total;
        let pw = gate_power(cell, &process, worst, &inputs, 0.0).total;
        assert!(pw > pb);
    }
}
