//! Selectable probability backends for whole-circuit propagation.
//!
//! Three ways to obtain per-net `(P, D)` statistics, one trade-off axis:
//!
//! | mode | correlation | cost | limit |
//! |------|-------------|------|-------|
//! | [`PropagationMode::Independent`] | assumed independent at every gate | one linear pass | none |
//! | [`PropagationMode::ExactBdd`]    | exact (shared ROBDDs)             | circuit BDD size | *live*-node budget |
//! | [`PropagationMode::PartitionedBdd`] | exact within regions, cut nets assumed independent | Σ region BDD sizes, parallel | per-region node budget |
//! | [`PropagationMode::Monte`]       | exact in the limit (`1/√N`)       | `steps` sweeps   | sampling noise |
//!
//! `Independent` is the paper's own §3 propagation; `ExactBdd` replaces
//! the [`tr_boolean::MAX_VARS`]-capped truth-table `propagate_exact` with BDDs and no
//! input cap; `Monte` is the assumption-free sampling estimate.
//!
//! The BDD backend's node budget bounds the **live** working set, not
//! the allocation total: the mark-and-sweep manager recycles dead
//! composition intermediates, and the density pass never materializes
//! difference BDDs, so a circuit only fails when the reachable per-net
//! BDDs themselves cannot fit ([`tr_bdd::DEFAULT_NODE_LIMIT`] nodes).
//! Every suite circuit — including `rnd_e`'s dense random logic, which
//! used to exhaust the budget with garbage — now completes.

use crate::monte;
use crate::propagate;
use std::fmt;
use tr_bdd::{BddError, BuildOptions, CircuitBddStats, CircuitBdds};
use tr_boolean::govern::Interrupted;
use tr_boolean::SignalStats;
use tr_gatelib::Library;
use tr_netlist::{Circuit, CircuitError, CompiledCircuit};

/// Which backend computes the per-net signal statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PropagationMode {
    /// Gate-local propagation under the input-independence assumption
    /// (the paper's §3; fast, biased on reconvergent fanout).
    #[default]
    Independent,
    /// Exact whole-circuit statistics over shared ROBDDs (`tr-bdd`):
    /// reconvergent correlation handled exactly, no primary-input cap.
    ExactBdd,
    /// Cone-partitioned exact statistics (`tr_power::partition`): one
    /// small BDD engine per fanout-bounded region, cut nets carrying
    /// their upstream `(P, D)` downstream as pseudo-inputs, regions
    /// evaluated in parallel under a dataflow schedule. Exact within
    /// every region; only cross-cut correlation is approximated. This
    /// is the backend that scales past the whole-circuit BDD ceiling.
    PartitionedBdd {
        /// Per-region live-node budget (`0` ⇒ default 8192; `1` ⇒ cut
        /// every net, which reproduces the independent backend).
        max_region_nodes: usize,
        /// Cut width — external inputs per region (`0` ⇒ no cuts,
        /// which is bitwise [`PropagationMode::ExactBdd`]).
        max_cut_width: usize,
    },
    /// Monte Carlo estimate: sample the stationary input process for
    /// `steps` time steps and count probabilities and transitions.
    /// Unbiased but noisy (`1/√steps`, worse for inputs much slower
    /// than the simulated span) — a cross-check, not a precision
    /// backend.
    Monte {
        /// Number of sampled time steps.
        steps: usize,
        /// RNG seed (estimates are deterministic per seed).
        seed: u64,
    },
}

impl PropagationMode {
    /// A Monte Carlo mode with the default step budget (50 000 samples —
    /// probability standard error ≈ 0.002).
    pub fn monte(seed: u64) -> Self {
        PropagationMode::Monte {
            steps: 50_000,
            seed,
        }
    }

    /// The partitioned backend with its default budgets
    /// (8192 live nodes per region, cut width 24).
    pub fn partitioned() -> Self {
        PropagationMode::PartitionedBdd {
            max_region_nodes: crate::partition::DEFAULT_REGION_NODES,
            max_cut_width: crate::partition::DEFAULT_CUT_WIDTH,
        }
    }

    /// The CLI/report spelling (`indep`, `bdd`, `part`, `monte`).
    pub fn as_str(&self) -> &'static str {
        match self {
            PropagationMode::Independent => "indep",
            PropagationMode::ExactBdd => "bdd",
            PropagationMode::PartitionedBdd { .. } => "part",
            PropagationMode::Monte { .. } => "monte",
        }
    }
}

impl fmt::Display for PropagationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Failure of a statistics backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagationError {
    /// The BDD backend exceeded its node budget.
    Bdd(BddError),
    /// The circuit failed to compile against the library.
    Circuit(CircuitError),
    /// A governed backend was cancelled or ran past its deadline
    /// (cooperative — the engine was left consistent). Kept distinct
    /// from [`PropagationError::Bdd`] so callers can tell "this run was
    /// cut short" from "this circuit does not fit".
    Interrupted(Interrupted),
}

impl fmt::Display for PropagationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropagationError::Bdd(e) => write!(f, "exact BDD propagation failed: {e}"),
            PropagationError::Circuit(e) => write!(f, "circuit does not compile: {e}"),
            PropagationError::Interrupted(i) => write!(f, "propagation {i}"),
        }
    }
}

impl std::error::Error for PropagationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PropagationError::Bdd(e) => Some(e),
            PropagationError::Circuit(e) => Some(e),
            PropagationError::Interrupted(i) => Some(i),
        }
    }
}

impl From<BddError> for PropagationError {
    fn from(e: BddError) -> Self {
        match e {
            // Normalize: interruption is a property of the *run*, not of
            // the BDD backend, so it surfaces the same way from every
            // governed backend.
            BddError::Interrupted(i) => PropagationError::Interrupted(*i),
            other => PropagationError::Bdd(other),
        }
    }
}

impl From<Interrupted> for PropagationError {
    fn from(i: Interrupted) -> Self {
        PropagationError::Interrupted(i)
    }
}

impl From<CircuitError> for PropagationError {
    fn from(e: CircuitError) -> Self {
        PropagationError::Circuit(e)
    }
}

/// Per-net statistics under the chosen backend.
///
/// # Errors
///
/// Returns [`PropagationError`] if the circuit does not compile against
/// `library` or the BDD backend blows its node budget.
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count.
pub fn propagate_with_mode(
    circuit: &Circuit,
    library: &Library,
    pi_stats: &[SignalStats],
    mode: PropagationMode,
) -> Result<Vec<SignalStats>, PropagationError> {
    match mode {
        PropagationMode::Independent => Ok(propagate(circuit, library, pi_stats)),
        PropagationMode::ExactBdd => propagate_exact_bdd(circuit, library, pi_stats),
        PropagationMode::PartitionedBdd {
            max_region_nodes,
            max_cut_width,
        } => crate::partition::propagate_partitioned(
            circuit,
            library,
            pi_stats,
            &crate::partition::PartitionConfig::new(max_region_nodes, max_cut_width),
        )
        .map(|(stats, _)| stats),
        PropagationMode::Monte { steps, seed } => {
            let compiled = CompiledCircuit::compile(circuit, library)?;
            Ok(monte::estimate(
                &compiled,
                library,
                pi_stats,
                steps,
                monte_dt(pi_stats),
                seed,
            ))
        }
    }
}

/// The Monte Carlo sample interval: resolve the fastest input's dwell
/// time so no flip probability needs clamping and observed-flip density
/// counting stays exact in expectation (see `monte::estimate`). Inputs
/// much slower than the simulated span `steps·dt` estimate their P with
/// high variance; Monte is a cross-check, not a precision backend.
/// Quiescent inputs (no dwell) make dt arbitrary.
pub(crate) fn monte_dt(pi_stats: &[SignalStats]) -> f64 {
    let min_dwell = pi_stats
        .iter()
        .filter_map(|s| s.dwell_times().map(|(t0, t1)| t0.min(t1)))
        .fold(f64::INFINITY, f64::min);
    if min_dwell.is_finite() {
        0.2 * min_dwell
    } else {
        1.0
    }
}

/// Exact whole-circuit statistics over shared ROBDDs: the successor of
/// [`propagate_exact`](crate::propagate_exact) with no [`tr_boolean::MAX_VARS`] cap.
///
/// # Errors
///
/// As [`propagate_with_mode`].
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count.
pub fn propagate_exact_bdd(
    circuit: &Circuit,
    library: &Library,
    pi_stats: &[SignalStats],
) -> Result<Vec<SignalStats>, PropagationError> {
    propagate_exact_bdd_with_stats(circuit, library, pi_stats).map(|(stats, _)| stats)
}

/// [`propagate_exact_bdd`] also returning the BDD size/cache statistics
/// (reported by EXPERIMENTS.md and the `independence_error` binary).
///
/// # Errors
///
/// As [`propagate_with_mode`].
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count.
pub fn propagate_exact_bdd_with_stats(
    circuit: &Circuit,
    library: &Library,
    pi_stats: &[SignalStats],
) -> Result<(Vec<SignalStats>, CircuitBddStats), PropagationError> {
    let compiled = CompiledCircuit::compile(circuit, library)?;
    let mut bdds = CircuitBdds::build(&compiled, library, BuildOptions::default())?;
    let stats = bdds.exact_stats(pi_stats)?;
    Ok((stats, bdds.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate_exact;
    use tr_netlist::generators;

    #[test]
    fn bdd_matches_truth_table_exact() {
        let lib = Library::standard();
        let c = generators::mux_tree(3, &lib); // 11 inputs ≤ MAX_VARS
        let pi: Vec<SignalStats> = (0..11)
            .map(|i| SignalStats::new(0.05 + 0.08 * i as f64, 1.0e4 * (i + 1) as f64))
            .collect();
        let tt = propagate_exact(&c, &lib, &pi).expect("fits MAX_VARS");
        let bdd = propagate_exact_bdd(&c, &lib, &pi).expect("fits node budget");
        for (n, (a, b)) in tt.iter().zip(&bdd).enumerate() {
            assert!(
                (a.probability() - b.probability()).abs() < 1e-12,
                "net {n}: P {a} vs {b}"
            );
            let rel = (a.density() - b.density()).abs() / a.density().max(1.0);
            assert!(rel < 1e-12, "net {n}: D {a} vs {b}");
        }
    }

    #[test]
    fn modes_dispatch() {
        let lib = Library::standard();
        let c = generators::parity_tree(4, &lib);
        let pi = vec![SignalStats::new(0.5, 1.0e5); 4];
        let indep = propagate_with_mode(&c, &lib, &pi, PropagationMode::Independent).unwrap();
        assert_eq!(indep, propagate(&c, &lib, &pi));
        let bdd = propagate_with_mode(&c, &lib, &pi, PropagationMode::ExactBdd).unwrap();
        assert_eq!(bdd.len(), c.net_count());
        let mc = propagate_with_mode(&c, &lib, &pi, PropagationMode::monte(7)).unwrap();
        assert_eq!(mc.len(), c.net_count());
        // Parity of independent 0.5 inputs is exactly 1/2 — but only the
        // exact backends know it: the mapped XOR expansion reconverges,
        // so the independent backend is merely close.
        let y = c.primary_outputs()[0];
        assert!((bdd[y.0].probability() - 0.5).abs() < 1e-12);
        assert!((mc[y.0].probability() - 0.5).abs() < 0.03);
        assert!((indep[y.0].probability() - 0.5).abs() < 0.2);
    }

    #[test]
    fn monte_preserves_skewed_input_statistics() {
        // Regression: with dt derived from density alone (0.5/max_D), a
        // P = 0.9 input had its 1→0 flip probability clamped at 0.5 but
        // not its 0→1, dragging the simulated probability to ~0.64. The
        // dwell-aware dt must reproduce the requested statistics.
        let lib = Library::standard();
        let mut c = tr_netlist::Circuit::new("skew");
        let a = c.add_input("a");
        let (_, y) = c.add_gate(tr_gatelib::CellKind::Inv, vec![a], "y");
        c.mark_output(y);
        let pi = vec![SignalStats::new(0.9, 1.0e5)];
        let mc = propagate_with_mode(&c, &lib, &pi, PropagationMode::monte(11)).unwrap();
        assert!(
            (mc[a.0].probability() - 0.9).abs() < 0.02,
            "input probability drifted: {}",
            mc[a.0].probability()
        );
        let rel = (mc[a.0].density() - 1.0e5).abs() / 1.0e5;
        assert!(rel < 0.1, "input density drifted: {}", mc[a.0].density());
    }

    #[test]
    fn mode_spellings_round_trip() {
        assert_eq!(PropagationMode::Independent.as_str(), "indep");
        assert_eq!(PropagationMode::ExactBdd.as_str(), "bdd");
        assert_eq!(PropagationMode::partitioned().as_str(), "part");
        assert_eq!(PropagationMode::monte(0).as_str(), "monte");
        assert_eq!(PropagationMode::default(), PropagationMode::Independent);
    }

    #[test]
    fn partitioned_mode_dispatches() {
        let lib = Library::standard();
        let c = generators::array_multiplier(6, &lib);
        let n = c.primary_inputs().len();
        let pi: Vec<SignalStats> = (0..n)
            .map(|i| SignalStats::new(0.2 + 0.05 * i as f64, 1.0e4))
            .collect();
        let exact = propagate_with_mode(&c, &lib, &pi, PropagationMode::ExactBdd).unwrap();
        let part = propagate_with_mode(&c, &lib, &pi, PropagationMode::partitioned()).unwrap();
        assert_eq!(part.len(), c.net_count());
        // Dispatch sanity under the speed-biased defaults: bounded
        // cut-approximation error (the tight |ΔP| ≤ 0.05 accuracy point
        // is pinned in `partition::tests`).
        let max_dp = exact
            .iter()
            .zip(&part)
            .map(|(a, b)| (a.probability() - b.probability()).abs())
            .fold(0.0f64, f64::max);
        assert!(max_dp <= 0.12, "max |ΔP| = {max_dp}");
    }

    #[test]
    fn node_limit_error_propagates() {
        // propagate_exact_bdd uses the default budget; exercise the error
        // path through the lower-level API instead.
        let lib = Library::standard();
        let c = generators::array_multiplier(6, &lib);
        let compiled = CompiledCircuit::compile(&c, &lib).unwrap();
        let err = CircuitBdds::build(
            &compiled,
            &lib,
            tr_bdd::BuildOptions {
                node_limit: 32,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            PropagationError::from(err),
            PropagationError::Bdd(_)
        ));
    }
}
