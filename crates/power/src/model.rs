//! Per-gate power evaluation with a compiled, allocation-free kernel.
//!
//! At construction the model walks every configuration of every library
//! cell and *compiles* each path function `H`/`G` and Boolean difference
//! `∂H/∂xᵢ`/`∂G/∂xᵢ` into a flat multilinear evaluation program: the
//! function is shrunk to its support and its truth table is stored as a
//! dense `f64` leaf block inside one shared arena
//! ([`PowerModel::leaves`]). Evaluation is a Shannon fold over that block
//! (see [`tr_boolean::prob::probability_leaves`]) driven by a caller-owned
//! [`Scratch`] — no heap allocation, no hashing, no truth-table minterm
//! walk in the optimizer's inner loop.
//!
//! Cells are addressed two ways:
//!
//! * by `&CellKind` — the convenient public API ([`PowerModel::gate_power`],
//!   [`PowerModel::best_and_worst`]), one hash probe per call;
//! * by dense [`CellId`] — the hot path ([`PowerModel::total_power_into`],
//!   [`PowerModel::best_and_worst_by_id`]) used with a
//!   `tr_netlist::CompiledCircuit`, pure array indexing.
//!
//! The compiled kernel computes the same quantities as the naive
//! minterm-walk evaluator retained in [`crate::reference`]; the proptest
//! suite in `tests/compiled_equivalence.rs` pins them together to 1e-12
//! relative across every cell × configuration × random statistics.

use std::collections::HashMap;
use tr_boolean::{prob, BoolFn, SignalStats};
use tr_gatelib::{CellId, CellKind, Library, Process};
use tr_spnet::NodeId;

/// Maximum cell arity the compiled kernel supports (`aoi222`/`oai222`).
///
/// [`tr_gatelib::CellKind::is_valid`] already bounds library cells to six
/// inputs; the constant sizes the fixed scratch buffers.
pub const MAX_CELL_ARITY: usize = 6;

/// Length of the Shannon-fold buffer: one slot per minterm at max arity.
const FOLD_LEN: usize = 1 << MAX_CELL_ARITY;

/// Sentinel offset marking a constant-0 function (no leaf block).
const ZERO_FN: u32 = u32::MAX;

/// A compiled Boolean function: a leaf block in the shared arena plus the
/// support variables (cell-input indices) its fold consumes.
#[derive(Debug, Clone, Copy)]
struct CompiledFn {
    /// Offset of the `2^k` leaf block, or [`ZERO_FN`] for constant 0.
    off: u32,
    /// Support size; the leaf block has `1 << k` entries.
    k: u8,
    /// The support variables, in fold order (`vars[..k]` are valid).
    vars: [u8; MAX_CELL_ARITY],
}

impl CompiledFn {
    const ZERO: CompiledFn = CompiledFn {
        off: ZERO_FN,
        k: 0,
        vars: [0; MAX_CELL_ARITY],
    };

    /// Shrinks `f` to its support and appends its leaf table to the arena,
    /// deduplicating identical functions (the same Boolean difference
    /// recurs across nodes and configurations) via `interned`.
    fn compile(
        f: &BoolFn,
        arena: &mut Vec<f64>,
        interned: &mut HashMap<BoolFn, CompiledFn>,
    ) -> Self {
        if f.is_zero() {
            return CompiledFn::ZERO;
        }
        if let Some(&cf) = interned.get(f) {
            return cf;
        }
        let support = f.support();
        assert!(support.len() <= MAX_CELL_ARITY, "cell arity over the limit");
        let proj = f.project_onto(&support);
        let off = u32::try_from(arena.len()).expect("leaf arena fits in u32");
        arena.extend(prob::leaf_table(&proj));
        let mut vars = [0u8; MAX_CELL_ARITY];
        for (j, &v) in support.iter().enumerate() {
            vars[j] = v as u8;
        }
        let cf = CompiledFn {
            off,
            k: support.len() as u8,
            vars,
        };
        interned.insert(f.clone(), cf);
        cf
    }

    /// Probability of the function under independent input probabilities.
    ///
    /// A specialized copy of the Shannon fold of
    /// [`tr_boolean::prob::probability_leaves`]: the first level reads
    /// the shared arena directly and variables are gathered through the
    /// support permutation in `vars`. Any change here must preserve the
    /// fold semantics of that reference (the equivalence suite in
    /// `tests/compiled_equivalence.rs` enforces it against the naive
    /// evaluator).
    #[inline]
    fn eval(
        &self,
        arena: &[f64],
        probs: &[f64; MAX_CELL_ARITY],
        fold: &mut [f64; FOLD_LEN],
    ) -> f64 {
        if self.off == ZERO_FN {
            return 0.0;
        }
        let k = self.k as usize;
        let start = self.off as usize;
        if k == 0 {
            // Non-zero with empty support: constant 1 (one-entry table).
            return arena[start];
        }
        // First fold level reads the arena directly, eliminating both a
        // leaf copy and one pass over the scratch buffer.
        let table = &arena[start..start + (1 << k)];
        let mut width = 1usize << (k - 1);
        let p0 = probs[self.vars[0] as usize];
        for i in 0..width {
            let lo = table[2 * i];
            let hi = table[2 * i + 1];
            fold[i] = lo + p0 * (hi - lo);
        }
        for j in 1..k {
            let p = probs[self.vars[j] as usize];
            width >>= 1;
            for i in 0..width {
                let lo = fold[2 * i];
                let hi = fold[2 * i + 1];
                fold[i] = lo + p * (hi - lo);
            }
        }
        fold[0]
    }
}

/// The pair of Boolean differences `(∂H/∂xᵢ, ∂G/∂xᵢ)` of one node with
/// respect to one input.
#[derive(Debug, Clone, Copy)]
struct DiffPair {
    dh: CompiledFn,
    dg: CompiledFn,
    /// Whether the two differences are the same function. Always true at
    /// the output node (`G = ¬H`, and `∂¬f/∂x = ∂f/∂x`); the kernel then
    /// evaluates the shared table once and reuses the value for both the
    /// charge and discharge terms.
    equal: bool,
}

/// Compiled analysis of one node of one gate configuration.
#[derive(Debug, Clone)]
struct CompiledNode {
    node: NodeId,
    /// Capacitance excluding any external load (F).
    cap: f64,
    h: CompiledFn,
    g: CompiledFn,
    /// `(∂H/∂xᵢ, ∂G/∂xᵢ)` for every cell input `i`.
    diffs: Vec<DiffPair>,
}

/// Compiled analysis of one gate configuration.
#[derive(Debug, Clone)]
struct ConfigTables {
    nodes: Vec<CompiledNode>,
}

/// All compiled data of one cell, indexed by [`CellId`].
#[derive(Debug, Clone)]
struct CellTables {
    arity: usize,
    input_caps: Vec<f64>,
    configs: Vec<ConfigTables>,
}

/// Reusable working storage for the compiled kernel.
///
/// One `Scratch` per thread is enough; the optimizer traversals allocate
/// one up front and reuse it for every gate and configuration, making the
/// inner loop allocation-free.
#[derive(Debug, Clone)]
pub struct Scratch {
    probs: [f64; MAX_CELL_ARITY],
    dens: [f64; MAX_CELL_ARITY],
    fold: [f64; FOLD_LEN],
}

impl Scratch {
    /// Creates zeroed working storage.
    pub fn new() -> Self {
        Scratch {
            probs: [0.0; MAX_CELL_ARITY],
            dens: [0.0; MAX_CELL_ARITY],
            fold: [0.0; FOLD_LEN],
        }
    }

    /// Loads per-input probabilities and densities from signal statistics.
    #[inline]
    fn load(&mut self, inputs: &[SignalStats]) {
        assert!(inputs.len() <= MAX_CELL_ARITY, "too many gate inputs");
        for (i, s) in inputs.iter().enumerate() {
            self.probs[i] = s.probability();
            self.dens[i] = s.density();
        }
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Power contribution of a single gate node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePower {
    /// Which node.
    pub node: NodeId,
    /// Node capacitance including external load if it is the output (F).
    pub capacitance: f64,
    /// Equilibrium probability `P(n)`.
    pub probability: f64,
    /// Transition density `D(n)` (transitions per time unit).
    pub density: f64,
    /// Average switching power `½·C·Vdd²·D` (W).
    pub power: f64,
}

/// Power breakdown of one gate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct GatePower {
    /// Per-node contributions; index 0 is the output node.
    pub nodes: Vec<NodePower>,
    /// Total gate power (W).
    pub total: f64,
}

impl GatePower {
    /// Power dissipated in internal nodes only (everything but index 0).
    pub fn internal(&self) -> f64 {
        self.nodes.iter().skip(1).map(|n| n.power).sum()
    }

    /// Power dissipated at the output node.
    pub fn output(&self) -> f64 {
        self.nodes.first().map_or(0.0, |n| n.power)
    }
}

/// The paper's power model over a cell library, in compiled form.
///
/// Immutable after construction (and therefore `Sync`): all path
/// functions, Boolean differences and node capacitances for every
/// configuration of every cell are compiled eagerly into flat leaf
/// tables. [`CellId`]s from the library the model was built from resolve
/// directly (the model shares the library's cell order).
#[derive(Debug, Clone)]
pub struct PowerModel {
    process: Process,
    cells: Vec<CellTables>,
    index: HashMap<CellKind, usize>,
    /// The shared leaf arena every [`CompiledFn`] points into.
    leaves: Vec<f64>,
}

impl PowerModel {
    /// Compiles tables for every configuration of every library cell.
    pub fn new(library: &Library, process: Process) -> Self {
        let mut cells = Vec::with_capacity(library.cells().len());
        let mut index = HashMap::new();
        let mut leaves = Vec::new();
        let mut interned = HashMap::new();
        for cell in library.cells() {
            let arity = cell.arity();
            assert!(arity <= MAX_CELL_ARITY, "cell arity over the limit");
            let mut configs = Vec::with_capacity(cell.configurations().len());
            for ci in 0..cell.configurations().len() {
                let graph = cell.graph(ci);
                let mut nodes = Vec::new();
                for node in graph.power_nodes() {
                    let h = graph.h_function(node);
                    let g = graph.g_function(node);
                    let diffs = (0..arity)
                        .map(|i| {
                            let dh = h.boolean_difference(i);
                            let dg = g.boolean_difference(i);
                            DiffPair {
                                equal: dh == dg,
                                dh: CompiledFn::compile(&dh, &mut leaves, &mut interned),
                                dg: CompiledFn::compile(&dg, &mut leaves, &mut interned),
                            }
                        })
                        .collect();
                    nodes.push(CompiledNode {
                        node,
                        cap: process.node_capacitance(&graph, node, 0.0),
                        h: CompiledFn::compile(&h, &mut leaves, &mut interned),
                        g: CompiledFn::compile(&g, &mut leaves, &mut interned),
                        diffs,
                    });
                }
                configs.push(ConfigTables { nodes });
            }
            let graph = cell.default_graph();
            let input_caps: Vec<f64> = (0..arity)
                .map(|i| process.input_capacitance(graph, i))
                .collect();
            index.insert(cell.kind().clone(), cells.len());
            cells.push(CellTables {
                arity,
                input_caps,
                configs,
            });
        }
        PowerModel {
            process,
            cells,
            index,
            leaves,
        }
    }

    /// The process parameters in use.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Interns a kind into the dense id the by-id fast paths take.
    ///
    /// Equals the [`Library::cell_id`] of the library the model was built
    /// from.
    pub fn cell_id(&self, cell: &CellKind) -> Option<CellId> {
        self.index.get(cell).copied().map(CellId)
    }

    /// Number of inputs of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the model's library.
    pub fn arity(&self, cell: CellId) -> usize {
        self.cells[cell.0].arity
    }

    /// Number of reordering configurations of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for the model's library.
    pub fn n_configs(&self, cell: CellId) -> usize {
        self.cells[cell.0].configs.len()
    }

    /// Capacitance a cell input presents to its driving net.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not in the model's library or `input` is out
    /// of range.
    pub fn input_capacitance(&self, cell: &CellKind, input: usize) -> f64 {
        let id = self
            .cell_id(cell)
            .unwrap_or_else(|| panic!("cell {cell} not in model"));
        self.cells[id.0].input_caps[input]
    }

    /// By-id variant of [`PowerModel::input_capacitance`].
    ///
    /// # Panics
    ///
    /// Panics if the id or `input` is out of range.
    pub fn input_capacitance_by_id(&self, cell: CellId, input: usize) -> f64 {
        self.cells[cell.0].input_caps[input]
    }

    fn resolve(&self, cell: &CellKind) -> CellId {
        self.cell_id(cell)
            .unwrap_or_else(|| panic!("cell {cell} not in model"))
    }

    /// Evaluates the power of one gate configuration.
    ///
    /// `inputs` are the `(P, D)` statistics of the gate's input nets;
    /// `external_load` is the capacitance hanging on the output net
    /// (fanout gate inputs plus any wire estimate).
    ///
    /// # Panics
    ///
    /// Panics if the `(cell, config)` pair is unknown or `inputs` does not
    /// match the cell arity.
    pub fn gate_power(
        &self,
        cell: &CellKind,
        config: usize,
        inputs: &[SignalStats],
        external_load: f64,
    ) -> GatePower {
        let id = self.resolve(cell);
        let mut scratch = Scratch::new();
        self.gate_power_by_id(id, config, inputs, external_load, &mut scratch)
    }

    /// By-id variant of [`PowerModel::gate_power`], reusing caller scratch.
    ///
    /// # Panics
    ///
    /// Panics if the id or `config` is out of range or `inputs` does not
    /// match the cell arity.
    pub fn gate_power_by_id(
        &self,
        cell: CellId,
        config: usize,
        inputs: &[SignalStats],
        external_load: f64,
        scratch: &mut Scratch,
    ) -> GatePower {
        let tables = &self.cells[cell.0];
        assert_eq!(
            inputs.len(),
            tables.arity,
            "need one SignalStats per cell input"
        );
        scratch.load(inputs);
        let cfg = &tables.configs[config];
        let mut nodes = Vec::with_capacity(cfg.nodes.len());
        let mut total = 0.0;
        for cn in &cfg.nodes {
            let (probability, density) = self.node_stats(cn, tables.arity, scratch);
            let cap = if cn.node == NodeId::Output {
                cn.cap + external_load
            } else {
                cn.cap
            };
            let power = self.process.switching_power(cap, density);
            total += power;
            nodes.push(NodePower {
                node: cn.node,
                capacitance: cap,
                probability,
                density,
                power,
            });
        }
        GatePower { nodes, total }
    }

    /// Total power of one gate configuration — the allocation-free fast
    /// path of the optimizer's inner loop. Equivalent to
    /// `gate_power_by_id(..).total` without materializing a [`GatePower`].
    ///
    /// # Panics
    ///
    /// Panics if the id or `config` is out of range or `inputs` does not
    /// match the cell arity.
    pub fn total_power_into(
        &self,
        cell: CellId,
        config: usize,
        inputs: &[SignalStats],
        external_load: f64,
        scratch: &mut Scratch,
    ) -> f64 {
        let tables = &self.cells[cell.0];
        assert_eq!(
            inputs.len(),
            tables.arity,
            "need one SignalStats per cell input"
        );
        scratch.load(inputs);
        self.total_power_loaded(tables, config, external_load, scratch)
    }

    /// Inner total: assumes `scratch.probs`/`scratch.dens` already loaded.
    #[inline]
    fn total_power_loaded(
        &self,
        tables: &CellTables,
        config: usize,
        external_load: f64,
        scratch: &mut Scratch,
    ) -> f64 {
        let mut total = 0.0;
        for cn in &tables.configs[config].nodes {
            let (_, density) = self.node_stats(cn, tables.arity, scratch);
            let cap = if cn.node == NodeId::Output {
                cn.cap + external_load
            } else {
                cn.cap
            };
            total += self.process.switching_power(cap, density);
        }
        total
    }

    /// Equilibrium probability and transition density of one node.
    #[inline]
    fn node_stats(&self, cn: &CompiledNode, arity: usize, scratch: &mut Scratch) -> (f64, f64) {
        debug_assert_eq!(cn.diffs.len(), arity);
        let probs = scratch.probs;
        let dens = scratch.dens;
        let ph = cn.h.eval(&self.leaves, &probs, &mut scratch.fold);
        let pg = cn.g.eval(&self.leaves, &probs, &mut scratch.fold);
        // Stationary charge probability; undriven nodes carry no power.
        let p_node = if ph + pg > 0.0 { ph / (ph + pg) } else { 0.0 };
        let mut density = 0.0;
        for (i, pair) in cn.diffs.iter().enumerate() {
            let d = dens[i];
            if d == 0.0 {
                continue;
            }
            let (up, down) = if pair.equal {
                // One eval feeds both terms; the arithmetic below is
                // bitwise what two identical evals would produce.
                if pair.dh.off == ZERO_FN {
                    (0.0, 0.0)
                } else {
                    let e = pair.dh.eval(&self.leaves, &probs, &mut scratch.fold);
                    (e * (1.0 - p_node), e * p_node)
                }
            } else {
                let up = if pair.dh.off == ZERO_FN {
                    0.0
                } else {
                    pair.dh.eval(&self.leaves, &probs, &mut scratch.fold) * (1.0 - p_node)
                };
                let down = if pair.dg.off == ZERO_FN {
                    0.0
                } else {
                    pair.dg.eval(&self.leaves, &probs, &mut scratch.fold) * p_node
                };
                (up, down)
            };
            density += (up + down) * d;
        }
        (p_node, density)
    }

    /// Evaluates every configuration of a cell and returns
    /// `(best_config, worst_config)` by total power (`FIND_BEST_REORDERING`
    /// of Fig. 3, plus the worst case used by Table 3's methodology).
    ///
    /// The model knows every cell's configuration count, so the search is
    /// always exhaustive. Ties resolve to the lowest configuration index,
    /// making the optimizer deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the cell is unknown to the library/model or `inputs` does
    /// not match the cell arity.
    pub fn best_and_worst(
        &self,
        cell: &CellKind,
        inputs: &[SignalStats],
        external_load: f64,
    ) -> (usize, usize) {
        let id = self.resolve(cell);
        let mut scratch = Scratch::new();
        self.best_and_worst_by_id(id, inputs, external_load, &mut scratch)
    }

    /// By-id variant of [`PowerModel::best_and_worst`], reusing caller
    /// scratch — the Fig. 3 inner loop of the compiled optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or `inputs` does not match the
    /// cell arity.
    pub fn best_and_worst_by_id(
        &self,
        cell: CellId,
        inputs: &[SignalStats],
        external_load: f64,
        scratch: &mut Scratch,
    ) -> (usize, usize) {
        let tables = &self.cells[cell.0];
        assert_eq!(
            inputs.len(),
            tables.arity,
            "need one SignalStats per cell input"
        );
        scratch.load(inputs);
        let mut best = 0usize;
        let mut worst = 0usize;
        let mut best_p = f64::MAX;
        let mut worst_p = f64::MIN;
        for c in 0..tables.configs.len() {
            let p = self.total_power_loaded(tables, c, external_load, scratch);
            if p < best_p {
                best_p = p;
                best = c;
            }
            if p > worst_p {
                worst_p = p;
                worst = c;
            }
        }
        (best, worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::new(&Library::standard(), Process::default())
    }

    fn stats(p: f64, d: f64) -> SignalStats {
        SignalStats::new(p, d)
    }

    #[test]
    fn inverter_output_density_is_input_density() {
        let m = model();
        let gp = m.gate_power(&CellKind::Inv, 0, &[stats(0.3, 2.0e5)], 0.0);
        assert_eq!(gp.nodes.len(), 1); // no internal nodes
        assert!((gp.nodes[0].density - 2.0e5).abs() < 1e-6);
        // P(y) = 1 - 0.3
        assert!((gp.nodes[0].probability - 0.7).abs() < 1e-12);
        assert!(gp.total > 0.0);
    }

    #[test]
    fn output_node_density_matches_najm() {
        // For the output node the weighted H/G formula must collapse to
        // D(y) = Σ P(∂y/∂xᵢ)·D(xᵢ).
        let m = model();
        let lib = Library::standard();
        let inputs = [stats(0.3, 1.0e5), stats(0.7, 5.0e5), stats(0.5, 2.0e5)];
        for name in ["nand3", "nor3", "aoi21", "oai21"] {
            let cell = lib.cell_by_name(name).unwrap();
            for c in 0..cell.configurations().len() {
                let gp = m.gate_power(cell.kind(), c, &inputs, 0.0);
                let najm = prob::density(cell.function(), &inputs);
                assert!(
                    (gp.nodes[0].density - najm).abs() < 1e-9,
                    "{name} config {c}: {} vs {najm}",
                    gp.nodes[0].density
                );
            }
        }
    }

    #[test]
    fn output_stats_invariant_under_reordering() {
        // §4.2 monotonicity lemma precondition: reordering changes only
        // internal nodes.
        let m = model();
        let lib = Library::standard();
        let cell = lib.cell_by_name("oai221").unwrap();
        let inputs = [
            stats(0.2, 1.0e5),
            stats(0.8, 2.0e5),
            stats(0.4, 9.0e5),
            stats(0.6, 3.0e5),
            stats(0.5, 5.0e5),
        ];
        let reference = m.gate_power(cell.kind(), 0, &inputs, 0.0);
        for c in 1..cell.configurations().len() {
            let gp = m.gate_power(cell.kind(), c, &inputs, 0.0);
            // P and D at the output are what downstream gates see; they
            // must not depend on the ordering. (The output *capacitance*
            // legitimately varies — reordering moves diffusion terminals —
            // but that is a local effect the per-gate optimizer accounts
            // for.)
            assert!((gp.nodes[0].density - reference.nodes[0].density).abs() < 1e-9);
            assert!((gp.nodes[0].probability - reference.nodes[0].probability).abs() < 1e-12);
        }
    }

    #[test]
    fn reordering_changes_internal_power() {
        let m = model();
        let lib = Library::standard();
        let cell = lib.cell_by_name("nand3").unwrap();
        // Strongly asymmetric activity makes ordering matter.
        let inputs = [stats(0.5, 1.0e6), stats(0.5, 1.0e4), stats(0.5, 1.0e4)];
        let powers: Vec<f64> = (0..cell.configurations().len())
            .map(|c| m.gate_power(cell.kind(), c, &inputs, 0.0).internal())
            .collect();
        let min = powers.iter().cloned().fold(f64::MAX, f64::min);
        let max = powers.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min * 1.05, "expected >5% spread, got {powers:?}");
    }

    #[test]
    fn best_and_worst_bracket_all_configs() {
        let m = model();
        let lib = Library::standard();
        let cell = lib.cell_by_name("oai21").unwrap();
        let inputs = [stats(0.5, 1.0e4), stats(0.5, 1.0e5), stats(0.5, 1.0e6)];
        let n = cell.configurations().len();
        let (best, worst) = m.best_and_worst(cell.kind(), &inputs, 0.0);
        let pb = m.gate_power(cell.kind(), best, &inputs, 0.0).total;
        let pw = m.gate_power(cell.kind(), worst, &inputs, 0.0).total;
        for c in 0..n {
            let p = m.gate_power(cell.kind(), c, &inputs, 0.0).total;
            assert!(p >= pb - 1e-18 && p <= pw + 1e-18);
        }
        assert!(pw > pb);
    }

    #[test]
    fn by_id_paths_match_by_kind() {
        let m = model();
        let lib = Library::standard();
        let mut scratch = Scratch::new();
        let inputs = [
            stats(0.2, 3.0e5),
            stats(0.9, 8.0e5),
            stats(0.4, 1.0e5),
            stats(0.6, 6.0e5),
            stats(0.3, 2.0e5),
            stats(0.7, 4.0e5),
        ];
        for cell in lib.cells() {
            let id = m.cell_id(cell.kind()).unwrap();
            assert_eq!(id, lib.cell_id(cell.kind()).unwrap());
            assert_eq!(m.arity(id), cell.arity());
            assert_eq!(m.n_configs(id), cell.configurations().len());
            let ins = &inputs[..cell.arity()];
            for c in 0..cell.configurations().len() {
                let a = m.gate_power(cell.kind(), c, ins, 3.0e-15);
                let b = m.gate_power_by_id(id, c, ins, 3.0e-15, &mut scratch);
                assert_eq!(a, b, "{} config {c}", cell.name());
                let t = m.total_power_into(id, c, ins, 3.0e-15, &mut scratch);
                assert_eq!(a.total, t, "{} config {c} total", cell.name());
            }
            let bw_kind = m.best_and_worst(cell.kind(), ins, 3.0e-15);
            let bw_id = m.best_and_worst_by_id(id, ins, 3.0e-15, &mut scratch);
            assert_eq!(bw_kind, bw_id, "{}", cell.name());
        }
    }

    #[test]
    fn quiescent_inputs_give_zero_power() {
        let m = model();
        let gp = m.gate_power(
            &CellKind::Nand(2),
            0,
            &[SignalStats::constant(true), SignalStats::constant(false)],
            0.0,
        );
        assert_eq!(gp.total, 0.0);
    }

    #[test]
    fn external_load_increases_output_power_only() {
        let m = model();
        let inputs = [stats(0.5, 1.0e5), stats(0.5, 1.0e5)];
        let a = m.gate_power(&CellKind::Nand(2), 0, &inputs, 0.0);
        let b = m.gate_power(&CellKind::Nand(2), 0, &inputs, 10.0e-15);
        assert!(b.output() > a.output());
        assert!((b.internal() - a.internal()).abs() < 1e-18);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let m = model();
        let lib = Library::standard();
        let inputs: Vec<SignalStats> = (0..6)
            .map(|i| stats(0.1 + 0.15 * i as f64, 1.0e5 * (i + 1) as f64))
            .collect();
        for cell in lib.cells() {
            let cfg_inputs = &inputs[..cell.arity()];
            for c in 0..cell.configurations().len() {
                let gp = m.gate_power(cell.kind(), c, cfg_inputs, 0.0);
                for n in &gp.nodes {
                    assert!((0.0..=1.0).contains(&n.probability), "{}", cell.name());
                    assert!(n.density >= 0.0);
                    assert!(n.power >= 0.0);
                }
            }
        }
    }

    #[test]
    fn input_capacitance_lookup() {
        let m = model();
        let c = m.input_capacitance(&CellKind::Inv, 0);
        assert!(c > 0.0);
        // aoi221 input 0 drives one N and one P device, same as inv.
        let c2 = m.input_capacitance(&CellKind::aoi(&[2, 2, 1]), 0);
        assert!((c - c2).abs() < 1e-21);
        // The by-id lookup resolves to the same constant.
        let id = m.cell_id(&CellKind::Inv).unwrap();
        assert_eq!(m.input_capacitance_by_id(id, 0), c);
    }
}
