//! Per-gate power evaluation with precomputed path-function tables.

use std::collections::HashMap;
use tr_boolean::{prob, BoolFn, SignalStats};
use tr_gatelib::{CellKind, Library, Process};
use tr_spnet::NodeId;

/// Precomputed analysis of one node of one gate configuration.
#[derive(Debug, Clone)]
struct NodeTables {
    node: NodeId,
    /// Capacitance excluding any external load (F).
    cap: f64,
    h: BoolFn,
    g: BoolFn,
    /// `∂H/∂xᵢ` for every cell input `i`.
    dh: Vec<BoolFn>,
    /// `∂G/∂xᵢ` for every cell input `i`.
    dg: Vec<BoolFn>,
}

/// Precomputed analysis of one gate configuration.
#[derive(Debug, Clone)]
struct ConfigTables {
    nodes: Vec<NodeTables>,
}

/// Power contribution of a single gate node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePower {
    /// Which node.
    pub node: NodeId,
    /// Node capacitance including external load if it is the output (F).
    pub capacitance: f64,
    /// Equilibrium probability `P(n)`.
    pub probability: f64,
    /// Transition density `D(n)` (transitions per time unit).
    pub density: f64,
    /// Average switching power `½·C·Vdd²·D` (W).
    pub power: f64,
}

/// Power breakdown of one gate evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct GatePower {
    /// Per-node contributions; index 0 is the output node.
    pub nodes: Vec<NodePower>,
    /// Total gate power (W).
    pub total: f64,
}

impl GatePower {
    /// Power dissipated in internal nodes only (everything but index 0).
    pub fn internal(&self) -> f64 {
        self.nodes.iter().skip(1).map(|n| n.power).sum()
    }

    /// Power dissipated at the output node.
    pub fn output(&self) -> f64 {
        self.nodes.first().map_or(0.0, |n| n.power)
    }
}

/// The paper's power model over a cell library.
///
/// Immutable after construction (and therefore `Sync`): all path
/// functions, Boolean differences and node capacitances for every
/// configuration of every cell are computed eagerly.
#[derive(Debug, Clone)]
pub struct PowerModel {
    process: Process,
    tables: HashMap<(CellKind, usize), ConfigTables>,
    input_caps: HashMap<CellKind, Vec<f64>>,
}

impl PowerModel {
    /// Precomputes tables for every configuration of every library cell.
    pub fn new(library: &Library, process: Process) -> Self {
        let mut tables = HashMap::new();
        let mut input_caps = HashMap::new();
        for cell in library.cells() {
            let arity = cell.arity();
            for (ci, _) in cell.configurations().iter().enumerate() {
                let graph = cell.graph(ci);
                let mut nodes = Vec::new();
                for node in graph.power_nodes() {
                    let h = graph.h_function(node);
                    let g = graph.g_function(node);
                    let dh = (0..arity).map(|i| h.boolean_difference(i)).collect();
                    let dg = (0..arity).map(|i| g.boolean_difference(i)).collect();
                    nodes.push(NodeTables {
                        node,
                        cap: process.node_capacitance(&graph, node, 0.0),
                        h,
                        g,
                        dh,
                        dg,
                    });
                }
                tables.insert((cell.kind().clone(), ci), ConfigTables { nodes });
            }
            let graph = cell.default_graph();
            let caps: Vec<f64> = (0..arity)
                .map(|i| process.input_capacitance(graph, i))
                .collect();
            input_caps.insert(cell.kind().clone(), caps);
        }
        PowerModel {
            process,
            tables,
            input_caps,
        }
    }

    /// The process parameters in use.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Capacitance a cell input presents to its driving net.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not in the model's library or `input` is out
    /// of range.
    pub fn input_capacitance(&self, cell: &CellKind, input: usize) -> f64 {
        self.input_caps
            .get(cell)
            .unwrap_or_else(|| panic!("cell {cell} not in model"))[input]
    }

    /// Evaluates the power of one gate configuration.
    ///
    /// `inputs` are the `(P, D)` statistics of the gate's input nets;
    /// `external_load` is the capacitance hanging on the output net
    /// (fanout gate inputs plus any wire estimate).
    ///
    /// # Panics
    ///
    /// Panics if the `(cell, config)` pair is unknown or `inputs` does not
    /// match the cell arity.
    pub fn gate_power(
        &self,
        cell: &CellKind,
        config: usize,
        inputs: &[SignalStats],
        external_load: f64,
    ) -> GatePower {
        let tables = self
            .tables
            .get(&(cell.clone(), config))
            .unwrap_or_else(|| panic!("unknown cell/config {cell}/{config}"));
        let probs: Vec<f64> = inputs.iter().map(SignalStats::probability).collect();
        assert_eq!(
            probs.len(),
            cell.arity(),
            "need one SignalStats per cell input"
        );
        let mut nodes = Vec::with_capacity(tables.nodes.len());
        let mut total = 0.0;
        for nt in &tables.nodes {
            let ph = prob::probability(&nt.h, &probs);
            let pg = prob::probability(&nt.g, &probs);
            // Stationary charge probability; undriven nodes carry no power.
            let p_node = if ph + pg > 0.0 { ph / (ph + pg) } else { 0.0 };
            let mut density = 0.0;
            for (i, s) in inputs.iter().enumerate() {
                if s.density() == 0.0 {
                    continue;
                }
                let up = if nt.dh[i].is_zero() {
                    0.0
                } else {
                    prob::probability(&nt.dh[i], &probs) * (1.0 - p_node)
                };
                let down = if nt.dg[i].is_zero() {
                    0.0
                } else {
                    prob::probability(&nt.dg[i], &probs) * p_node
                };
                density += (up + down) * s.density();
            }
            let cap = if nt.node == NodeId::Output {
                nt.cap + external_load
            } else {
                nt.cap
            };
            let power = self.process.switching_power(cap, density);
            total += power;
            nodes.push(NodePower {
                node: nt.node,
                capacitance: cap,
                probability: p_node,
                density,
                power,
            });
        }
        GatePower { nodes, total }
    }

    /// Evaluates every configuration of a cell and returns
    /// `(best_config, worst_config)` by total power (`FIND_BEST_REORDERING`
    /// of Fig. 3, plus the worst case used by Table 3's methodology).
    ///
    /// Ties resolve to the lowest configuration index, making the
    /// optimizer deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the cell is unknown to the library/model.
    pub fn best_and_worst(
        &self,
        cell: &CellKind,
        n_configs: usize,
        inputs: &[SignalStats],
        external_load: f64,
    ) -> (usize, usize) {
        assert!(n_configs > 0, "cells have at least one configuration");
        let mut best = 0usize;
        let mut worst = 0usize;
        let mut best_p = f64::MAX;
        let mut worst_p = f64::MIN;
        for c in 0..n_configs {
            let p = self.gate_power(cell, c, inputs, external_load).total;
            if p < best_p {
                best_p = p;
                best = c;
            }
            if p > worst_p {
                worst_p = p;
                worst = c;
            }
        }
        (best, worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::new(&Library::standard(), Process::default())
    }

    fn stats(p: f64, d: f64) -> SignalStats {
        SignalStats::new(p, d)
    }

    #[test]
    fn inverter_output_density_is_input_density() {
        let m = model();
        let gp = m.gate_power(&CellKind::Inv, 0, &[stats(0.3, 2.0e5)], 0.0);
        assert_eq!(gp.nodes.len(), 1); // no internal nodes
        assert!((gp.nodes[0].density - 2.0e5).abs() < 1e-6);
        // P(y) = 1 - 0.3
        assert!((gp.nodes[0].probability - 0.7).abs() < 1e-12);
        assert!(gp.total > 0.0);
    }

    #[test]
    fn output_node_density_matches_najm() {
        // For the output node the weighted H/G formula must collapse to
        // D(y) = Σ P(∂y/∂xᵢ)·D(xᵢ).
        let m = model();
        let lib = Library::standard();
        let inputs = [stats(0.3, 1.0e5), stats(0.7, 5.0e5), stats(0.5, 2.0e5)];
        for name in ["nand3", "nor3", "aoi21", "oai21"] {
            let cell = lib.cell_by_name(name).unwrap();
            for c in 0..cell.configurations().len() {
                let gp = m.gate_power(cell.kind(), c, &inputs, 0.0);
                let najm = prob::density(cell.function(), &inputs);
                assert!(
                    (gp.nodes[0].density - najm).abs() < 1e-9,
                    "{name} config {c}: {} vs {najm}",
                    gp.nodes[0].density
                );
            }
        }
    }

    #[test]
    fn output_stats_invariant_under_reordering() {
        // §4.2 monotonicity lemma precondition: reordering changes only
        // internal nodes.
        let m = model();
        let lib = Library::standard();
        let cell = lib.cell_by_name("oai221").unwrap();
        let inputs = [
            stats(0.2, 1.0e5),
            stats(0.8, 2.0e5),
            stats(0.4, 9.0e5),
            stats(0.6, 3.0e5),
            stats(0.5, 5.0e5),
        ];
        let reference = m.gate_power(cell.kind(), 0, &inputs, 0.0);
        for c in 1..cell.configurations().len() {
            let gp = m.gate_power(cell.kind(), c, &inputs, 0.0);
            // P and D at the output are what downstream gates see; they
            // must not depend on the ordering. (The output *capacitance*
            // legitimately varies — reordering moves diffusion terminals —
            // but that is a local effect the per-gate optimizer accounts
            // for.)
            assert!((gp.nodes[0].density - reference.nodes[0].density).abs() < 1e-9);
            assert!((gp.nodes[0].probability - reference.nodes[0].probability).abs() < 1e-12);
        }
    }

    #[test]
    fn reordering_changes_internal_power() {
        let m = model();
        let lib = Library::standard();
        let cell = lib.cell_by_name("nand3").unwrap();
        // Strongly asymmetric activity makes ordering matter.
        let inputs = [stats(0.5, 1.0e6), stats(0.5, 1.0e4), stats(0.5, 1.0e4)];
        let powers: Vec<f64> = (0..cell.configurations().len())
            .map(|c| m.gate_power(cell.kind(), c, &inputs, 0.0).internal())
            .collect();
        let min = powers.iter().cloned().fold(f64::MAX, f64::min);
        let max = powers.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min * 1.05, "expected >5% spread, got {powers:?}");
    }

    #[test]
    fn best_and_worst_bracket_all_configs() {
        let m = model();
        let lib = Library::standard();
        let cell = lib.cell_by_name("oai21").unwrap();
        let inputs = [stats(0.5, 1.0e4), stats(0.5, 1.0e5), stats(0.5, 1.0e6)];
        let n = cell.configurations().len();
        let (best, worst) = m.best_and_worst(cell.kind(), n, &inputs, 0.0);
        let pb = m.gate_power(cell.kind(), best, &inputs, 0.0).total;
        let pw = m.gate_power(cell.kind(), worst, &inputs, 0.0).total;
        for c in 0..n {
            let p = m.gate_power(cell.kind(), c, &inputs, 0.0).total;
            assert!(p >= pb - 1e-18 && p <= pw + 1e-18);
        }
        assert!(pw > pb);
    }

    #[test]
    fn quiescent_inputs_give_zero_power() {
        let m = model();
        let gp = m.gate_power(
            &CellKind::Nand(2),
            0,
            &[SignalStats::constant(true), SignalStats::constant(false)],
            0.0,
        );
        assert_eq!(gp.total, 0.0);
    }

    #[test]
    fn external_load_increases_output_power_only() {
        let m = model();
        let inputs = [stats(0.5, 1.0e5), stats(0.5, 1.0e5)];
        let a = m.gate_power(&CellKind::Nand(2), 0, &inputs, 0.0);
        let b = m.gate_power(&CellKind::Nand(2), 0, &inputs, 10.0e-15);
        assert!(b.output() > a.output());
        assert!((b.internal() - a.internal()).abs() < 1e-18);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let m = model();
        let lib = Library::standard();
        let inputs: Vec<SignalStats> = (0..6)
            .map(|i| stats(0.1 + 0.15 * i as f64, 1.0e5 * (i + 1) as f64))
            .collect();
        for cell in lib.cells() {
            let cfg_inputs = &inputs[..cell.arity()];
            for c in 0..cell.configurations().len() {
                let gp = m.gate_power(cell.kind(), c, cfg_inputs, 0.0);
                for n in &gp.nodes {
                    assert!((0.0..=1.0).contains(&n.probability), "{}", cell.name());
                    assert!(n.density >= 0.0);
                    assert!(n.power >= 0.0);
                }
            }
        }
    }

    #[test]
    fn input_capacitance_lookup() {
        let m = model();
        let c = m.input_capacitance(&CellKind::Inv, 0);
        assert!(c > 0.0);
        // aoi221 input 0 drives one N and one P device, same as inv.
        let c2 = m.input_capacitance(&CellKind::aoi(&[2, 2, 1]), 0);
        assert!((c - c2).abs() < 1e-21);
    }
}
