//! Partitioned exact statistics: per-region BDDs with cut-net
//! pseudo-inputs, evaluated across a work-stealing pool.
//!
//! The monolithic [`ExactBdd`](crate::PropagationMode::ExactBdd) backend
//! tops out near a hundred gates of dense logic — global reconvergence
//! makes whole-circuit BDDs blow up even when every local cone is tiny.
//! This module breaks that ceiling with the classic cut-point scheme:
//!
//! 1. [`tr_netlist::partition`] carves the compiled circuit into
//!    fanout-bounded **regions** (cut on high-fanout nets, bounded node
//!    cost and cut width, topologically ordered);
//! 2. each region gets its own small [`Bdd`] engine whose variables are
//!    the region's external nets; **cut nets** enter as pseudo-inputs
//!    carrying their upstream computed probability *and* transition
//!    density, so Najm's boolean-difference density propagation stays
//!    exact within the region;
//! 3. region variables are ordered by the §4.2 information measure
//!    (entropy × local cone size) via
//!    [`tr_bdd::order::rank_by_information`];
//! 4. regions are evaluated in parallel under a dataflow schedule —
//!    a region becomes ready the moment the producers of its cut inputs
//!    complete, not at level barriers — with one reusable engine per
//!    worker ([`Bdd::reset`] between regions, GC thresholds apportioned
//!    by [`tr_bdd::apportioned_gc_threshold`] so N small engines never
//!    hoard N × the monolithic garbage budget).
//!
//! The only information lost is the correlation *between* a region's
//! inputs. [`PartitionReport::approx_fraction`] reports the fraction of
//! nets not *provably* exact under the cut (`0.0` certifies the result
//! equals full-BDD up to rounding — see
//! [`tr_netlist::partition::Partition::approx_fraction`]). Degenerate
//! cuts recover the neighbouring backends exactly: a single region
//! delegates to the monolithic [`CircuitBdds`] engine (bitwise equal to
//! `ExactBdd`), and one-gate regions reproduce the gate-local
//! independent propagation to rounding.

use crate::mode::PropagationError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;
use tr_bdd::{
    apportioned_gc_threshold, order::rank_by_information, Bdd, BddError, BuildOptions, CircuitBdds,
    DensityScratch, Edge, ProbScratch, VisitScratch,
};
use tr_boolean::govern::Governor;
use tr_boolean::SignalStats;
use tr_gatelib::Library;
use tr_netlist::partition::{partition, Partition, PartitionOptions, Region};
use tr_netlist::{Circuit, CompiledCircuit, NetId};

/// Default per-region live-node budget (`max_region_nodes`).
pub const DEFAULT_REGION_NODES: usize = 8192;
/// Default cut width (`max_cut_width`): external inputs per region.
pub const DEFAULT_CUT_WIDTH: usize = 24;

/// Knobs for [`propagate_partitioned`].
#[derive(Debug, Clone, Default)]
pub struct PartitionConfig {
    /// Per-region live-node budget. `0` means [`DEFAULT_REGION_NODES`];
    /// `1` degenerates to cutting every net (gate-local regions).
    pub max_region_nodes: usize,
    /// Cut width: external-input cap per region. `0` disables cutting
    /// entirely (one region — bitwise the monolithic `ExactBdd`).
    pub max_cut_width: usize,
    /// Worker threads for the dataflow pool. `0` picks
    /// `available_parallelism()` capped at 8. Results are identical for
    /// every thread count.
    pub threads: usize,
    /// Optional run governor, shared by every region engine.
    pub governor: Option<Governor>,
    /// Explicit packing cost budget (truth-table mass per region),
    /// decoupled from the node limit. `None` derives
    /// `max_region_nodes / 8`: region BDD size tracks packing cost
    /// super-linearly, so callers chasing *accuracy* (fewer, larger
    /// regions) should set the cost explicitly and leave node headroom.
    pub region_cost: Option<usize>,
}

impl PartitionConfig {
    /// A config with the given region/cut budgets and automatic threads.
    pub fn new(max_region_nodes: usize, max_cut_width: usize) -> Self {
        PartitionConfig {
            max_region_nodes,
            max_cut_width,
            threads: 0,
            governor: None,
            region_cost: None,
        }
    }

    /// Overrides the packing cost budget (see
    /// [`PartitionConfig::region_cost`]).
    #[must_use]
    pub fn with_region_cost(mut self, cost: usize) -> Self {
        self.region_cost = Some(cost);
        self
    }
}

/// What the partitioned evaluation did — surfaced by `FlowReport`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionReport {
    /// Number of regions evaluated.
    pub regions: usize,
    /// Number of nets cut (read across a region boundary).
    pub cut_nets: usize,
    /// Fraction of gate-driven nets not provably exact under the cut
    /// (`0.0` certifies exactness — see
    /// [`Partition::approx_fraction`]).
    pub approx_fraction: f64,
    /// Worker threads actually used.
    pub threads: usize,
    /// Largest per-region engine live-node count observed.
    pub peak_region_nodes: usize,
    /// Fraction of the pool's thread-time spent inside region
    /// evaluations (`Σ busy / (threads × wall)`); 1.0 for a serial run.
    /// Low values expose stragglers and dependency stalls in the
    /// dataflow schedule.
    pub pool_utilization: f64,
    /// Combined op-cache hit fraction over every region engine.
    pub cache_hit_rate: f64,
}

/// Counters shared by the dataflow pool's workers, folded into the
/// [`PartitionReport`] after the run.
#[derive(Default)]
struct PoolCounters {
    peak_nodes: AtomicUsize,
    busy_us: AtomicU64,
    cache_lookups: AtomicU64,
    cache_hits: AtomicU64,
}

impl PoolCounters {
    /// Folds one engine's cumulative cache counters in (workers call
    /// this once, when they exit).
    fn absorb_cache(&self, stats: &tr_bdd::CacheStats) {
        self.cache_lookups.fetch_add(
            stats.ite_lookups + stats.restrict_lookups,
            Ordering::Relaxed,
        );
        self.cache_hits
            .fetch_add(stats.ite_hits + stats.restrict_hits, Ordering::Relaxed);
    }

    fn hit_rate(&self) -> f64 {
        let lookups = self.cache_lookups.load(Ordering::Relaxed);
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits.load(Ordering::Relaxed) as f64 / lookups as f64
        }
    }
}

/// Maps the mode-level `(max_region_nodes, max_cut_width)` pair onto
/// packing options. `max_cut_width == 0` disables cutting (single
/// region); `max_region_nodes <= 1` cuts every net; otherwise the cost
/// budget is `region_cost` when given, else scaled so a region's
/// estimated truth-table mass stays well under its live-node limit.
pub fn packing_options(
    max_region_nodes: usize,
    max_cut_width: usize,
    region_cost: Option<usize>,
) -> PartitionOptions {
    if max_cut_width == 0 {
        return PartitionOptions::single_region();
    }
    if max_region_nodes == 1 {
        return PartitionOptions::every_net_cut();
    }
    let nodes = if max_region_nodes == 0 {
        DEFAULT_REGION_NODES
    } else {
        max_region_nodes
    };
    let cost = region_cost.unwrap_or(nodes / 8).max(16);
    PartitionOptions {
        max_region_cost: cost,
        max_region_inputs: max_cut_width,
        cut_fanout_threshold: 8,
        expand_cost: (cost / 4).max(8),
    }
}

/// Per-worker reusable state: one engine plus every scratch buffer a
/// region evaluation touches. Reused across regions via [`Bdd::reset`]
/// (capacity is retained; external scratches self-invalidate through
/// the GC epoch).
#[derive(Clone)]
struct RegionScratch {
    bdd: Bdd,
    prob: ProbScratch,
    density: DensityScratch,
    visited: VisitScratch,
    /// net -> region-local slot (input index, or `n_inputs + gate_pos`).
    net_local: Vec<u32>,
    net_stamp: Vec<u32>,
    epoch: u32,
    /// local slot -> BDD edge.
    edges: Vec<Edge>,
    /// Per-gate local-input support bitsets (`n_gates * words`).
    gate_support: Vec<u64>,
    cones: Vec<usize>,
    in_probs: Vec<f64>,
    in_dens: Vec<f64>,
    level_probs: Vec<f64>,
    level_dens: Vec<f64>,
    seen: Vec<bool>,
    args: Vec<Edge>,
    /// Output statistics, parallel to the region's `outputs`.
    out: Vec<SignalStats>,
    /// Expansion prefix + own gates, rebuilt per region.
    gate_list: Vec<tr_netlist::GateId>,
    node_limit: usize,
    gc_threshold: usize,
    governor: Option<Governor>,
}

impl RegionScratch {
    fn new(n_nets: usize, node_limit: usize, engines: usize, governor: Option<Governor>) -> Self {
        RegionScratch {
            bdd: Bdd::with_node_limit(0, node_limit),
            prob: ProbScratch::new(),
            density: DensityScratch::new(),
            visited: VisitScratch::new(),
            net_local: vec![0; n_nets],
            net_stamp: vec![0; n_nets],
            epoch: 0,
            edges: Vec::new(),
            gate_support: Vec::new(),
            cones: Vec::new(),
            in_probs: Vec::new(),
            in_dens: Vec::new(),
            level_probs: Vec::new(),
            level_dens: Vec::new(),
            seen: Vec::new(),
            args: Vec::new(),
            out: Vec::new(),
            gate_list: Vec::new(),
            node_limit,
            // Proactive collection point: well under the region's hard
            // limit (so NodeLimit means "the live functions don't fit",
            // not "garbage piled up"), and apportioned so N coexisting
            // engines never hoard N × the monolithic garbage budget.
            gc_threshold: apportioned_gc_threshold(engines).min((node_limit / 2).max(1024)),
            governor,
        }
    }
}

/// Evaluates one region: builds its BDDs over the external inputs and
/// computes `(P, D)` for every gate output, leaving them in
/// `scratch.out` (parallel to `region.outputs`). `stats_of` supplies
/// the statistics of external nets (primary inputs and upstream cut
/// nets).
fn evaluate_region<F: Fn(NetId) -> SignalStats>(
    scratch: &mut RegionScratch,
    compiled: &CompiledCircuit,
    library: &Library,
    region: &Region,
    stats_of: F,
) -> Result<(), PropagationError> {
    let n_inputs = region.inputs.len();
    // The expansion prefix (cut-refinement recompositions from earlier
    // regions) is composed like any other gate; statistics are emitted
    // only for the region's own gates.
    scratch.gate_list.clear();
    scratch.gate_list.extend_from_slice(&region.expansion);
    scratch.gate_list.extend_from_slice(&region.gates);
    let n_gates = scratch.gate_list.len();
    let n_own = region.gates.len();
    let gate_list = std::mem::take(&mut scratch.gate_list);
    scratch.epoch += 1;
    let epoch = scratch.epoch;

    // External input statistics, in the region's first-read order.
    scratch.in_probs.clear();
    scratch.in_dens.clear();
    for (i, net) in region.inputs.iter().enumerate() {
        let s = stats_of(*net);
        scratch.in_probs.push(s.probability());
        scratch.in_dens.push(s.density());
        scratch.net_local[net.0] = i as u32;
        scratch.net_stamp[net.0] = epoch;
    }

    // Local cone sizes: for each external input, how many region gates
    // it transitively feeds. One pass over the (topologically ordered)
    // region gates with per-gate input bitsets.
    let words = n_inputs.div_ceil(64).max(1);
    scratch.gate_support.clear();
    scratch.gate_support.resize(n_gates * words, 0);
    scratch.cones.clear();
    scratch.cones.resize(n_inputs, 0);
    for (pos, &gid) in gate_list.iter().enumerate() {
        let gate = &compiled.gates()[gid.0];
        for net in compiled.inputs(gate) {
            debug_assert_eq!(scratch.net_stamp[net.0], epoch, "unstamped region net");
            let local = scratch.net_local[net.0] as usize;
            if local < n_inputs {
                scratch.gate_support[pos * words + local / 64] |= 1u64 << (local % 64);
            } else {
                let src = local - n_inputs;
                for w in 0..words {
                    let bits = scratch.gate_support[src * words + w];
                    scratch.gate_support[pos * words + w] |= bits;
                }
            }
        }
        scratch.net_local[gate.output.0] = (n_inputs + pos) as u32;
        scratch.net_stamp[gate.output.0] = epoch;
        for w in 0..words {
            let mut bits = scratch.gate_support[pos * words + w];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                scratch.cones[w * 64 + b] += 1;
                bits &= bits - 1;
            }
        }
    }

    // §4.2 information ordering: high entropy × wide cone first.
    let order = rank_by_information(&scratch.in_probs, &scratch.cones);

    // Fresh engine pass over the region, retained capacity.
    scratch.bdd.reset(n_inputs);
    scratch.bdd.set_node_limit(scratch.node_limit);
    scratch.bdd.set_gc_threshold(scratch.gc_threshold);
    scratch.bdd.set_governor(scratch.governor.clone());

    scratch.level_probs.clear();
    scratch.level_probs.resize(n_inputs, 0.0);
    scratch.level_dens.clear();
    scratch.level_dens.resize(n_inputs, 0.0);
    scratch.edges.clear();
    scratch.edges.resize(n_inputs + n_gates, Edge::ZERO);
    for (level, &input_pos) in order.iter().enumerate() {
        scratch.level_probs[level] = scratch.in_probs[input_pos];
        scratch.level_dens[level] = scratch.in_dens[input_pos];
        let var = scratch.bdd.var(level);
        // Protect the variable edges: a mid-region collection would
        // otherwise free an input not yet reachable from a protected
        // gate root, leaving a stale edge in the local table.
        scratch.bdd.protect(var);
        scratch.edges[input_pos] = var;
    }

    // Compose the region's gates (same NodeLimit-retry idiom as the
    // monolithic builder: collect once, then give up).
    for (pos, &gid) in gate_list.iter().enumerate() {
        let gate = &compiled.gates()[gid.0];
        scratch.args.clear();
        for net in compiled.inputs(gate) {
            scratch
                .args
                .push(scratch.edges[scratch.net_local[net.0] as usize]);
        }
        let function = library.cell_by_id(gate.cell).function();
        let edge = match scratch.bdd.compose_fn(function, &scratch.args) {
            Ok(edge) => edge,
            Err(BddError::NodeLimit { .. }) => {
                scratch.bdd.gc();
                scratch.bdd.compose_fn(function, &scratch.args)?
            }
            Err(e) => return Err(e.into()),
        };
        scratch.bdd.protect(edge);
        scratch.edges[n_inputs + pos] = edge;
        scratch.bdd.maybe_gc();
    }

    // Statistics per output: P from the level probabilities, D by
    // boolean differences against the support, each weighted by the
    // input's upstream density.
    scratch.seen.clear();
    scratch.seen.resize(n_inputs, false);
    scratch.out.clear();
    for pos in n_gates - n_own..n_gates {
        if let Some(governor) = &scratch.governor {
            governor.check_now("partition-stats")?;
        }
        let edge = scratch.edges[n_inputs + pos];
        let p = scratch
            .bdd
            .probability(edge, &scratch.level_probs, &mut scratch.prob);
        scratch
            .bdd
            .support_into(edge, &mut scratch.seen, &mut scratch.visited);
        let mut d = 0.0;
        for level in 0..n_inputs {
            let dens = scratch.level_dens[level];
            if !scratch.seen[level] || dens == 0.0 {
                continue;
            }
            let boundary = scratch.bdd.difference_probability(
                edge,
                level,
                &scratch.level_probs,
                &mut scratch.prob,
                &mut scratch.density,
            )?;
            d += boundary * dens;
        }
        scratch.out.push(SignalStats::new(p, d.max(0.0)));
    }
    scratch.gate_list = gate_list;
    Ok(())
}

/// Partitioned exact statistics for a compiled circuit. Returns the
/// per-net statistics (one [`SignalStats`] per net, primary inputs
/// echoed from `pi_stats`) plus a [`PartitionReport`].
///
/// # Errors
///
/// [`PropagationError::Bdd`] when a region exceeds its live-node budget
/// even after collection; [`PropagationError::Interrupted`] when the
/// governor trips (workers drain cooperatively).
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count.
pub fn propagate_partitioned_compiled(
    compiled: &CompiledCircuit,
    library: &Library,
    pi_stats: &[SignalStats],
    config: &PartitionConfig,
) -> Result<(Vec<SignalStats>, PartitionReport), PropagationError> {
    let pis = compiled.primary_inputs();
    assert_eq!(
        pi_stats.len(),
        pis.len(),
        "one SignalStats per primary input"
    );
    let options = packing_options(
        config.max_region_nodes,
        config.max_cut_width,
        config.region_cost,
    );
    let part = partition(compiled, &options);

    // A single region is the monolithic backend: delegate so the result
    // is bitwise `ExactBdd` (same engine, same order, same budget).
    if part.regions().len() == 1 {
        let _g = tr_trace::span!("part.propagate", regions = 1usize, threads = 1usize);
        let mut bdds = CircuitBdds::build_governed(
            compiled,
            library,
            BuildOptions::default(),
            config.governor.as_ref(),
        )?;
        let stats = bdds.exact_stats(pi_stats)?;
        let engine = bdds.manager().engine_stats();
        return Ok((
            stats,
            PartitionReport {
                regions: 1,
                cut_nets: 0,
                approx_fraction: 0.0,
                threads: 1,
                peak_region_nodes: engine.gc.peak_live,
                pool_utilization: 1.0,
                cache_hit_rate: engine.caches.hit_rate(),
            },
        ));
    }

    let node_limit = if config.max_region_nodes <= 1 {
        DEFAULT_REGION_NODES
    } else {
        config.max_region_nodes.max(512)
    };
    let n_regions = part.regions().len();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    } else {
        config.threads
    }
    .min(n_regions)
    .max(1);

    let approx_fraction = part.approx_fraction(compiled);
    let n_nets = compiled.net_count();
    let counters = PoolCounters::default();
    let _g = tr_trace::span!(
        "part.propagate",
        regions = n_regions,
        threads = threads,
        cut_nets = part.cut_nets().len()
    );
    let wall_start = Instant::now();

    let stats = if threads == 1 {
        let mut scratch = RegionScratch::new(n_nets, node_limit, threads, config.governor.clone());
        let mut stats = vec![SignalStats::new(0.0, 0.0); n_nets];
        for (pi, s) in pis.iter().zip(pi_stats) {
            stats[pi.0] = *s;
        }
        for (r, region) in part.regions().iter().enumerate() {
            {
                let _g = tr_trace::span!(
                    "part.region",
                    id = r,
                    gates = region.gates.len(),
                    cut = region.inputs.len()
                );
                let stats = &stats;
                evaluate_region(&mut scratch, compiled, library, region, |net| stats[net.0])?;
            }
            for (net, s) in region.outputs.iter().zip(&scratch.out) {
                stats[net.0] = *s;
            }
            counters
                .peak_nodes
                .fetch_max(scratch.bdd.node_count(), Ordering::Relaxed);
        }
        counters.absorb_cache(&scratch.bdd.cache_stats());
        stats
    } else {
        evaluate_parallel(
            compiled,
            library,
            pi_stats,
            &part,
            node_limit,
            threads,
            config.governor.clone(),
            &counters,
        )?
    };

    let wall_us = wall_start.elapsed().as_micros().max(1) as u64;
    let pool_utilization = if threads == 1 {
        1.0
    } else {
        (counters.busy_us.load(Ordering::Relaxed) as f64 / (threads as f64 * wall_us as f64))
            .clamp(0.0, 1.0)
    };
    Ok((
        stats,
        PartitionReport {
            regions: n_regions,
            cut_nets: part.cut_nets().len(),
            approx_fraction,
            threads,
            peak_region_nodes: counters.peak_nodes.load(Ordering::Relaxed),
            pool_utilization,
            cache_hit_rate: counters.hit_rate(),
        },
    ))
}

/// Dataflow pool: regions become ready as their cut-net producers
/// complete; workers pull from a shared deque and publish output
/// statistics through per-net [`OnceLock`] slots (single producer per
/// net, so publication is race-free and lock-free for readers).
#[allow(clippy::too_many_arguments)]
fn evaluate_parallel(
    compiled: &CompiledCircuit,
    library: &Library,
    pi_stats: &[SignalStats],
    part: &Partition,
    node_limit: usize,
    threads: usize,
    governor: Option<Governor>,
    counters: &PoolCounters,
) -> Result<Vec<SignalStats>, PropagationError> {
    let n_nets = compiled.net_count();
    let n_regions = part.regions().len();

    let slots: Vec<OnceLock<SignalStats>> = (0..n_nets).map(|_| OnceLock::new()).collect();
    for (pi, s) in compiled.primary_inputs().iter().zip(pi_stats) {
        slots[pi.0].set(*s).expect("primary input published once");
    }
    let pending: Vec<AtomicUsize> = (0..n_regions)
        .map(|r| AtomicUsize::new(part.dependencies(r).len()))
        .collect();
    let queue: Mutex<VecDeque<u32>> = Mutex::new(
        (0..n_regions)
            .filter(|&r| pending[r].load(Ordering::Relaxed) == 0)
            .map(|r| r as u32)
            .collect(),
    );
    let ready = Condvar::new();
    let remaining = AtomicUsize::new(n_regions);
    let poisoned = AtomicBool::new(false);
    let error: Mutex<Option<PropagationError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for w in 0..threads {
            let slots = &slots;
            let pending = &pending;
            let queue = &queue;
            let ready = &ready;
            let remaining = &remaining;
            let poisoned = &poisoned;
            let error = &error;
            let governor = governor.clone();
            scope.spawn(move || {
                tr_trace::set_thread_name(&format!("part-worker-{w}"));
                let mut scratch = RegionScratch::new(n_nets, node_limit, threads, governor);
                loop {
                    let next = {
                        let mut q = queue.lock().expect("queue lock");
                        loop {
                            if poisoned.load(Ordering::Acquire)
                                || remaining.load(Ordering::Acquire) == 0
                            {
                                break None;
                            }
                            if let Some(r) = q.pop_front() {
                                break Some(r as usize);
                            }
                            q = ready.wait(q).expect("queue wait");
                        }
                    };
                    let Some(r) = next else { break };
                    let region = &part.regions()[r];
                    let busy_start = Instant::now();
                    let result = {
                        let _g = tr_trace::span!(
                            "part.region",
                            id = r,
                            gates = region.gates.len(),
                            cut = region.inputs.len()
                        );
                        evaluate_region(&mut scratch, compiled, library, region, |net| {
                            *slots[net.0].get().expect("dependency published")
                        })
                    };
                    counters
                        .busy_us
                        .fetch_add(busy_start.elapsed().as_micros() as u64, Ordering::Relaxed);
                    counters
                        .peak_nodes
                        .fetch_max(scratch.bdd.node_count(), Ordering::Relaxed);
                    match result {
                        Ok(()) => {
                            for (net, s) in region.outputs.iter().zip(&scratch.out) {
                                slots[net.0].set(*s).expect("net published once");
                            }
                            for &dep in part.dependents(r) {
                                if pending[dep as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    queue.lock().expect("queue lock").push_back(dep);
                                    ready.notify_one();
                                }
                            }
                            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                                ready.notify_all();
                            }
                        }
                        Err(e) => {
                            let mut slot = error.lock().expect("error lock");
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            poisoned.store(true, Ordering::Release);
                            ready.notify_all();
                            break;
                        }
                    }
                }
                counters.absorb_cache(&scratch.bdd.cache_stats());
            });
        }
    });

    if let Some(e) = error.lock().expect("error lock").take() {
        return Err(e);
    }
    let mut stats = Vec::with_capacity(n_nets);
    for slot in slots {
        stats.push(slot.into_inner().expect("every net evaluated"));
    }
    Ok(stats)
}

/// [`propagate_partitioned_compiled`] from an uncompiled [`Circuit`].
///
/// # Errors
///
/// As [`propagate_partitioned_compiled`], plus
/// [`PropagationError::Circuit`] when compilation fails.
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count.
pub fn propagate_partitioned(
    circuit: &Circuit,
    library: &Library,
    pi_stats: &[SignalStats],
    config: &PartitionConfig,
) -> Result<(Vec<SignalStats>, PartitionReport), PropagationError> {
    let compiled = CompiledCircuit::compile(circuit, library)?;
    propagate_partitioned_compiled(&compiled, library, pi_stats, config)
}

/// A reusable single-region evaluator for incremental refresh: one
/// engine plus scratches, fed the full per-net statistics vector.
pub struct RegionEvaluator {
    scratch: RegionScratch,
}

impl Clone for RegionEvaluator {
    fn clone(&self) -> Self {
        RegionEvaluator {
            scratch: self.scratch.clone(),
        }
    }
}

impl std::fmt::Debug for RegionEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegionEvaluator")
            .field("node_limit", &self.scratch.node_limit)
            .finish_non_exhaustive()
    }
}

impl RegionEvaluator {
    /// An evaluator whose engine is budgeted for `max_region_nodes`
    /// live nodes, with the GC threshold apportioned as if `engines`
    /// engines coexist.
    pub fn new(
        n_nets: usize,
        max_region_nodes: usize,
        engines: usize,
        governor: Option<Governor>,
    ) -> Self {
        let node_limit = if max_region_nodes <= 1 {
            DEFAULT_REGION_NODES
        } else {
            max_region_nodes.max(512)
        };
        RegionEvaluator {
            scratch: RegionScratch::new(n_nets, node_limit, engines, governor),
        }
    }

    /// Live nodes in the engine after the most recent evaluation —
    /// the per-region analogue of [`PartitionReport::peak_region_nodes`].
    pub fn node_count(&self) -> usize {
        self.scratch.bdd.node_count()
    }

    /// The engine's cumulative health counters (caches, GC, peak live)
    /// across every region this evaluator has processed — counters
    /// survive the per-region [`Bdd::reset`], so this tells the whole
    /// backend's story for the report's `perf` block.
    pub fn engine_stats(&self) -> tr_bdd::EngineStats {
        self.scratch.bdd.engine_stats()
    }

    /// Re-evaluates `region` from `stats` (indexed by net), returning
    /// the fresh output statistics parallel to `region.outputs`.
    ///
    /// # Errors
    ///
    /// As [`propagate_partitioned_compiled`].
    pub fn evaluate(
        &mut self,
        compiled: &CompiledCircuit,
        library: &Library,
        region: &Region,
        stats: &[SignalStats],
    ) -> Result<&[SignalStats], PropagationError> {
        let _g = tr_trace::span!(
            "part.region",
            gates = region.gates.len(),
            cut = region.inputs.len()
        );
        evaluate_region(&mut self.scratch, compiled, library, region, |net| {
            stats[net.0]
        })?;
        Ok(&self.scratch.out)
    }

    /// Replaces the governor used by subsequent evaluations.
    pub fn set_governor(&mut self, governor: Option<Governor>) {
        self.scratch.governor = governor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{propagate, propagate_exact_bdd};
    use tr_netlist::generators;

    fn pi_stats(n: usize) -> Vec<SignalStats> {
        (0..n)
            .map(|i| {
                SignalStats::new(
                    0.15 + 0.6 * (i as f64 / n.max(1) as f64),
                    1.0e4 * (i + 1) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn cut_width_zero_is_bitwise_exact_bdd() {
        let lib = Library::standard();
        let c = generators::array_multiplier(6, &lib);
        let pi = pi_stats(c.primary_inputs().len());
        let exact = propagate_exact_bdd(&c, &lib, &pi).unwrap();
        let (part, report) =
            propagate_partitioned(&c, &lib, &pi, &PartitionConfig::new(4096, 0)).unwrap();
        assert_eq!(report.regions, 1);
        assert_eq!(report.approx_fraction, 0.0);
        // Bitwise: same engine, same order, same arithmetic.
        assert_eq!(part, exact);
    }

    #[test]
    fn every_net_cut_matches_independent_backend() {
        let lib = Library::standard();
        let c = generators::carry_select_adder(16, 4, &lib);
        let pi = pi_stats(c.primary_inputs().len());
        let indep = propagate(&c, &lib, &pi);
        let (part, report) =
            propagate_partitioned(&c, &lib, &pi, &PartitionConfig::new(1, 4)).unwrap();
        assert!(report.regions >= c.gates().len());
        for (n, (a, b)) in indep.iter().zip(&part).enumerate() {
            assert!(
                (a.probability() - b.probability()).abs() < 1e-12,
                "net {n}: P {a} vs {b}"
            );
            let rel = (a.density() - b.density()).abs() / a.density().max(1.0);
            assert!(rel < 1e-12, "net {n}: D {a} vs {b}");
        }
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let lib = Library::standard();
        let c = generators::array_multiplier(8, &lib);
        let pi = pi_stats(c.primary_inputs().len());
        let mut base: Option<Vec<SignalStats>> = None;
        for threads in [1usize, 2, 4] {
            let config = PartitionConfig {
                threads,
                ..PartitionConfig::new(2048, 16)
            };
            let (stats, report) = propagate_partitioned(&c, &lib, &pi, &config).unwrap();
            assert!(report.regions > 1, "mult8 must split");
            match &base {
                None => base = Some(stats),
                Some(b) => assert_eq!(*b, stats, "threads={threads} diverged"),
            }
        }
    }

    #[test]
    fn partitioned_stays_close_to_exact_on_reconvergent_logic() {
        let lib = Library::standard();
        let c = generators::array_multiplier(8, &lib);
        let pi = pi_stats(c.primary_inputs().len());
        let exact = propagate_exact_bdd(&c, &lib, &pi).unwrap();
        // The acceptance point: an accuracy-biased config (two large
        // regions, explicit packing cost with node headroom) holds the
        // paper-grade |ΔP| ≤ 0.05 bound on the densest reconvergent
        // circuit in the suite while still clearing the monolithic
        // engine by well over 2× (pinned by `p8_partitioned_propagate`).
        let (part, report) = propagate_partitioned(
            &c,
            &lib,
            &pi,
            &PartitionConfig::new(1 << 16, 40).with_region_cost(2048),
        )
        .unwrap();
        assert!(report.regions > 1);
        assert!(report.approx_fraction > 0.0, "multiplier cuts approximate");
        let max_dp = exact
            .iter()
            .zip(&part)
            .map(|(a, b)| (a.probability() - b.probability()).abs())
            .fold(0.0f64, f64::max);
        assert!(max_dp <= 0.05, "max |ΔP| = {max_dp}");

        // The speed-biased default config trades accuracy for a much
        // deeper cut: the error stays bounded but measurably larger.
        let (fast, fast_report) = propagate_partitioned(
            &c,
            &lib,
            &pi,
            &PartitionConfig::new(DEFAULT_REGION_NODES, DEFAULT_CUT_WIDTH),
        )
        .unwrap();
        assert!(fast_report.regions > report.regions);
        let fast_dp = exact
            .iter()
            .zip(&fast)
            .map(|(a, b)| (a.probability() - b.probability()).abs())
            .fold(0.0f64, f64::max);
        assert!(fast_dp <= 0.10, "max |ΔP| = {fast_dp} at defaults");
    }

    #[test]
    fn governor_trip_surfaces_as_interrupted() {
        let lib = Library::standard();
        let c = generators::array_multiplier(8, &lib);
        let pi = pi_stats(c.primary_inputs().len());
        let governor = Governor::with_trip_after(1);
        let config = PartitionConfig {
            governor: Some(governor),
            ..PartitionConfig::new(1024, 12)
        };
        let err = propagate_partitioned(&c, &lib, &pi, &config).unwrap_err();
        assert!(matches!(err, PropagationError::Interrupted(_)), "{err}");
    }

    #[test]
    fn region_evaluator_reproduces_whole_circuit_pass() {
        let lib = Library::standard();
        let c = generators::carry_skip_adder(24, 4, &lib);
        let compiled = CompiledCircuit::compile(&c, &lib).unwrap();
        let pi = pi_stats(c.primary_inputs().len());
        let config = PartitionConfig {
            threads: 1,
            ..PartitionConfig::new(1024, 12)
        };
        let (full, _) = propagate_partitioned_compiled(&compiled, &lib, &pi, &config).unwrap();
        // Replay every region through one reusable evaluator.
        let part = partition(&compiled, &packing_options(1024, 12, None));
        let mut eval = RegionEvaluator::new(compiled.net_count(), 1024, 1, None);
        let mut stats = vec![SignalStats::new(0.0, 0.0); compiled.net_count()];
        for (pi_net, s) in compiled.primary_inputs().iter().zip(&pi) {
            stats[pi_net.0] = *s;
        }
        for region in part.regions() {
            let out = eval
                .evaluate(&compiled, &lib, region, &stats)
                .unwrap()
                .to_vec();
            for (net, s) in region.outputs.iter().zip(out) {
                stats[net.0] = s;
            }
        }
        assert_eq!(stats, full);
    }
}
