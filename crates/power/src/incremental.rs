//! Dirty-cone incremental statistics and delta power evaluation.
//!
//! The optimizer's inner loop scores configurations against per-net
//! statistics computed *before* optimization. A config-only move never
//! invalidates them (reordering preserves every gate function — the
//! monotonicity lemma of §4.2), but an accepted *cell* change does: the
//! fanout cone of the edited gate carries stale probabilities and
//! densities from that point on. [`IncrementalPropagator`] keeps one
//! statistics vector alive across edits and, on
//! [`IncrementalPropagator::refresh`], re-derives exactly the dirty
//! cone under the active backend:
//!
//! * [`PropagationMode::Independent`] — gate-local re-propagation over
//!   the cone only, pruned the moment a recomputed net's statistics
//!   come out unchanged;
//! * [`PropagationMode::ExactBdd`] — [`CircuitBdds::repropagate`]
//!   recomposes the cone's roots in the long-lived manager (GC-safe
//!   protect/unprotect of replaced edges, no rebuild), then
//!   [`CircuitBdds::exact_stats_into`] refreshes just those nets'
//!   slots;
//! * [`PropagationMode::PartitionedBdd`] — dirty gates map to dirty
//!   *regions* of the cone partition; each dirty region re-evaluates in
//!   a reusable per-propagator engine (bit-for-bit the constructor's
//!   pass), and the cascade follows region dependency edges only while
//!   output statistics actually change;
//! * [`PropagationMode::Monte`] — re-estimates with the same step
//!   budget, interval and seed (sampling has no cone structure to
//!   exploit), so an unchanged circuit reproduces its estimate exactly.
//!
//! Refreshed entries are bit-for-bit what the corresponding full
//! [`propagate_with_mode`](crate::propagate_with_mode) pass over the
//! edited circuit would produce — pinned by the equivalence suite in
//! `tests/incremental_equivalence.rs`.
//!
//! [`IncrementalPower`] is the matching delta path for the *power*
//! total: a per-gate power ledger that re-scores only gates whose
//! configuration, input statistics or output load changed, then re-sums
//! in gate order so the total stays bitwise identical to a full
//! [`circuit_total_compiled`](crate::circuit_total_compiled) pass.

use crate::circuit::external_loads_compiled;
use crate::mode::monte_dt;
use crate::model::{PowerModel, Scratch, MAX_CELL_ARITY};
use crate::monte;
use crate::partition::{packing_options, RegionEvaluator};
use crate::{propagate, PropagationError, PropagationMode};
use tr_bdd::{BuildOptions, CircuitBdds, EngineStats};
use tr_boolean::govern::Governor;
use tr_boolean::{prob, SignalStats};
use tr_gatelib::Library;
use tr_netlist::partition::Partition;
use tr_netlist::{Circuit, CompiledCircuit, GateId, NetId};

/// Resource knobs for a governed [`IncrementalPropagator`] (see
/// [`IncrementalPropagator::new_with`]). `Default` reproduces the
/// ungoverned constructor exactly.
#[derive(Debug, Clone, Default)]
pub struct PropagatorOptions {
    /// Override of the BDD backend's live-node budget
    /// ([`tr_bdd::DEFAULT_NODE_LIMIT`] when `None`); ignored by the
    /// other backends.
    pub node_limit: Option<usize>,
    /// Governor every backend pass checks cooperatively: the BDD build,
    /// every later statistics walk and repropagation (the governor stays
    /// attached to the engine), and each Monte Carlo step.
    pub governor: Option<Governor>,
    /// Explicit BDD variable order (a permutation of primary-input
    /// positions) instead of the default fanin-DFS heuristic — how the
    /// degradation ladder retries a budget-blown build under the
    /// information-measure order ([`tr_bdd::order::info_measure`]).
    pub bdd_order: Option<Vec<usize>>,
}

/// The `PartitionedBdd` backend's long-lived refresh state.
#[derive(Debug, Clone)]
struct PartitionState {
    partition: Partition,
    evaluator: RegionEvaluator,
    /// For each gate, the regions that *recompose* it in their
    /// cut-refinement expansion (beyond the region that owns it). A
    /// dirty gate must also dirty these regions, or their locally
    /// re-expanded copy of the logic would go stale.
    expanders: Vec<Vec<u32>>,
    /// Fraction of gate-driven nets not provably exact under the cut,
    /// captured at construction (see [`Partition::approx_fraction`]).
    approx_fraction: f64,
}

fn expander_map(partition: &Partition, n_gates: usize) -> Vec<Vec<u32>> {
    let mut map = vec![Vec::new(); n_gates];
    for (r, region) in partition.regions().iter().enumerate() {
        for g in &region.expansion {
            map[g.0].push(r as u32);
        }
    }
    map
}

/// Per-net signal statistics kept consistent across circuit edits by
/// re-deriving only dirty cones (see the module docs).
///
/// # Example
///
/// ```
/// use tr_boolean::SignalStats;
/// use tr_gatelib::{CellKind, Library};
/// use tr_netlist::Circuit;
/// use tr_power::{IncrementalPropagator, PropagationMode};
///
/// let lib = Library::standard();
/// let mut c = Circuit::new("tiny");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let (g, y) = c.add_gate(CellKind::Nand(2), vec![a, b], "y");
/// c.mark_output(y);
/// let pi = vec![SignalStats::new(0.5, 1.0e5); 2];
/// let mut prop =
///     IncrementalPropagator::new(&c, &lib, &pi, PropagationMode::ExactBdd).unwrap();
/// // Accept a cell change, then refresh just its fanout cone.
/// c.set_cell(g, CellKind::Nor(2));
/// let dirty = prop.refresh(&c, &lib, &[g]).unwrap();
/// assert_eq!(dirty, vec![y]);
/// assert!((prop.net_stats()[y.0].probability() - 0.25).abs() < 1e-15);
/// ```
/// Cloning duplicates the backend's entire engine state — BDD manager,
/// partition evaluator, statistics vectors, cumulative counters — so the
/// clone continues bit-for-bit where the original stood (a warm-cache
/// server snapshots a freshly built propagator and replays requests
/// against cheap clones). The attached [`Governor`] is shared with the
/// original; use [`IncrementalPropagator::set_governor`] to give a clone
/// its own.
#[derive(Debug, Clone)]
pub struct IncrementalPropagator {
    mode: PropagationMode,
    pi_stats: Vec<SignalStats>,
    net_stats: Vec<SignalStats>,
    /// The long-lived engine of the `ExactBdd` backend (`None` for the
    /// other modes).
    bdds: Option<CircuitBdds>,
    /// The `PartitionedBdd` backend's partition plus its reusable
    /// single-region evaluator (`None` for the other modes). Dirty gates
    /// map to dirty *regions*; only those re-evaluate.
    partition: Option<PartitionState>,
    /// Governor re-applied to Monte re-estimates (the BDD backend's
    /// governor lives inside its engine instead).
    monte_governor: Option<Governor>,
    repropagations: usize,
    refreshed_nets: usize,
}

impl IncrementalPropagator {
    /// Propagates once in full under `mode` and retains everything the
    /// backend needs for later cone refreshes (for `ExactBdd`, the
    /// built [`CircuitBdds`] engine itself). The initial statistics are
    /// identical to [`propagate_with_mode`](crate::propagate_with_mode)
    /// — same code paths.
    ///
    /// # Errors
    ///
    /// Returns [`PropagationError`] if the circuit does not compile
    /// against `library` or the BDD backend blows its node budget.
    ///
    /// # Panics
    ///
    /// Panics if `pi_stats.len()` differs from the primary-input count.
    pub fn new(
        circuit: &Circuit,
        library: &Library,
        pi_stats: &[SignalStats],
        mode: PropagationMode,
    ) -> Result<Self, PropagationError> {
        IncrementalPropagator::new_with(
            circuit,
            library,
            pi_stats,
            mode,
            &PropagatorOptions::default(),
        )
    }

    /// [`IncrementalPropagator::new`] under explicit resource knobs: an
    /// optional node-budget override, an optional [`Governor`] (which
    /// stays attached, so every later [`IncrementalPropagator::refresh`]
    /// is governed too), and an optional explicit BDD variable order.
    ///
    /// # Errors
    ///
    /// As [`IncrementalPropagator::new`], plus
    /// [`PropagationError::Interrupted`] when the governor trips.
    ///
    /// # Panics
    ///
    /// Panics if `pi_stats.len()` differs from the primary-input count,
    /// or `options.bdd_order` is present and not a permutation of
    /// primary-input positions.
    pub fn new_with(
        circuit: &Circuit,
        library: &Library,
        pi_stats: &[SignalStats],
        mode: PropagationMode,
        options: &PropagatorOptions,
    ) -> Result<Self, PropagationError> {
        assert_eq!(
            pi_stats.len(),
            circuit.primary_inputs().len(),
            "one SignalStats per primary input"
        );
        let mut bdds = None;
        let mut partition_state = None;
        let net_stats = match mode {
            PropagationMode::Independent => propagate(circuit, library, pi_stats),
            PropagationMode::ExactBdd => {
                let compiled = CompiledCircuit::compile(circuit, library)?;
                let build = BuildOptions {
                    node_limit: options
                        .node_limit
                        .unwrap_or(BuildOptions::default().node_limit),
                    ..BuildOptions::default()
                };
                let mut engine = match &options.bdd_order {
                    Some(order) => CircuitBdds::build_with_order(
                        &compiled,
                        library,
                        build,
                        order.clone(),
                        options.governor.as_ref(),
                    )?,
                    None => CircuitBdds::build_governed(
                        &compiled,
                        library,
                        build,
                        options.governor.as_ref(),
                    )?,
                };
                let stats = engine.exact_stats(pi_stats)?;
                bdds = Some(engine);
                stats
            }
            PropagationMode::PartitionedBdd {
                max_region_nodes,
                max_cut_width,
            } => {
                // Evaluate serially through the same RegionEvaluator
                // later refreshes use, so a refreshed region reproduces
                // its statistics bit-for-bit (no-cascade on config-only
                // edits depends on this).
                let compiled = CompiledCircuit::compile(circuit, library)?;
                // The run-level node budget caps the per-region budget:
                // every region engine is bounded separately, so the cap
                // applies region by region, not to the sum.
                let region_nodes = match options.node_limit {
                    Some(limit) if max_region_nodes > 1 => max_region_nodes.min(limit.max(2)),
                    _ => max_region_nodes,
                };
                let part = tr_netlist::partition::partition(
                    &compiled,
                    &packing_options(region_nodes, max_cut_width, None),
                );
                let mut evaluator = RegionEvaluator::new(
                    compiled.net_count(),
                    region_nodes,
                    1,
                    options.governor.clone(),
                );
                let mut stats = vec![SignalStats::new(0.0, 0.0); compiled.net_count()];
                for (pi, s) in compiled.primary_inputs().iter().zip(pi_stats) {
                    stats[pi.0] = *s;
                }
                for region in part.regions() {
                    let out = evaluator
                        .evaluate(&compiled, library, region, &stats)?
                        .to_vec();
                    for (net, s) in region.outputs.iter().zip(out) {
                        stats[net.0] = s;
                    }
                }
                let expanders = expander_map(&part, compiled.gates().len());
                let approx_fraction = part.approx_fraction(&compiled);
                partition_state = Some(PartitionState {
                    partition: part,
                    evaluator,
                    expanders,
                    approx_fraction,
                });
                stats
            }
            PropagationMode::Monte { steps, seed } => {
                let compiled = CompiledCircuit::compile(circuit, library)?;
                monte::estimate_governed(
                    &compiled,
                    library,
                    pi_stats,
                    steps,
                    monte_dt(pi_stats),
                    seed,
                    options.governor.as_ref(),
                )?
            }
        };
        Ok(IncrementalPropagator {
            mode,
            pi_stats: pi_stats.to_vec(),
            net_stats,
            bdds,
            partition: partition_state,
            // The Monte backend has no engine to pin a governor to; keep
            // our own clone so refreshes stay governed.
            monte_governor: options.governor.clone(),
            repropagations: 0,
            refreshed_nets: 0,
        })
    }

    /// The active backend.
    pub fn mode(&self) -> PropagationMode {
        self.mode
    }

    /// Attaches (or with `None` detaches) a [`Governor`] for every
    /// subsequent refresh — how the degradation ladder stops enforcing a
    /// deadline once it has already degraded (the run must complete).
    pub fn set_governor(&mut self, governor: Option<Governor>) {
        if let Some(bdds) = &mut self.bdds {
            bdds.set_governor(governor.clone());
        }
        if let Some(state) = &mut self.partition {
            state.evaluator.set_governor(governor.clone());
        }
        self.monte_governor = governor;
    }

    /// The current per-net statistics (valid for the last circuit seen).
    pub fn net_stats(&self) -> &[SignalStats] {
        &self.net_stats
    }

    /// The `PartitionedBdd` backend's partition shape as
    /// `(regions, cut_nets, approx_fraction)`; `None` for the other
    /// backends. `approx_fraction` is the fraction of gate-driven nets
    /// not *provably* exact under the cut (`0.0` certifies the
    /// statistics equal full-BDD up to rounding — see
    /// [`Partition::approx_fraction`]).
    pub fn partition_summary(&self) -> Option<(usize, usize, f64)> {
        self.partition.as_ref().map(|s| {
            (
                s.partition.regions().len(),
                s.partition.cut_nets().len(),
                s.approx_fraction,
            )
        })
    }

    /// The `PartitionedBdd` backend's cone partition itself (`None` for
    /// the other backends) — the region schedule callers hand to
    /// `tr_reorder::optimize_sharded_governed_with_net_stats` so the
    /// optimizer shards over the same regions the statistics did.
    pub fn partition(&self) -> Option<&Partition> {
        self.partition.as_ref().map(|s| &s.partition)
    }

    /// Cumulative engine health (caches, GC, peak live) of the exact
    /// backend: the monolithic engine for `ExactBdd`, the region
    /// evaluator's engine for `PartitionedBdd` (counters accumulate
    /// across its per-region resets); `None` for the backends with no
    /// BDD engine (`Independent`, `Monte`).
    pub fn engine_stats(&self) -> Option<EngineStats> {
        if let Some(bdds) = &self.bdds {
            return Some(bdds.manager().engine_stats());
        }
        self.partition.as_ref().map(|s| s.evaluator.engine_stats())
    }

    /// Number of [`IncrementalPropagator::refresh`] calls so far.
    pub fn repropagations(&self) -> usize {
        self.repropagations
    }

    /// Total nets whose statistics were re-derived across all refreshes
    /// (the accumulated dirty-cone size; a full Monte re-estimate counts
    /// every net).
    pub fn refreshed_nets(&self) -> usize {
        self.refreshed_nets
    }

    /// Brings the statistics up to date after `dirty_gates` of `circuit`
    /// changed, re-deriving only their fanout cones (see the module
    /// docs for what each backend does). `circuit` must be the *edited*
    /// circuit, structurally identical (same nets, gates and wiring) to
    /// the one the propagator last saw — exactly what
    /// [`Circuit::set_config`]/[`Circuit::set_cell`] guarantee.
    ///
    /// Returns the nets whose statistics actually changed, in
    /// topological order (empty for a config-only edit; every net for a
    /// Monte re-estimate) — the set a power delta pass must re-score
    /// against, see [`IncrementalPower::rescore`]. The refreshed vector
    /// itself is read back via [`IncrementalPropagator::net_stats`].
    ///
    /// # Errors
    ///
    /// Returns [`PropagationError`] if the circuit does not compile
    /// against `library` or a recomposed cone blows the node budget.
    ///
    /// # Panics
    ///
    /// Panics if `circuit`'s net count differs from the propagator's.
    pub fn refresh(
        &mut self,
        circuit: &Circuit,
        library: &Library,
        dirty_gates: &[GateId],
    ) -> Result<Vec<NetId>, PropagationError> {
        assert_eq!(
            circuit.net_count(),
            self.net_stats.len(),
            "circuit must keep its net numbering across edits"
        );
        let _g = tr_trace::span!("prop.refresh", dirty_gates = dirty_gates.len());
        self.repropagations += 1;
        let dirty = match self.mode {
            PropagationMode::Independent => {
                let order = circuit.topological_order()?;
                let mut gate_dirty = vec![false; circuit.gates().len()];
                for &g in dirty_gates {
                    gate_dirty[g.0] = true;
                }
                let mut net_dirty = vec![false; circuit.net_count()];
                let mut dirty = Vec::new();
                let mut buf = [SignalStats::constant(false); MAX_CELL_ARITY];
                for gid in order {
                    let gate = circuit.gate(gid);
                    if !gate_dirty[gid.0] && !gate.inputs.iter().any(|n| net_dirty[n.0]) {
                        continue;
                    }
                    let cell = library.cell(&gate.cell).expect("unknown cell");
                    for (slot, net) in buf.iter_mut().zip(&gate.inputs) {
                        *slot = self.net_stats[net.0];
                    }
                    let new = prob::propagate(cell.function(), &buf[..gate.inputs.len()]);
                    // The cone ends wherever the recomputed statistics
                    // come out unchanged (e.g. everywhere, for a
                    // config-only edit).
                    if new != self.net_stats[gate.output.0] {
                        self.net_stats[gate.output.0] = new;
                        net_dirty[gate.output.0] = true;
                        dirty.push(gate.output);
                    }
                }
                dirty
            }
            PropagationMode::ExactBdd => {
                let compiled = CompiledCircuit::compile(circuit, library)?;
                let bdds = self.bdds.as_mut().expect("ExactBdd retains its engine");
                let dirty = bdds.repropagate(&compiled, library, dirty_gates)?;
                bdds.exact_stats_into(&self.pi_stats, &dirty, &mut self.net_stats)?;
                dirty
            }
            PropagationMode::PartitionedBdd { .. } => {
                // Dirty gates dirty their owning regions; a re-evaluated
                // region whose outputs change dirties its dependents.
                // Regions are topologically indexed, so one pass in
                // index order settles the cascade, and the re-evaluation
                // is bit-for-bit the constructor's pass — a config-only
                // edit reproduces identical statistics and the cascade
                // stops immediately.
                let compiled = CompiledCircuit::compile(circuit, library)?;
                let state = self
                    .partition
                    .as_mut()
                    .expect("PartitionedBdd retains its partition");
                let n_regions = state.partition.regions().len();
                let mut region_dirty = vec![false; n_regions];
                for &g in dirty_gates {
                    region_dirty[state.partition.region_of(g)] = true;
                    // Regions that re-expanded this gate behind their cut
                    // hold a private copy of its logic; refresh them too.
                    if let Some(rs) = state.expanders.get(g.0) {
                        for &r in rs {
                            region_dirty[r as usize] = true;
                        }
                    }
                }
                let mut dirty = Vec::new();
                for r in 0..n_regions {
                    if !region_dirty[r] {
                        continue;
                    }
                    let region = &state.partition.regions()[r];
                    let out =
                        state
                            .evaluator
                            .evaluate(&compiled, library, region, &self.net_stats)?;
                    let mut changed: Vec<(NetId, SignalStats)> = Vec::new();
                    for (net, s) in region.outputs.iter().zip(out) {
                        if *s != self.net_stats[net.0] {
                            changed.push((*net, *s));
                        }
                    }
                    if changed.is_empty() {
                        continue;
                    }
                    for &dep in state.partition.dependents(r) {
                        region_dirty[dep as usize] = true;
                    }
                    for (net, s) in changed {
                        self.net_stats[net.0] = s;
                        dirty.push(net);
                    }
                }
                dirty
            }
            PropagationMode::Monte { steps, seed } => {
                // Sampling has no cone structure to exploit; re-estimate
                // with the same budget, interval and seed so an
                // unchanged circuit reproduces its estimate exactly.
                let compiled = CompiledCircuit::compile(circuit, library)?;
                self.net_stats = monte::estimate_governed(
                    &compiled,
                    library,
                    &self.pi_stats,
                    steps,
                    monte_dt(&self.pi_stats),
                    seed,
                    self.monte_governor.as_ref(),
                )?;
                (0..self.net_stats.len()).map(NetId).collect()
            }
        };
        self.refreshed_nets += dirty.len();
        Ok(dirty)
    }
}

/// A per-gate power ledger with delta re-scoring: the counterpart of
/// [`IncrementalPropagator`] for the *power* side of the loop.
///
/// [`IncrementalPower::rescore`] re-evaluates only gates whose
/// configuration changed, whose inputs carry refreshed statistics, or
/// whose output load changed (a cell substitution changes the
/// substituted gate's input pin capacitances, dirtying its *drivers*),
/// then re-sums the ledger in gate order — so the total stays bitwise
/// identical to a full
/// [`circuit_total_compiled`](crate::circuit_total_compiled) pass over
/// the same circuit and statistics.
#[derive(Debug, Clone)]
pub struct IncrementalPower {
    per_gate: Vec<f64>,
    loads: Vec<f64>,
    total: f64,
    rescored_gates: usize,
}

impl IncrementalPower {
    /// Scores every gate once (configurations supplied by `config_of`,
    /// gate index → configuration) and stores the ledger.
    ///
    /// # Panics
    ///
    /// Panics if `net_stats` is not net-indexed for this circuit or a
    /// configuration is out of range.
    pub fn new(
        compiled: &CompiledCircuit,
        model: &PowerModel,
        net_stats: &[SignalStats],
        scratch: &mut Scratch,
        mut config_of: impl FnMut(usize) -> usize,
    ) -> Self {
        assert_eq!(
            net_stats.len(),
            compiled.net_count(),
            "one SignalStats per net"
        );
        let loads = external_loads_compiled(compiled, model);
        let mut buf = [SignalStats::constant(false); MAX_CELL_ARITY];
        let mut per_gate = Vec::with_capacity(compiled.gates().len());
        for (i, gate) in compiled.gates().iter().enumerate() {
            let nets = compiled.inputs(gate);
            for (slot, net) in buf.iter_mut().zip(nets) {
                *slot = net_stats[net.0];
            }
            per_gate.push(model.total_power_into(
                gate.cell,
                config_of(i),
                &buf[..nets.len()],
                loads[gate.output.0],
                scratch,
            ));
        }
        let total = per_gate.iter().sum();
        IncrementalPower {
            per_gate,
            loads,
            total,
            rescored_gates: 0,
        }
    }

    /// The current total power (W).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// One entry per gate, indexed like `compiled.gates()` (W).
    pub fn per_gate(&self) -> &[f64] {
        &self.per_gate
    }

    /// Total gates re-scored across all [`IncrementalPower::rescore`]
    /// calls (the accumulated delta size).
    pub fn rescored_gates(&self) -> usize {
        self.rescored_gates
    }

    /// Re-scores the delta after an accepted change and returns the new
    /// total: `dirty_gates` are gates whose configuration or cell
    /// changed, `dirty_nets` are nets whose statistics were refreshed
    /// (as returned by [`IncrementalPropagator::refresh`]); gates whose
    /// output load moved (see the type docs) are picked up
    /// automatically. `compiled` must describe the edited circuit with
    /// the same net and gate numbering.
    ///
    /// # Panics
    ///
    /// Panics if `compiled`/`net_stats` disagree with the ledger's gate
    /// or net count, or a configuration is out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn rescore(
        &mut self,
        compiled: &CompiledCircuit,
        model: &PowerModel,
        net_stats: &[SignalStats],
        scratch: &mut Scratch,
        dirty_gates: &[GateId],
        dirty_nets: &[NetId],
        mut config_of: impl FnMut(usize) -> usize,
    ) -> f64 {
        assert_eq!(
            compiled.gates().len(),
            self.per_gate.len(),
            "circuit must keep its gate numbering across edits"
        );
        assert_eq!(net_stats.len(), self.loads.len(), "one SignalStats per net");
        let mut affected = vec![false; self.per_gate.len()];
        for &g in dirty_gates {
            affected[g.0] = true;
        }
        let mut net_dirty = vec![false; self.loads.len()];
        for &n in dirty_nets {
            net_dirty[n.0] = true;
        }
        // A cell substitution moves the substituted gate's input pin
        // capacitances: every driver of a net whose external load
        // changed must be re-scored too.
        let loads = external_loads_compiled(compiled, model);
        for (i, gate) in compiled.gates().iter().enumerate() {
            if loads[gate.output.0] != self.loads[gate.output.0] {
                affected[i] = true;
            }
        }
        self.loads = loads;
        let mut buf = [SignalStats::constant(false); MAX_CELL_ARITY];
        for (i, gate) in compiled.gates().iter().enumerate() {
            let nets = compiled.inputs(gate);
            if !affected[i] && !nets.iter().any(|n| net_dirty[n.0]) {
                continue;
            }
            for (slot, net) in buf.iter_mut().zip(nets) {
                *slot = net_stats[net.0];
            }
            self.per_gate[i] = model.total_power_into(
                gate.cell,
                config_of(i),
                &buf[..nets.len()],
                self.loads[gate.output.0],
                scratch,
            );
            self.rescored_gates += 1;
        }
        // Re-sum in gate order: bitwise identical to a full pass.
        self.total = self.per_gate.iter().sum();
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{circuit_total_compiled, propagate_with_mode};
    use tr_gatelib::{CellKind, Process};
    use tr_netlist::generators;

    fn toggle_cell(c: &mut Circuit, g: GateId) {
        let new = match c.gate(g).cell.clone() {
            CellKind::Nand(k) => CellKind::Nor(k),
            CellKind::Nor(k) => CellKind::Nand(k),
            CellKind::Aoi(gs) => CellKind::Oai(gs),
            CellKind::Oai(gs) => CellKind::Aoi(gs),
            CellKind::Inv => panic!("an inverter has no same-arity dual"),
        };
        c.set_cell(g, new);
    }

    fn pick_victim(c: &Circuit) -> GateId {
        GateId(
            c.gates()
                .iter()
                .position(|g| !matches!(g.cell, CellKind::Inv))
                .expect("multi-input gate"),
        )
    }

    fn pi_stats(n: usize) -> Vec<SignalStats> {
        (0..n)
            .map(|i| SignalStats::new(0.15 + 0.03 * (i % 20) as f64, 1.0e4 * (1 + i % 6) as f64))
            .collect()
    }

    fn full_total(
        c: &Circuit,
        lib: &Library,
        model: &PowerModel,
        net_stats: &[SignalStats],
        scratch: &mut Scratch,
    ) -> f64 {
        let compiled = CompiledCircuit::compile(c, lib).unwrap();
        let loads = external_loads_compiled(&compiled, model);
        circuit_total_compiled(&compiled, model, net_stats, &loads, scratch, |i| {
            compiled.gates()[i].config as usize
        })
    }

    #[test]
    fn initial_stats_match_propagate_with_mode() {
        let lib = Library::standard();
        let c = generators::carry_skip_adder(8, 4, &lib);
        let pi = pi_stats(c.primary_inputs().len());
        for mode in [
            PropagationMode::Independent,
            PropagationMode::ExactBdd,
            PropagationMode::monte(3),
        ] {
            let prop = IncrementalPropagator::new(&c, &lib, &pi, mode).unwrap();
            let want = propagate_with_mode(&c, &lib, &pi, mode).unwrap();
            assert_eq!(prop.net_stats(), &want[..], "{mode}");
        }
    }

    #[test]
    fn refresh_matches_full_propagation_for_every_backend() {
        let lib = Library::standard();
        let mut c = generators::carry_select_adder(8, 4, &lib);
        let pi = pi_stats(c.primary_inputs().len());
        let victim = pick_victim(&c);
        for mode in [
            PropagationMode::Independent,
            PropagationMode::ExactBdd,
            PropagationMode::monte(9),
        ] {
            let mut prop = IncrementalPropagator::new(&c, &lib, &pi, mode).unwrap();
            toggle_cell(&mut c, victim);
            prop.refresh(&c, &lib, &[victim]).unwrap();
            let want = propagate_with_mode(&c, &lib, &pi, mode).unwrap();
            for (net, (x, y)) in prop.net_stats().iter().zip(&want).enumerate() {
                assert!(
                    (x.probability() - y.probability()).abs() < 1e-12,
                    "{mode} net {net}: P {x} vs {y}"
                );
                let tol = 1e-12 * y.density().abs().max(1.0);
                assert!(
                    (x.density() - y.density()).abs() < tol,
                    "{mode} net {net}: D {x} vs {y}"
                );
            }
            toggle_cell(&mut c, victim); // restore for the next mode
            prop.refresh(&c, &lib, &[victim]).unwrap();
            assert_eq!(prop.repropagations(), 2, "{mode}");
        }
    }

    #[test]
    fn config_only_refresh_re_derives_nothing() {
        let lib = Library::standard();
        let mut c = generators::comparator(4, &lib);
        let pi = pi_stats(c.primary_inputs().len());
        let mut prop =
            IncrementalPropagator::new(&c, &lib, &pi, PropagationMode::Independent).unwrap();
        let before = prop.net_stats().to_vec();
        let choices: Vec<usize> = c
            .gates()
            .iter()
            .map(|g| lib.cell(&g.cell).unwrap().configurations().len() - 1)
            .collect();
        for (i, cfg) in choices.into_iter().enumerate() {
            c.set_config(GateId(i), cfg);
        }
        let all: Vec<GateId> = (0..c.gates().len()).map(GateId).collect();
        let dirty = prop.refresh(&c, &lib, &all).unwrap();
        assert!(dirty.is_empty(), "§4.2: no net may change");
        assert_eq!(prop.refreshed_nets(), 0);
        assert_eq!(prop.net_stats(), &before[..]);
    }

    #[test]
    fn delta_power_is_bitwise_identical_to_a_full_pass() {
        let lib = Library::standard();
        let model = PowerModel::new(&lib, Process::default());
        let mut c = generators::carry_skip_adder(8, 4, &lib);
        let pi = pi_stats(c.primary_inputs().len());
        let mut prop =
            IncrementalPropagator::new(&c, &lib, &pi, PropagationMode::Independent).unwrap();
        let mut scratch = Scratch::new();
        let compiled = CompiledCircuit::compile(&c, &lib).unwrap();
        let mut ledger =
            IncrementalPower::new(&compiled, &model, prop.net_stats(), &mut scratch, |i| {
                compiled.gates()[i].config as usize
            });
        assert_eq!(
            ledger.total(),
            full_total(&c, &lib, &model, prop.net_stats(), &mut scratch)
        );
        // A cell substitution: refresh statistics, then delta-rescore.
        let victim = pick_victim(&c);
        toggle_cell(&mut c, victim);
        let dirty = prop.refresh(&c, &lib, &[victim]).unwrap();
        assert!(!dirty.is_empty(), "a cell substitution dirties its cone");
        let fresh = CompiledCircuit::compile(&c, &lib).unwrap();
        let total = ledger.rescore(
            &fresh,
            &model,
            prop.net_stats(),
            &mut scratch,
            &[victim],
            &dirty,
            |i| fresh.gates()[i].config as usize,
        );
        assert_eq!(
            total,
            full_total(&c, &lib, &model, prop.net_stats(), &mut scratch),
            "delta total must be bitwise identical"
        );
    }

    #[test]
    fn delta_power_rescored_set_is_smaller_than_the_circuit() {
        let lib = Library::standard();
        let model = PowerModel::new(&lib, Process::default());
        let mut c = generators::array_multiplier(4, &lib);
        let pi = pi_stats(c.primary_inputs().len());
        let mut prop =
            IncrementalPropagator::new(&c, &lib, &pi, PropagationMode::ExactBdd).unwrap();
        let mut scratch = Scratch::new();
        let compiled = CompiledCircuit::compile(&c, &lib).unwrap();
        let mut ledger =
            IncrementalPower::new(&compiled, &model, prop.net_stats(), &mut scratch, |i| {
                compiled.gates()[i].config as usize
            });
        // Pick a victim deep in the array so its cone is a strict subset.
        let victim = GateId(
            (0..c.gates().len())
                .rev()
                .find(|&i| !matches!(c.gates()[i].cell, CellKind::Inv))
                .unwrap(),
        );
        toggle_cell(&mut c, victim);
        let dirty = prop.refresh(&c, &lib, &[victim]).unwrap();
        let fresh = CompiledCircuit::compile(&c, &lib).unwrap();
        let total = ledger.rescore(
            &fresh,
            &model,
            prop.net_stats(),
            &mut scratch,
            &[victim],
            &dirty,
            |i| fresh.gates()[i].config as usize,
        );
        assert!(
            ledger.rescored_gates() < c.gates().len() / 2,
            "rescored {} of {} gates",
            ledger.rescored_gates(),
            c.gates().len()
        );
        assert_eq!(
            total,
            full_total(&c, &lib, &model, prop.net_stats(), &mut scratch)
        );
    }
}
