//! The paper's extended power-consumption model (§3.3).
//!
//! Classic gate-level power estimation charges only the output capacitance:
//! `P = ½·C_out·Vdd²·D(y)`. The paper's contribution is to extend this to
//! the **internal nodes** of each static CMOS gate, because transistor
//! reordering changes internal-node activity while leaving the output
//! untouched. For every node `n` of a gate:
//!
//! * `H_n` / `G_n` — Boolean path functions to Vdd/Vss (from [`tr_spnet`]);
//! * equilibrium probability — the stationary solution of the charge
//!   Markov chain, `P(n) = P(H_n) / (P(H_n) + P(G_n))`;
//! * transition density — a boolean-difference propagation in the style of
//!   Najm, weighted by the charge state (see `DESIGN.md` §3 for the
//!   reconstruction):
//!   `D(n) = Σᵢ [P(∂H_n/∂xᵢ)·(1−P(n)) + P(∂G_n/∂xᵢ)·P(n)]·D(xᵢ)`;
//! * power — `½·C_n·Vdd²·D(n)`, summed over the output and every internal
//!   node.
//!
//! For the output node the density formula collapses to exactly Najm's
//! `D(y) = Σ P(∂y/∂xᵢ)·D(xᵢ)` (property-tested), so the extension is
//! strictly additive.
//!
//! [`PowerModel`] *compiles* the path functions and Boolean differences
//! of **every configuration of every library cell** at construction into
//! flat, support-shrunk multilinear leaf tables — the whole Table 2
//! library is a few hundred truth tables — so per-gate evaluation inside
//! the optimizer's inner loop is an allocation-free Shannon fold driven
//! by a reusable [`Scratch`]. The dense-[`tr_gatelib::CellId`] fast paths
//! ([`PowerModel::total_power_into`], [`PowerModel::best_and_worst_by_id`])
//! pair with `tr_netlist::CompiledCircuit` to skip all hashing; the
//! original naive minterm-walk evaluator survives as a test oracle in
//! [`mod@reference`].
//!
//! # Example
//!
//! Power of a NAND2 under asymmetric input activity:
//!
//! ```
//! use tr_boolean::SignalStats;
//! use tr_gatelib::{CellKind, Library, Process};
//! use tr_power::PowerModel;
//!
//! let lib = Library::standard();
//! let model = PowerModel::new(&lib, Process::default());
//! let stats = [SignalStats::new(0.5, 1.0e6), SignalStats::new(0.5, 1.0e4)];
//! let p0 = model.gate_power(&CellKind::Nand(2), 0, &stats, 0.0);
//! let p1 = model.gate_power(&CellKind::Nand(2), 1, &stats, 0.0);
//! // The two orderings of the series stack consume different power…
//! assert!((p0.total - p1.total).abs() > 0.0);
//! // …but drive the output identically.
//! assert_eq!(p0.nodes[0].density, p1.nodes[0].density);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod incremental;
mod mode;
mod model;
pub mod monte;
pub mod partition;
pub mod reference;
pub mod scenario;

pub use circuit::{
    circuit_power, circuit_total_compiled, external_loads, external_loads_compiled, propagate,
    propagate_exact, CircuitPower,
};
pub use incremental::{IncrementalPower, IncrementalPropagator, PropagatorOptions};
pub use mode::{
    propagate_exact_bdd, propagate_exact_bdd_with_stats, propagate_with_mode, PropagationError,
    PropagationMode,
};
pub use model::{GatePower, NodePower, PowerModel, Scratch, MAX_CELL_ARITY};
pub use partition::{
    propagate_partitioned, propagate_partitioned_compiled, PartitionConfig, PartitionReport,
};
