//! The two evaluation scenarios of the paper's §5.1 (Fig. 6).
//!
//! * **Scenario A** — the circuit is embedded in a larger digital system:
//!   primary-input probabilities and transition densities are drawn
//!   uniformly at random (`P ~ U[0,1]`, `D ~ U[0, 1M]` transitions per
//!   second).
//! * **Scenario B** — the circuit *is* the digital system, with latches at
//!   its inputs and a fixed clock: every primary input has `P = 0.5` and
//!   `D = 0.5` transitions per cycle, converted to transitions per second
//!   through the clock frequency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tr_boolean::SignalStats;

/// An input-statistics scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// Random embedded-subcircuit statistics (`P ~ U[0,1]`,
    /// `D ~ U[0, max_density]` transitions/s).
    A {
        /// Upper bound of the density distribution (the paper uses 1M
        /// transitions per second).
        max_density: f64,
    },
    /// Latched inputs at a fixed clock: `P = 0.5`, `D = 0.5`
    /// transitions/cycle.
    B {
        /// Clock frequency in Hz used to convert per-cycle densities to
        /// per-second densities.
        clock_hz: f64,
    },
}

impl Scenario {
    /// Scenario A with the paper's parameters (densities up to 1M
    /// transitions per second).
    pub fn a() -> Self {
        Scenario::A { max_density: 1.0e6 }
    }

    /// Scenario B with a 20 MHz clock (a representative mid-90s system
    /// clock; only relative powers matter).
    pub fn b() -> Self {
        Scenario::B { clock_hz: 20.0e6 }
    }

    /// Draws primary-input statistics for `n` inputs. Deterministic in
    /// `seed` (Scenario B ignores it).
    pub fn input_stats(&self, n: usize, seed: u64) -> Vec<SignalStats> {
        match *self {
            Scenario::A { max_density } => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..n)
                    .map(|_| {
                        let p: f64 = rng.gen_range(0.0..=1.0);
                        let d: f64 = rng.gen_range(0.0..=max_density);
                        // A signal pinned at a rail cannot toggle; nudge
                        // the probability off the rails so (P, D) stays
                        // realizable by the waveform generator.
                        let p = p.clamp(0.01, 0.99);
                        SignalStats::new(p, d)
                    })
                    .collect()
            }
            Scenario::B { clock_hz } => {
                vec![SignalStats::new(0.5, 0.5 * clock_hz); n]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_a_is_seeded_and_in_range() {
        let s = Scenario::a();
        let a = s.input_stats(16, 7);
        let b = s.input_stats(16, 7);
        assert_eq!(a, b);
        let c = s.input_stats(16, 8);
        assert_ne!(a, c);
        for st in &a {
            assert!((0.01..=0.99).contains(&st.probability()));
            assert!((0.0..=1.0e6).contains(&st.density()));
        }
    }

    #[test]
    fn scenario_b_is_uniform() {
        let s = Scenario::b();
        let stats = s.input_stats(4, 123);
        for st in &stats {
            assert_eq!(st.probability(), 0.5);
            assert!((st.density() - 1.0e7).abs() < 1e-3);
        }
    }

    #[test]
    fn scenario_b_scales_with_clock() {
        let s = Scenario::B { clock_hz: 1.0e6 };
        let stats = s.input_stats(1, 0);
        assert!((stats[0].density() - 5.0e5).abs() < 1e-6);
    }
}
