//! Equivalence of the two exact backends, and proof that the exact one
//! is *needed*:
//!
//! 1. `ExactBdd` vs the truth-table `propagate_exact` on every suite
//!    circuit where the latter applies (≤ `MAX_VARS` primary inputs),
//!    to 1e-12 — randomized statistics on the lighter circuits, one
//!    deterministic draw on the 16-input ones, and a composed-function
//!    probability check on `mult8` (whose truth-table *density* oracle
//!    needs ~a minute in debug builds; its BDD probabilities are still
//!    pinned to 1e-12 here).
//! 2. A reconvergent-fanout circuit where the independence assumption is
//!    provably wrong by 0.125 in probability while `ExactBdd` agrees
//!    with an i.i.d.-sampling Monte Carlo run within 3σ.

use proptest::prelude::*;
use std::sync::OnceLock;
use tr_boolean::{prob, BoolFn, SignalStats, MAX_VARS};
use tr_gatelib::{CellKind, Library};
use tr_netlist::suite::BenchmarkCase;
use tr_netlist::{suite, Circuit};
use tr_power::{
    propagate, propagate_exact, propagate_exact_bdd, propagate_with_mode, PropagationMode,
};

fn library() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(Library::standard)
}

/// Suite circuits whose primary-input count is within `max_pis`.
fn suite_up_to(max_pis: usize) -> Vec<BenchmarkCase> {
    suite::standard_suite(library())
        .into_iter()
        .filter(|c| c.circuit.primary_inputs().len() <= max_pis)
        .collect()
}

/// Asserts `(P, D)` agreement to 1e-12 (absolute in P, relative in D).
fn assert_stats_close(name: &str, net: usize, a: &SignalStats, b: &SignalStats) {
    assert!(
        (a.probability() - b.probability()).abs() < 1e-12,
        "{name} net {net}: P {} vs {}",
        a.probability(),
        b.probability()
    );
    let d_tol = 1e-12 * a.density().abs().max(b.density().abs()).max(1.0);
    assert!(
        (a.density() - b.density()).abs() < d_tol,
        "{name} net {net}: D {} vs {}",
        a.density(),
        b.density()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// Randomized statistics over every ≤12-input suite circuit (the
    /// truth-table oracle stays fast there).
    #[test]
    fn bdd_matches_truth_table_exact_on_light_suite(
        raw in prop::collection::vec((0.0f64..=1.0, 0.0f64..1.0e6), 12),
    ) {
        let lib = library();
        for case in suite_up_to(12) {
            let n = case.circuit.primary_inputs().len();
            let pi: Vec<SignalStats> = raw[..n]
                .iter()
                .map(|&(p, d)| SignalStats::new(p, d))
                .collect();
            let tt = propagate_exact(&case.circuit, lib, &pi).expect("≤ MAX_VARS inputs");
            let bdd = propagate_exact_bdd(&case.circuit, lib, &pi).expect("fits node budget");
            for (net, (a, b)) in tt.iter().zip(&bdd).enumerate() {
                assert_stats_close(&case.name, net, a, b);
            }
        }
    }
}

/// One deterministic, deliberately asymmetric draw over the 13-to-16
/// input suite circuits (minus `mult8`, handled below): together with
/// the proptest above this covers **every** ≤`MAX_VARS`-input circuit
/// of the suite.
#[test]
fn bdd_matches_truth_table_exact_on_sixteen_input_suite() {
    let lib = library();
    for case in suite_up_to(MAX_VARS) {
        let n = case.circuit.primary_inputs().len();
        if n <= 12 || case.name == "mult8" {
            continue;
        }
        let pi: Vec<SignalStats> = (0..n)
            .map(|i| SignalStats::new(0.07 + 0.05 * i as f64, 3.0e4 * (1 + i % 5) as f64))
            .collect();
        let tt = propagate_exact(&case.circuit, lib, &pi).expect("≤ MAX_VARS inputs");
        let bdd = propagate_exact_bdd(&case.circuit, lib, &pi).expect("fits node budget");
        for (net, (a, b)) in tt.iter().zip(&bdd).enumerate() {
            assert_stats_close(&case.name, net, a, b);
        }
    }
}

/// `mult8` (16 inputs, 656 gates): pin the BDD probabilities of every
/// net against the Parker–McCluskey probability of the composed global
/// truth tables — the same global-function oracle `propagate_exact`
/// uses, without its (here minute-scale) density pass.
#[test]
fn bdd_matches_composed_function_probabilities_on_mult8() {
    let lib = library();
    let case = suite::standard_suite(lib)
        .into_iter()
        .find(|c| c.name == "mult8")
        .expect("mult8 registered in the suite");
    let c = &case.circuit;
    let n = c.primary_inputs().len();
    let pi: Vec<SignalStats> = (0..n)
        .map(|i| SignalStats::new(0.2 + 0.04 * i as f64, 1.0e5))
        .collect();
    let probs: Vec<f64> = pi.iter().map(SignalStats::probability).collect();

    let mut funcs: Vec<BoolFn> = vec![BoolFn::zero(n); c.net_count()];
    for (i, &net) in c.primary_inputs().iter().enumerate() {
        funcs[net.0] = BoolFn::var(n, i);
    }
    for gid in c.topological_order().expect("acyclic") {
        let gate = c.gate(gid);
        let cell = lib.cell(&gate.cell).expect("library cell");
        let subs: Vec<BoolFn> = gate.inputs.iter().map(|i| funcs[i.0].clone()).collect();
        funcs[gate.output.0] = cell.function().compose(&subs);
    }

    let bdd = propagate_exact_bdd(c, lib, &pi).expect("fits node budget");
    // Every 7th net plus every primary output: broad coverage without a
    // 2¹⁶-minterm walk for all 672 nets.
    let mut nets: Vec<usize> = (0..c.net_count()).step_by(7).collect();
    nets.extend(c.primary_outputs().iter().map(|n| n.0));
    for net in nets {
        let want = prob::probability(&funcs[net], &probs);
        assert!(
            (bdd[net].probability() - want).abs() < 1e-12,
            "net {net}: P {} vs {want}",
            bdd[net].probability()
        );
    }
}

/// The PR's reason to exist: on reconvergent fanout the independence
/// assumption is off by 0.125 in probability, while the BDD backend
/// lands within 3σ of an i.i.d. Monte Carlo measurement.
#[test]
fn independent_is_provably_wrong_where_exact_matches_monte() {
    let lib = library();
    // n1 = NAND(a, b); y = NAND(n1, b): y = a·b + ¬b. With P = 0.5,
    // exact P(y) = 0.75; treating n1 and b as independent gives
    // 1 − P(n1)·P(b) = 1 − 0.75·0.5 = 0.625.
    let mut c = Circuit::new("reconv");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let (_, n1) = c.add_gate(CellKind::Nand(2), vec![a, b], "n1");
    let (_, y) = c.add_gate(CellKind::Nand(2), vec![n1, b], "y");
    c.mark_output(y);
    let pi = vec![SignalStats::new(0.5, 1.0); 2];

    let indep = propagate(&c, lib, &pi);
    let exact = propagate_exact_bdd(&c, lib, &pi).expect("two variables");
    assert!((exact[y.0].probability() - 0.75).abs() < 1e-12);
    assert!((indep[y.0].probability() - 0.625).abs() < 1e-12);

    let steps = 50_000usize;
    let mc = propagate_with_mode(
        &c,
        lib,
        &pi,
        PropagationMode::Monte {
            steps,
            seed: 0x3A17,
        },
    )
    .expect("monte runs");
    let p = exact[y.0].probability();
    // σ of the sample mean over the correlated chain: the backend steps
    // at dt = 0.2·min-dwell, each input flips with p01 = dt/t0,
    // p10 = dt/t1 (unclamped at this dt), giving lag-1 autocorrelation
    // λ = 1 − p01 − p10 and a (1+λ)/(1−λ) variance inflation over
    // binomial.
    let (t0, t1) = pi[0].dwell_times().expect("non-quiescent input");
    let dt = 0.2 * t0.min(t1);
    let lambda = 1.0 - dt / t0 - dt / t1;
    let inflation = (1.0 + lambda) / (1.0 - lambda);
    let sigma = (p * (1.0 - p) / (steps - 1) as f64 * inflation).sqrt();
    let mc_err = (mc[y.0].probability() - p).abs();
    assert!(
        mc_err < 3.0 * sigma,
        "Monte Carlo {:.5} vs exact {p:.5}: {mc_err:.5} > 3σ = {:.5}",
        mc[y.0].probability(),
        3.0 * sigma
    );
    // The independence bias (0.125) towers over the sampling noise.
    let indep_err = (indep[y.0].probability() - p).abs();
    assert!(
        indep_err > 20.0 * sigma,
        "independence bias {indep_err:.5} should dwarf σ = {sigma:.5}"
    );
}
