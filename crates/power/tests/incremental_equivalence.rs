//! The dirty-cone contract: after every accepted change, incremental
//! re-propagation must be indistinguishable (to 1e-12) from throwing the
//! engine away and rebuilding — on randomized input statistics and
//! change sequences over the light suite circuits, on a deterministic
//! multi-change `csel32` scenario, and for one accepted change on
//! **every** circuit of the benchmark suite.

use proptest::prelude::*;
use std::sync::OnceLock;
use tr_boolean::SignalStats;
use tr_gatelib::{CellKind, Library};
use tr_netlist::suite::BenchmarkCase;
use tr_netlist::{suite, Circuit, GateId};
use tr_power::{propagate_exact_bdd, IncrementalPropagator, PropagationMode};

fn library() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(Library::standard)
}

/// Suite circuits whose primary-input count is within `max_pis`.
fn suite_up_to(max_pis: usize) -> Vec<BenchmarkCase> {
    suite::standard_suite(library())
        .into_iter()
        .filter(|c| c.circuit.primary_inputs().len() <= max_pis)
        .collect()
}

/// Gates with a same-arity dual cell (everything but inverters).
fn candidates(c: &Circuit) -> Vec<GateId> {
    (0..c.gates().len())
        .filter(|&i| !matches!(c.gates()[i].cell, CellKind::Inv))
        .map(GateId)
        .collect()
}

/// Swaps a gate's cell for its same-arity dual (NAND↔NOR, AOI↔OAI) —
/// the function-changing "accepted cell change" of the fixpoint loop.
fn toggle_cell(c: &mut Circuit, g: GateId) {
    let new = match c.gate(g).cell.clone() {
        CellKind::Nand(k) => CellKind::Nor(k),
        CellKind::Nor(k) => CellKind::Nand(k),
        CellKind::Aoi(gs) => CellKind::Oai(gs),
        CellKind::Oai(gs) => CellKind::Aoi(gs),
        CellKind::Inv => panic!("an inverter has no same-arity dual"),
    };
    c.set_cell(g, new);
}

/// Asserts `(P, D)` agreement to 1e-12 (absolute in P, relative in D).
fn assert_stats_close(name: &str, net: usize, a: &SignalStats, b: &SignalStats) {
    assert!(
        (a.probability() - b.probability()).abs() < 1e-12,
        "{name} net {net}: P {} vs {}",
        a.probability(),
        b.probability()
    );
    let d_tol = 1e-12 * a.density().abs().max(b.density().abs()).max(1.0);
    assert!(
        (a.density() - b.density()).abs() < d_tol,
        "{name} net {net}: D {} vs {}",
        a.density(),
        b.density()
    );
}

/// Applies a sequence of accepted cell changes to `circuit`, refreshing
/// incrementally after each, and pins every refresh against a full
/// rebuild of the edited circuit.
fn run_sequence(name: &str, circuit: &Circuit, pi: &[SignalStats], picks: &[u32]) {
    let lib = library();
    let mut c = circuit.clone();
    let mut prop = IncrementalPropagator::new(&c, lib, pi, PropagationMode::ExactBdd)
        .expect("fits node budget");
    let cands = candidates(&c);
    assert!(!cands.is_empty(), "{name}: no toggleable gate");
    for &pick in picks {
        let victim = cands[pick as usize % cands.len()];
        toggle_cell(&mut c, victim);
        prop.refresh(&c, lib, &[victim])
            .expect("refresh fits budget");
        let want = propagate_exact_bdd(&c, lib, pi).expect("rebuild fits budget");
        for (net, (a, b)) in prop.net_stats().iter().zip(&want).enumerate() {
            assert_stats_close(name, net, a, b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    /// Randomized statistics and change sequences over every ≤12-input
    /// suite circuit: four accepted changes each, every one checked
    /// against a full rebuild.
    #[test]
    fn incremental_matches_full_rebuild_on_light_suite(
        raw in prop::collection::vec((0.0f64..=1.0, 0.0f64..1.0e6), 12),
        picks in prop::collection::vec(any::<u32>(), 4),
    ) {
        for case in suite_up_to(12) {
            let n = case.circuit.primary_inputs().len();
            let pi: Vec<SignalStats> = raw[..n]
                .iter()
                .map(|&(p, d)| SignalStats::new(p, d))
                .collect();
            run_sequence(&case.name, &case.circuit, &pi, &picks);
        }
    }
}

/// The deterministic `csel32` scenario (65 primary inputs — far past
/// any truth-table oracle): six accepted changes, including an
/// immediate un-toggle (picks 4 and 5 hit the same victim), each
/// checked against a full rebuild.
#[test]
fn incremental_matches_full_rebuild_on_csel32() {
    let case = suite::standard_suite(library())
        .into_iter()
        .find(|c| c.name == "csel32")
        .expect("csel32 registered in the suite");
    let n = case.circuit.primary_inputs().len();
    let pi: Vec<SignalStats> = (0..n)
        .map(|i| SignalStats::new(0.08 + 0.013 * (i % 64) as f64, 2.0e4 * (1 + i % 9) as f64))
        .collect();
    run_sequence("csel32", &case.circuit, &pi, &[0, 17, 43, 9, 26, 26]);
}

/// One accepted change on **every** circuit of the suite (the
/// acceptance bar: incremental matches a full `exact_stats` rebuild to
/// 1e-12 on every suite circuit, `rnd_e`'s 500 dense random gates
/// included). The victim sits mid-circuit so the cone is non-trivial.
#[test]
fn incremental_matches_full_rebuild_on_every_suite_circuit() {
    for case in suite::standard_suite(library()) {
        let n = case.circuit.primary_inputs().len();
        let pi: Vec<SignalStats> = (0..n)
            .map(|i| SignalStats::new(0.1 + 0.025 * (i % 30) as f64, 1.0e4 * (1 + i % 7) as f64))
            .collect();
        let mid = candidates(&case.circuit).len() as u32 / 2;
        run_sequence(&case.name, &case.circuit, &pi, &[mid]);
    }
}
