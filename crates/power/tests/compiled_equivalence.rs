//! Equivalence of the compiled Shannon-fold kernel and the retained naive
//! minterm-walk evaluator (`tr_power::reference`), across **every cell ×
//! configuration** of the Table 2 library under randomized signal
//! statistics and output loads.
//!
//! The compiled kernel reorders floating-point work (support-shrunk fold
//! vs. minterm walk), so equality is asserted to 1e-12 relative — far
//! tighter than any physical meaning in the model, loose enough to admit
//! the rounding differences the reordering legally introduces.

use proptest::prelude::*;
use std::sync::OnceLock;
use tr_boolean::SignalStats;
use tr_gatelib::{Library, Process};
use tr_power::{reference, PowerModel};

fn setup() -> &'static (Library, Process, PowerModel) {
    static SETUP: OnceLock<(Library, Process, PowerModel)> = OnceLock::new();
    SETUP.get_or_init(|| {
        let lib = Library::standard();
        let process = Process::default();
        let model = PowerModel::new(&lib, process.clone());
        (lib, process, model)
    })
}

/// `|a - b|` within `tol` of the larger magnitude (plus an absolute floor
/// for values that are exactly zero in one evaluator).
fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()) + 1e-30
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn compiled_kernel_matches_reference(
        raw in prop::collection::vec((0.0f64..=1.0, 0.0f64..1.0e6), 6),
        load in 0.0f64..2.0e-14,
    ) {
        let (lib, process, model) = setup();
        let stats: Vec<SignalStats> = raw
            .iter()
            .map(|&(p, d)| SignalStats::new(p, d))
            .collect();
        for cell in lib.cells() {
            let inputs = &stats[..cell.arity()];
            for c in 0..cell.configurations().len() {
                let fast = model.gate_power(cell.kind(), c, inputs, load);
                let slow = reference::gate_power(cell, process, c, inputs, load);
                prop_assert_eq!(fast.nodes.len(), slow.nodes.len());
                prop_assert!(
                    rel_close(fast.total, slow.total, 1e-12),
                    "{} config {c}: total {} vs {}",
                    cell.name(), fast.total, slow.total
                );
                for (f, s) in fast.nodes.iter().zip(&slow.nodes) {
                    prop_assert_eq!(f.node, s.node);
                    prop_assert_eq!(f.capacitance, s.capacitance);
                    prop_assert!(
                        rel_close(f.probability, s.probability, 1e-12),
                        "{} config {c} node {:?}: P {} vs {}",
                        cell.name(), f.node, f.probability, s.probability
                    );
                    prop_assert!(
                        rel_close(f.density, s.density, 1e-12),
                        "{} config {c} node {:?}: D {} vs {}",
                        cell.name(), f.node, f.density, s.density
                    );
                    prop_assert!(
                        rel_close(f.power, s.power, 1e-12),
                        "{} config {c} node {:?}: W {} vs {}",
                        cell.name(), f.node, f.power, s.power
                    );
                }
            }
            // The exhaustive searches agree on winners and losers.
            let fast_bw = model.best_and_worst(cell.kind(), inputs, load);
            let slow_bw = reference::best_and_worst(cell, process, inputs, load);
            prop_assert_eq!(fast_bw, slow_bw, "{}", cell.name());
        }
    }
}
