//! Equivalence envelope of the cone-partitioned backend:
//!
//! 1. Partitioned vs monolithic full-BDD statistics on **every** suite
//!    circuit where the monolithic backend runs, under an
//!    accuracy-tuned config (few, large regions): the deviation is
//!    pinned to a measured envelope, and vanishes entirely wherever
//!    the partition certifies itself exact (`approx_fraction == 0`).
//! 2. Degenerate cuts recover the neighbouring backends: cut width 0
//!    is *bitwise* the monolithic `ExactBdd`; cutting every net
//!    reproduces gate-local independent propagation to rounding.
//! 3. Randomized cut budgets (proptest) never break sanity: statistics
//!    stay valid, primary inputs pass through untouched, and the
//!    parallel evaluation is bitwise deterministic across thread
//!    counts.

use proptest::prelude::*;
use std::sync::OnceLock;
use tr_boolean::SignalStats;
use tr_gatelib::Library;
use tr_netlist::{generators, suite};
use tr_power::partition::{propagate_partitioned, PartitionConfig};
use tr_power::{propagate, propagate_exact_bdd};

fn library() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(Library::standard)
}

/// A deterministic, deliberately asymmetric stimulus.
fn skewed_stats(n: usize) -> Vec<SignalStats> {
    (0..n)
        .map(|i| {
            let p = 0.1 + 0.8 * ((i as f64) * 0.137).fract();
            let d = 2.0e4 * (1 + i % 7) as f64;
            SignalStats::new(p, d)
        })
        .collect()
}

/// Max |ΔP| over all nets.
fn max_dp(a: &[SignalStats], b: &[SignalStats]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x.probability() - y.probability()).abs())
        .fold(0.0, f64::max)
}

/// Max relative ΔD over all nets (floored at 1.0 to keep near-zero
/// densities from blowing up the ratio).
fn max_rel_dd(a: &[SignalStats], b: &[SignalStats]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            (x.density() - y.density()).abs() / x.density().abs().max(y.density().abs()).max(1.0)
        })
        .fold(0.0, f64::max)
}

/// Partitioned vs monolithic full-BDD on every suite circuit where the
/// monolithic backend completes under its default node budget. The
/// only approximation is lost correlation between a region's inputs,
/// so the deviation must stay within the acceptance envelope — and
/// must vanish entirely when the partition certifies itself exact.
#[test]
fn partitioned_tracks_full_bdd_across_the_suite() {
    let lib = library();
    let mut compared = 0usize;
    for case in suite::standard_suite(lib) {
        let pi = skewed_stats(case.circuit.primary_inputs().len());
        let Ok(full) = propagate_exact_bdd(&case.circuit, lib, &pi) else {
            continue; // monolithic backend blew its budget: nothing to compare
        };
        // Mirror the flow's shrink-regions ladder: when the preferred
        // few-large-regions shape blows a per-region budget, halve the
        // packing cost (smaller regions) until it fits.
        let mut cost = 2048usize;
        let (part, report) = loop {
            let config = PartitionConfig::new(1 << 20, 40).with_region_cost(cost);
            match propagate_partitioned(&case.circuit, lib, &pi, &config) {
                Ok(result) => break result,
                Err(e) if cost > 16 => {
                    eprintln!(
                        "{}: cost {cost} blew the budget ({e}), shrinking",
                        case.name
                    );
                    cost /= 2;
                }
                Err(e) => panic!("{}: smallest regions still fail: {e}", case.name),
            }
        };
        let dp = max_dp(&full, &part);
        let dd = max_rel_dd(&full, &part);
        eprintln!(
            "{}: regions {} cut {} approx {:.3} max|dP| {:.3e} max relΔD {:.3e}",
            case.name, report.regions, report.cut_nets, report.approx_fraction, dp, dd
        );
        if report.approx_fraction == 0.0 {
            assert!(dp < 1e-12, "{}: certified exact but dP = {dp}", case.name);
            assert!(dd < 1e-9, "{}: certified exact but dD = {dd}", case.name);
        } else {
            // The 0.05 acceptance point on mult8 is pinned in
            // `partition.rs` under the acceptance stimulus; this sweep
            // uses a deliberately harsher skew, where the worst measured
            // deviations are |ΔP| 0.097 and relΔD 1.0, both on the
            // structureless random circuits (`rnd_d`/`rnd_e`). The
            // envelope carries a small margin over those.
            assert!(dp <= 0.12, "{}: |dP| {dp} beyond the envelope", case.name);
            assert!(dd <= 1.5, "{}: relΔD {dd} beyond the envelope", case.name);
        }
        compared += 1;
    }
    assert!(
        compared >= 10,
        "the monolithic backend should run on most of the suite, got {compared}"
    );
}

/// Cut width 0 disables cutting: one region, delegated to the
/// monolithic engine — bitwise equal to `ExactBdd`, certified exact.
#[test]
fn cut_width_zero_is_bitwise_full_bdd() {
    let lib = library();
    let circuit = generators::array_multiplier(6, lib);
    let pi = skewed_stats(circuit.primary_inputs().len());
    let full = propagate_exact_bdd(&circuit, lib, &pi).expect("mult6 fits");
    let (part, report) = propagate_partitioned(&circuit, lib, &pi, &PartitionConfig::new(0, 0))
        .expect("single region fits");
    assert_eq!(report.regions, 1);
    assert_eq!(report.cut_nets, 0);
    assert_eq!(report.approx_fraction, 0.0);
    for (net, (a, b)) in full.iter().zip(&part).enumerate() {
        assert!(
            a.probability() == b.probability() && a.density() == b.density(),
            "net {net}: ({}, {}) vs ({}, {})",
            a.probability(),
            a.density(),
            b.probability(),
            b.density()
        );
    }
}

/// `max_region_nodes == 1` cuts every net: every gate is its own
/// region, whose cut inputs carry exactly the upstream (P, D) — i.e.
/// gate-local independent propagation, to rounding.
#[test]
fn cutting_every_net_reproduces_independent_propagation() {
    let lib = library();
    for circuit in [
        generators::ripple_carry_adder(8, lib),
        generators::array_multiplier(4, lib),
    ] {
        let pi = skewed_stats(circuit.primary_inputs().len());
        let indep = propagate(&circuit, lib, &pi);
        let (part, report) =
            propagate_partitioned(&circuit, lib, &pi, &PartitionConfig::new(1, 16))
                .expect("one-gate regions always fit");
        assert!(
            report.regions >= circuit.gates().len(),
            "{}: every gate its own region",
            circuit.name()
        );
        for (net, (a, b)) in indep.iter().zip(&part).enumerate() {
            assert!(
                (a.probability() - b.probability()).abs() < 1e-9,
                "{} net {net}: P {} vs {}",
                circuit.name(),
                a.probability(),
                b.probability()
            );
            let d_tol = 1e-9 * a.density().abs().max(b.density().abs()).max(1.0);
            assert!(
                (a.density() - b.density()).abs() < d_tol,
                "{} net {net}: D {} vs {}",
                circuit.name(),
                a.density(),
                b.density()
            );
        }
    }
}

/// The dataflow pool's schedule varies with thread count; the results
/// must not.
#[test]
fn thread_count_never_changes_the_answer() {
    let lib = library();
    let circuit = generators::array_multiplier(6, lib);
    let pi = skewed_stats(circuit.primary_inputs().len());
    let run = |threads: usize| {
        let mut config = PartitionConfig::new(4096, 12);
        config.threads = threads;
        propagate_partitioned(&circuit, lib, &pi, &config)
            .expect("fits")
            .0
    };
    let serial = run(1);
    for threads in [2, 4, 8] {
        let parallel = run(threads);
        for (net, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert!(
                a.probability() == b.probability() && a.density() == b.density(),
                "threads {threads} net {net} diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Any cut budget yields sane, input-preserving statistics whose
    /// probabilities stay within the acceptance envelope of full-BDD.
    #[test]
    fn random_cut_budgets_stay_sane_and_close(
        region_nodes in 2usize..20_000,
        cut_width in 1usize..40,
    ) {
        let lib = library();
        let circuit = generators::array_multiplier(4, lib);
        let pi = skewed_stats(circuit.primary_inputs().len());
        let full = propagate_exact_bdd(&circuit, lib, &pi).expect("mult4 fits");
        let (part, report) = propagate_partitioned(
            &circuit,
            lib,
            &pi,
            &PartitionConfig::new(region_nodes, cut_width),
        )
        .expect("mult4 fits any cut");
        prop_assert!(report.regions >= 1);
        for (net, s) in part.iter().enumerate() {
            prop_assert!(
                (0.0..=1.0).contains(&s.probability()),
                "net {net}: P {}", s.probability()
            );
            prop_assert!(
                s.density().is_finite() && s.density() >= 0.0,
                "net {net}: D {}", s.density()
            );
        }
        for (i, &net) in circuit.primary_inputs().iter().enumerate() {
            prop_assert!(
                part[net.0].probability() == pi[i].probability()
                    && part[net.0].density() == pi[i].density(),
                "primary input {i} must pass through untouched"
            );
        }
        // Aggressive cuts lose more correlation than the tuned config
        // (measured up to ~0.12 on mult4), so this is a gross-corruption
        // guard, not an accuracy envelope — accuracy is pinned above
        // under the config the flow actually uses.
        let dp = max_dp(&full, &part);
        prop_assert!(dp <= 0.25, "max|dP| {dp}: corrupted statistics");
    }
}
