//! Event-driven switch-level simulator.
//!
//! The paper validates its model with SLS, a switch-level timing
//! simulator; this crate is the stand-in (see `DESIGN.md` §4). It follows
//! the paper's measurement protocol:
//!
//! * primary inputs are stochastic waveforms whose inter-transition times
//!   are exponentially distributed with mean `1/D` (generalized to an
//!   alternating renewal process so equilibrium probabilities other than
//!   0.5 are honored too);
//! * every gate is simulated at the **switch level**: on each input change
//!   the configured transistor graph is re-solved, floating internal nodes
//!   retain their charge, and every node transition dissipates
//!   `½·C·Vdd²`;
//! * output transitions propagate with the per-input Elmore delay of the
//!   gate's configuration, so unequal path delays generate the *useless
//!   transitions* (glitches) the paper's introduction is about;
//! * measured power is accumulated energy divided by simulated time, after
//!   a warm-up interval.
//!
//! # Example
//!
//! ```
//! use tr_boolean::SignalStats;
//! use tr_gatelib::{Library, Process};
//! use tr_netlist::generators;
//! use tr_sim::{simulate, SimConfig};
//! use tr_timing::TimingModel;
//!
//! let lib = Library::standard();
//! let timing = TimingModel::new(&lib, Process::default());
//! let adder = generators::ripple_carry_adder(4, &lib);
//! let stats = vec![SignalStats::new(0.5, 1.0e6); 9];
//! let report = simulate(
//!     &adder, &lib, &Process::default(), &timing, &stats,
//!     &SimConfig { duration: 2.0e-4, warmup: 2.0e-5, seed: 1 },
//! );
//! assert!(report.power > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod vcd;
mod waveform;

pub use engine::{
    simulate, simulate_governed, simulate_traced, simulate_with_drives, InputDrive, SimConfig,
    SimReport, Trace, TraceEvent,
};
pub use waveform::generate_waveform;
