//! Stochastic input waveforms.
//!
//! The paper drives the switch-level simulator with signals whose
//! inter-transition intervals are exponential with mean `1/Dₖ`. A plain
//! exponential toggle process has equilibrium probability 0.5; Scenario A
//! draws probabilities from `U[0,1]`, so we generalize to an alternating
//! renewal process with exponential dwell times `t₁ = 2P/D` at one and
//! `t₀ = 2(1−P)/D` at zero — this reproduces both the requested `P` and
//! the requested `D`, and collapses to the paper's process at `P = 0.5`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tr_boolean::SignalStats;

/// Generates the transition times of one input signal over `[0, duration)`
/// seconds. Returns `(initial_value, toggle_times)`; the signal flips at
/// each listed instant. Deterministic in `seed`.
///
/// Quiescent signals (density 0, or probability pinned at a rail) return
/// an empty schedule with the appropriate constant value.
pub fn generate_waveform(stats: &SignalStats, duration: f64, seed: u64) -> (bool, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let Some((t0, t1)) = stats.dwell_times() else {
        return (stats.probability() >= 0.5, Vec::new());
    };
    let mut value = rng.gen_bool(stats.probability());
    let initial = value;
    let mut t = 0.0f64;
    let mut times = Vec::new();
    loop {
        let mean = if value { t1 } else { t0 };
        // Exponential via inverse transform; guard the log away from 0.
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -mean * u.ln();
        if t >= duration {
            break;
        }
        times.push(t);
        value = !value;
    }
    (initial, times)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_density_matches_request() {
        let stats = SignalStats::new(0.5, 1.0e6);
        let duration = 0.02;
        let (_, times) = generate_waveform(&stats, duration, 42);
        let measured = times.len() as f64 / duration;
        let err = (measured - 1.0e6).abs() / 1.0e6;
        assert!(err < 0.05, "density off by {err:.3}: {measured}");
    }

    #[test]
    fn empirical_probability_matches_request() {
        let stats = SignalStats::new(0.2, 1.0e6);
        let duration = 0.02;
        let (initial, times) = generate_waveform(&stats, duration, 7);
        // Integrate time spent at 1.
        let mut value = initial;
        let mut last = 0.0;
        let mut time_at_one = 0.0;
        for &t in &times {
            if value {
                time_at_one += t - last;
            }
            last = t;
            value = !value;
        }
        if value {
            time_at_one += duration - last;
        }
        let p = time_at_one / duration;
        assert!((p - 0.2).abs() < 0.03, "probability {p}");
    }

    #[test]
    fn quiescent_signals_do_not_toggle() {
        let (v, times) = generate_waveform(&SignalStats::constant(true), 1.0, 3);
        assert!(v);
        assert!(times.is_empty());
        let (v, times) = generate_waveform(&SignalStats::new(0.0, 5.0), 1.0, 3);
        assert!(!v);
        assert!(times.is_empty());
    }

    #[test]
    fn deterministic_in_seed() {
        let stats = SignalStats::new(0.6, 1.0e5);
        let a = generate_waveform(&stats, 0.001, 11);
        let b = generate_waveform(&stats, 0.001, 11);
        assert_eq!(a, b);
        let c = generate_waveform(&stats, 0.001, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn times_sorted_and_bounded() {
        let stats = SignalStats::new(0.5, 1.0e6);
        let (_, times) = generate_waveform(&stats, 0.001, 5);
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(times.iter().all(|&t| t < 0.001));
    }
}
