//! The event-driven switch-level engine.

use crate::waveform::generate_waveform;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tr_boolean::govern::{Governor, Interrupted};
use tr_boolean::SignalStats;
use tr_gatelib::{Library, Process};
use tr_netlist::{Circuit, NetId};
use tr_spnet::{GateGraph, NodeId};
use tr_timing::TimingModel;

/// How one primary input is driven.
#[derive(Debug, Clone)]
pub enum InputDrive {
    /// Stochastic waveform from the given `(P, D)` statistics.
    Stochastic(SignalStats),
    /// Explicit waveform: initial value and sorted toggle times (s).
    Waveform {
        /// Value at `t = 0`.
        initial: bool,
        /// Instants at which the signal flips.
        toggles: Vec<f64>,
    },
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Simulated time span (seconds).
    pub duration: f64,
    /// Initial interval whose energy is discarded (washes out the
    /// artificial t=0 state).
    pub warmup: f64,
    /// Seed for the stochastic waveforms (input `i` uses `seed ⊕ i`).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration: 1.0e-4,
            warmup: 1.0e-5,
            seed: 0,
        }
    }
}

/// Simulation results.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Measured interval (duration − warmup), seconds.
    pub measured_time: f64,
    /// Energy dissipated in the measured interval (J).
    pub energy: f64,
    /// Average power (W).
    pub power: f64,
    /// Energy per gate (J), indexed like `circuit.gates()`.
    pub per_gate_energy: Vec<f64>,
    /// Counted transitions per net (including glitches).
    pub net_transitions: Vec<u64>,
    /// Final logic value of every net.
    pub final_values: Vec<bool>,
    /// Rail-fight instants observed (0 for well-formed gates).
    pub conflicts: u64,
}

/// Femtoseconds per second (the engine's integer time base).
const FS: f64 = 1.0e15;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A primary input flips.
    InputToggle { net: usize },
    /// A gate output value reaches the net.
    Commit { gate: usize, value: bool },
}

struct GateState {
    graph: GateGraph,
    /// Capacitance per power node (output first), output including load.
    caps: Vec<f64>,
    /// Per-pin propagation delay (fs).
    delays: Vec<u64>,
    /// Retained value of every internal node.
    internal: Vec<bool>,
    /// Last output value passed to the scheduler.
    last_scheduled: bool,
    /// Commit-order watermark (fs) so transport events stay ordered.
    last_commit_time: u64,
}

/// Simulates with stochastic drives on every input (the paper's protocol).
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count, the
/// circuit is invalid, or `config.duration <= config.warmup`.
pub fn simulate(
    circuit: &Circuit,
    library: &Library,
    process: &Process,
    timing: &TimingModel,
    pi_stats: &[SignalStats],
    config: &SimConfig,
) -> SimReport {
    let drives: Vec<InputDrive> = pi_stats
        .iter()
        .map(|s| InputDrive::Stochastic(*s))
        .collect();
    simulate_with_drives(circuit, library, process, timing, &drives, config)
}

/// [`simulate`] under an optional [`Governor`], checked once per
/// simulator event (an input toggle or an output commit — the event
/// loop's unit of work). An interrupted run returns no partial report: a
/// truncated event window would misreport power for the measured span.
///
/// # Errors
///
/// Returns [`Interrupted`] when the governor trips mid-run.
///
/// # Panics
///
/// As [`simulate`].
pub fn simulate_governed(
    circuit: &Circuit,
    library: &Library,
    process: &Process,
    timing: &TimingModel,
    pi_stats: &[SignalStats],
    config: &SimConfig,
    governor: Option<&Governor>,
) -> Result<SimReport, Interrupted> {
    let drives: Vec<InputDrive> = pi_stats
        .iter()
        .map(|s| InputDrive::Stochastic(*s))
        .collect();
    run(
        circuit, library, process, timing, &drives, config, None, governor,
    )
}

/// One recorded value change (for waveform dumping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time in femtoseconds.
    pub time_fs: u64,
    /// The net that changed.
    pub net: usize,
    /// Its new value.
    pub value: bool,
}

/// A recorded waveform: initial values plus every change, in time order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Value of every net at `t = 0`.
    pub initial: Vec<bool>,
    /// Changes in chronological order.
    pub events: Vec<TraceEvent>,
}

/// Like [`simulate_with_drives`] but also records every net value change
/// for waveform inspection (see [`crate::vcd`]).
///
/// # Panics
///
/// As [`simulate_with_drives`].
pub fn simulate_traced(
    circuit: &Circuit,
    library: &Library,
    process: &Process,
    timing: &TimingModel,
    drives: &[InputDrive],
    config: &SimConfig,
) -> (SimReport, Trace) {
    let mut trace = Trace::default();
    let report = run(
        circuit,
        library,
        process,
        timing,
        drives,
        config,
        Some(&mut trace),
        None,
    )
    .expect("ungoverned simulation cannot be interrupted");
    (report, trace)
}

/// Simulates with explicit per-input drives.
///
/// # Panics
///
/// Panics if `drives.len()` differs from the primary-input count, the
/// circuit is invalid, or `config.duration <= config.warmup`.
pub fn simulate_with_drives(
    circuit: &Circuit,
    library: &Library,
    process: &Process,
    timing: &TimingModel,
    drives: &[InputDrive],
    config: &SimConfig,
) -> SimReport {
    run(
        circuit, library, process, timing, drives, config, None, None,
    )
    .expect("ungoverned simulation cannot be interrupted")
}

#[allow(clippy::too_many_arguments)]
fn run(
    circuit: &Circuit,
    library: &Library,
    process: &Process,
    timing: &TimingModel,
    drives: &[InputDrive],
    config: &SimConfig,
    mut trace: Option<&mut Trace>,
    governor: Option<&Governor>,
) -> Result<SimReport, Interrupted> {
    assert_eq!(
        drives.len(),
        circuit.primary_inputs().len(),
        "one drive per primary input"
    );
    assert!(
        config.duration > config.warmup,
        "duration must exceed warmup"
    );
    circuit.validate(library).expect("invalid circuit");
    let _g = tr_trace::span!(
        "sim.run",
        gates = circuit.gates().len(),
        duration = config.duration
    );

    let loads = timing.external_loads(circuit);
    let fanouts = circuit.fanouts();

    // Per-gate static data and readers-of-net index.
    let mut gates: Vec<GateState> = Vec::with_capacity(circuit.gates().len());
    for gate in circuit.gates() {
        let cell = library.cell(&gate.cell).expect("validated");
        let graph = cell.graph(gate.config);
        let load = loads[gate.output.0];
        let caps: Vec<f64> = graph
            .power_nodes()
            .map(|n| {
                process.node_capacitance(&graph, n, if n == NodeId::Output { load } else { 0.0 })
            })
            .collect();
        let delays: Vec<u64> = (0..cell.arity())
            .map(|pin| (timing.gate_delay(&gate.cell, gate.config, pin, load) * FS).ceil() as u64)
            .collect();
        gates.push(GateState {
            graph,
            caps,
            delays,
            internal: Vec::new(),
            last_scheduled: false,
            last_commit_time: 0,
        });
    }

    // Initial input values + event schedule.
    let mut heap: BinaryHeap<Reverse<(u64, u64, Event)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut net_values = vec![false; circuit.net_count()];
    for (i, drive) in drives.iter().enumerate() {
        let net = circuit.primary_inputs()[i];
        let (initial, toggles) = match drive {
            InputDrive::Stochastic(stats) => generate_waveform(
                stats,
                config.duration,
                config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            InputDrive::Waveform { initial, toggles } => (*initial, toggles.clone()),
        };
        net_values[net.0] = initial;
        for t in toggles {
            heap.push(Reverse((
                (t * FS) as u64,
                seq,
                Event::InputToggle { net: net.0 },
            )));
            seq += 1;
        }
    }

    // Settle the t=0 state: functional values, then internal charges.
    let order = circuit.topological_order().expect("validated");
    for gid in &order {
        let gate = circuit.gate(*gid);
        let cell = library.cell(&gate.cell).expect("validated");
        let assignment: Vec<bool> = gate.inputs.iter().map(|n| net_values[n.0]).collect();
        net_values[gate.output.0] = cell.function().eval(&assignment);
    }
    for (gi, state) in gates.iter_mut().enumerate() {
        let gate = &circuit.gates()[gi];
        let assignment: Vec<bool> = gate.inputs.iter().map(|n| net_values[n.0]).collect();
        let solution = state.graph.solve(&assignment);
        state.internal = (0..state.graph.internal_count())
            .map(|k| solution.value(NodeId::Internal(k)).unwrap_or(false))
            .collect();
        state.last_scheduled = net_values[gate.output.0];
    }

    if let Some(t) = trace.as_deref_mut() {
        t.initial = net_values.clone();
    }

    // Main loop.
    let warmup_fs = (config.warmup * FS) as u64;
    let end_fs = (config.duration * FS) as u64;
    let mut energy = 0.0f64;
    let mut per_gate_energy = vec![0.0f64; circuit.gates().len()];
    let mut net_transitions = vec![0u64; circuit.net_count()];
    let mut conflicts = 0u64;
    let half_cv2 = |c: f64| 0.5 * process.switching_energy(c);

    // Re-evaluates a gate after an input change; returns scheduled event.
    let evaluate = |gi: usize,
                    pin: usize,
                    t: u64,
                    gates: &mut Vec<GateState>,
                    net_values: &Vec<bool>,
                    per_gate_energy: &mut Vec<f64>,
                    energy: &mut f64,
                    conflicts: &mut u64|
     -> Option<(u64, Event)> {
        let gate = &circuit.gates()[gi];
        let state = &mut gates[gi];
        let assignment: Vec<bool> = gate.inputs.iter().map(|n| net_values[n.0]).collect();
        let solution = state.graph.solve(&assignment);
        if solution.has_conflict() {
            *conflicts += 1;
        }
        // Internal node charging/discharging happens "now".
        for k in 0..state.internal.len() {
            if let Some(v) = solution.value(NodeId::Internal(k)) {
                if v != state.internal[k] {
                    state.internal[k] = v;
                    if t >= warmup_fs {
                        let e = half_cv2(state.caps[k + 1]);
                        *energy += e;
                        per_gate_energy[gi] += e;
                    }
                }
            }
        }
        // New output value travels through the pin's delay.
        let new_out = solution
            .value(NodeId::Output)
            .unwrap_or(state.last_scheduled);
        if new_out != state.last_scheduled {
            state.last_scheduled = new_out;
            let commit_at = (t + state.delays[pin]).max(state.last_commit_time);
            state.last_commit_time = commit_at;
            return Some((
                commit_at,
                Event::Commit {
                    gate: gi,
                    value: new_out,
                },
            ));
        }
        None
    };

    while let Some(Reverse((t, _, event))) = heap.pop() {
        if t >= end_fs {
            break;
        }
        if let Some(g) = governor {
            g.check("simulate")?;
        }
        match event {
            Event::InputToggle { net } => {
                net_values[net] = !net_values[net];
                if t >= warmup_fs {
                    net_transitions[net] += 1;
                }
                if let Some(tr) = trace.as_deref_mut() {
                    tr.events.push(TraceEvent {
                        time_fs: t,
                        net,
                        value: net_values[net],
                    });
                }
                if let Some(readers) = fanouts.get(&NetId(net)) {
                    for gid in readers {
                        let gate = &circuit.gates()[gid.0];
                        let pin = gate
                            .inputs
                            .iter()
                            .position(|n| n.0 == net)
                            .expect("reader has the net");
                        if let Some((at, ev)) = evaluate(
                            gid.0,
                            pin,
                            t,
                            &mut gates,
                            &net_values,
                            &mut per_gate_energy,
                            &mut energy,
                            &mut conflicts,
                        ) {
                            heap.push(Reverse((at, seq, ev)));
                            seq += 1;
                        }
                    }
                }
            }
            Event::Commit { gate: gi, value } => {
                let out = circuit.gates()[gi].output;
                if net_values[out.0] == value {
                    continue;
                }
                net_values[out.0] = value;
                if t >= warmup_fs {
                    net_transitions[out.0] += 1;
                    let e = half_cv2(gates[gi].caps[0]);
                    energy += e;
                    per_gate_energy[gi] += e;
                }
                if let Some(tr) = trace.as_deref_mut() {
                    tr.events.push(TraceEvent {
                        time_fs: t,
                        net: out.0,
                        value,
                    });
                }
                if let Some(readers) = fanouts.get(&out) {
                    for gid in readers {
                        let gate = &circuit.gates()[gid.0];
                        let pin = gate
                            .inputs
                            .iter()
                            .position(|n| *n == out)
                            .expect("reader has the net");
                        if let Some((at, ev)) = evaluate(
                            gid.0,
                            pin,
                            t,
                            &mut gates,
                            &net_values,
                            &mut per_gate_energy,
                            &mut energy,
                            &mut conflicts,
                        ) {
                            heap.push(Reverse((at, seq, ev)));
                            seq += 1;
                        }
                    }
                }
            }
        }
    }

    let measured_time = config.duration - config.warmup;
    Ok(SimReport {
        measured_time,
        energy,
        power: energy / measured_time,
        per_gate_energy,
        net_transitions,
        final_values: net_values,
        conflicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_netlist::{generators, CellKind};

    fn setup() -> (Library, Process, TimingModel) {
        let lib = Library::standard();
        let process = Process::default();
        let timing = TimingModel::new(&lib, process.clone());
        (lib, process, timing)
    }

    #[test]
    fn quiescent_inputs_zero_power() {
        let (lib, process, timing) = setup();
        let c = generators::ripple_carry_adder(4, &lib);
        let stats = vec![SignalStats::constant(false); 9];
        let r = simulate(&c, &lib, &process, &timing, &stats, &SimConfig::default());
        assert_eq!(r.energy, 0.0);
        assert_eq!(r.conflicts, 0);
    }

    #[test]
    fn inverter_measures_input_density() {
        let (lib, process, timing) = setup();
        let mut c = Circuit::new("inv");
        let a = c.add_input("a");
        let (_, y) = c.add_gate(CellKind::Inv, vec![a], "y");
        c.mark_output(y);
        let stats = vec![SignalStats::new(0.5, 1.0e6)];
        let cfg = SimConfig {
            duration: 2.0e-3,
            warmup: 1.0e-4,
            seed: 3,
        };
        let r = simulate(&c, &lib, &process, &timing, &stats, &cfg);
        let d_in = r.net_transitions[a.0] as f64 / r.measured_time;
        let d_out = r.net_transitions[y.0] as f64 / r.measured_time;
        assert!((d_in - 1.0e6).abs() / 1.0e6 < 0.1, "input density {d_in}");
        assert!((d_out - d_in).abs() / d_in < 0.01, "output density {d_out}");
        // Energy ≈ ½CV²·(transitions of y)·(1 + input gate cap share)…
        // just check the output-node component alone is the right order:
        assert!(r.power > 0.0);
    }

    #[test]
    fn final_state_matches_functional_model() {
        let (lib, process, timing) = setup();
        let c = generators::ripple_carry_adder(4, &lib);
        // Explicit waveforms that stop toggling long before the horizon.
        let drives: Vec<InputDrive> = (0..9)
            .map(|i| InputDrive::Waveform {
                initial: i % 2 == 0,
                toggles: vec![1.0e-6 * (i as f64 + 1.0), 3.0e-6 * (i as f64 + 1.0)],
            })
            .collect();
        let cfg = SimConfig {
            duration: 1.0e-3,
            warmup: 0.0,
            seed: 0,
        };
        let r = simulate_with_drives(&c, &lib, &process, &timing, &drives, &cfg);
        // Final input values: initial ^ (2 toggles) = initial.
        let finals: Vec<bool> = (0..9).map(|i| i % 2 == 0).collect();
        let expect = c.evaluate(&lib, &finals);
        for (n, (&got, &want)) in r.final_values.iter().zip(&expect).enumerate() {
            assert_eq!(got, want, "net {n} ({})", c.net_name(tr_netlist::NetId(n)));
        }
        assert_eq!(r.conflicts, 0);
    }

    #[test]
    fn glitches_are_generated() {
        // y = NAND(a, NOT(a)) is logically constant 1, but the inverter
        // delay makes every transition of `a` emit a glitch pulse on y.
        let (lib, process, timing) = setup();
        let mut c = Circuit::new("glitch");
        let a = c.add_input("a");
        let (_, na) = c.add_gate(CellKind::Inv, vec![a], "na");
        let (_, y) = c.add_gate(CellKind::Nand(2), vec![a, na], "y");
        c.mark_output(y);
        let drives = vec![InputDrive::Waveform {
            initial: false,
            toggles: vec![1.0e-6, 2.0e-6, 3.0e-6],
        }];
        let cfg = SimConfig {
            duration: 1.0e-4,
            warmup: 0.0,
            seed: 0,
        };
        let r = simulate_with_drives(&c, &lib, &process, &timing, &drives, &cfg);
        // Useless transitions: y still ends at 1 but toggled on the way.
        assert!(r.net_transitions[y.0] >= 2, "{:?}", r.net_transitions);
        assert!(r.final_values[y.0]);
    }

    #[test]
    fn deeper_circuits_glitch_more_than_density_predicts() {
        // In a ripple adder the simulator sees the §1.1 useless
        // transitions; just assert simulated power is positive and the
        // carry-side nets toggle more than operand inputs.
        let (lib, process, timing) = setup();
        let c = generators::ripple_carry_adder(8, &lib);
        let stats = vec![SignalStats::new(0.5, 1.0e6); 17];
        let cfg = SimConfig {
            duration: 5.0e-4,
            warmup: 5.0e-5,
            seed: 9,
        };
        let r = simulate(&c, &lib, &process, &timing, &stats, &cfg);
        let input_rate = r.net_transitions[c.primary_inputs()[0].0] as f64;
        let cout_rate = r.net_transitions[c.primary_outputs()[8].0] as f64;
        assert!(r.power > 0.0);
        assert!(
            cout_rate > 0.5 * input_rate,
            "cout {cout_rate} vs input {input_rate}"
        );
    }

    #[test]
    fn reordering_changes_measured_power() {
        // Single NAND3 with very asymmetric input activity: the stack
        // order must change measured energy.
        let (lib, process, timing) = setup();
        let build = |config: usize| {
            let mut c = Circuit::new("nand3");
            let a = c.add_input("a");
            let b = c.add_input("b");
            let d = c.add_input("d");
            let (g, y) = c.add_gate(CellKind::Nand(3), vec![a, b, d], "y");
            c.mark_output(y);
            c.set_config(g, config);
            c
        };
        let stats = vec![
            SignalStats::new(0.5, 1.0e6),
            SignalStats::new(0.5, 1.0e4),
            SignalStats::new(0.5, 1.0e4),
        ];
        let cfg = SimConfig {
            duration: 1.0e-3,
            warmup: 1.0e-4,
            seed: 21,
        };
        let cell = lib.cell_by_name("nand3").unwrap();
        let powers: Vec<f64> = (0..cell.configurations().len())
            .map(|cfg_i| simulate(&build(cfg_i), &lib, &process, &timing, &stats, &cfg).power)
            .collect();
        let min = powers.iter().cloned().fold(f64::MAX, f64::min);
        let max = powers.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min * 1.02, "powers {powers:?}");
    }

    #[test]
    fn seeded_and_deterministic() {
        let (lib, process, timing) = setup();
        let c = generators::parity_tree(8, &lib);
        let stats = vec![SignalStats::new(0.5, 5.0e5); 8];
        let cfg = SimConfig {
            duration: 2.0e-4,
            warmup: 2.0e-5,
            seed: 77,
        };
        let a = simulate(&c, &lib, &process, &timing, &stats, &cfg);
        let b = simulate(&c, &lib, &process, &timing, &stats, &cfg);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.net_transitions, b.net_transitions);
        let cfg2 = SimConfig { seed: 78, ..cfg };
        let c2 = simulate(&c, &lib, &process, &timing, &stats, &cfg2);
        assert_ne!(a.energy, c2.energy);
    }

    #[test]
    #[should_panic(expected = "duration must exceed warmup")]
    fn bad_config_panics() {
        let (lib, process, timing) = setup();
        let c = generators::parity_tree(4, &lib);
        let stats = vec![SignalStats::default(); 4];
        let cfg = SimConfig {
            duration: 1.0e-5,
            warmup: 1.0e-4,
            seed: 0,
        };
        simulate(&c, &lib, &process, &timing, &stats, &cfg);
    }
}
