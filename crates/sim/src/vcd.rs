//! Value Change Dump (IEEE 1364) writer for simulation traces.
//!
//! Converts a [`Trace`] recorded by
//! [`simulate_traced`](crate::simulate_traced) into standard VCD text so
//! waveforms can be inspected in GTKWave or any other viewer — the
//! debugging loop every simulator needs.

use crate::engine::Trace;
use std::fmt::Write as _;
use tr_netlist::{Circuit, NetId};

/// Generates the VCD identifier for net `i` (printable ASCII 33–126,
/// base-94, like commercial tools emit).
fn ident(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

/// Renders a trace as a VCD document.
///
/// The timescale is 1 fs (the engine's native resolution). Net names come
/// from the circuit; primary inputs and outputs are grouped into scopes
/// so viewers display them tidily.
pub fn write(circuit: &Circuit, trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date 1996-03-11 $end"); // the DATE'96 wink
    let _ = writeln!(out, "$version tr-sim switch-level simulator $end");
    let _ = writeln!(out, "$timescale 1 fs $end");

    let is_input = |n: NetId| circuit.primary_inputs().contains(&n);
    let is_output = |n: NetId| circuit.primary_outputs().contains(&n);

    let _ = writeln!(out, "$scope module {} $end", sanitize(circuit.name()));
    let _ = writeln!(out, "$scope module inputs $end");
    for n in 0..circuit.net_count() {
        if is_input(NetId(n)) {
            let _ = writeln!(
                out,
                "$var wire 1 {} {} $end",
                ident(n),
                sanitize(circuit.net_name(NetId(n)))
            );
        }
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$scope module outputs $end");
    for n in 0..circuit.net_count() {
        if is_output(NetId(n)) && !is_input(NetId(n)) {
            let _ = writeln!(
                out,
                "$var wire 1 {} {} $end",
                ident(n),
                sanitize(circuit.net_name(NetId(n)))
            );
        }
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$scope module internal $end");
    for n in 0..circuit.net_count() {
        if !is_input(NetId(n)) && !is_output(NetId(n)) {
            let _ = writeln!(
                out,
                "$var wire 1 {} {} $end",
                ident(n),
                sanitize(circuit.net_name(NetId(n)))
            );
        }
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    let _ = writeln!(out, "$dumpvars");
    for (n, &v) in trace.initial.iter().enumerate() {
        let _ = writeln!(out, "{}{}", u8::from(v), ident(n));
    }
    let _ = writeln!(out, "$end");

    let mut last_time = None;
    for ev in &trace.events {
        if last_time != Some(ev.time_fs) {
            let _ = writeln!(out, "#{}", ev.time_fs);
            last_time = Some(ev.time_fs);
        }
        let _ = writeln!(out, "{}{}", u8::from(ev.value), ident(ev.net));
    }
    out
}

/// Writes the VCD to a file.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn write_to_file(
    circuit: &Circuit,
    trace: &Trace,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    std::fs::write(path, write(circuit, trace))
}

/// VCD identifiers may not contain whitespace; net names from generators
/// are already clean, but user `.bench`/BLIF names might not be.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_traced, InputDrive, SimConfig};
    use tr_gatelib::{CellKind, Library, Process};
    use tr_timing::TimingModel;

    fn toy() -> (Circuit, Library, Process, TimingModel) {
        let lib = Library::standard();
        let process = Process::default();
        let timing = TimingModel::new(&lib, process.clone());
        let mut c = Circuit::new("toy");
        let a = c.add_input("a");
        let (_, y) = c.add_gate(CellKind::Inv, vec![a], "y");
        c.mark_output(y);
        (c, lib, process, timing)
    }

    #[test]
    fn vcd_structure() {
        let (c, lib, process, timing) = toy();
        let drives = vec![InputDrive::Waveform {
            initial: false,
            toggles: vec![1.0e-6, 2.0e-6],
        }];
        let cfg = SimConfig {
            duration: 1.0e-4,
            warmup: 0.0,
            seed: 0,
        };
        let (report, trace) = simulate_traced(&c, &lib, &process, &timing, &drives, &cfg);
        let text = write(&c, &trace);
        assert!(text.contains("$timescale 1 fs $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$enddefinitions $end"));
        assert!(text.contains("$dumpvars"));
        // 2 input toggles + 2 output commits = 4 change lines.
        let changes = text
            .lines()
            .filter(|l| l.starts_with('0') || l.starts_with('1'))
            .count();
        // dumpvars section also emits one line per net (2 nets).
        assert_eq!(changes, 2 + 4);
        assert_eq!(report.net_transitions.iter().sum::<u64>(), 4);
    }

    #[test]
    fn trace_is_chronological_and_consistent() {
        let (c, lib, process, timing) = toy();
        let drives = vec![InputDrive::Waveform {
            initial: true,
            toggles: vec![5.0e-7, 9.0e-7, 1.3e-6],
        }];
        let cfg = SimConfig {
            duration: 1.0e-4,
            warmup: 0.0,
            seed: 0,
        };
        let (_, trace) = simulate_traced(&c, &lib, &process, &timing, &drives, &cfg);
        for w in trace.events.windows(2) {
            assert!(w[0].time_fs <= w[1].time_fs);
        }
        // Replaying the trace gives the simulator's final state.
        let mut vals = trace.initial.clone();
        for ev in &trace.events {
            vals[ev.net] = ev.value;
        }
        // a toggled 3 times from true → false; y = !a = true.
        assert!(!vals[0]);
        assert!(vals[1]);
    }

    #[test]
    fn identifiers_are_unique_and_printable() {
        let ids: Vec<String> = (0..500).map(ident).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        for id in &ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }

    #[test]
    fn write_to_file_roundtrip() {
        let (c, lib, process, timing) = toy();
        let drives = vec![InputDrive::Waveform {
            initial: false,
            toggles: vec![1.0e-6],
        }];
        let cfg = SimConfig {
            duration: 1.0e-4,
            warmup: 0.0,
            seed: 0,
        };
        let (_, trace) = simulate_traced(&c, &lib, &process, &timing, &drives, &cfg);
        let dir = std::env::temp_dir().join("tr_sim_vcd_test.vcd");
        write_to_file(&c, &trace, &dir).unwrap();
        let read_back = std::fs::read_to_string(&dir).unwrap();
        assert_eq!(read_back, write(&c, &trace));
        let _ = std::fs::remove_file(dir);
    }
}
