//! Library-impact analysis: which cell *instances* an optimized circuit
//! actually needs.
//!
//! The paper's conclusion (a): "current libraries may be upgraded with
//! more instances of the gates with different transistor reorderings, so
//! that an optimization algorithm can choose the best instance". This
//! module quantifies that: after optimization, how many gates landed in a
//! non-default instance — i.e. how many would require a new layout in a
//! real library — versus how many were satisfied by rewiring the default
//! layout's inputs.

use std::collections::BTreeMap;
use tr_gatelib::Library;
use tr_netlist::Circuit;

/// Instance usage of one cell across a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellDemand {
    /// Cell name (`oai21`, …).
    pub cell: String,
    /// Gate count per instance index (`[A]`, `[B]`, …).
    pub per_instance: Vec<usize>,
}

impl CellDemand {
    /// Total gates of this cell.
    pub fn total(&self) -> usize {
        self.per_instance.iter().sum()
    }

    /// Gates realized by a non-default instance (index > 0).
    pub fn non_default(&self) -> usize {
        self.per_instance.iter().skip(1).sum()
    }
}

/// Instance usage across a whole circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceDemand {
    /// Per-cell demand, sorted by cell name.
    pub cells: Vec<CellDemand>,
}

impl InstanceDemand {
    /// Total gates.
    pub fn total_gates(&self) -> usize {
        self.cells.iter().map(CellDemand::total).sum()
    }

    /// Gates needing a non-default layout instance.
    pub fn non_default_gates(&self) -> usize {
        self.cells.iter().map(CellDemand::non_default).sum()
    }

    /// Distinct (cell, instance) layouts the library must stock to realize
    /// the circuit.
    pub fn layouts_required(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.per_instance.iter().filter(|&&n| n > 0).count())
            .sum()
    }

    /// Renders a compact text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<8} {:>6}   per-instance", "cell", "gates");
        for c in &self.cells {
            let inst: Vec<String> = c
                .per_instance
                .iter()
                .enumerate()
                .map(|(i, n)| format!("[{}]×{n}", char::from(b'A' + u8::try_from(i).unwrap_or(25))))
                .collect();
            let _ = writeln!(out, "{:<8} {:>6}   {}", c.cell, c.total(), inst.join(" "));
        }
        let _ = writeln!(
            out,
            "layouts required: {}; gates on non-default instances: {}/{}",
            self.layouts_required(),
            self.non_default_gates(),
            self.total_gates()
        );
        out
    }
}

/// Computes instance usage for the circuit's current configurations.
///
/// # Panics
///
/// Panics if a gate's cell is missing from the library or its
/// configuration is out of range.
pub fn instance_demand(circuit: &Circuit, library: &Library) -> InstanceDemand {
    let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for gate in circuit.gates() {
        let cell = library.cell(&gate.cell).expect("unknown cell");
        let entry = map
            .entry(cell.name())
            .or_insert_with(|| vec![0; cell.instances().len()]);
        entry[cell.instance_of(gate.config)] += 1;
    }
    InstanceDemand {
        cells: map
            .into_iter()
            .map(|(cell, per_instance)| CellDemand { cell, per_instance })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, Objective};
    use tr_gatelib::Process;
    use tr_netlist::generators;
    use tr_power::scenario::Scenario;
    use tr_power::PowerModel;

    #[test]
    fn default_circuit_uses_default_instances() {
        let lib = Library::standard();
        let c = generators::ripple_carry_adder(8, &lib);
        let d = instance_demand(&c, &lib);
        assert_eq!(d.total_gates(), c.gates().len());
        // Config 0 of every cell belongs to the first (default) instance
        // by construction of the enumeration order.
        assert_eq!(d.non_default_gates(), 0);
    }

    #[test]
    fn optimization_creates_instance_demand() {
        // Needs a circuit rich in multi-instance cells (oai21, aoi211, …);
        // the random generator draws them, whereas e.g. a mapped ripple
        // adder is all aoi22/inv which have a single instance each.
        let lib = Library::standard();
        let model = PowerModel::new(&lib, Process::default());
        let c = generators::random_circuit(16, 200, 7, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 9);
        let best = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        let d = instance_demand(&best.circuit, &lib);
        assert_eq!(d.total_gates(), c.gates().len());
        // The optimizer should exploit at least one non-default layout —
        // this is exactly why the paper proposes extending libraries.
        assert!(d.non_default_gates() > 0, "{}", d.render());
        assert!(d.layouts_required() >= d.cells.len());
    }

    #[test]
    fn render_mentions_every_cell() {
        let lib = Library::standard();
        let c = generators::alu(4, &lib);
        let d = instance_demand(&c, &lib);
        let text = d.render();
        for cell in &d.cells {
            assert!(text.contains(&cell.cell));
        }
        assert!(text.contains("layouts required"));
    }
}
