//! Rule-based reordering — the pre-model baseline of the paper's
//! reference \[9\] (Shen, Lin & Wang, ASP-DAC 1995).
//!
//! Before the paper's stochastic model, reordering was driven by rules of
//! thumb of the form "place the most active transistor at position X of
//! the stack". This module implements the two classic rules so the
//! experiment harness can quantify what the full model buys over them:
//!
//! * [`Rule::HotNearOutput`] — the most active input drives the
//!   transistor adjacent to the output node (shields the internal stack
//!   nodes from its toggling; what our model usually discovers);
//! * [`Rule::HotNearRail`] — the most active input sits next to the
//!   supply rail (the rule the paper quotes as the *low-power* rule of
//!   thumb that conflicts with the speed rule).
//!
//! Both rules order every series chain by input activity and know nothing
//! about probabilities, capacitances or the charge state — that is the
//! point of comparing against them.

use crate::OptimizeResult;
use tr_boolean::SignalStats;
use tr_gatelib::Library;
use tr_netlist::Circuit;
use tr_power::{circuit_power, propagate, PowerModel};
use tr_spnet::{SpTree, Topology};

/// The ordering rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Most active input adjacent to the output node of each stack.
    HotNearOutput,
    /// Most active input adjacent to the supply rail of each stack.
    HotNearRail,
}

/// Scores a network block by the maximum input density inside it.
fn block_activity(tree: &SpTree, density: &[f64]) -> f64 {
    tree.inputs()
        .into_iter()
        .map(|i| density[i])
        .fold(0.0, f64::max)
}

/// Reorders every series chain of `tree` by block activity.
fn order_tree(tree: &SpTree, density: &[f64], hot_first: bool) -> SpTree {
    match tree {
        SpTree::Leaf(i) => SpTree::Leaf(*i),
        SpTree::Series(children) => {
            let mut ordered: Vec<SpTree> = children
                .iter()
                .map(|c| order_tree(c, density, hot_first))
                .collect();
            ordered.sort_by(|a, b| {
                let ka = block_activity(a, density);
                let kb = block_activity(b, density);
                if hot_first {
                    kb.total_cmp(&ka)
                } else {
                    ka.total_cmp(&kb)
                }
            });
            // Construct directly: sorting never nests series in series.
            SpTree::Series(ordered)
        }
        SpTree::Parallel(children) => SpTree::Parallel(
            children
                .iter()
                .map(|c| order_tree(c, density, hot_first))
                .collect(),
        ),
    }
}

/// Applies the rule to one gate: derives the target topology, then finds
/// the configuration index realizing it.
fn choose_config(
    library: &Library,
    cell: &tr_netlist::CellKind,
    input_density: &[f64],
    rule: Rule,
) -> usize {
    let cell = library.cell(cell).expect("unknown cell");
    // Series index 0 is output-adjacent by convention, so HotNearOutput
    // means descending activity.
    let hot_first = matches!(rule, Rule::HotNearOutput);
    let reference = &cell.configurations()[0];
    let target = Topology {
        pulldown: order_tree(&reference.pulldown, input_density, hot_first),
        pullup: order_tree(&reference.pullup, input_density, hot_first),
    };
    // Match against the enumerated configurations modulo parallel-branch
    // placement (compare canonicalized forms).
    let canon = |t: &Topology| (canonical(&t.pulldown), canonical(&t.pullup));
    let want = canon(&target);
    cell.configurations()
        .iter()
        .position(|c| canon(c) == want)
        .unwrap_or(0)
}

/// Canonical form: sort parallel children (they carry no order).
fn canonical(tree: &SpTree) -> SpTree {
    match tree {
        SpTree::Leaf(i) => SpTree::Leaf(*i),
        SpTree::Series(cs) => SpTree::Series(cs.iter().map(canonical).collect()),
        SpTree::Parallel(cs) => {
            let mut children: Vec<SpTree> = cs.iter().map(canonical).collect();
            children.sort();
            SpTree::Parallel(children)
        }
    }
}

/// Optimizes a circuit with a fixed rule of thumb instead of the model.
///
/// The power numbers in the result are still evaluated with the full
/// model so rule-based and model-based runs are directly comparable.
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count, the
/// circuit is invalid, or a cell is missing from the library.
pub fn optimize_rule_based(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    pi_stats: &[SignalStats],
    rule: Rule,
) -> OptimizeResult {
    let net_stats = propagate(circuit, library, pi_stats);
    let before = circuit_power(circuit, model, &net_stats).total;
    let mut result = circuit.clone();
    let mut changed = 0usize;
    for (i, gate) in circuit.gates().iter().enumerate() {
        let density: Vec<f64> = gate
            .inputs
            .iter()
            .map(|n| net_stats[n.0].density())
            .collect();
        let choice = choose_config(library, &gate.cell, &density, rule);
        if choice != gate.config {
            changed += 1;
        }
        result.set_config(tr_netlist::GateId(i), choice);
    }
    let after = circuit_power(&result, model, &net_stats).total;
    OptimizeResult {
        circuit: result,
        power_before: before,
        power_after: after,
        changed_gates: changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, Objective};
    use tr_gatelib::Process;
    use tr_netlist::{generators, CellKind};
    use tr_power::scenario::Scenario;

    fn setup() -> (Library, PowerModel) {
        let lib = Library::standard();
        let model = PowerModel::new(&lib, Process::default());
        (lib, model)
    }

    #[test]
    fn rule_orders_nand_stack_by_activity() {
        let (lib, _) = setup();
        let density = [1.0e4, 1.0e6, 1.0e5];
        let cfg = choose_config(&lib, &CellKind::Nand(3), &density, Rule::HotNearOutput);
        let cell = lib.cell(&CellKind::Nand(3)).unwrap();
        let topo = &cell.configurations()[cfg];
        // Pull-down series order should be inputs 1, 2, 0 (descending D).
        assert_eq!(topo.pulldown.inputs(), vec![1, 2, 0]);
        let cfg2 = choose_config(&lib, &CellKind::Nand(3), &density, Rule::HotNearRail);
        let topo2 = &cell.configurations()[cfg2];
        assert_eq!(topo2.pulldown.inputs(), vec![0, 2, 1]);
    }

    #[test]
    fn rule_configs_are_always_valid() {
        let (lib, _) = setup();
        for cell in lib.cells() {
            let density: Vec<f64> = (0..cell.arity()).map(|i| (i as f64 + 1.0) * 1e5).collect();
            for rule in [Rule::HotNearOutput, Rule::HotNearRail] {
                let cfg = choose_config(&lib, cell.kind(), &density, rule);
                assert!(cfg < cell.configurations().len(), "{}", cell.name());
            }
        }
    }

    #[test]
    fn model_beats_or_matches_both_rules() {
        let (lib, model) = setup();
        for c in [
            generators::ripple_carry_adder(8, &lib),
            generators::random_circuit(12, 150, 3, &lib),
        ] {
            let stats = Scenario::a().input_stats(c.primary_inputs().len(), 21);
            let full = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
            for rule in [Rule::HotNearOutput, Rule::HotNearRail] {
                let ruled = optimize_rule_based(&c, &lib, &model, &stats, rule);
                assert!(
                    full.power_after <= ruled.power_after + 1e-18,
                    "{}: model {} vs rule {:?} {}",
                    c.name(),
                    full.power_after,
                    rule,
                    ruled.power_after
                );
            }
        }
    }

    #[test]
    fn rules_preserve_function() {
        let (lib, model) = setup();
        let c = generators::comparator(6, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 5);
        let ruled = optimize_rule_based(&c, &lib, &model, &stats, Rule::HotNearOutput);
        for m in (0..4096usize).step_by(97) {
            let v: Vec<bool> = (0..12).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(c.evaluate(&lib, &v), ruled.circuit.evaluate(&lib, &v));
        }
    }

    #[test]
    fn hot_near_output_matches_the_model_on_the_table1_gate() {
        // Table 1 case (1): the hot input b should shield the stack by
        // sitting adjacent to the output. The HotNearOutput rule must
        // agree with the model's choice for the pull-down network there;
        // HotNearRail must not.
        let (lib, model) = setup();
        let cell = lib.cell(&CellKind::oai21()).unwrap();
        let density = [1.0e4, 1.0e5, 1.0e6]; // b = input 2 is hot
        let stats: Vec<tr_boolean::SignalStats> = density
            .iter()
            .map(|&d| tr_boolean::SignalStats::new(0.5, d))
            .collect();
        let (best, _) = model.best_and_worst(cell.kind(), &stats, 8.0e-15);
        let near_out = choose_config(&lib, &CellKind::oai21(), &density, Rule::HotNearOutput);
        let near_rail = choose_config(&lib, &CellKind::oai21(), &density, Rule::HotNearRail);
        let pd = |cfg: usize| cell.configurations()[cfg].pulldown.clone();
        assert_eq!(
            pd(near_out),
            pd(best),
            "rule should place hot b at the output like the model"
        );
        assert_ne!(pd(near_rail), pd(best));
        // And in model power terms the near-output rule is strictly
        // better on this gate.
        let p = |cfg: usize| model.gate_power(cell.kind(), cfg, &stats, 8.0e-15).total;
        assert!(p(near_out) < p(near_rail));
    }
}
