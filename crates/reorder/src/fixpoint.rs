//! The sound fixed-point optimization loop: propagate → optimize →
//! re-propagate dirty cones → repeat until no gate changes.
//!
//! The single-pass optimizer scores every configuration against net
//! statistics computed *once*, before optimization. That is provably
//! sufficient for the paper's move set — reordering a gate's
//! transistors never changes its Boolean function (§4.2), so the
//! statistics cannot drift — but the claim deserves to be *checked*,
//! not assumed, and it stops holding the moment a flow substitutes
//! cells or feeds the optimizer statistics that were stale to begin
//! with. [`optimize_to_fixpoint`] closes the loop:
//!
//! 1. optimize against the current statistics;
//! 2. if no gate changed, stop — the statistics provably describe the
//!    final circuit (they were just used unchanged);
//! 3. otherwise re-derive exactly the dirty cones of the accepted
//!    changes through [`IncrementalPropagator::refresh`] (for the BDD
//!    backend: GC-safe in-place recomposition in the long-lived
//!    manager, no rebuild) and go to 1.
//!
//! For config-only moves the refresh finds every cone clean and the
//! loop converges on the second iteration with a measured
//! stale-vs-fresh discrepancy of exactly zero — the §4.2 lemma,
//! verified at runtime instead of trusted. The iteration cap exists for
//! move sets with real feedback (cell substitution); hitting it is not
//! an error but a typed [`FixpointTermination::IterationCap`] report,
//! with the final numbers still computed from fresh statistics.

use crate::{
    optimize_governed_with_net_stats, optimize_parallel_governed_with_net_stats, Objective,
    OptimizeResult,
};
use tr_boolean::govern::Governor;
use tr_boolean::SignalStats;
use tr_gatelib::Library;
use tr_netlist::{Circuit, CompiledCircuit, GateId};
use tr_power::{
    circuit_total_compiled, external_loads_compiled, IncrementalPropagator, PowerModel,
    PropagationError, PropagationMode, Scratch,
};

/// Default [`FixpointOptions::max_iterations`]: config-only moves
/// converge in two iterations, so eight leaves ample room for
/// cell-substituting flows before the typed cap report fires.
pub const DEFAULT_MAX_ITERATIONS: usize = 8;

/// Knobs of [`optimize_to_fixpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixpointOptions {
    /// What each traversal selects per gate.
    pub objective: Objective,
    /// Iteration cap; reaching it yields
    /// [`FixpointTermination::IterationCap`], not an error.
    pub max_iterations: usize,
    /// Worker threads per traversal (1 = serial; the parallel traversal
    /// is used above its break-even work threshold, exactly as
    /// [`crate::optimize_parallel_with_net_stats`]).
    pub threads: usize,
}

impl Default for FixpointOptions {
    fn default() -> Self {
        FixpointOptions {
            objective: Objective::MinimizePower,
            max_iterations: DEFAULT_MAX_ITERATIONS,
            threads: 1,
        }
    }
}

/// How the fixed-point loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixpointTermination {
    /// An iteration accepted zero changes: the statistics provably
    /// describe the final circuit.
    Converged,
    /// [`FixpointOptions::max_iterations`] traversals all accepted
    /// changes. The reported numbers are still fresh (the last accepted
    /// circuit was re-propagated before reporting).
    IterationCap {
        /// Gates still changing in the final traversal.
        last_changed_gates: usize,
    },
}

/// Everything [`optimize_to_fixpoint`] learned.
#[derive(Debug, Clone)]
pub struct FixpointReport {
    /// The final circuit with before/after powers: `power_before` under
    /// the initial statistics, `power_after` under statistics that are
    /// *fresh for the final circuit*, and `changed_gates` counted
    /// against the input circuit.
    pub result: OptimizeResult,
    /// Optimizer traversals run (the converging run counts).
    pub iterations: usize,
    /// Dirty-cone re-propagations run (one per accepting traversal).
    pub repropagations: usize,
    /// Nets whose statistics actually changed across all
    /// re-propagations (0 for config-only moves — the §4.2 lemma,
    /// measured).
    pub refreshed_nets: usize,
    /// Final circuit's power as the last traversal *believed* it —
    /// scored against that traversal's (possibly stale) statistics (W).
    pub stale_power_w: f64,
    /// Final circuit's power under fresh statistics (W). Equal to
    /// `result.power_after`.
    pub fresh_power_w: f64,
    /// Why the loop stopped.
    pub termination: FixpointTermination,
}

impl FixpointReport {
    /// Whether the loop reached a true fixed point.
    pub fn converged(&self) -> bool {
        self.termination == FixpointTermination::Converged
    }

    /// The measured price of trusting a frozen statistics snapshot:
    /// `|stale − fresh|` (W). Exactly zero for config-only moves.
    pub fn stale_discrepancy_w(&self) -> f64 {
        (self.stale_power_w - self.fresh_power_w).abs()
    }
}

/// Gate indices whose configuration or cell differs between two
/// structurally identical circuits — the dirty set one accepted
/// traversal hands to the re-propagator.
fn diff_gates(a: &Circuit, b: &Circuit) -> Vec<GateId> {
    debug_assert_eq!(a.gates().len(), b.gates().len());
    a.gates()
        .iter()
        .zip(b.gates())
        .enumerate()
        .filter(|(_, (x, y))| x.config != y.config || x.cell != y.cell)
        .map(|(i, _)| GateId(i))
        .collect()
}

/// Full-pass total power of `circuit` under `net_stats` (the fresh
/// number reported when the iteration cap fires mid-flight).
fn total_power(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    net_stats: &[SignalStats],
    scratch: &mut Scratch,
) -> f64 {
    let compiled = CompiledCircuit::compile(circuit, library).expect("validated circuit");
    let loads = external_loads_compiled(&compiled, model);
    circuit_total_compiled(&compiled, model, net_stats, &loads, scratch, |i| {
        compiled.gates()[i].config as usize
    })
}

/// Runs the propagate → optimize → re-propagate loop to a fixed point
/// (see the module docs), building a fresh [`IncrementalPropagator`]
/// for `mode` first. Flows that already propagated once should call
/// [`optimize_to_fixpoint_with_propagator`] instead and reuse theirs.
///
/// # Errors
///
/// Returns [`PropagationError`] if the circuit does not compile against
/// `library` or the BDD backend blows its node budget. Non-convergence
/// is **not** an error — see [`FixpointTermination`].
///
/// # Panics
///
/// As [`crate::optimize_with_net_stats`]; additionally if
/// `options.threads == 0`.
pub fn optimize_to_fixpoint(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    pi_stats: &[SignalStats],
    mode: PropagationMode,
    options: FixpointOptions,
) -> Result<FixpointReport, PropagationError> {
    let mut propagator = IncrementalPropagator::new(circuit, library, pi_stats, mode)?;
    optimize_to_fixpoint_with_propagator(circuit, library, model, &mut propagator, options)
}

/// [`optimize_to_fixpoint`] over a caller-owned propagator whose
/// statistics are already valid for `circuit` — the flow-pipeline entry
/// point (one statistics pass serves both the report and the loop). On
/// return the propagator's statistics are valid for the *final*
/// circuit.
///
/// # Errors
///
/// As [`optimize_to_fixpoint`].
///
/// # Panics
///
/// As [`optimize_to_fixpoint`].
pub fn optimize_to_fixpoint_with_propagator(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    propagator: &mut IncrementalPropagator,
    options: FixpointOptions,
) -> Result<FixpointReport, PropagationError> {
    optimize_to_fixpoint_governed(circuit, library, model, propagator, options, None)
}

/// [`optimize_to_fixpoint_with_propagator`] under an optional
/// [`Governor`]: each optimizer traversal checks it per gate, each
/// iteration boundary checks it immediately, and the propagator's own
/// governor (if it carries one) governs the refreshes. The input circuit
/// is never modified, so an interrupted loop loses nothing but time.
///
/// # Errors
///
/// As [`optimize_to_fixpoint`], plus
/// [`PropagationError::Interrupted`] when a governor trips.
///
/// # Panics
///
/// As [`optimize_to_fixpoint`].
pub fn optimize_to_fixpoint_governed(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    propagator: &mut IncrementalPropagator,
    options: FixpointOptions,
    governor: Option<&Governor>,
) -> Result<FixpointReport, PropagationError> {
    assert!(options.threads > 0, "need at least one thread");
    assert!(options.max_iterations > 0, "need at least one iteration");
    let _g = tr_trace::span!(
        "opt.fixpoint",
        max_iterations = options.max_iterations,
        threads = options.threads
    );
    let repropagations_before = propagator.repropagations();
    let refreshed_before = propagator.refreshed_nets();
    let mut scratch = Scratch::new();
    let mut current = circuit.clone();
    let mut power_before = f64::NAN;
    // The previous traversal's belief about the current circuit's power
    // (scored against its pre-refresh statistics).
    let mut stale_power = f64::NAN;
    let mut iterations = 0usize;
    loop {
        if let Some(g) = governor {
            g.check_now("fixpoint")?;
        }
        iterations += 1;
        let _g = tr_trace::span!("opt.iteration", iteration = iterations);
        let r = if options.threads > 1 {
            optimize_parallel_governed_with_net_stats(
                &current,
                library,
                model,
                propagator.net_stats(),
                options.objective,
                options.threads,
                governor,
            )?
        } else {
            optimize_governed_with_net_stats(
                &current,
                library,
                model,
                propagator.net_stats(),
                options.objective,
                &mut scratch,
                governor,
            )?
        };
        if iterations == 1 {
            power_before = r.power_before;
        }
        let (termination, fresh_power) = if r.changed_gates == 0 {
            // Fixed point: the traversal just scored `current` against
            // statistics valid for it and kept every gate — its
            // `power_before` IS the fresh final power.
            (FixpointTermination::Converged, r.power_before)
        } else {
            let dirty = diff_gates(&current, &r.circuit);
            stale_power = r.power_after;
            current = r.circuit;
            propagator.refresh(&current, library, &dirty)?;
            if iterations < options.max_iterations {
                continue;
            }
            // Cap reached with changes still flowing: report fresh
            // numbers anyway (the refresh above just ran).
            let fresh = total_power(
                &current,
                library,
                model,
                propagator.net_stats(),
                &mut scratch,
            );
            (
                FixpointTermination::IterationCap {
                    last_changed_gates: r.changed_gates,
                },
                fresh,
            )
        };
        let changed = diff_gates(circuit, &current).len();
        return Ok(FixpointReport {
            result: OptimizeResult {
                circuit: current,
                power_before,
                power_after: fresh_power,
                changed_gates: changed,
            },
            iterations,
            repropagations: propagator.repropagations() - repropagations_before,
            refreshed_nets: propagator.refreshed_nets() - refreshed_before,
            stale_power_w: if stale_power.is_nan() {
                fresh_power
            } else {
                stale_power
            },
            fresh_power_w: fresh_power,
            termination,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize;
    use tr_gatelib::Process;
    use tr_netlist::{generators, suite};
    use tr_power::scenario::Scenario;

    fn setup() -> (Library, PowerModel) {
        let lib = Library::standard();
        let model = PowerModel::new(&lib, Process::default());
        (lib, model)
    }

    /// The loop terminates on every circuit of the benchmark suite — in
    /// at most two traversals, because the paper's move set is
    /// config-only and the statistics provably cannot drift (§4.2). The
    /// fixed point must agree with the single-pass optimizer.
    #[test]
    fn fixpoint_converges_on_every_suite_circuit() {
        let (lib, model) = setup();
        for case in suite::standard_suite(&lib) {
            let n = case.circuit.primary_inputs().len();
            let stats = Scenario::a().input_stats(n, 0xF1);
            let rep = optimize_to_fixpoint(
                &case.circuit,
                &lib,
                &model,
                &stats,
                PropagationMode::Independent,
                FixpointOptions::default(),
            )
            .expect("independent backend is infallible here");
            assert!(rep.converged(), "{}: did not converge", case.name);
            assert!(
                rep.iterations <= 2,
                "{}: took {} iterations",
                case.name,
                rep.iterations
            );
            assert_eq!(
                rep.stale_discrepancy_w(),
                0.0,
                "{}: config-only moves must measure zero discrepancy",
                case.name
            );
            let single = optimize(
                &case.circuit,
                &lib,
                &model,
                &stats,
                Objective::MinimizePower,
            );
            assert_eq!(rep.result.circuit, single.circuit, "{}", case.name);
            assert_eq!(rep.result.power_after, single.power_after, "{}", case.name);
            assert_eq!(
                rep.result.changed_gates, single.changed_gates,
                "{}",
                case.name
            );
        }
    }

    #[test]
    fn fixpoint_under_exact_bdd_verifies_the_monotonicity_lemma() {
        let (lib, model) = setup();
        let c = generators::carry_select_adder(16, 4, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 7);
        let rep = optimize_to_fixpoint(
            &c,
            &lib,
            &model,
            &stats,
            PropagationMode::ExactBdd,
            FixpointOptions::default(),
        )
        .expect("fits node budget");
        assert!(rep.converged());
        assert!(rep.result.changed_gates > 0, "optimizer should find moves");
        assert_eq!(rep.iterations, 2, "accept once, then confirm");
        assert_eq!(rep.repropagations, 1, "one refresh after the accept");
        assert_eq!(
            rep.refreshed_nets, 0,
            "§4.2: a config-only refresh re-derives no net"
        );
        assert_eq!(rep.stale_discrepancy_w(), 0.0);
        assert_eq!(rep.fresh_power_w, rep.result.power_after);
        assert!(rep.result.power_after <= rep.result.power_before + 1e-18);
    }

    #[test]
    fn fixpoint_iteration_cap_is_a_typed_report_not_an_error() {
        let (lib, model) = setup();
        let c = generators::ripple_carry_adder(8, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 3);
        let rep = optimize_to_fixpoint(
            &c,
            &lib,
            &model,
            &stats,
            PropagationMode::Independent,
            FixpointOptions {
                max_iterations: 1,
                ..FixpointOptions::default()
            },
        )
        .expect("independent backend");
        assert!(!rep.converged());
        match rep.termination {
            FixpointTermination::IterationCap { last_changed_gates } => {
                assert!(last_changed_gates > 0)
            }
            FixpointTermination::Converged => panic!("cap of 1 must not converge here"),
        }
        assert_eq!(rep.iterations, 1);
        // The cap path still reports fresh numbers; config-only moves
        // leave the statistics untouched, so stale == fresh exactly.
        assert_eq!(rep.stale_discrepancy_w(), 0.0);
        let single = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        assert_eq!(rep.result.circuit, single.circuit);
        assert_eq!(rep.result.power_after, single.power_after);
    }

    #[test]
    fn fixpoint_parallel_matches_serial() {
        let (lib, model) = setup();
        let c = generators::array_multiplier(4, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 21);
        let serial = optimize_to_fixpoint(
            &c,
            &lib,
            &model,
            &stats,
            PropagationMode::Independent,
            FixpointOptions::default(),
        )
        .unwrap();
        let parallel = optimize_to_fixpoint(
            &c,
            &lib,
            &model,
            &stats,
            PropagationMode::Independent,
            FixpointOptions {
                threads: 4,
                ..FixpointOptions::default()
            },
        )
        .unwrap();
        assert_eq!(serial.result.circuit, parallel.result.circuit);
        assert_eq!(serial.result.power_after, parallel.result.power_after);
        assert_eq!(serial.iterations, parallel.iterations);
    }

    #[test]
    #[should_panic(expected = "need at least one thread")]
    fn fixpoint_zero_threads_panics() {
        let (lib, model) = setup();
        let c = generators::ripple_carry_adder(2, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 1);
        let _ = optimize_to_fixpoint(
            &c,
            &lib,
            &model,
            &stats,
            PropagationMode::Independent,
            FixpointOptions {
                threads: 0,
                ..FixpointOptions::default()
            },
        );
    }
}
