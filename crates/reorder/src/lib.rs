//! The transistor-reordering power optimizer — the paper's §4 algorithm.
//!
//! One depth-first traversal of the circuit (Fig. 3):
//!
//! 1. `OBTAIN_PROBABILITIES` — propagate `(P, D)` statistics from the
//!    primary inputs through every gate *function* (ordering-independent);
//! 2. for each gate, `FIND_BEST_REORDERING` — exhaustively evaluate every
//!    configuration of its cell under the extended power model and keep
//!    the cheapest;
//! 3. `CALCULATE_DENS` / `UPDATE_CIRCUIT_INFORMATION` — the output
//!    statistics are already correct because reordering never changes the
//!    gate function (§4.2 monotonicity), so a single pass is optimal with
//!    respect to the model.
//!
//! The same machinery selects the *worst* ordering, which is how the
//! paper's Table 3 measures the technique's headroom (best vs worst), and
//! a delay-bounded variant implements the paper's §6 future-work
//! direction (power reduction without delay increase).
//!
//! # Example
//!
//! ```
//! use tr_boolean::SignalStats;
//! use tr_gatelib::{Library, Process};
//! use tr_netlist::generators;
//! use tr_power::PowerModel;
//! use tr_reorder::{optimize, Objective};
//!
//! let lib = Library::standard();
//! let model = PowerModel::new(&lib, Process::default());
//! let adder = generators::ripple_carry_adder(8, &lib);
//! let stats = vec![SignalStats::new(0.5, 0.5); 17];
//! let result = optimize(&adder, &lib, &model, &stats, Objective::MinimizePower);
//! assert!(result.power_after <= result.power_before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use tr_boolean::govern::{Governor, Interrupted};
use tr_boolean::SignalStats;
use tr_gatelib::Library;
use tr_netlist::partition::Partition;
use tr_netlist::{Circuit, CompiledCircuit, ResolvedGate};
use tr_power::{
    circuit_total_compiled, external_loads_compiled, propagate, PowerModel, Scratch, MAX_CELL_ARITY,
};
use tr_timing::TimingModel;

/// What the traversal selects in each gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Choose the lowest-power configuration of every gate.
    MinimizePower,
    /// Choose the highest-power configuration (the paper's worst-case
    /// reference for Table 3).
    MaximizePower,
}

/// Result of one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// The rewritten circuit.
    pub circuit: Circuit,
    /// Model-estimated total power before (W).
    pub power_before: f64,
    /// Model-estimated total power after (W).
    pub power_after: f64,
    /// Number of gates whose configuration changed.
    pub changed_gates: usize,
}

impl OptimizeResult {
    /// Relative power change in percent (positive = reduction).
    pub fn reduction_percent(&self) -> f64 {
        if self.power_before == 0.0 {
            0.0
        } else {
            100.0 * (self.power_before - self.power_after) / self.power_before
        }
    }
}

/// Runs the Fig. 3 traversal over the whole circuit.
///
/// `pi_stats` supplies the primary-input statistics (see
/// [`tr_power::scenario`]). The input circuit is not modified; the chosen
/// configurations are returned in [`OptimizeResult::circuit`].
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count, the
/// circuit is invalid, or a cell is missing from the library.
pub fn optimize(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    pi_stats: &[SignalStats],
    objective: Objective,
) -> OptimizeResult {
    optimize_with_scratch(
        circuit,
        library,
        model,
        pi_stats,
        objective,
        &mut Scratch::new(),
    )
}

/// [`optimize`] with a caller-supplied [`Scratch`], so long-running
/// drivers (the batch runner, benchmark loops) can reuse one arena per
/// worker thread instead of reallocating it per circuit. Results are
/// identical to [`optimize`] regardless of the scratch's prior contents.
///
/// # Panics
///
/// As [`optimize`].
pub fn optimize_with_scratch(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    pi_stats: &[SignalStats],
    objective: Objective,
    scratch: &mut Scratch,
) -> OptimizeResult {
    let net_stats = propagate(circuit, library, pi_stats);
    optimize_with_net_stats(circuit, library, model, &net_stats, objective, scratch)
}

/// [`optimize`] against caller-supplied **per-net** statistics — the
/// entry point for exact probability backends: pass the output of
/// [`tr_power::propagate_exact_bdd`] (or a Monte Carlo estimate) and the
/// Fig. 3 traversal scores every configuration against correlation-exact
/// activities instead of the independence approximation.
///
/// # Panics
///
/// Panics if `net_stats.len()` differs from the net count, the circuit
/// is invalid, or a cell is missing from the library.
pub fn optimize_with_net_stats(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    net_stats: &[SignalStats],
    objective: Objective,
    scratch: &mut Scratch,
) -> OptimizeResult {
    optimize_governed_with_net_stats(circuit, library, model, net_stats, objective, scratch, None)
        .expect("ungoverned traversal cannot be interrupted")
}

/// [`optimize_with_net_stats`] under an optional [`Governor`], checked
/// once per gate (a gate's configuration sweep is the traversal's unit
/// of work). An interrupted traversal returns no partial result — the
/// input circuit is untouched either way.
///
/// # Errors
///
/// Returns [`Interrupted`] when the governor trips mid-traversal.
///
/// # Panics
///
/// As [`optimize_with_net_stats`].
pub fn optimize_governed_with_net_stats(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    net_stats: &[SignalStats],
    objective: Objective,
    scratch: &mut Scratch,
    governor: Option<&Governor>,
) -> Result<OptimizeResult, Interrupted> {
    let compiled = CompiledCircuit::compile(circuit, library).expect("validated circuit");
    assert_cell_ids_aligned(circuit, &compiled, |k| model.cell_id(k), "PowerModel");
    assert_eq!(
        net_stats.len(),
        compiled.net_count(),
        "one SignalStats per net"
    );
    let _g = tr_trace::span!("opt.pass", gates = compiled.gates().len());
    let loads = external_loads_compiled(&compiled, model);
    let before = circuit_total_compiled(&compiled, model, net_stats, &loads, scratch, |i| {
        compiled.gates()[i].config as usize
    });

    let mut result = circuit.clone();
    let mut changed = 0usize;
    let mut choices = vec![0usize; compiled.gates().len()];
    let mut buf = [SignalStats::constant(false); MAX_CELL_ARITY];
    // Depth-first gate list (paper Fig. 3). With the monotonic model any
    // order gives the same answer; we keep the paper's for fidelity.
    for &gid in compiled.order() {
        if let Some(g) = governor {
            g.check("optimize")?;
        }
        let gate = &compiled.gates()[gid.0];
        gather_inputs(&compiled, gate, net_stats, &mut buf);
        let inputs = &buf[..gate.arity as usize];
        let load = loads[gate.output.0];
        let (best, worst) = model.best_and_worst_by_id(gate.cell, inputs, load, scratch);
        let choice = match objective {
            Objective::MinimizePower => best,
            Objective::MaximizePower => worst,
        };
        if choice != gate.config as usize {
            changed += 1;
        }
        choices[gid.0] = choice;
        result.set_config(gid, choice);
    }
    let after =
        circuit_total_compiled(&compiled, model, net_stats, &loads, scratch, |i| choices[i]);
    Ok(OptimizeResult {
        circuit: result,
        power_before: before,
        power_after: after,
        changed_gates: changed,
    })
}

/// Verifies — once per distinct cell, so the cost is a branch per gate
/// plus a handful of hash probes — that a model's interned id space
/// matches the library this circuit was compiled against. Guards the
/// by-id fast paths from silently reading another cell's tables when a
/// caller mixes models built from different libraries.
fn assert_cell_ids_aligned(
    circuit: &Circuit,
    compiled: &CompiledCircuit,
    resolve: impl Fn(&tr_gatelib::CellKind) -> Option<tr_gatelib::CellId>,
    what: &str,
) {
    let max_id = compiled.gates().iter().map(|g| g.cell.0).max();
    let mut checked = vec![false; max_id.map_or(0, |m| m + 1)];
    for (gate, rg) in circuit.gates().iter().zip(compiled.gates()) {
        if checked[rg.cell.0] {
            continue;
        }
        assert_eq!(
            resolve(&gate.cell),
            Some(rg.cell),
            "{what} was built from a different library than this circuit"
        );
        checked[rg.cell.0] = true;
    }
}

/// Copies a gate's input-net statistics into the reusable stack buffer.
#[inline]
fn gather_inputs(
    compiled: &CompiledCircuit,
    gate: &ResolvedGate,
    net_stats: &[SignalStats],
    buf: &mut [SignalStats; MAX_CELL_ARITY],
) {
    for (slot, net) in buf.iter_mut().zip(compiled.inputs(gate)) {
        *slot = net_stats[net.0];
    }
}

/// Gates handed to a worker per grab of the shared queue. Small enough to
/// balance cells with wildly different configuration counts (2 for
/// `nand2`, 48 for `oai222`), big enough to keep contention negligible.
const PARALLEL_CHUNK: usize = 32;

/// Minimum total work — summed configuration evaluations over all gates —
/// below which [`optimize_parallel`] falls back to the serial traversal.
/// Spawning and joining scoped threads costs tens of microseconds; a
/// 16-bit ripple-carry adder's whole exploration (496 config evals,
/// ~300 µs) is barely past break-even, and on small inputs the pool is a
/// pure regression (BENCH_PR4: `p3_optimize_rca16_parallel4` 390 µs vs
/// 318 µs serial). 1024 puts the cutoff at double that scale:
/// parallelism has to *win*, not tie (mult8's 1792 evals still
/// qualify).
const PARALLEL_MIN_WORK: usize = 1024;

/// Total exploration work of a circuit: one unit per (gate,
/// configuration) pair the optimizer will evaluate.
fn exploration_work(circuit: &Circuit, library: &Library) -> usize {
    circuit
        .gates()
        .iter()
        .map(|g| {
            library
                .cell(&g.cell)
                .map_or(1, |c| c.configurations().len())
        })
        .sum()
}

/// Whether the thread pool pays for itself on this much work.
fn should_parallelize(work: usize, threads: usize) -> bool {
    threads > 1 && work >= PARALLEL_MIN_WORK
}

/// Parallel variant of [`optimize`]: gates are explored concurrently by
/// scoped threads pulling fixed-size chunks off a shared atomic queue
/// (work stealing in all but name — a thread stuck on a run of 48-config
/// cells simply grabs fewer chunks). Exact same result as the sequential
/// traversal (per-gate choices are independent given the net statistics).
///
/// # Panics
///
/// As [`optimize`]; additionally if `threads == 0`.
pub fn optimize_parallel(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    pi_stats: &[SignalStats],
    objective: Objective,
    threads: usize,
) -> OptimizeResult {
    let net_stats = propagate(circuit, library, pi_stats);
    optimize_parallel_with_net_stats(circuit, library, model, &net_stats, objective, threads)
}

/// [`optimize_parallel`] against caller-supplied per-net statistics (see
/// [`optimize_with_net_stats`]).
///
/// Falls back to the serial traversal when `threads == 1` or the
/// circuit's total exploration work (gates × configurations) is too
/// small for the thread pool to pay for itself; the result is identical
/// either way (per-gate choices are independent given the net
/// statistics).
///
/// # Panics
///
/// As [`optimize_with_net_stats`]; additionally if `threads == 0`.
pub fn optimize_parallel_with_net_stats(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    net_stats: &[SignalStats],
    objective: Objective,
    threads: usize,
) -> OptimizeResult {
    optimize_parallel_governed_with_net_stats(
        circuit, library, model, net_stats, objective, threads, None,
    )
    .expect("ungoverned traversal cannot be interrupted")
}

/// [`optimize_parallel_with_net_stats`] under an optional [`Governor`]:
/// every worker checks the *same* shared governor once per gate, so a
/// trip observed by any thread stops the whole pool within one queue
/// chunk (the others hit the tripped state at their own next check).
///
/// # Errors
///
/// Returns [`Interrupted`] when the governor trips mid-traversal.
///
/// # Panics
///
/// As [`optimize_parallel_with_net_stats`].
pub fn optimize_parallel_governed_with_net_stats(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    net_stats: &[SignalStats],
    objective: Objective,
    threads: usize,
    governor: Option<&Governor>,
) -> Result<OptimizeResult, Interrupted> {
    assert!(threads > 0, "need at least one thread");
    if !should_parallelize(exploration_work(circuit, library), threads) {
        return optimize_governed_with_net_stats(
            circuit,
            library,
            model,
            net_stats,
            objective,
            &mut Scratch::new(),
            governor,
        );
    }
    let compiled = CompiledCircuit::compile(circuit, library).expect("validated circuit");
    assert_cell_ids_aligned(circuit, &compiled, |k| model.cell_id(k), "PowerModel");
    assert_eq!(
        net_stats.len(),
        compiled.net_count(),
        "one SignalStats per net"
    );
    let _g = tr_trace::span!(
        "opt.parallel",
        gates = compiled.gates().len(),
        threads = threads
    );
    let loads = external_loads_compiled(&compiled, model);
    let mut scratch = Scratch::new();
    let before = circuit_total_compiled(&compiled, model, net_stats, &loads, &mut scratch, |i| {
        compiled.gates()[i].config as usize
    });

    let n = compiled.gates().len();
    let next = AtomicUsize::new(0);
    let partials: Vec<Result<Vec<(usize, usize)>, Interrupted>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let compiled = &compiled;
                let net_stats = &net_stats;
                let loads = &loads;
                let next = &next;
                scope.spawn(move || {
                    let mut scratch = Scratch::new();
                    let mut buf = [SignalStats::constant(false); MAX_CELL_ARITY];
                    let mut out = Vec::new();
                    loop {
                        let start = next.fetch_add(PARALLEL_CHUNK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for (i, gate) in compiled.gates()[start..(start + PARALLEL_CHUNK).min(n)]
                            .iter()
                            .enumerate()
                        {
                            if let Some(g) = governor {
                                g.check("optimize")?;
                            }
                            gather_inputs(compiled, gate, net_stats, &mut buf);
                            let (best, worst) = model.best_and_worst_by_id(
                                gate.cell,
                                &buf[..gate.arity as usize],
                                loads[gate.output.0],
                                &mut scratch,
                            );
                            let choice = match objective {
                                Objective::MinimizePower => best,
                                Objective::MaximizePower => worst,
                            };
                            out.push((start + i, choice));
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("optimizer worker panicked"))
            .collect()
    });

    let mut choices = vec![0usize; n];
    for partial in partials {
        for (i, choice) in partial? {
            choices[i] = choice;
        }
    }
    let mut result = circuit.clone();
    let mut changed = 0usize;
    for (i, &choice) in choices.iter().enumerate() {
        if circuit.gates()[i].config != choice {
            changed += 1;
        }
        result.set_config(tr_netlist::GateId(i), choice);
    }
    let after = circuit_total_compiled(&compiled, model, net_stats, &loads, &mut scratch, |i| {
        choices[i]
    });
    Ok(OptimizeResult {
        circuit: result,
        power_before: before,
        power_after: after,
        changed_gates: changed,
    })
}

/// Region-sharded variant of [`optimize_parallel_with_net_stats`] for
/// the partitioned statistics backend: workers pull whole partition
/// *regions* off the shared queue instead of fixed-size gate chunks, so
/// the optimizer's unit of work matches the propagator's and a region's
/// gates — which share input nets and therefore statistics cache lines —
/// are explored by one thread. Per-gate choices are independent given
/// the net statistics, so the result is bitwise identical to the serial
/// and chunk-parallel traversals; only the schedule differs.
///
/// # Errors
///
/// Returns [`Interrupted`] when the governor trips mid-traversal.
///
/// # Panics
///
/// As [`optimize_parallel_with_net_stats`]; additionally if `partition`
/// does not cover exactly this circuit's gates.
#[allow(clippy::too_many_arguments)]
pub fn optimize_sharded_governed_with_net_stats(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    net_stats: &[SignalStats],
    objective: Objective,
    partition: &Partition,
    threads: usize,
    governor: Option<&Governor>,
) -> Result<OptimizeResult, Interrupted> {
    assert!(threads > 0, "need at least one thread");
    let total_gates: usize = partition.regions().iter().map(|r| r.gates.len()).sum();
    assert_eq!(
        total_gates,
        circuit.gates().len(),
        "partition must cover the circuit"
    );
    if !should_parallelize(exploration_work(circuit, library), threads) {
        return optimize_governed_with_net_stats(
            circuit,
            library,
            model,
            net_stats,
            objective,
            &mut Scratch::new(),
            governor,
        );
    }
    let compiled = CompiledCircuit::compile(circuit, library).expect("validated circuit");
    assert_cell_ids_aligned(circuit, &compiled, |k| model.cell_id(k), "PowerModel");
    assert_eq!(
        net_stats.len(),
        compiled.net_count(),
        "one SignalStats per net"
    );
    let loads = external_loads_compiled(&compiled, model);
    let mut scratch = Scratch::new();
    let before = circuit_total_compiled(&compiled, model, net_stats, &loads, &mut scratch, |i| {
        compiled.gates()[i].config as usize
    });

    let n_regions = partition.regions().len();
    let _g = tr_trace::span!(
        "opt.sharded",
        regions = n_regions,
        threads = threads,
        gates = compiled.gates().len()
    );
    let next = AtomicUsize::new(0);
    let partials: Vec<Result<Vec<(usize, usize)>, Interrupted>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let compiled = &compiled;
                let net_stats = &net_stats;
                let loads = &loads;
                let next = &next;
                scope.spawn(move || {
                    tr_trace::set_thread_name(&format!("opt-worker-{w}"));
                    let mut scratch = Scratch::new();
                    let mut buf = [SignalStats::constant(false); MAX_CELL_ARITY];
                    let mut out = Vec::new();
                    loop {
                        let r = next.fetch_add(1, Ordering::Relaxed);
                        if r >= n_regions {
                            break;
                        }
                        let _g = tr_trace::span!(
                            "opt.shard",
                            id = r,
                            gates = partition.regions()[r].gates.len()
                        );
                        for &gid in &partition.regions()[r].gates {
                            if let Some(g) = governor {
                                g.check("optimize")?;
                            }
                            let gate = &compiled.gates()[gid.0];
                            gather_inputs(compiled, gate, net_stats, &mut buf);
                            let (best, worst) = model.best_and_worst_by_id(
                                gate.cell,
                                &buf[..gate.arity as usize],
                                loads[gate.output.0],
                                &mut scratch,
                            );
                            let choice = match objective {
                                Objective::MinimizePower => best,
                                Objective::MaximizePower => worst,
                            };
                            out.push((gid.0, choice));
                        }
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("optimizer worker panicked"))
            .collect()
    });

    let mut choices = vec![0usize; compiled.gates().len()];
    for partial in partials {
        for (i, choice) in partial? {
            choices[i] = choice;
        }
    }
    let mut result = circuit.clone();
    let mut changed = 0usize;
    for (i, &choice) in choices.iter().enumerate() {
        if circuit.gates()[i].config != choice {
            changed += 1;
        }
        result.set_config(tr_netlist::GateId(i), choice);
    }
    let after = circuit_total_compiled(&compiled, model, net_stats, &loads, &mut scratch, |i| {
        choices[i]
    });
    Ok(OptimizeResult {
        circuit: result,
        power_before: before,
        power_after: after,
        changed_gates: changed,
    })
}

/// Delay-bounded optimization — the paper's §6 future-work direction (b):
/// "it is possible to obtain power reductions without increasing the
/// delay of the circuit".
///
/// Each gate may only switch to configurations that are no slower than
/// its *current* configuration on **every** input pin (at the gate's
/// actual load). Pin-wise dominance is the local condition that makes the
/// global guarantee sound: by induction over the topological order no
/// arrival time can increase, so the circuit's critical path never grows.
/// (Comparing only the worst pin would admit configurations that are
/// slower on a non-worst pin and could lengthen a path through it.)
///
/// # Panics
///
/// As [`optimize`].
pub fn optimize_delay_bounded(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    timing: &TimingModel,
    pi_stats: &[SignalStats],
) -> OptimizeResult {
    let net_stats = propagate(circuit, library, pi_stats);
    optimize_delay_bounded_with_net_stats(circuit, library, model, timing, &net_stats)
}

/// [`optimize_delay_bounded`] against caller-supplied per-net statistics
/// (see [`optimize_with_net_stats`]).
///
/// # Panics
///
/// As [`optimize_with_net_stats`].
pub fn optimize_delay_bounded_with_net_stats(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    timing: &TimingModel,
    net_stats: &[SignalStats],
) -> OptimizeResult {
    let compiled = CompiledCircuit::compile(circuit, library).expect("validated circuit");
    assert_cell_ids_aligned(circuit, &compiled, |k| model.cell_id(k), "PowerModel");
    assert_cell_ids_aligned(circuit, &compiled, |k| timing.cell_id(k), "TimingModel");
    assert_eq!(
        net_stats.len(),
        compiled.net_count(),
        "one SignalStats per net"
    );
    let loads = external_loads_compiled(&compiled, model);
    let mut scratch = Scratch::new();
    let before = circuit_total_compiled(&compiled, model, net_stats, &loads, &mut scratch, |i| {
        compiled.gates()[i].config as usize
    });

    let mut result = circuit.clone();
    let mut changed = 0usize;
    let mut choices = vec![0usize; compiled.gates().len()];
    let mut buf = [SignalStats::constant(false); MAX_CELL_ARITY];
    let mut budget = [0.0f64; MAX_CELL_ARITY];
    for (i, gate) in compiled.gates().iter().enumerate() {
        let arity = gate.arity as usize;
        let current = gate.config as usize;
        gather_inputs(&compiled, gate, net_stats, &mut buf);
        let inputs = &buf[..arity];
        let load = loads[gate.output.0];
        for (pin, slot) in budget.iter_mut().enumerate().take(arity) {
            *slot = timing.gate_delay_by_id(gate.cell, current, pin, load);
        }
        let mut best = current;
        let mut best_power = model.total_power_into(gate.cell, current, inputs, load, &mut scratch);
        for c in 0..gate.n_configs as usize {
            let dominated = (0..arity).all(|pin| {
                timing.gate_delay_by_id(gate.cell, c, pin, load) <= budget[pin] * (1.0 + 1e-12)
            });
            if !dominated {
                continue;
            }
            let p = model.total_power_into(gate.cell, c, inputs, load, &mut scratch);
            if p < best_power {
                best_power = p;
                best = c;
            }
        }
        if best != current {
            changed += 1;
        }
        choices[i] = best;
        result.set_config(tr_netlist::GateId(i), best);
    }
    let after = circuit_total_compiled(&compiled, model, net_stats, &loads, &mut scratch, |i| {
        choices[i]
    });
    OptimizeResult {
        circuit: result,
        power_before: before,
        power_after: after,
        changed_gates: changed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_gatelib::Process;
    use tr_netlist::generators;
    use tr_power::scenario::Scenario;

    fn setup() -> (Library, PowerModel, TimingModel) {
        let lib = Library::standard();
        let model = PowerModel::new(&lib, Process::default());
        let timing = TimingModel::new(&lib, Process::default());
        (lib, model, timing)
    }

    #[test]
    fn best_never_worse_than_default_or_worst() {
        let (lib, model, _) = setup();
        let c = generators::ripple_carry_adder(8, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 5);
        let best = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        let worst = optimize(&c, &lib, &model, &stats, Objective::MaximizePower);
        assert!(best.power_after <= best.power_before + 1e-18);
        assert!(worst.power_after >= worst.power_before - 1e-18);
        assert!(best.power_after < worst.power_after);
        // There is real headroom on an adder under random stats.
        let headroom = 100.0 * (worst.power_after - best.power_after) / worst.power_after;
        assert!(headroom > 2.0, "headroom only {headroom:.2}%");
    }

    #[test]
    fn net_stats_entry_points_match_pi_entry_points() {
        let (lib, model, timing) = setup();
        let c = generators::mux_tree(3, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 4);
        let net_stats = propagate(&c, &lib, &stats);
        let via_pi = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        let via_nets = optimize_with_net_stats(
            &c,
            &lib,
            &model,
            &net_stats,
            Objective::MinimizePower,
            &mut Scratch::new(),
        );
        assert_eq!(via_pi.circuit, via_nets.circuit);
        assert_eq!(via_pi.power_after, via_nets.power_after);
        let par = optimize_parallel_with_net_stats(
            &c,
            &lib,
            &model,
            &net_stats,
            Objective::MinimizePower,
            2,
        );
        assert_eq!(par.circuit, via_pi.circuit);
        let bounded_pi = optimize_delay_bounded(&c, &lib, &model, &timing, &stats);
        let bounded_nets =
            optimize_delay_bounded_with_net_stats(&c, &lib, &model, &timing, &net_stats);
        assert_eq!(bounded_pi.circuit, bounded_nets.circuit);
    }

    #[test]
    fn exact_bdd_stats_plug_into_the_optimizer() {
        // The whole point of the net-stats entry: score configurations
        // against correlation-exact activities. On a reconvergent adder
        // the exact statistics differ from the independent ones, and the
        // optimizer must accept them and still never regress the (exact)
        // power model total.
        let (lib, model, _) = setup();
        let c = generators::ripple_carry_adder(8, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 6);
        let exact = tr_power::propagate_exact_bdd(&c, &lib, &stats).expect("fits node budget");
        let indep = propagate(&c, &lib, &stats);
        assert!(
            exact
                .iter()
                .zip(&indep)
                .any(|(e, i)| (e.probability() - i.probability()).abs() > 1e-6),
            "adder carries should expose independence error"
        );
        let r = optimize_with_net_stats(
            &c,
            &lib,
            &model,
            &exact,
            Objective::MinimizePower,
            &mut Scratch::new(),
        );
        assert!(r.power_after <= r.power_before + 1e-18);
    }

    #[test]
    fn optimization_preserves_function() {
        let (lib, model, _) = setup();
        let c = generators::alu(4, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 11);
        let best = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        for trial in 0..64usize {
            let m = trial.wrapping_mul(0x9E3779B9) % (1 << c.primary_inputs().len().min(20));
            let v: Vec<bool> = (0..c.primary_inputs().len())
                .map(|i| (m >> (i % 20)) & 1 == 1)
                .collect();
            assert_eq!(
                c.evaluate(&lib, &v),
                best.circuit.evaluate(&lib, &v),
                "functional mismatch"
            );
        }
    }

    #[test]
    fn optimization_is_idempotent() {
        let (lib, model, _) = setup();
        let c = generators::comparator(8, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 3);
        let once = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        let twice = optimize(
            &once.circuit,
            &lib,
            &model,
            &stats,
            Objective::MinimizePower,
        );
        assert_eq!(twice.changed_gates, 0);
        assert!((twice.power_after - once.power_after).abs() < 1e-18);
    }

    #[test]
    fn mismatched_model_library_is_rejected() {
        // A model interned against a different library must not silently
        // read the wrong cell tables through the by-id fast path.
        let lib = Library::standard();
        let slim = Library::from_kinds([tr_gatelib::CellKind::Nand(3), tr_gatelib::CellKind::Inv]);
        let slim_model = PowerModel::new(&slim, Process::default());
        let c = generators::ripple_carry_adder(2, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            optimize(&c, &lib, &slim_model, &stats, Objective::MinimizePower)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn small_circuits_fall_back_to_serial() {
        // Regression guard for BENCH_PR4's p3_optimize_rca16_parallel4
        // (390 µs parallel vs 318 µs serial): on pool-overhead-scale work
        // the parallel entry must take the serial path.
        let (lib, model, _) = setup();
        let rca16 = generators::ripple_carry_adder(16, &lib);
        let rca_work = exploration_work(&rca16, &lib);
        assert!(
            !should_parallelize(rca_work, 4),
            "rca16 ({rca_work} config evals) must fall back to serial"
        );
        // One thread never parallelizes, however big the work.
        assert!(!should_parallelize(usize::MAX, 1));
        // A large multiplier clears the threshold and keeps the pool.
        let mult8 = generators::array_multiplier(8, &lib);
        let mult_work = exploration_work(&mult8, &lib);
        assert!(
            should_parallelize(mult_work, 4),
            "mult8 ({mult_work} config evals) should use the pool"
        );
        // The fallback is result-identical to the forced-parallel path.
        let stats = Scenario::a().input_stats(rca16.primary_inputs().len(), 5);
        let seq = optimize(&rca16, &lib, &model, &stats, Objective::MinimizePower);
        let par = optimize_parallel(&rca16, &lib, &model, &stats, Objective::MinimizePower, 4);
        assert_eq!(par.circuit, seq.circuit);
        assert!((par.power_after - seq.power_after).abs() < 1e-18);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (lib, model, _) = setup();
        let c = generators::array_multiplier(4, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 8);
        let seq = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        for threads in [1, 2, 4] {
            let par =
                optimize_parallel(&c, &lib, &model, &stats, Objective::MinimizePower, threads);
            assert_eq!(par.circuit, seq.circuit, "threads={threads}");
            assert!((par.power_after - seq.power_after).abs() < 1e-18);
        }
    }

    #[test]
    fn region_sharded_matches_sequential() {
        let (lib, model, _) = setup();
        let c = generators::array_multiplier(8, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 8);
        let net_stats = propagate(&c, &lib, &stats);
        let seq = optimize_with_net_stats(
            &c,
            &lib,
            &model,
            &net_stats,
            Objective::MinimizePower,
            &mut Scratch::new(),
        );
        let compiled = CompiledCircuit::compile(&c, &lib).unwrap();
        let part = tr_netlist::partition::partition(
            &compiled,
            &tr_netlist::partition::PartitionOptions::default(),
        );
        assert!(part.regions().len() > 1, "want a real shard schedule");
        for threads in [1, 2, 4] {
            let sharded = optimize_sharded_governed_with_net_stats(
                &c,
                &lib,
                &model,
                &net_stats,
                Objective::MinimizePower,
                &part,
                threads,
                None,
            )
            .unwrap();
            assert_eq!(sharded.circuit, seq.circuit, "threads={threads}");
            assert!((sharded.power_after - seq.power_after).abs() < 1e-18);
        }
    }

    #[test]
    fn delay_bounded_never_slows_the_circuit() {
        let (lib, model, timing) = setup();
        let c = generators::ripple_carry_adder(8, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 17);
        let before = tr_timing::critical_path_delay(&c, &timing);
        let r = optimize_delay_bounded(&c, &lib, &model, &timing, &stats);
        let after = tr_timing::critical_path_delay(&r.circuit, &timing);
        assert!(
            after <= before * (1.0 + 1e-9),
            "delay grew: {before} → {after}"
        );
        assert!(r.power_after <= r.power_before + 1e-18);
    }

    #[test]
    fn delay_bounded_saves_less_than_unbounded() {
        let (lib, model, timing) = setup();
        let c = generators::ripple_carry_adder(16, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 2);
        let unbounded = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        let bounded = optimize_delay_bounded(&c, &lib, &model, &timing, &stats);
        assert!(bounded.power_after >= unbounded.power_after - 1e-18);
    }

    #[test]
    fn scenario_b_savings_lower_than_scenario_a() {
        // The paper: Scenario B's reduction is roughly half of A's.
        // Check the direction (B ≤ A) on an adder.
        let (lib, model, _) = setup();
        let c = generators::ripple_carry_adder(16, &lib);
        let n = c.primary_inputs().len();
        let headroom = |stats: &[SignalStats]| {
            let best = optimize(&c, &lib, &model, stats, Objective::MinimizePower);
            let worst = optimize(&c, &lib, &model, stats, Objective::MaximizePower);
            100.0 * (worst.power_after - best.power_after) / worst.power_after
        };
        // Average A over several seeds to tame variance.
        let a: f64 = (0..5)
            .map(|s| headroom(&Scenario::a().input_stats(n, s)))
            .sum::<f64>()
            / 5.0;
        let b = headroom(&Scenario::b().input_stats(n, 0));
        assert!(a > 0.0 && b > 0.0);
        assert!(b < a, "A={a:.2}% should exceed B={b:.2}%");
    }

    #[test]
    fn monotonicity_every_gate_improves() {
        let (lib, model, _) = setup();
        let c = generators::parity_tree(16, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 23);
        let net_stats = propagate(&c, &lib, &stats);
        let best = optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        let p_before = tr_power::circuit_power(&c, &model, &net_stats);
        let p_after = tr_power::circuit_power(&best.circuit, &model, &net_stats);
        for (i, (b, a)) in p_before.per_gate.iter().zip(&p_after.per_gate).enumerate() {
            assert!(
                a.total <= b.total + 1e-18,
                "gate {i} regressed: {} → {}",
                b.total,
                a.total
            );
        }
    }
}

pub mod analysis;
pub mod fixpoint;
pub mod heuristic;
pub mod slack;

pub use analysis::{instance_demand, CellDemand, InstanceDemand};
pub use fixpoint::{
    optimize_to_fixpoint, optimize_to_fixpoint_governed, optimize_to_fixpoint_with_propagator,
    FixpointOptions, FixpointReport, FixpointTermination, DEFAULT_MAX_ITERATIONS,
};
pub use heuristic::{optimize_rule_based, Rule};
pub use slack::{
    delay_power_tradeoff, optimize_slack_aware, optimize_slack_aware_with_net_stats,
    DelayPowerTradeoff,
};
