//! Slack-aware delay-constrained optimization.
//!
//! [`crate::optimize_delay_bounded`] is *local*: no gate may get slower
//! than its own current configuration. That is safe but pessimistic —
//! off-critical gates usually have timing slack to spend on cheaper
//! orderings. This module implements the global version of the paper's
//! §6 future-work direction (b): minimize power subject to the circuit's
//! critical path not exceeding its original value.
//!
//! Method: compute required arrival times against the original netlist's
//! critical delay, then walk the gates in topological order, giving each
//! gate the cheapest configuration whose (updated) output arrival still
//! meets its required time. Keeping the original configuration always
//! meets it, so the pass is total, and by induction the final critical
//! path never exceeds the budget.

use crate::{Objective, OptimizeResult};
use std::collections::HashMap;
use tr_boolean::SignalStats;
use tr_gatelib::Library;
use tr_netlist::{Circuit, GateId, NetId};
use tr_power::{circuit_power, external_loads, propagate, PowerModel};
use tr_timing::TimingModel;

/// Slack-aware delay-bounded optimization: global timing budget, per-gate
/// cheapest-feasible choice.
///
/// `margin` relaxes the budget: the critical path may grow to
/// `(1 + margin) ×` the original (0.0 = no increase allowed). With a
/// large margin this converges to the unconstrained optimum.
///
/// # Panics
///
/// Panics if `pi_stats.len()` differs from the primary-input count, the
/// circuit is invalid, a cell is missing, or `margin < 0`.
pub fn optimize_slack_aware(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    timing: &TimingModel,
    pi_stats: &[SignalStats],
    margin: f64,
) -> OptimizeResult {
    let net_stats = propagate(circuit, library, pi_stats);
    optimize_slack_aware_with_net_stats(circuit, library, model, timing, &net_stats, margin)
}

/// [`optimize_slack_aware`] against caller-supplied per-net statistics
/// (see [`crate::optimize_with_net_stats`]).
///
/// # Panics
///
/// As [`optimize_slack_aware`], with `net_stats.len()` checked against
/// the net count.
pub fn optimize_slack_aware_with_net_stats(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    timing: &TimingModel,
    net_stats: &[SignalStats],
    margin: f64,
) -> OptimizeResult {
    assert!(margin >= 0.0, "negative slack margin");
    assert_eq!(
        net_stats.len(),
        circuit.net_count(),
        "one SignalStats per net"
    );
    // Same mismatched-library guard as the other `*_with_net_stats`
    // entry points, but without compiling a view this function never
    // uses: resolve each distinct cell kind once against all three
    // indices (the standard library has ~20 kinds, so the linear scan
    // of `checked` is noise).
    let mut checked: Vec<&tr_gatelib::CellKind> = Vec::new();
    for gate in circuit.gates() {
        if checked.contains(&&gate.cell) {
            continue;
        }
        let lib_id = library.cell_id(&gate.cell);
        assert!(lib_id.is_some(), "cell {} not in library", gate.cell);
        for (got, what) in [
            (model.cell_id(&gate.cell), "PowerModel"),
            (timing.cell_id(&gate.cell), "TimingModel"),
        ] {
            assert_eq!(
                got, lib_id,
                "{what} was built from a different library than this circuit"
            );
        }
        checked.push(&gate.cell);
    }
    let loads = external_loads(circuit, model);
    let before = circuit_power(circuit, model, net_stats).total;

    let order = circuit.topological_order().expect("validated circuit");
    let drivers = circuit.drivers();

    // Original arrival times and the timing budget.
    let arrivals = tr_timing::arrival_times(circuit, timing);
    let budget = arrivals.iter().cloned().fold(0.0, f64::max) * (1.0 + margin);

    // Required times against original gate delays, in reverse topo order.
    let mut required: Vec<f64> = vec![budget; circuit.net_count()];
    for gid in order.iter().rev() {
        let gate = circuit.gate(*gid);
        let load = loads[gate.output.0];
        for (pin, net) in gate.inputs.iter().enumerate() {
            let d = timing.gate_delay(&gate.cell, gate.config, pin, load);
            let need = required[gate.output.0] - d;
            if need < required[net.0] {
                required[net.0] = need;
            }
        }
    }

    // Forward pass: cheapest configuration meeting the required time.
    let eps = budget * 1e-12;
    let mut new_arrival: HashMap<NetId, f64> = HashMap::new();
    let arr = |net: NetId, map: &HashMap<NetId, f64>, drivers: &HashMap<NetId, GateId>| -> f64 {
        if drivers.contains_key(&net) {
            *map.get(&net).expect("topological order")
        } else {
            0.0
        }
    };
    let mut result = circuit.clone();
    let mut changed = 0usize;
    let mut scratch = tr_power::Scratch::new();
    for gid in &order {
        let gate = circuit.gate(*gid);
        // Each model resolves the kind through its own index, so mixing
        // models built from different libraries stays safe (worst case: a
        // panic on an unknown cell, never another cell's tables).
        let id = model
            .cell_id(&gate.cell)
            .unwrap_or_else(|| panic!("unknown cell {}", gate.cell));
        let tid = timing
            .cell_id(&gate.cell)
            .unwrap_or_else(|| panic!("unknown cell {}", gate.cell));
        let load = loads[gate.output.0];
        let inputs: Vec<SignalStats> = gate.inputs.iter().map(|n| net_stats[n.0]).collect();
        let deadline = required[gate.output.0] + eps;

        let mut best_cfg = gate.config;
        let mut best_power = f64::MAX;
        let mut best_arrival = f64::MAX;
        for c in 0..model.n_configs(id) {
            let a = gate
                .inputs
                .iter()
                .enumerate()
                .map(|(pin, net)| {
                    arr(*net, &new_arrival, &drivers) + timing.gate_delay_by_id(tid, c, pin, load)
                })
                .fold(0.0f64, f64::max);
            if a > deadline && c != gate.config {
                continue;
            }
            let p = model.total_power_into(id, c, &inputs, load, &mut scratch);
            if p < best_power || (p == best_power && a < best_arrival) {
                best_power = p;
                best_cfg = c;
                best_arrival = a;
            }
        }
        // Recompute the committed arrival (the original config is always
        // admissible, so best_cfg is well-defined even if every candidate
        // else missed the deadline).
        let committed = gate
            .inputs
            .iter()
            .enumerate()
            .map(|(pin, net)| {
                arr(*net, &new_arrival, &drivers)
                    + timing.gate_delay_by_id(tid, best_cfg, pin, load)
            })
            .fold(0.0f64, f64::max);
        new_arrival.insert(gate.output, committed);
        if best_cfg != gate.config {
            changed += 1;
        }
        result.set_config(*gid, best_cfg);
    }

    let after = circuit_power(&result, model, net_stats).total;
    OptimizeResult {
        circuit: result,
        power_before: before,
        power_after: after,
        changed_gates: changed,
    }
}

/// Convenience: best power without constraints, then the slack-aware,
/// locally-bounded and unconstrained variants compared in one report.
#[derive(Debug, Clone)]
pub struct DelayPowerTradeoff {
    /// Model power of the unconstrained best (W).
    pub unconstrained: f64,
    /// Model power of the slack-aware zero-margin result (W).
    pub slack_aware: f64,
    /// Model power of the locally delay-bounded result (W).
    pub locally_bounded: f64,
    /// Original circuit's model power (W).
    pub original: f64,
    /// Original critical-path delay (s).
    pub delay_original: f64,
    /// Critical-path delay of the unconstrained best (s).
    pub delay_unconstrained: f64,
}

/// Computes the three-way trade-off on one circuit (used by examples and
/// the experiment harness).
///
/// # Panics
///
/// As [`optimize_slack_aware`].
pub fn delay_power_tradeoff(
    circuit: &Circuit,
    library: &Library,
    model: &PowerModel,
    timing: &TimingModel,
    pi_stats: &[SignalStats],
) -> DelayPowerTradeoff {
    let net_stats = propagate(circuit, library, pi_stats);
    let original = circuit_power(circuit, model, &net_stats).total;
    let unconstrained =
        crate::optimize(circuit, library, model, pi_stats, Objective::MinimizePower);
    let slack = optimize_slack_aware(circuit, library, model, timing, pi_stats, 0.0);
    let local = crate::optimize_delay_bounded(circuit, library, model, timing, pi_stats);
    DelayPowerTradeoff {
        unconstrained: unconstrained.power_after,
        slack_aware: slack.power_after,
        locally_bounded: local.power_after,
        original,
        delay_original: tr_timing::critical_path_delay(circuit, timing),
        delay_unconstrained: tr_timing::critical_path_delay(&unconstrained.circuit, timing),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_gatelib::Process;
    use tr_netlist::generators;
    use tr_power::scenario::Scenario;

    fn setup() -> (Library, PowerModel, TimingModel) {
        let lib = Library::standard();
        let model = PowerModel::new(&lib, Process::default());
        let timing = TimingModel::new(&lib, Process::default());
        (lib, model, timing)
    }

    #[test]
    fn never_exceeds_the_budget() {
        let (lib, model, timing) = setup();
        for (name, c) in [
            ("rca8", generators::ripple_carry_adder(8, &lib)),
            ("mult4", generators::array_multiplier(4, &lib)),
            ("alu4", generators::alu(4, &lib)),
        ] {
            let stats = Scenario::a().input_stats(c.primary_inputs().len(), 3);
            let before = tr_timing::critical_path_delay(&c, &timing);
            let r = optimize_slack_aware(&c, &lib, &model, &timing, &stats, 0.0);
            let after = tr_timing::critical_path_delay(&r.circuit, &timing);
            assert!(after <= before * (1.0 + 1e-9), "{name}: {before} → {after}");
            assert!(r.power_after <= r.power_before + 1e-18, "{name}");
        }
    }

    #[test]
    fn margin_relaxes_toward_unconstrained() {
        let (lib, model, timing) = setup();
        let c = generators::ripple_carry_adder(16, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 5);
        let unconstrained = crate::optimize(&c, &lib, &model, &stats, Objective::MinimizePower);
        let tight = optimize_slack_aware(&c, &lib, &model, &timing, &stats, 0.0);
        let loose = optimize_slack_aware(&c, &lib, &model, &timing, &stats, 10.0);
        assert!(tight.power_after + 1e-18 >= unconstrained.power_after);
        assert!(loose.power_after <= tight.power_after + 1e-18);
        // With a huge margin we should land on (or extremely near) the
        // unconstrained optimum.
        assert!(
            (loose.power_after - unconstrained.power_after).abs()
                <= unconstrained.power_after * 1e-6
        );
    }

    #[test]
    fn beats_or_matches_the_local_variant() {
        let (lib, model, timing) = setup();
        // Across the small suite, global slack must never lose to the
        // local rule (it strictly contains its feasible set per gate when
        // arrivals allow, and both always include the original config).
        let mut wins = 0usize;
        let mut total = 0usize;
        for c in [
            generators::ripple_carry_adder(8, &lib),
            generators::comparator(8, &lib),
            generators::array_multiplier(4, &lib),
        ] {
            let stats = Scenario::a().input_stats(c.primary_inputs().len(), 11);
            let slack = optimize_slack_aware(&c, &lib, &model, &timing, &stats, 0.0);
            let local = crate::optimize_delay_bounded(&c, &lib, &model, &timing, &stats);
            total += 1;
            if slack.power_after <= local.power_after * (1.0 + 1e-9) {
                wins += 1;
            }
        }
        assert!(
            wins * 2 >= total,
            "slack-aware lost too often: {wins}/{total}"
        );
    }

    #[test]
    fn tradeoff_report_is_consistent() {
        let (lib, model, timing) = setup();
        let c = generators::ripple_carry_adder(8, &lib);
        let stats = Scenario::a().input_stats(c.primary_inputs().len(), 7);
        let t = delay_power_tradeoff(&c, &lib, &model, &timing, &stats);
        assert!(t.unconstrained <= t.slack_aware + 1e-18);
        assert!(t.slack_aware <= t.original + 1e-18);
        assert!(t.locally_bounded <= t.original + 1e-18);
        assert!(t.delay_original > 0.0);
    }

    #[test]
    fn function_preserved() {
        let (lib, model, timing) = setup();
        let c = generators::parity_tree(8, &lib);
        let stats = Scenario::a().input_stats(8, 13);
        let r = optimize_slack_aware(&c, &lib, &model, &timing, &stats, 0.0);
        for m in 0..256usize {
            let v: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(c.evaluate(&lib, &v), r.circuit.evaluate(&lib, &v));
        }
    }
}
