//! Cell kinds and precomputed cell data.

use std::fmt;
use tr_boolean::BoolFn;
use tr_spnet::{pivot, shape, GateGraph, SpTree, Topology};

/// The kind of a library cell.
///
/// The AOI (AND-OR-INVERT) family is parameterized by *group sizes*:
/// `Aoi([2,1,1])` is the classic `aoi211`, computing
/// `y = ¬(x₀·x₁ + x₂ + x₃)` with a pull-down of parallel series-chains.
/// The OAI family is the De Morgan dual: `Oai([2,1])` computes
/// `y = ¬((x₀+x₁)·x₂)` — the motivating gate of the paper's Fig. 1.
/// NAND/NOR/INV are the degenerate single-group members of the families
/// but get their own variants so names match Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// `k`-input NAND, `2 ≤ k ≤ 4`.
    Nand(usize),
    /// `k`-input NOR, `2 ≤ k ≤ 4`.
    Nor(usize),
    /// AND-OR-INVERT with the given AND-group sizes (descending order).
    Aoi(Vec<usize>),
    /// OR-AND-INVERT with the given OR-group sizes (descending order).
    Oai(Vec<usize>),
}

impl CellKind {
    /// The paper's motivating OAI21 (`y = ¬((a₁+a₂)·b)`).
    pub fn oai21() -> Self {
        CellKind::Oai(vec![2, 1])
    }

    /// Shorthand for `Aoi` with the given groups.
    pub fn aoi(groups: &[usize]) -> Self {
        CellKind::Aoi(groups.to_vec())
    }

    /// Shorthand for `Oai` with the given groups.
    pub fn oai(groups: &[usize]) -> Self {
        CellKind::Oai(groups.to_vec())
    }

    /// Number of inputs.
    pub fn arity(&self) -> usize {
        match self {
            CellKind::Inv => 1,
            CellKind::Nand(k) | CellKind::Nor(k) => *k,
            CellKind::Aoi(groups) | CellKind::Oai(groups) => groups.iter().sum(),
        }
    }

    /// Library name, matching Table 2 (`aoi211`, `oai22`, …).
    pub fn name(&self) -> String {
        match self {
            CellKind::Inv => "inv".to_string(),
            CellKind::Nand(k) => format!("nand{k}"),
            CellKind::Nor(k) => format!("nor{k}"),
            CellKind::Aoi(groups) => {
                let digits: String = groups.iter().map(ToString::to_string).collect();
                format!("aoi{digits}")
            }
            CellKind::Oai(groups) => {
                let digits: String = groups.iter().map(ToString::to_string).collect();
                format!("oai{digits}")
            }
        }
    }

    /// The default (canonical) pull-down network.
    ///
    /// Inputs are numbered left-to-right through the groups. For `Aoi`,
    /// groups become series chains composed in parallel; for `Oai`,
    /// parallel groups composed in series. NAND/NOR/INV degenerate
    /// accordingly.
    pub fn default_pulldown(&self) -> SpTree {
        match self {
            CellKind::Inv => SpTree::leaf(0),
            CellKind::Nand(k) => SpTree::series((0..*k).map(SpTree::leaf).collect()),
            CellKind::Nor(k) => SpTree::parallel((0..*k).map(SpTree::leaf).collect()),
            CellKind::Aoi(groups) => SpTree::parallel(Self::group_chains(groups, SpTree::series)),
            CellKind::Oai(groups) => SpTree::series(Self::group_chains(groups, SpTree::parallel)),
        }
    }

    fn group_chains(groups: &[usize], compose: fn(Vec<SpTree>) -> SpTree) -> Vec<SpTree> {
        let mut next = 0;
        groups
            .iter()
            .map(|&g| {
                let leaves: Vec<SpTree> = (next..next + g).map(SpTree::leaf).collect();
                next += g;
                compose(leaves)
            })
            .collect()
    }

    /// Validates the kind (arity limits of the Table 2 library).
    ///
    /// Groups must be non-empty, sizes ≥ 1, in non-increasing order (the
    /// conventional cell naming), and total arity at most 6 (`aoi222`).
    pub fn is_valid(&self) -> bool {
        match self {
            CellKind::Inv => true,
            CellKind::Nand(k) | CellKind::Nor(k) => (2..=4).contains(k),
            CellKind::Aoi(groups) | CellKind::Oai(groups) => {
                !groups.is_empty()
                    && groups.len() >= 2
                    && groups.iter().all(|&g| (1..=3).contains(&g))
                    && groups.windows(2).all(|w| w[0] >= w[1])
                    && groups.iter().sum::<usize>() <= 6
            }
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A library cell with all reordering data precomputed.
///
/// Construction enumerates every configuration with the paper's pivot
/// search and partitions them into instances; for the Table 2 library the
/// largest cell (`aoi222`/`oai222`) has 48 configurations, so this is
/// instantaneous.
#[derive(Debug, Clone)]
pub struct Cell {
    kind: CellKind,
    function: BoolFn,
    configurations: Vec<Topology>,
    instances: Vec<shape::Instance>,
    default_graph: GateGraph,
}

impl Cell {
    /// Builds a cell from its kind.
    ///
    /// # Panics
    ///
    /// Panics if the kind is not valid for the library
    /// (see [`CellKind::is_valid`]).
    pub fn new(kind: CellKind) -> Self {
        assert!(kind.is_valid(), "invalid cell kind {kind}");
        let arity = kind.arity();
        let topology = Topology::from_pulldown(kind.default_pulldown());
        let default_graph = GateGraph::build(&topology, arity);
        let function = default_graph.output_function();
        let configurations = pivot::find_all_reorderings(&topology);
        let mut instances = shape::instances(&configurations);
        // Convention: instance 0 (label [A]) is the one realizing the
        // default configuration, so unoptimized circuits use only [A]
        // layouts and instance demand reads naturally.
        if let Some(pos) = instances.iter().position(|i| i.configurations.contains(&0)) {
            instances.swap(0, pos);
        }
        Cell {
            kind,
            function,
            configurations,
            instances,
            default_graph,
        }
    }

    /// The cell kind.
    pub fn kind(&self) -> &CellKind {
        &self.kind
    }

    /// Library name (`nand3`, `aoi221`, …).
    pub fn name(&self) -> String {
        self.kind.name()
    }

    /// Number of inputs.
    pub fn arity(&self) -> usize {
        self.kind.arity()
    }

    /// The logic function over inputs `x₀ … x_{arity−1}`.
    pub fn function(&self) -> &BoolFn {
        &self.function
    }

    /// Every transistor-reordering configuration (the `#C` column of
    /// Table 2). Index 0 is the default configuration.
    pub fn configurations(&self) -> &[Topology] {
        &self.configurations
    }

    /// The layout instances partitioning [`Cell::configurations`].
    pub fn instances(&self) -> &[shape::Instance] {
        &self.instances
    }

    /// The gate graph of a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` is out of range.
    pub fn graph(&self, config: usize) -> GateGraph {
        GateGraph::build(&self.configurations[config], self.arity())
    }

    /// The gate graph of the default configuration (precomputed).
    pub fn default_graph(&self) -> &GateGraph {
        &self.default_graph
    }

    /// Total transistor count (`2q`).
    pub fn transistor_count(&self) -> usize {
        self.configurations[0].transistor_count()
    }

    /// Which instance realizes configuration `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is out of range.
    pub fn instance_of(&self, config: usize) -> usize {
        assert!(config < self.configurations.len(), "config out of range");
        self.instances
            .iter()
            .position(|i| i.configurations.contains(&config))
            .expect("instances partition configurations")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_table2() {
        assert_eq!(CellKind::Inv.name(), "inv");
        assert_eq!(CellKind::Nand(3).name(), "nand3");
        assert_eq!(CellKind::aoi(&[2, 1, 1]).name(), "aoi211");
        assert_eq!(CellKind::oai(&[2, 2, 2]).name(), "oai222");
    }

    #[test]
    fn oai21_matches_papers_motivating_gate() {
        let cell = Cell::new(CellKind::oai21());
        assert_eq!(cell.arity(), 3);
        // y = ¬((x0 + x1)·x2)
        let x0 = BoolFn::var(3, 0);
        let x1 = BoolFn::var(3, 1);
        let x2 = BoolFn::var(3, 2);
        assert_eq!(*cell.function(), x0.or(&x1).and(&x2).not());
        assert_eq!(cell.configurations().len(), 4);
        assert_eq!(cell.instances().len(), 2);
        assert_eq!(cell.transistor_count(), 6);
    }

    #[test]
    fn nand_nor_functions() {
        let nand3 = Cell::new(CellKind::Nand(3));
        let f = nand3.function();
        assert!(!f.eval(&[true, true, true]));
        assert!(f.eval(&[true, false, true]));
        let nor2 = Cell::new(CellKind::Nor(2));
        let f = nor2.function();
        assert!(f.eval(&[false, false]));
        assert!(!f.eval(&[true, false]));
    }

    #[test]
    fn aoi21_function() {
        // y = ¬(x0·x1 + x2)
        let cell = Cell::new(CellKind::aoi(&[2, 1]));
        let f = cell.function();
        assert!(!f.eval(&[true, true, false]));
        assert!(!f.eval(&[false, false, true]));
        assert!(f.eval(&[true, false, false]));
    }

    #[test]
    fn configuration_counts_match_table2() {
        // (name, #C) for every readable Table 2 entry plus the duals.
        let expect: Vec<(CellKind, usize)> = vec![
            (CellKind::Inv, 1),
            (CellKind::Nand(2), 2),
            (CellKind::Nand(3), 6),
            (CellKind::Nand(4), 24),
            (CellKind::Nor(2), 2),
            (CellKind::Nor(3), 6),
            (CellKind::Nor(4), 24),
            (CellKind::aoi(&[2, 1]), 4),
            (CellKind::aoi(&[2, 2]), 8),
            (CellKind::aoi(&[3, 1]), 12),
            (CellKind::aoi(&[2, 1, 1]), 12),
            (CellKind::aoi(&[2, 2, 1]), 24),
            (CellKind::aoi(&[2, 2, 2]), 48),
            (CellKind::oai(&[2, 1]), 4),
            (CellKind::oai(&[2, 2]), 8),
            (CellKind::oai(&[3, 1]), 12),
            (CellKind::oai(&[2, 1, 1]), 12),
            (CellKind::oai(&[2, 2, 1]), 24),
            (CellKind::oai(&[2, 2, 2]), 48),
        ];
        for (kind, count) in expect {
            let cell = Cell::new(kind.clone());
            assert_eq!(
                cell.configurations().len(),
                count,
                "configuration count for {kind}"
            );
        }
    }

    #[test]
    fn instance_counts() {
        let expect: Vec<(CellKind, usize)> = vec![
            (CellKind::Inv, 1),
            (CellKind::Nand(4), 1),
            (CellKind::Nor(3), 1),
            (CellKind::aoi(&[2, 1]), 2),
            (CellKind::aoi(&[2, 2]), 1),
            (CellKind::aoi(&[3, 1]), 2),
            (CellKind::aoi(&[2, 1, 1]), 3),
            (CellKind::aoi(&[2, 2, 1]), 3),
            (CellKind::aoi(&[2, 2, 2]), 1),
            (CellKind::oai21(), 2),
        ];
        for (kind, count) in expect {
            let cell = Cell::new(kind.clone());
            assert_eq!(cell.instances().len(), count, "instance count for {kind}");
        }
    }

    #[test]
    fn every_configuration_computes_the_same_function() {
        for kind in [
            CellKind::Nand(3),
            CellKind::aoi(&[2, 2, 1]),
            CellKind::oai(&[3, 1]),
        ] {
            let cell = Cell::new(kind);
            for c in 0..cell.configurations().len() {
                assert_eq!(cell.graph(c).output_function(), *cell.function());
            }
        }
    }

    #[test]
    fn instance_of_is_consistent() {
        let cell = Cell::new(CellKind::oai21());
        for c in 0..cell.configurations().len() {
            let i = cell.instance_of(c);
            assert!(cell.instances()[i].configurations.contains(&c));
        }
    }

    #[test]
    fn invalid_kinds_rejected() {
        assert!(!CellKind::Nand(1).is_valid());
        assert!(!CellKind::Nand(5).is_valid());
        assert!(!CellKind::aoi(&[1, 2]).is_valid()); // not descending
        assert!(!CellKind::aoi(&[3, 2, 2]).is_valid()); // arity 7
        assert!(!CellKind::aoi(&[4]).is_valid()); // group too big & single
        assert!(CellKind::aoi(&[2, 2, 2]).is_valid());
    }
}
