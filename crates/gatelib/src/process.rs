//! Electrical process parameters — the substitute for extracted layout
//! capacitances.
//!
//! The paper extracts node capacitances from a Sea-of-Gates library
//! ("these capacitances should be extracted and stored for all gates of
//! the library", §3.3.1 footnote). Without that layout database we model
//! them analytically: every source/drain terminal touching a node
//! contributes one unit of diffusion capacitance (larger for the wider P
//! devices), every node carries a small wiring constant, and output nodes
//! additionally drive their fanout's gate capacitance. Reordering a gate
//! redistributes *which* path functions control each internal capacitance
//! while the totals stay constant — exactly the effect the paper's model
//! captures — so relative powers are preserved even though absolute
//! femtofarads are generic.

use tr_spnet::{GateGraph, NodeId, TransistorKind};

/// One femtofarad in farads.
pub const FEMTO: f64 = 1e-15;

/// Process and supply parameters (SI units).
///
/// Defaults model a generic 0.8 µm-class process at 3.3 V, the technology
/// vintage of the paper (1996). P devices are drawn at twice the N width
/// to balance drive, which doubles their diffusion and gate capacitance
/// and equalizes channel resistance.
#[derive(Debug, Clone, PartialEq)]
pub struct Process {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Diffusion capacitance per N source/drain terminal (F).
    pub c_diff_n: f64,
    /// Diffusion capacitance per P source/drain terminal (F).
    pub c_diff_p: f64,
    /// Gate capacitance per driven N transistor (F).
    pub c_gate_n: f64,
    /// Gate capacitance per driven P transistor (F).
    pub c_gate_p: f64,
    /// Wiring capacitance of an internal diffusion node (F).
    pub c_wire_internal: f64,
    /// Wiring capacitance of a gate output net (F).
    pub c_wire_output: f64,
    /// Channel resistance of an N device (Ω).
    pub r_n: f64,
    /// Channel resistance of a (double-width) P device (Ω).
    pub r_p: f64,
}

impl Default for Process {
    fn default() -> Self {
        Process {
            vdd: 3.3,
            c_diff_n: 1.8 * FEMTO,
            c_diff_p: 3.0 * FEMTO,
            c_gate_n: 2.0 * FEMTO,
            c_gate_p: 3.6 * FEMTO,
            c_wire_internal: 0.4 * FEMTO,
            c_wire_output: 4.0 * FEMTO,
            r_n: 4.0e3,
            r_p: 4.5e3,
        }
    }
}

impl Process {
    /// Capacitance of a node of `graph`: diffusion terminals + wire, plus
    /// `external_load` (fanout gate capacitance) if the node is the
    /// output.
    ///
    /// # Panics
    ///
    /// Panics if `node` is a supply rail.
    pub fn node_capacitance(&self, graph: &GateGraph, node: NodeId, external_load: f64) -> f64 {
        assert!(
            !matches!(node, NodeId::Vdd | NodeId::Vss),
            "rails have no switching capacitance"
        );
        let (n_terms, p_terms) = graph.terminal_counts(node);
        let diffusion = n_terms as f64 * self.c_diff_n + p_terms as f64 * self.c_diff_p;
        match node {
            NodeId::Output => diffusion + self.c_wire_output + external_load,
            _ => diffusion + self.c_wire_internal,
        }
    }

    /// Input capacitance one cell input presents to its driver: the gate
    /// capacitance of every transistor that input controls.
    pub fn input_capacitance(&self, graph: &GateGraph, input: usize) -> f64 {
        graph
            .edges()
            .iter()
            .filter(|e| e.input == input)
            .map(|e| match e.kind {
                TransistorKind::N => self.c_gate_n,
                TransistorKind::P => self.c_gate_p,
            })
            .sum()
    }

    /// Channel resistance of one transistor.
    pub fn resistance(&self, kind: TransistorKind) -> f64 {
        match kind {
            TransistorKind::N => self.r_n,
            TransistorKind::P => self.r_p,
        }
    }

    /// Energy of one full charge/discharge *pair* of capacitance `c`
    /// (J): `C·Vdd²`. A single transition dissipates half of this.
    pub fn switching_energy(&self, c: f64) -> f64 {
        c * self.vdd * self.vdd
    }

    /// Average power of a node with capacitance `c` toggling with density
    /// `d` transitions per second: `½·C·Vdd²·D` (W). This is the paper's
    /// `P = ½·C·V²·D/T_cyc` with the density already expressed per second.
    pub fn switching_power(&self, c: f64, d: f64) -> f64 {
        0.5 * c * self.vdd * self.vdd * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellKind};
    use tr_spnet::NodeId;

    #[test]
    fn inverter_capacitances() {
        let p = Process::default();
        let cell = Cell::new(CellKind::Inv);
        let g = cell.default_graph();
        // Output touches one N and one P diffusion.
        let c = p.node_capacitance(g, NodeId::Output, 0.0);
        assert!((c - (p.c_diff_n + p.c_diff_p + p.c_wire_output)).abs() < 1e-21);
        // Input drives one N and one P gate.
        let cin = p.input_capacitance(g, 0);
        assert!((cin - (p.c_gate_n + p.c_gate_p)).abs() < 1e-21);
    }

    #[test]
    fn nand2_internal_node_cap_is_two_n_terminals() {
        let p = Process::default();
        let cell = Cell::new(CellKind::Nand(2));
        let g = cell.default_graph();
        let c = p.node_capacitance(g, NodeId::Internal(0), 0.0);
        assert!((c - (2.0 * p.c_diff_n + p.c_wire_internal)).abs() < 1e-21);
    }

    #[test]
    fn external_load_only_affects_output() {
        let p = Process::default();
        let cell = Cell::new(CellKind::Nand(2));
        let g = cell.default_graph();
        let load = 10.0 * FEMTO;
        let out = p.node_capacitance(g, NodeId::Output, load);
        let out0 = p.node_capacitance(g, NodeId::Output, 0.0);
        assert!((out - out0 - load).abs() < 1e-21);
        let int = p.node_capacitance(g, NodeId::Internal(0), load);
        let int0 = p.node_capacitance(g, NodeId::Internal(0), 0.0);
        assert!((int - int0).abs() < 1e-24);
    }

    #[test]
    fn reordering_conserves_terminals_not_node_caps() {
        // Every transistor always contributes exactly two diffusion
        // terminals, but reordering moves terminals between power nodes
        // and the rails (rail diffusion never switches). Both effects are
        // real: total terminal count is invariant, per-node capacitance is
        // not — that asymmetry is part of what the optimizer exploits.
        let p = Process::default();
        let cell = Cell::new(CellKind::oai21());
        let mut node_totals: Vec<f64> = Vec::new();
        for c in 0..cell.configurations().len() {
            let g = cell.graph(c);
            let mut terminals = 0usize;
            for node in [NodeId::Vdd, NodeId::Vss, NodeId::Output]
                .into_iter()
                .chain((0..g.internal_count()).map(NodeId::Internal))
            {
                let (n, pt) = g.terminal_counts(node);
                terminals += n + pt;
            }
            assert_eq!(terminals, 2 * g.edges().len(), "config {c}");
            node_totals.push(
                g.power_nodes()
                    .map(|n| p.node_capacitance(&g, n, 0.0))
                    .sum(),
            );
        }
        // At least two configurations differ in switchable capacitance.
        let min = node_totals.iter().cloned().fold(f64::MAX, f64::min);
        let max = node_totals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min, "reordering should redistribute capacitance");
    }

    #[test]
    fn switching_power_formula() {
        let p = Process::default();
        // 10 fF at 1M transitions/s and 3.3 V: ½·10f·10.89·1e6 ≈ 54.4 nW.
        let w = p.switching_power(10.0 * FEMTO, 1.0e6);
        assert!((w - 0.5 * 10.0e-15 * 3.3 * 3.3 * 1.0e6).abs() < 1e-18);
    }

    #[test]
    fn rail_capacitance_panics() {
        let p = Process::default();
        let cell = Cell::new(CellKind::Inv);
        let g = cell.default_graph().clone();
        assert!(std::panic::catch_unwind(|| p.node_capacitance(&g, NodeId::Vdd, 0.0)).is_err());
    }
}
