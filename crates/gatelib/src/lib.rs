//! The static CMOS cell library of the paper's Table 2.
//!
//! Each [`Cell`] bundles a logic function, its default series-parallel
//! topology, the full set of transistor-reordering [configurations], and
//! their partition into layout [instances] (`oai21[A]`, `oai21[B]`, …).
//! The paper's evaluation maps MCNC circuits onto exactly this library —
//! inverters, NAND/NOR up to 4 inputs, and the AOI/OAI families up to
//! `aoi222`/`oai222` — implemented in a Sea-of-Gates style where every
//! instance of a cell has the same area.
//!
//! The [`Process`] type supplies the electrical substitutes for the
//! paper's extracted layout data: per-terminal diffusion capacitances,
//! per-gate input capacitances, wire constants and channel resistances for
//! a generic 0.8 µm-class process at 3.3 V (see `DESIGN.md` §3).
//!
//! [configurations]: Cell::configurations
//! [instances]: Cell::instances
//!
//! # Example
//!
//! ```
//! use tr_gatelib::{CellKind, Library};
//!
//! let lib = Library::standard();
//! let oai21 = lib.cell(&CellKind::oai21()).unwrap();
//! assert_eq!(oai21.configurations().len(), 4); // Fig. 1(a) of the paper
//! assert_eq!(oai21.instances().len(), 2);      // oai21[A] and oai21[B]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod library;
mod process;

pub use cell::{Cell, CellKind};
pub use library::{CellId, Library};
pub use process::{Process, FEMTO};
