//! The standard library: every cell of the paper's Table 2.

use crate::cell::{Cell, CellKind};

/// A set of [`Cell`]s addressable by kind or by name.
///
/// [`Library::standard`] builds the paper's Table 2 library. Custom
/// libraries can be assembled with [`Library::from_kinds`] (e.g. to run
/// ablations with a NAND/NOR-only subset).
#[derive(Debug, Clone)]
pub struct Library {
    cells: Vec<Cell>,
}

impl Library {
    /// The full Table 2 library: `inv`, `nand2–4`, `nor2–4`, and the
    /// AOI/OAI families `21, 22, 31, 211, 221, 222`.
    pub fn standard() -> Self {
        let mut kinds: Vec<CellKind> = vec![CellKind::Inv];
        for k in 2..=4 {
            kinds.push(CellKind::Nand(k));
            kinds.push(CellKind::Nor(k));
        }
        for groups in [
            vec![2usize, 1],
            vec![2, 2],
            vec![3, 1],
            vec![2, 1, 1],
            vec![2, 2, 1],
            vec![2, 2, 2],
        ] {
            kinds.push(CellKind::Aoi(groups.clone()));
            kinds.push(CellKind::Oai(groups));
        }
        Self::from_kinds(kinds)
    }

    /// Builds a library from explicit kinds.
    ///
    /// # Panics
    ///
    /// Panics if any kind is invalid or duplicated.
    pub fn from_kinds(kinds: impl IntoIterator<Item = CellKind>) -> Self {
        let mut cells: Vec<Cell> = Vec::new();
        for kind in kinds {
            assert!(
                !cells.iter().any(|c| *c.kind() == kind),
                "duplicate cell {kind}"
            );
            cells.push(Cell::new(kind));
        }
        Library { cells }
    }

    /// All cells, in declaration order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Looks up a cell by kind.
    pub fn cell(&self, kind: &CellKind) -> Option<&Cell> {
        self.cells.iter().find(|c| c.kind() == kind)
    }

    /// Looks up a cell by Table 2 name (`"aoi221"`, `"nand3"`, …).
    pub fn cell_by_name(&self, name: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.name() == name)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total number of configurations across the library (the sum of the
    /// `#C` column of Table 2).
    pub fn total_configurations(&self) -> usize {
        self.cells.iter().map(|c| c.configurations().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_contents() {
        let lib = Library::standard();
        // 1 inv + 3 nand + 3 nor + 6 aoi + 6 oai = 19 cells.
        assert_eq!(lib.len(), 19);
        for name in [
            "inv", "nand2", "nand3", "nand4", "nor2", "nor3", "nor4", "aoi21", "aoi22", "aoi31",
            "aoi211", "aoi221", "aoi222", "oai21", "oai22", "oai31", "oai211", "oai221", "oai222",
        ] {
            assert!(lib.cell_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn lookup_by_kind_and_name_agree() {
        let lib = Library::standard();
        let by_kind = lib.cell(&CellKind::aoi(&[2, 2, 1])).unwrap();
        let by_name = lib.cell_by_name("aoi221").unwrap();
        assert_eq!(by_kind.kind(), by_name.kind());
    }

    #[test]
    fn unknown_cell_is_none() {
        let lib = Library::standard();
        assert!(lib.cell_by_name("xor2").is_none());
        assert!(lib.cell(&CellKind::Nand(4)).is_some());
    }

    #[test]
    fn duplicate_cells_rejected() {
        let r =
            std::panic::catch_unwind(|| Library::from_kinds(vec![CellKind::Inv, CellKind::Inv]));
        assert!(r.is_err());
    }

    #[test]
    fn total_configurations_is_table2_sum() {
        let lib = Library::standard();
        // inv 1 + nand/nor (2+6+24)*2 + (4+8+12+12+24+48)*2 = 1+64+216 = 281
        assert_eq!(lib.total_configurations(), 281);
    }
}
