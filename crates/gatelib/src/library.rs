//! The standard library: every cell of the paper's Table 2.

use crate::cell::{Cell, CellKind};
use std::collections::HashMap;

/// Dense identifier of a cell within one [`Library`] — the index into
/// [`Library::cells`].
///
/// Interning a [`CellKind`] into a `CellId` once (per circuit, via
/// `tr_netlist`'s compiled view) lets the hot evaluation loops of the
/// power and timing models use direct `Vec` indexing instead of hashing
/// a `CellKind` per lookup. Ids are only meaningful for the library that
/// issued them (and for models built from that same library, which share
/// its cell order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub usize);

/// A set of [`Cell`]s addressable by kind, by name, or by dense [`CellId`].
///
/// [`Library::standard`] builds the paper's Table 2 library. Custom
/// libraries can be assembled with [`Library::from_kinds`] (e.g. to run
/// ablations with a NAND/NOR-only subset).
#[derive(Debug, Clone)]
pub struct Library {
    cells: Vec<Cell>,
    index: HashMap<CellKind, usize>,
}

impl Library {
    /// The full Table 2 library: `inv`, `nand2–4`, `nor2–4`, and the
    /// AOI/OAI families `21, 22, 31, 211, 221, 222`.
    pub fn standard() -> Self {
        let mut kinds: Vec<CellKind> = vec![CellKind::Inv];
        for k in 2..=4 {
            kinds.push(CellKind::Nand(k));
            kinds.push(CellKind::Nor(k));
        }
        for groups in [
            vec![2usize, 1],
            vec![2, 2],
            vec![3, 1],
            vec![2, 1, 1],
            vec![2, 2, 1],
            vec![2, 2, 2],
        ] {
            kinds.push(CellKind::Aoi(groups.clone()));
            kinds.push(CellKind::Oai(groups));
        }
        Self::from_kinds(kinds)
    }

    /// Builds a library from explicit kinds.
    ///
    /// # Panics
    ///
    /// Panics if any kind is invalid or duplicated.
    pub fn from_kinds(kinds: impl IntoIterator<Item = CellKind>) -> Self {
        let mut cells: Vec<Cell> = Vec::new();
        let mut index = HashMap::new();
        for kind in kinds {
            assert!(
                index.insert(kind.clone(), cells.len()).is_none(),
                "duplicate cell {kind}"
            );
            cells.push(Cell::new(kind));
        }
        Library { cells, index }
    }

    /// All cells, in declaration order (`CellId` order).
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Looks up a cell by kind.
    pub fn cell(&self, kind: &CellKind) -> Option<&Cell> {
        self.index.get(kind).map(|&i| &self.cells[i])
    }

    /// Interns a kind into its dense [`CellId`].
    pub fn cell_id(&self, kind: &CellKind) -> Option<CellId> {
        self.index.get(kind).copied().map(CellId)
    }

    /// Resolves an interned id back to its cell.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this library.
    pub fn cell_by_id(&self, id: CellId) -> &Cell {
        &self.cells[id.0]
    }

    /// Looks up a cell by Table 2 name (`"aoi221"`, `"nand3"`, …).
    pub fn cell_by_name(&self, name: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.name() == name)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total number of configurations across the library (the sum of the
    /// `#C` column of Table 2).
    pub fn total_configurations(&self) -> usize {
        self.cells.iter().map(|c| c.configurations().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_contents() {
        let lib = Library::standard();
        // 1 inv + 3 nand + 3 nor + 6 aoi + 6 oai = 19 cells.
        assert_eq!(lib.len(), 19);
        for name in [
            "inv", "nand2", "nand3", "nand4", "nor2", "nor3", "nor4", "aoi21", "aoi22", "aoi31",
            "aoi211", "aoi221", "aoi222", "oai21", "oai22", "oai31", "oai211", "oai221", "oai222",
        ] {
            assert!(lib.cell_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn lookup_by_kind_and_name_agree() {
        let lib = Library::standard();
        let by_kind = lib.cell(&CellKind::aoi(&[2, 2, 1])).unwrap();
        let by_name = lib.cell_by_name("aoi221").unwrap();
        assert_eq!(by_kind.kind(), by_name.kind());
    }

    #[test]
    fn unknown_cell_is_none() {
        let lib = Library::standard();
        assert!(lib.cell_by_name("xor2").is_none());
        assert!(lib.cell(&CellKind::Nand(4)).is_some());
    }

    #[test]
    fn duplicate_cells_rejected() {
        let r =
            std::panic::catch_unwind(|| Library::from_kinds(vec![CellKind::Inv, CellKind::Inv]));
        assert!(r.is_err());
    }

    #[test]
    fn cell_ids_are_dense_and_roundtrip() {
        let lib = Library::standard();
        for (i, cell) in lib.cells().iter().enumerate() {
            let id = lib.cell_id(cell.kind()).unwrap();
            assert_eq!(id, CellId(i));
            assert_eq!(lib.cell_by_id(id).kind(), cell.kind());
        }
        assert!(lib.cell_id(&CellKind::aoi(&[3, 3])).is_none());
    }

    #[test]
    fn total_configurations_is_table2_sum() {
        let lib = Library::standard();
        // inv 1 + nand/nor (2+6+24)*2 + (4+8+12+12+24+48)*2 = 1+64+216 = 281
        assert_eq!(lib.total_configurations(), 281);
    }
}
