//! Property tests: the technology mapper is a semantics-preserving
//! function from arbitrary generic netlists to library netlists.

use proptest::prelude::*;
use tr_netlist::{format, map, GenericCircuit, GenericOp, Library};

/// Builds a random acyclic generic circuit over `n_inputs` inputs.
fn build_generic(n_inputs: usize, ops: &[(u8, u8, u8, u8)]) -> GenericCircuit {
    let mut c = GenericCircuit::new("rnd");
    let mut signals: Vec<String> = (0..n_inputs)
        .map(|i| {
            let name = format!("i{i}");
            c.add_input(&name);
            name
        })
        .collect();
    for (k, &(op_sel, a, b, d)) in ops.iter().enumerate() {
        let op = match op_sel % 8 {
            0 => GenericOp::And,
            1 => GenericOp::Or,
            2 => GenericOp::Nand,
            3 => GenericOp::Nor,
            4 => GenericOp::Not,
            5 => GenericOp::Xor,
            6 => GenericOp::Xnor,
            _ => GenericOp::Buff,
        };
        let arity = match op {
            GenericOp::Not | GenericOp::Buff => 1,
            _ => 2 + (d as usize % 3),
        };
        let name = format!("g{k}");
        let picks: Vec<String> = (0..arity)
            .map(|j| {
                let idx = (a as usize + j * (1 + b as usize)) % signals.len();
                signals[idx].clone()
            })
            .collect();
        let refs: Vec<&str> = picks.iter().map(String::as_str).collect();
        c.add_gate(&name, op, &refs);
        signals.push(name);
    }
    // Last few signals become outputs.
    let take = signals.len().min(3);
    for s in &signals[signals.len() - take..] {
        c.add_output(s);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapper_preserves_semantics(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..25)
    ) {
        let lib = Library::standard();
        let generic = build_generic(5, &ops);
        // Distinct generic outputs may alias one net (BUFF chains), so use
        // the mapper's per-output net report rather than the net list.
        let (mapped, out_nets) =
            map::map_with_outputs(&generic, &lib, &map::MapOptions::default());
        prop_assert!(mapped.validate(&lib).is_ok());
        for m in 0..32usize {
            let v: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let want = generic.evaluate_outputs(&v);
            let nets = mapped.evaluate(&lib, &v);
            let got: Vec<bool> = out_nets.iter().map(|o| nets[o.0]).collect();
            prop_assert_eq!(got, want, "input {:05b}", m);
        }
    }

    #[test]
    fn mapper_without_aoi_is_equivalent_to_with(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..20)
    ) {
        let lib = Library::standard();
        let generic = build_generic(4, &ops);
        let with = map::map_default(&generic, &lib);
        let without = map::map(
            &generic,
            &lib,
            &map::MapOptions { absorb_aoi: false, ..Default::default() },
        );
        for m in 0..16usize {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let a = with.evaluate(&lib, &v);
            let b = without.evaluate(&lib, &v);
            let ga: Vec<bool> = with.primary_outputs().iter().map(|o| a[o.0]).collect();
            let gb: Vec<bool> = without.primary_outputs().iter().map(|o| b[o.0]).collect();
            prop_assert_eq!(ga, gb);
        }
        // Absorption never increases the gate count.
        prop_assert!(with.gates().len() <= without.gates().len());
    }

    #[test]
    fn native_format_roundtrips(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..20),
        configs in prop::collection::vec(any::<u8>(), 64)
    ) {
        let lib = Library::standard();
        let generic = build_generic(4, &ops);
        let mut mapped = map::map_default(&generic, &lib);
        // Scatter valid configurations.
        for i in 0..mapped.gates().len() {
            let cell = lib.cell(&mapped.gates()[i].cell).expect("cell");
            let n = cell.configurations().len();
            let pick = configs[i % configs.len()] as usize % n;
            mapped.set_config(tr_netlist::GateId(i), pick);
        }
        let text = format::write(&mapped);
        let parsed = format::parse(&text, &lib).expect("roundtrip parse");
        prop_assert_eq!(parsed, mapped);
    }
}
