//! Pins the committed `.bench` serialization of one large-tier
//! generator instance and proves the parser round-trips it.
//!
//! The golden file is the contract: `mac_tree_generic(4, 4)` must keep
//! producing byte-identical `.bench` text (so the committed instance
//! stays a faithful artifact of the generator), and `parse ∘ write`
//! must be the identity on it (so external ISCAS-style tooling can
//! consume what we emit). Regenerate with
//! `BLESS=1 cargo test -p tr-netlist --test bench_roundtrip`.

use std::path::PathBuf;
use tr_netlist::{bench, generators};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("mac4x4.bench")
}

#[test]
fn committed_mac4x4_bench_round_trips() {
    let generated = bench::write(&generators::mac_tree_generic(4, 4));
    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &generated).unwrap();
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with BLESS=1", path.display()));
    assert_eq!(
        golden, generated,
        "mac_tree_generic(4, 4) drifted from the committed .bench golden"
    );

    // parse ∘ write is the identity on the golden text…
    let parsed = bench::parse("mac4x4", &golden).expect("golden parses");
    assert_eq!(bench::write(&parsed), golden, ".bench round trip");

    // …and the parsed circuit is functionally the generator's circuit.
    let original = generators::mac_tree_generic(4, 4);
    let n_inputs = original.inputs().len();
    for trial in 0..32usize {
        let m = trial.wrapping_mul(0x9E3779B9);
        let v: Vec<bool> = (0..n_inputs).map(|i| (m >> (i % 32)) & 1 == 1).collect();
        assert_eq!(
            parsed.evaluate_outputs(&v),
            original.evaluate_outputs(&v),
            "trial {trial}"
        );
    }
}
