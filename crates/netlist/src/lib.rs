//! Gate-level circuits: the substrate the optimizer traverses.
//!
//! The paper evaluates on MCNC benchmarks "mapped into the gate library
//! shown in Table 2". This crate provides everything needed to stand in
//! for that flow:
//!
//! * [`Circuit`] — a combinational netlist of library cells with one
//!   chosen configuration per gate, depth-first (topological) traversal,
//!   fanout queries and functional evaluation;
//! * [`CompiledCircuit`] — a library-resolved flat view of a [`Circuit`]
//!   (interned [`CellId`]s, flattened input slices, precomputed order)
//!   that the power/timing/optimizer hot loops index directly;
//! * [`GenericCircuit`] — a technology-independent netlist (arbitrary-
//!   fanin AND/OR/NAND/NOR/NOT/XOR/XNOR/BUFF), the input to mapping;
//! * [`mod@bench`] — a parser for the ISCAS-style `.bench` format;
//! * [`map`] — a structural technology mapper onto the Table 2 library,
//!   including AOI/OAI pattern absorption;
//! * [`generators`] — programmatic builders for adders, multipliers,
//!   parity trees, decoders, comparators, ALU slices, mux trees and
//!   seeded random circuits;
//! * [`partition`] — cone partitioning of a [`CompiledCircuit`] into
//!   fanout-bounded regions for per-region exact statistics;
//! * [`suite`] — the benchmark suite used by the Table 3 reproduction
//!   (deterministic substitutes for the MCNC set, same gate-count range).
//!
//! # Example
//!
//! ```
//! use tr_netlist::{generators, Library};
//!
//! let lib = Library::standard();
//! let adder = generators::ripple_carry_adder(4, &lib);
//! assert_eq!(adder.primary_inputs().len(), 9); // a[4] b[4] cin
//! // 3 + 5 = 8 with carry-in 0: check the functional model.
//! let mut inputs = vec![false; 9];
//! inputs[0] = true; inputs[1] = true;            // a = 3
//! inputs[4] = true; inputs[6] = true;            // b = 5
//! let out = adder.evaluate(&lib, &inputs);
//! let sum: usize = (0..5)
//!     .map(|i| usize::from(out[adder.primary_outputs()[i].0]) << i)
//!     .sum();
//! assert_eq!(sum, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod blif;
mod circuit;
mod compiled;
pub mod format;
pub mod generators;
mod generic;
pub mod map;
pub mod partition;
pub mod suite;

pub use circuit::{Circuit, CircuitError, Gate, GateId, NetId};
pub use compiled::{CompiledCircuit, ResolvedGate};
pub use generic::{GenericCircuit, GenericGate, GenericOp};
// Re-export the library so downstream crates get one-stop imports.
pub use tr_gatelib::{CellId, CellKind, Library};
