//! Parser for the Berkeley Logic Interchange Format (BLIF) — the format
//! the MCNC benchmarks of the paper's Table 3 actually circulate in.
//!
//! Supported subset: combinational models with `.model`, `.inputs`,
//! `.outputs`, `.names` (single-output PLA-style cover tables) and `.end`.
//! Sequential (`.latch`), hierarchy (`.subckt`) and don't-care constructs
//! are rejected with a clear error, matching the paper's combinational
//! scope.
//!
//! A `.names` table with output cover `1` is an OR of product terms over
//! `-`/`0`/`1` literals; an output cover `0` describes the complement.
//! Each table is lowered to AND/OR/NOT gates of a [`GenericCircuit`],
//! which then flows through the standard technology mapper.

use crate::generic::{GenericCircuit, GenericOp};

/// BLIF parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlifError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for BlifError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blif line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BlifError {}

/// One parsed `.names` table.
struct NamesTable {
    inputs: Vec<String>,
    output: String,
    /// Rows as (input pattern, output bit).
    rows: Vec<(Vec<Option<bool>>, bool)>,
    line: usize,
}

/// Parses a combinational BLIF model into a [`GenericCircuit`].
///
/// # Errors
///
/// Returns [`BlifError`] on sequential/hierarchical constructs, malformed
/// tables, or inconsistent output phases within one table.
pub fn parse(text: &str) -> Result<GenericCircuit, BlifError> {
    let mut name = "blif".to_string();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut tables: Vec<NamesTable> = Vec::new();
    let mut current: Option<NamesTable> = None;

    // Join continuation lines (trailing `\`).
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        let (cont, body) = match line.strip_suffix('\\') {
            Some(b) => (true, b.trim_end().to_string()),
            None => (false, line.to_string()),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(&body);
                if cont {
                    pending = Some((start, acc));
                } else {
                    logical.push((start, acc));
                }
            }
            None => {
                if cont {
                    pending = Some((lineno, body));
                } else {
                    logical.push((lineno, body));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical.push((start, acc));
    }

    for (lineno, line) in logical {
        let line = match line.find('#') {
            Some(i) => line[..i].trim().to_string(),
            None => line,
        };
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let head = toks.next().expect("non-empty line");
        match head {
            ".model" => {
                if let Some(n) = toks.next() {
                    name = n.to_string();
                }
            }
            ".inputs" => inputs.extend(toks.map(str::to_string)),
            ".outputs" => outputs.extend(toks.map(str::to_string)),
            ".names" => {
                if let Some(t) = current.take() {
                    tables.push(t);
                }
                let signals: Vec<String> = toks.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(BlifError {
                        line: lineno,
                        message: ".names needs at least an output".into(),
                    });
                }
                let output = signals.last().expect("non-empty").clone();
                let ins = signals[..signals.len() - 1].to_vec();
                current = Some(NamesTable {
                    inputs: ins,
                    output,
                    rows: Vec::new(),
                    line: lineno,
                });
            }
            ".end" => {
                if let Some(t) = current.take() {
                    tables.push(t);
                }
            }
            ".latch" | ".subckt" | ".gate" | ".mlatch" => {
                return Err(BlifError {
                    line: lineno,
                    message: format!("unsupported construct `{head}` (combinational BLIF only)"),
                });
            }
            ".exdc" | ".wire_load_slope" | ".default_input_arrival" => {
                return Err(BlifError {
                    line: lineno,
                    message: format!("unsupported construct `{head}`"),
                });
            }
            _ if head.starts_with('.') => {
                return Err(BlifError {
                    line: lineno,
                    message: format!("unknown directive `{head}`"),
                });
            }
            _ => {
                // A cover row of the current .names table.
                let Some(table) = current.as_mut() else {
                    return Err(BlifError {
                        line: lineno,
                        message: "cover row outside a .names table".into(),
                    });
                };
                let (pattern, out_bit) = if table.inputs.is_empty() {
                    (String::new(), head)
                } else {
                    let out = toks.next().ok_or_else(|| BlifError {
                        line: lineno,
                        message: "cover row missing output bit".into(),
                    })?;
                    (head.to_string(), out)
                };
                if pattern.len() != table.inputs.len() {
                    return Err(BlifError {
                        line: lineno,
                        message: format!(
                            "cover row has {} literals for {} inputs",
                            pattern.len(),
                            table.inputs.len()
                        ),
                    });
                }
                let lits: Result<Vec<Option<bool>>, BlifError> = pattern
                    .chars()
                    .map(|c| match c {
                        '0' => Ok(Some(false)),
                        '1' => Ok(Some(true)),
                        '-' => Ok(None),
                        other => Err(BlifError {
                            line: lineno,
                            message: format!("bad cover literal `{other}`"),
                        }),
                    })
                    .collect();
                let out_val = match out_bit {
                    "1" => true,
                    "0" => false,
                    other => {
                        return Err(BlifError {
                            line: lineno,
                            message: format!("bad output bit `{other}`"),
                        })
                    }
                };
                table.rows.push((lits?, out_val));
            }
        }
    }
    if let Some(t) = current.take() {
        tables.push(t);
    }

    // Lower to a generic circuit.
    let mut circuit = GenericCircuit::new(name);
    for i in &inputs {
        circuit.add_input(i);
    }
    for t in &tables {
        lower_table(&mut circuit, t)?;
    }
    for o in &outputs {
        circuit.add_output(o);
    }
    Ok(circuit)
}

/// Lowers one `.names` table: OR of ANDs of (possibly negated) inputs,
/// complemented if the output phase is 0.
fn lower_table(circuit: &mut GenericCircuit, table: &NamesTable) -> Result<(), BlifError> {
    // All rows must share one output phase (standard BLIF ON-set/OFF-set).
    let phases: Vec<bool> = table.rows.iter().map(|(_, v)| *v).collect();
    if phases.iter().any(|&p| p != phases[0]) && !phases.is_empty() {
        return Err(BlifError {
            line: table.line,
            message: "mixed output phases in one .names table".into(),
        });
    }
    let phase = phases.first().copied().unwrap_or(true);

    // Constant table (no rows, or no inputs).
    if table.rows.is_empty() {
        // No rows: output is constant 0 (standard interpretation). Model a
        // constant by AND(x, NOT x) over a fresh helper only if some input
        // exists; otherwise reject (constant sources are rare in MCNC).
        return Err(BlifError {
            line: table.line,
            message: "empty .names cover (constant) not supported".into(),
        });
    }
    if table.inputs.is_empty() {
        return Err(BlifError {
            line: table.line,
            message: "constant .names table not supported".into(),
        });
    }

    let mut term_names: Vec<String> = Vec::new();
    for (ri, (lits, _)) in table.rows.iter().enumerate() {
        let mut factors: Vec<String> = Vec::new();
        for (ii, lit) in lits.iter().enumerate() {
            match lit {
                None => {}
                Some(true) => factors.push(table.inputs[ii].clone()),
                Some(false) => {
                    let n = format!("_not_{}", table.inputs[ii]);
                    if circuit
                        .gates()
                        .iter()
                        .all(|g| circuit.signal_name(g.output) != n)
                    {
                        circuit.add_gate(&n, GenericOp::Not, &[&table.inputs[ii]]);
                    }
                    factors.push(n);
                }
            }
        }
        let term = if factors.is_empty() {
            // Full don't-care row: the function is constant `phase`…
            return Err(BlifError {
                line: table.line,
                message: "tautological cover row not supported".into(),
            });
        } else if factors.len() == 1 {
            factors[0].clone()
        } else {
            let t = format!("_t_{}_{}", table.output, ri);
            let refs: Vec<&str> = factors.iter().map(String::as_str).collect();
            circuit.add_gate(&t, GenericOp::And, &refs);
            t
        };
        term_names.push(term);
    }
    let sum = if term_names.len() == 1 {
        term_names[0].clone()
    } else {
        let s = format!("_s_{}", table.output);
        let refs: Vec<&str> = term_names.iter().map(String::as_str).collect();
        circuit.add_gate(&s, GenericOp::Or, &refs);
        s
    };
    if phase {
        circuit.add_gate(&table.output, GenericOp::Buff, &[&sum]);
    } else {
        circuit.add_gate(&table.output, GenericOp::Not, &[&sum]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map;
    use tr_gatelib::Library;

    const FULL_ADDER: &str = "\
# one-bit full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
";

    #[test]
    fn parses_full_adder() {
        let c = parse(FULL_ADDER).unwrap();
        assert_eq!(c.name(), "fa");
        assert_eq!(c.inputs().len(), 3);
        assert_eq!(c.outputs().len(), 2);
        for m in 0..8usize {
            let v: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let out = c.evaluate_outputs(&v);
            let total = v.iter().filter(|&&x| x).count();
            assert_eq!(out[0], total % 2 == 1, "sum at {m:03b}");
            assert_eq!(out[1], total >= 2, "cout at {m:03b}");
        }
    }

    #[test]
    fn offset_phase_tables() {
        // Output phase 0: f = NOT(a·b)  — a NAND via the OFF-set.
        let text = ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n";
        let c = parse(text).unwrap();
        for m in 0..4usize {
            let v = [m & 1 == 1, m >> 1 == 1];
            assert_eq!(c.evaluate_outputs(&v)[0], !(v[0] && v[1]), "{m:02b}");
        }
    }

    #[test]
    fn continuation_lines() {
        let text = ".model t\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let c = parse(text).unwrap();
        assert_eq!(c.inputs().len(), 2);
    }

    #[test]
    fn comments_stripped() {
        let text = ".model t # named t\n.inputs a\n.outputs y\n.names a y # copy\n1 1\n.end\n";
        let c = parse(text).unwrap();
        assert_eq!(c.evaluate_outputs(&[true]), vec![true]);
        assert_eq!(c.evaluate_outputs(&[false]), vec![false]);
    }

    #[test]
    fn rejects_sequential() {
        let text = ".model t\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains(".latch"));
    }

    #[test]
    fn rejects_mixed_phase() {
        let text = ".model t\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("mixed"));
    }

    #[test]
    fn rejects_bad_literal() {
        let text = ".model t\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn maps_through_the_standard_flow() {
        let lib = Library::standard();
        let generic = parse(FULL_ADDER).unwrap();
        let mapped = map::map_default(&generic, &lib);
        assert!(mapped.validate(&lib).is_ok());
        for m in 0..8usize {
            let v: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let nets = mapped.evaluate(&lib, &v);
            let got: Vec<bool> = mapped.primary_outputs().iter().map(|o| nets[o.0]).collect();
            assert_eq!(got, generic.evaluate_outputs(&v), "{m:03b}");
        }
    }

    #[test]
    fn shared_not_gates_are_reused() {
        // Both rows negate `a`; the NOT(a) gate must not be duplicated.
        let text = ".model t\n.inputs a b\n.outputs y\n.names a b y\n01 1\n00 1\n.end\n";
        let c = parse(text).unwrap();
        let not_a_count = c
            .gates()
            .iter()
            .filter(|g| matches!(g.op, GenericOp::Not) && c.signal_name(g.output) == "_not_a")
            .count();
        assert_eq!(not_a_count, 1, "NOT(a) should be shared");
        // Function check: y = ā·b + ā·b̄ = ā.
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(c.evaluate_outputs(&[a, b]), vec![!a]);
        }
    }
}
