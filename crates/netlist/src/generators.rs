//! Programmatic circuit builders.
//!
//! These generate the workloads the Table 3 reproduction runs on — the
//! substitution for the (unavailable) MCNC benchmark files. Arithmetic
//! circuits are built first as [`GenericCircuit`]s and mapped through
//! [`crate::map`], exercising the same flow the paper used; the random
//! generator emits library gates directly.
//!
//! The ripple-carry adder is also the paper's own §1.1 motivation: the
//! carry chain accumulates transition density even when every primary
//! input has identical statistics.

use crate::circuit::Circuit;
use crate::generic::{GenericCircuit, GenericOp};
use crate::map;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tr_gatelib::{CellKind, Library};

/// Emits a full adder; returns `(sum, carry)` signal names.
fn full_adder(c: &mut GenericCircuit, x: &str, y: &str, z: &str, tag: &str) -> (String, String) {
    let axb = format!("{tag}_x");
    let sum = format!("{tag}_s");
    let g1 = format!("{tag}_g1");
    let g2 = format!("{tag}_g2");
    let co = format!("{tag}_c");
    c.add_gate(&axb, GenericOp::Xor, &[x, y]);
    c.add_gate(&sum, GenericOp::Xor, &[&axb, z]);
    c.add_gate(&g1, GenericOp::And, &[x, y]);
    c.add_gate(&g2, GenericOp::And, &[&axb, z]);
    c.add_gate(&co, GenericOp::Or, &[&g1, &g2]);
    (sum, co)
}

/// Emits a half adder; returns `(sum, carry)` signal names.
fn half_adder(c: &mut GenericCircuit, x: &str, y: &str, tag: &str) -> (String, String) {
    let sum = format!("{tag}_s");
    let co = format!("{tag}_c");
    c.add_gate(&sum, GenericOp::Xor, &[x, y]);
    c.add_gate(&co, GenericOp::And, &[x, y]);
    (sum, co)
}

/// Builds the generic form of an `n`-bit ripple-carry adder.
///
/// Inputs `a0..`, `b0..`, `cin`; outputs `s0..s(n-1)`, `cout`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_carry_adder_generic(n: usize) -> GenericCircuit {
    assert!(n > 0, "adder needs at least one bit");
    let mut c = GenericCircuit::new(format!("rca{n}"));
    for i in 0..n {
        c.add_input(&format!("a{i}"));
    }
    for i in 0..n {
        c.add_input(&format!("b{i}"));
    }
    c.add_input("cin");
    let mut carry = "cin".to_string();
    for i in 0..n {
        let (sum, co) = full_adder(
            &mut c,
            &format!("a{i}"),
            &format!("b{i}"),
            &carry,
            &format!("fa{i}"),
        );
        c.add_gate(&format!("s{i}"), GenericOp::Buff, &[&sum]);
        c.add_output(&format!("s{i}"));
        carry = co;
    }
    c.add_gate("cout", GenericOp::Buff, &[&carry]);
    c.add_output("cout");
    c
}

/// An `n`-bit ripple-carry adder mapped onto the library.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_carry_adder(n: usize, library: &Library) -> Circuit {
    map::map_default(&ripple_carry_adder_generic(n), library)
}

/// A 4-bit-group carry-lookahead adder (generic form).
///
/// Generate/propagate per bit, expanded lookahead carries within each
/// 4-bit group, groups chained — much shallower carry logic than the
/// ripple adder.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn carry_lookahead_adder_generic(n: usize) -> GenericCircuit {
    assert!(n > 0, "adder needs at least one bit");
    let mut c = GenericCircuit::new(format!("cla{n}"));
    for i in 0..n {
        c.add_input(&format!("a{i}"));
    }
    for i in 0..n {
        c.add_input(&format!("b{i}"));
    }
    c.add_input("cin");
    for i in 0..n {
        c.add_gate(
            &format!("g{i}"),
            GenericOp::And,
            &[&format!("a{i}"), &format!("b{i}")],
        );
        c.add_gate(
            &format!("p{i}"),
            GenericOp::Xor,
            &[&format!("a{i}"), &format!("b{i}")],
        );
    }
    // Carries: c(i+1) = g_i + Σ_j (p_i…p_(j+1)·g_j) + p_i…p_lo·c(lo),
    // expanded inside each 4-bit group, groups chained through c(lo).
    let mut group_carry = "cin".to_string();
    for lo in (0..n).step_by(4) {
        let hi = (lo + 4).min(n);
        for i in lo..hi {
            let cname = if i + 1 == n {
                "cout".to_string()
            } else {
                format!("c{}", i + 1)
            };
            let mut terms: Vec<String> = vec![format!("g{i}")];
            for j in (lo..i).rev() {
                let t = format!("t_{i}_{j}");
                let mut ands: Vec<String> = (j + 1..=i).map(|k| format!("p{k}")).collect();
                ands.push(format!("g{j}"));
                let refs: Vec<&str> = ands.iter().map(String::as_str).collect();
                c.add_gate(&t, GenericOp::And, &refs);
                terms.push(t);
            }
            let t = format!("t_{i}_cin");
            let mut ands: Vec<String> = (lo..=i).map(|k| format!("p{k}")).collect();
            ands.push(group_carry.clone());
            let refs: Vec<&str> = ands.iter().map(String::as_str).collect();
            c.add_gate(&t, GenericOp::And, &refs);
            terms.push(t);
            let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
            c.add_gate(&cname, GenericOp::Or, &refs);
        }
        group_carry = if hi == n {
            "cout".to_string()
        } else {
            format!("c{hi}")
        };
    }
    for i in 0..n {
        let ci = if i == 0 {
            "cin".to_string()
        } else {
            format!("c{i}")
        };
        c.add_gate(&format!("s{i}"), GenericOp::Xor, &[&format!("p{i}"), &ci]);
        c.add_output(&format!("s{i}"));
    }
    c.add_output("cout");
    c
}

/// A carry-lookahead adder mapped onto the library.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn carry_lookahead_adder(n: usize, library: &Library) -> Circuit {
    map::map_default(&carry_lookahead_adder_generic(n), library)
}

/// An `n`×`n` array multiplier (generic form): AND partial products
/// reduced column-wise with full/half adders. Outputs `m0..m(2n-1)`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn array_multiplier_generic(n: usize) -> GenericCircuit {
    assert!(n >= 2, "multiplier needs at least 2 bits");
    let mut c = GenericCircuit::new(format!("mult{n}"));
    for i in 0..n {
        c.add_input(&format!("a{i}"));
    }
    for i in 0..n {
        c.add_input(&format!("b{i}"));
    }
    // Column dot matrix by output weight.
    let mut cols: Vec<Vec<String>> = vec![Vec::new(); 2 * n];
    for i in 0..n {
        for j in 0..n {
            let pp = format!("pp{i}_{j}");
            c.add_gate(&pp, GenericOp::And, &[&format!("a{i}"), &format!("b{j}")]);
            cols[i + j].push(pp);
        }
    }
    // Reduce every column to one signal, rippling carries upward.
    let mut tag = 0usize;
    for w in 0..cols.len() {
        while cols[w].len() > 1 {
            if cols[w].len() >= 3 {
                let z = cols[w].pop().expect("len>=3");
                let y = cols[w].pop().expect("len>=3");
                let x = cols[w].pop().expect("len>=3");
                let (s, co) = full_adder(&mut c, &x, &y, &z, &format!("r{tag}"));
                tag += 1;
                cols[w].push(s);
                if w + 1 < cols.len() {
                    cols[w + 1].push(co);
                }
            } else {
                let y = cols[w].pop().expect("len==2");
                let x = cols[w].pop().expect("len==2");
                let (s, co) = half_adder(&mut c, &x, &y, &format!("r{tag}"));
                tag += 1;
                cols[w].push(s);
                if w + 1 < cols.len() {
                    cols[w + 1].push(co);
                }
            }
        }
    }
    for (w, col) in cols.iter().enumerate() {
        let name = format!("m{w}");
        if let Some(sig) = col.first() {
            c.add_gate(&name, GenericOp::Buff, &[sig]);
        } else {
            // The top column of a 2-bit multiplier can be empty; tie low
            // by ANDing an input with its complement.
            c.add_gate("_zero_n", GenericOp::Not, &["a0"]);
            c.add_gate(&name, GenericOp::And, &["a0", "_zero_n"]);
        }
        c.add_output(&name);
    }
    c
}

/// An array multiplier mapped onto the library.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn array_multiplier(n: usize, library: &Library) -> Circuit {
    map::map_default(&array_multiplier_generic(n), library)
}

/// An `n`-input XOR parity tree (generic form).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn parity_tree_generic(n: usize) -> GenericCircuit {
    assert!(n >= 2, "parity needs at least 2 inputs");
    let mut c = GenericCircuit::new(format!("parity{n}"));
    let mut level: Vec<String> = (0..n)
        .map(|i| {
            let name = format!("i{i}");
            c.add_input(&name);
            name
        })
        .collect();
    let mut stage = 0;
    while level.len() > 1 {
        let mut next = Vec::new();
        for (k, pair) in level.chunks(2).enumerate() {
            if pair.len() == 2 {
                let name = format!("x{stage}_{k}");
                c.add_gate(&name, GenericOp::Xor, &[&pair[0], &pair[1]]);
                next.push(name);
            } else {
                next.push(pair[0].clone());
            }
        }
        level = next;
        stage += 1;
    }
    c.add_gate("parity", GenericOp::Buff, &[&level[0]]);
    c.add_output("parity");
    c
}

/// A parity tree mapped onto the library.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn parity_tree(n: usize, library: &Library) -> Circuit {
    map::map_default(&parity_tree_generic(n), library)
}

/// An `n`-to-2ⁿ decoder (generic form).
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 6.
pub fn decoder_generic(n: usize) -> GenericCircuit {
    assert!((1..=6).contains(&n), "decoder size out of range");
    let mut c = GenericCircuit::new(format!("dec{n}"));
    for i in 0..n {
        c.add_input(&format!("s{i}"));
        c.add_gate(&format!("ns{i}"), GenericOp::Not, &[&format!("s{i}")]);
    }
    for m in 0..(1usize << n) {
        let name = format!("o{m}");
        let terms: Vec<String> = (0..n)
            .map(|i| {
                if (m >> i) & 1 == 1 {
                    format!("s{i}")
                } else {
                    format!("ns{i}")
                }
            })
            .collect();
        let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        if refs.len() == 1 {
            c.add_gate(&name, GenericOp::Buff, &refs);
        } else {
            c.add_gate(&name, GenericOp::And, &refs);
        }
        c.add_output(&name);
    }
    c
}

/// A decoder mapped onto the library.
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 6.
pub fn decoder(n: usize, library: &Library) -> Circuit {
    map::map_default(&decoder_generic(n), library)
}

/// An `n`-bit magnitude comparator (generic form): outputs `eq` and `gt`
/// (meaning `a > b`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn comparator_generic(n: usize) -> GenericCircuit {
    assert!(n > 0, "comparator needs at least one bit");
    let mut c = GenericCircuit::new(format!("cmp{n}"));
    for i in 0..n {
        c.add_input(&format!("a{i}"));
    }
    for i in 0..n {
        c.add_input(&format!("b{i}"));
    }
    for i in 0..n {
        c.add_gate(
            &format!("e{i}"),
            GenericOp::Xnor,
            &[&format!("a{i}"), &format!("b{i}")],
        );
        c.add_gate(&format!("nb{i}"), GenericOp::Not, &[&format!("b{i}")]);
        c.add_gate(
            &format!("w{i}"),
            GenericOp::And,
            &[&format!("a{i}"), &format!("nb{i}")],
        );
    }
    let eqs: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
    let refs: Vec<&str> = eqs.iter().map(String::as_str).collect();
    if refs.len() == 1 {
        c.add_gate("eq", GenericOp::Buff, &refs);
    } else {
        c.add_gate("eq", GenericOp::And, &refs);
    }
    c.add_output("eq");
    // gt = Σ_i w_i · Π_{j>i} e_j.
    let mut terms: Vec<String> = Vec::new();
    for i in 0..n {
        if i + 1 == n {
            terms.push(format!("w{i}"));
        } else {
            let name = format!("gtt{i}");
            let mut ands = vec![format!("w{i}")];
            ands.extend((i + 1..n).map(|j| format!("e{j}")));
            let refs: Vec<&str> = ands.iter().map(String::as_str).collect();
            c.add_gate(&name, GenericOp::And, &refs);
            terms.push(name);
        }
    }
    let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
    if refs.len() == 1 {
        c.add_gate("gt", GenericOp::Buff, &refs);
    } else {
        c.add_gate("gt", GenericOp::Or, &refs);
    }
    c.add_output("gt");
    c
}

/// A comparator mapped onto the library.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn comparator(n: usize, library: &Library) -> Circuit {
    map::map_default(&comparator_generic(n), library)
}

/// A 2ᵏ-to-1 multiplexer tree (generic form): `k` select lines then `2ᵏ`
/// data inputs.
///
/// # Panics
///
/// Panics if `k` is 0 or greater than 5.
pub fn mux_tree_generic(k: usize) -> GenericCircuit {
    assert!((1..=5).contains(&k), "mux size out of range");
    let mut c = GenericCircuit::new(format!("mux{}", 1usize << k));
    for i in 0..k {
        c.add_input(&format!("s{i}"));
        c.add_gate(&format!("ns{i}"), GenericOp::Not, &[&format!("s{i}")]);
    }
    let mut level: Vec<String> = (0..(1usize << k))
        .map(|i| {
            let name = format!("d{i}");
            c.add_input(&name);
            name
        })
        .collect();
    for s in 0..k {
        let sel = format!("s{s}");
        let nsel = format!("ns{s}");
        let mut next = Vec::new();
        for (idx, pair) in level.chunks(2).enumerate() {
            let name = format!("m{s}_{idx}");
            let t0 = format!("m{s}_{idx}_0");
            let t1 = format!("m{s}_{idx}_1");
            c.add_gate(&t0, GenericOp::And, &[&pair[0], &nsel]);
            c.add_gate(&t1, GenericOp::And, &[&pair[1], &sel]);
            c.add_gate(&name, GenericOp::Or, &[&t0, &t1]);
            next.push(name);
        }
        level = next;
    }
    c.add_gate("y", GenericOp::Buff, &[&level[0]]);
    c.add_output("y");
    c
}

/// A mux tree mapped onto the library.
///
/// # Panics
///
/// Panics if `k` is 0 or greater than 5.
pub fn mux_tree(k: usize, library: &Library) -> Circuit {
    map::map_default(&mux_tree_generic(k), library)
}

/// A small `n`-bit ALU slice (generic form): two operands, a 2-bit opcode
/// (`op0`, `op1`) selecting AND / OR / XOR / ADD, outputs `r0..r(n-1)` and
/// an ADD carry flag.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn alu_generic(n: usize) -> GenericCircuit {
    assert!(n > 0, "alu needs at least one bit");
    let mut c = GenericCircuit::new(format!("alu{n}"));
    for i in 0..n {
        c.add_input(&format!("a{i}"));
    }
    for i in 0..n {
        c.add_input(&format!("b{i}"));
    }
    c.add_input("op0");
    c.add_input("op1");
    c.add_gate("nop0", GenericOp::Not, &["op0"]);
    c.add_gate("nop1", GenericOp::Not, &["op1"]);
    let mut carry: Option<String> = None;
    for i in 0..n {
        let a = format!("a{i}");
        let b = format!("b{i}");
        c.add_gate(&format!("and{i}"), GenericOp::And, &[&a, &b]);
        c.add_gate(&format!("or{i}"), GenericOp::Or, &[&a, &b]);
        c.add_gate(&format!("xor{i}"), GenericOp::Xor, &[&a, &b]);
        match carry.take() {
            None => {
                c.add_gate("sum0", GenericOp::Buff, &["xor0"]);
                carry = Some("and0".to_string());
            }
            Some(cin) => {
                c.add_gate(
                    &format!("sum{i}"),
                    GenericOp::Xor,
                    &[&format!("xor{i}"), &cin],
                );
                let g2 = format!("cg{i}");
                c.add_gate(&g2, GenericOp::And, &[&format!("xor{i}"), &cin]);
                let cnext = format!("cc{i}");
                c.add_gate(&cnext, GenericOp::Or, &[&format!("and{i}"), &g2]);
                carry = Some(cnext);
            }
        }
    }
    for i in 0..n {
        let t0 = format!("sel_and{i}");
        let t1 = format!("sel_or{i}");
        let t2 = format!("sel_xor{i}");
        let t3 = format!("sel_add{i}");
        c.add_gate(&t0, GenericOp::And, &[&format!("and{i}"), "nop0", "nop1"]);
        c.add_gate(&t1, GenericOp::And, &[&format!("or{i}"), "op0", "nop1"]);
        c.add_gate(&t2, GenericOp::And, &[&format!("xor{i}"), "nop0", "op1"]);
        c.add_gate(&t3, GenericOp::And, &[&format!("sum{i}"), "op0", "op1"]);
        c.add_gate(&format!("r{i}"), GenericOp::Or, &[&t0, &t1, &t2, &t3]);
        c.add_output(&format!("r{i}"));
    }
    let cfinal = carry.expect("n > 0");
    c.add_gate("flag_c", GenericOp::And, &[&cfinal, "op0", "op1"]);
    c.add_output("flag_c");
    c
}

/// An ALU slice mapped onto the library.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn alu(n: usize, library: &Library) -> Circuit {
    map::map_default(&alu_generic(n), library)
}

/// A seeded random combinational circuit emitted directly in library
/// cells: `gates` gates over `inputs` primary inputs. Deterministic for a
/// given `(inputs, gates, seed)` triple.
///
/// Every gate draws a random cell (weighted toward the small ones, the
/// way mapped netlists skew) and connects to already-defined nets, so the
/// result is always acyclic; nets with no readers become primary outputs.
///
/// # Panics
///
/// Panics if `inputs < 2` or `gates == 0`.
pub fn random_circuit(inputs: usize, gates: usize, seed: u64, library: &Library) -> Circuit {
    assert!(inputs >= 2, "need at least two inputs");
    assert!(gates > 0, "need at least one gate");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(format!("rnd_i{inputs}_g{gates}_s{seed}"));
    let mut nets: Vec<crate::circuit::NetId> =
        (0..inputs).map(|i| c.add_input(format!("i{i}"))).collect();
    let menu: Vec<(CellKind, u32)> = vec![
        (CellKind::Inv, 18),
        (CellKind::Nand(2), 22),
        (CellKind::Nor(2), 18),
        (CellKind::Nand(3), 8),
        (CellKind::Nor(3), 6),
        (CellKind::Nand(4), 3),
        (CellKind::Nor(4), 2),
        (CellKind::aoi(&[2, 1]), 6),
        (CellKind::oai(&[2, 1]), 6),
        (CellKind::aoi(&[2, 2]), 3),
        (CellKind::oai(&[2, 2]), 3),
        (CellKind::aoi(&[2, 1, 1]), 2),
        (CellKind::oai(&[2, 1, 1]), 2),
        (CellKind::aoi(&[2, 2, 1]), 1),
        (CellKind::oai(&[2, 2, 1]), 1),
    ];
    let total: u32 = menu.iter().map(|(_, w)| w).sum();
    for g in 0..gates {
        let mut pick = rng.gen_range(0..total);
        let cell = menu
            .iter()
            .find(|(_, w)| {
                if pick < *w {
                    true
                } else {
                    pick -= w;
                    false
                }
            })
            .map(|(k, _)| k.clone())
            .expect("weighted pick in range");
        let arity = cell.arity();
        // Bias toward recent nets so depth grows like mapped logic.
        let ins: Vec<crate::circuit::NetId> = (0..arity)
            .map(|_| {
                let idx = if rng.gen_bool(0.7) && nets.len() > inputs {
                    rng.gen_range(nets.len().saturating_sub(3 * inputs)..nets.len())
                } else {
                    rng.gen_range(0..nets.len())
                };
                nets[idx]
            })
            .collect();
        let (_, out) = c.add_gate(cell, ins, format!("n{g}"));
        nets.push(out);
    }
    let fan = c.fanouts();
    let unread: Vec<crate::circuit::NetId> = c
        .gates()
        .iter()
        .map(|g| g.output)
        .filter(|n| !fan.contains_key(n))
        .collect();
    for n in unread {
        c.mark_output(n);
    }
    let _ = library; // kept for signature symmetry with mapped builders
    c
}

/// An ISCAS85-class random circuit: `n_gates` library gates over an
/// input count scaled the way the ISCAS85 set scales (roughly one
/// primary input per 16 gates, at least 32 — c7552 has 207 inputs for
/// 3512 gates). Deterministic for a given `(seed, n_gates)` pair.
///
/// This is the workload class the partitioned statistics backend exists
/// for: far past the whole-circuit BDD ceiling, with enough primary
/// inputs that no dense truth-table method applies either.
///
/// # Panics
///
/// Panics if `n_gates == 0`.
pub fn rnd_large(seed: u64, n_gates: usize, library: &Library) -> Circuit {
    let inputs = (n_gates / 16).max(32);
    random_circuit(inputs, n_gates, seed, library)
}

/// Generic form of [`mac_tree`]: `terms` products of `bits`×`bits`
/// multiplications summed by a balanced tree of ripple adders.
///
/// Inputs `t{k}_a{i}` and `t{k}_b{i}` for term `k < terms`; outputs
/// `mac0..` (LSB first) spelling `Σₖ aₖ·bₖ`.
///
/// # Panics
///
/// Panics if `bits < 2` or `terms == 0`.
pub fn mac_tree_generic(bits: usize, terms: usize) -> GenericCircuit {
    assert!(bits >= 2, "multiplier needs at least 2 bits");
    assert!(terms > 0, "need at least one product term");
    let mut c = GenericCircuit::new(format!("mac{bits}x{terms}"));
    for t in 0..terms {
        for i in 0..bits {
            c.add_input(&format!("t{t}_a{i}"));
        }
        for i in 0..bits {
            c.add_input(&format!("t{t}_b{i}"));
        }
    }
    // One array multiplier per term: partial-product dot matrix reduced
    // column-wise, exactly like `array_multiplier_generic`.
    let mut operands: Vec<Vec<String>> = Vec::with_capacity(terms);
    for t in 0..terms {
        let mut cols: Vec<Vec<String>> = vec![Vec::new(); 2 * bits];
        for i in 0..bits {
            for j in 0..bits {
                let pp = format!("t{t}_pp{i}_{j}");
                c.add_gate(
                    &pp,
                    GenericOp::And,
                    &[&format!("t{t}_a{i}"), &format!("t{t}_b{j}")],
                );
                cols[i + j].push(pp);
            }
        }
        let mut tag = 0usize;
        for w in 0..cols.len() {
            while cols[w].len() > 1 {
                if cols[w].len() >= 3 {
                    let z = cols[w].pop().expect("len>=3");
                    let y = cols[w].pop().expect("len>=3");
                    let x = cols[w].pop().expect("len>=3");
                    let (s, co) = full_adder(&mut c, &x, &y, &z, &format!("t{t}_r{tag}"));
                    tag += 1;
                    cols[w].push(s);
                    if w + 1 < cols.len() {
                        cols[w + 1].push(co);
                    }
                } else {
                    let y = cols[w].pop().expect("len==2");
                    let x = cols[w].pop().expect("len==2");
                    let (s, co) = half_adder(&mut c, &x, &y, &format!("t{t}_r{tag}"));
                    tag += 1;
                    cols[w].push(s);
                    if w + 1 < cols.len() {
                        cols[w + 1].push(co);
                    }
                }
            }
        }
        // The top column of the 2-bit product matrix is empty; narrower
        // operands just mean a shorter vector.
        operands.push(
            cols.into_iter()
                .filter_map(|col| col.into_iter().next())
                .collect(),
        );
    }
    // Balanced reduction tree of ripple adders; adding two w-bit
    // operands yields w+1 bits (half adder at the LSB, the carry out
    // becomes the MSB). Odd operands ride up a level unchanged.
    let mut level = 0usize;
    while operands.len() > 1 {
        let mut next: Vec<Vec<String>> = Vec::with_capacity(operands.len().div_ceil(2));
        let mut pairs = operands.chunks_exact(2);
        for (p, pair) in pairs.by_ref().enumerate() {
            let (a, b) = (&pair[0], &pair[1]);
            let width = a.len().max(b.len());
            let mut sum: Vec<String> = Vec::with_capacity(width + 1);
            let mut carry: Option<String> = None;
            for i in 0..width {
                let tag = format!("l{level}_{p}_fa{i}");
                match (a.get(i), b.get(i), carry.take()) {
                    (Some(x), Some(y), None) => {
                        let (s, co) = half_adder(&mut c, x, y, &tag);
                        sum.push(s);
                        carry = Some(co);
                    }
                    (Some(x), Some(y), Some(z)) => {
                        let (s, co) = full_adder(&mut c, x, y, &z, &tag);
                        sum.push(s);
                        carry = Some(co);
                    }
                    (Some(x), None, Some(z)) | (None, Some(x), Some(z)) => {
                        let (s, co) = half_adder(&mut c, x, &z, &tag);
                        sum.push(s);
                        carry = Some(co);
                    }
                    (Some(x), None, None) | (None, Some(x), None) => sum.push(x.clone()),
                    (None, None, _) => unreachable!("i < max width"),
                }
            }
            if let Some(co) = carry {
                sum.push(co);
            }
            next.push(sum);
        }
        if let [odd] = pairs.remainder() {
            next.push(odd.clone());
        }
        operands = next;
        level += 1;
    }
    for (w, sig) in operands[0].iter().enumerate() {
        let name = format!("mac{w}");
        c.add_gate(&name, GenericOp::Buff, &[sig]);
        c.add_output(&name);
    }
    c
}

/// A multiply-accumulate tree (`terms` products of `bits`×`bits`, summed
/// by a balanced adder tree) mapped onto the library — the ≥2000-gate
/// arithmetic workload of the large suite tier (at `bits = 8`,
/// `terms = 4` the mapped circuit passes 2000 gates).
///
/// # Panics
///
/// Panics if `bits < 2` or `terms == 0`.
pub fn mac_tree(bits: usize, terms: usize, library: &Library) -> Circuit {
    map::map_default(&mac_tree_generic(bits, terms), library)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Library {
        Library::standard()
    }

    fn out_value(c: &Circuit, nets: &[bool], idx: usize) -> bool {
        nets[c.primary_outputs()[idx].0]
    }

    #[test]
    fn rca_adds_exhaustively() {
        let library = lib();
        let c = ripple_carry_adder(3, &library);
        assert!(c.validate(&library).is_ok());
        for a in 0..8usize {
            for b in 0..8usize {
                for cin in 0..2usize {
                    let mut v = Vec::new();
                    for i in 0..3 {
                        v.push((a >> i) & 1 == 1);
                    }
                    for i in 0..3 {
                        v.push((b >> i) & 1 == 1);
                    }
                    v.push(cin == 1);
                    let nets = c.evaluate(&library, &v);
                    let mut sum = 0usize;
                    for i in 0..4 {
                        sum |= usize::from(out_value(&c, &nets, i)) << i;
                    }
                    assert_eq!(sum, a + b + cin, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn cla_matches_rca() {
        let library = lib();
        let gen_cla = carry_lookahead_adder_generic(5);
        let gen_rca = ripple_carry_adder_generic(5);
        for trial in 0..200usize {
            let m = trial.wrapping_mul(2654435761) % (1 << 11);
            let v: Vec<bool> = (0..11).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(
                gen_cla.evaluate_outputs(&v),
                gen_rca.evaluate_outputs(&v),
                "inputs {m:b}"
            );
        }
        let mapped = carry_lookahead_adder(5, &library);
        assert!(mapped.validate(&library).is_ok());
    }

    #[test]
    fn multiplier_multiplies() {
        let g = array_multiplier_generic(3);
        for a in 0..8usize {
            for b in 0..8usize {
                let mut v = Vec::new();
                for i in 0..3 {
                    v.push((a >> i) & 1 == 1);
                }
                for i in 0..3 {
                    v.push((b >> i) & 1 == 1);
                }
                let out = g.evaluate_outputs(&v);
                let got: usize = out
                    .iter()
                    .enumerate()
                    .map(|(i, &bit)| usize::from(bit) << i)
                    .sum();
                assert_eq!(got, a * b, "a={a} b={b}");
            }
        }
        let library = lib();
        let mapped = array_multiplier(3, &library);
        assert!(mapped.validate(&library).is_ok());
    }

    #[test]
    fn mapped_multiplier_equivalent() {
        let library = lib();
        let g = array_multiplier_generic(2);
        let c = array_multiplier(2, &library);
        for m in 0..16usize {
            let v: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let want = g.evaluate_outputs(&v);
            let nets = c.evaluate(&library, &v);
            let got: Vec<bool> = c.primary_outputs().iter().map(|o| nets[o.0]).collect();
            assert_eq!(got, want, "inputs {m:b}");
        }
    }

    #[test]
    fn parity_is_xor_reduction() {
        let g = parity_tree_generic(6);
        for m in 0..64usize {
            let v: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
            let want = (m.count_ones() % 2) == 1;
            assert_eq!(g.evaluate_outputs(&v), vec![want]);
        }
        let library = lib();
        assert!(parity_tree(6, &library).validate(&library).is_ok());
    }

    #[test]
    fn decoder_is_one_hot() {
        let g = decoder_generic(3);
        for m in 0..8usize {
            let v: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let out = g.evaluate_outputs(&v);
            for (k, &bit) in out.iter().enumerate() {
                assert_eq!(bit, k == m);
            }
        }
        let library = lib();
        assert!(decoder(4, &library).validate(&library).is_ok());
    }

    #[test]
    fn comparator_compares() {
        let g = comparator_generic(3);
        for a in 0..8usize {
            for b in 0..8usize {
                let mut v = Vec::new();
                for i in 0..3 {
                    v.push((a >> i) & 1 == 1);
                }
                for i in 0..3 {
                    v.push((b >> i) & 1 == 1);
                }
                let out = g.evaluate_outputs(&v);
                assert_eq!(out[0], a == b, "eq a={a} b={b}");
                assert_eq!(out[1], a > b, "gt a={a} b={b}");
            }
        }
        let library = lib();
        assert!(comparator(4, &library).validate(&library).is_ok());
    }

    #[test]
    fn mux_selects() {
        let g = mux_tree_generic(2);
        for sel in 0..4usize {
            for data in 0..16usize {
                let mut v = Vec::new();
                for i in 0..2 {
                    v.push((sel >> i) & 1 == 1);
                }
                for i in 0..4 {
                    v.push((data >> i) & 1 == 1);
                }
                let out = g.evaluate_outputs(&v);
                assert_eq!(out[0], (data >> sel) & 1 == 1, "sel={sel} data={data:b}");
            }
        }
        let library = lib();
        assert!(mux_tree(3, &library).validate(&library).is_ok());
    }

    #[test]
    fn alu_ops() {
        let g = alu_generic(3);
        for a in 0..8usize {
            for b in 0..8usize {
                for op in 0..4usize {
                    let mut v = Vec::new();
                    for i in 0..3 {
                        v.push((a >> i) & 1 == 1);
                    }
                    for i in 0..3 {
                        v.push((b >> i) & 1 == 1);
                    }
                    v.push(op & 1 == 1);
                    v.push((op >> 1) & 1 == 1);
                    let out = g.evaluate_outputs(&v);
                    let want = match op {
                        0 => a & b,
                        1 => a | b,
                        2 => a ^ b,
                        _ => (a + b) & 0x7,
                    };
                    let got: usize = (0..3).map(|i| usize::from(out[i]) << i).sum();
                    assert_eq!(got, want, "a={a} b={b} op={op}");
                    if op == 3 {
                        assert_eq!(out[3], a + b > 7, "carry a={a} b={b}");
                    }
                }
            }
        }
        let library = lib();
        assert!(alu(4, &library).validate(&library).is_ok());
    }

    #[test]
    fn random_circuit_is_valid_and_deterministic() {
        let library = lib();
        let c1 = random_circuit(8, 100, 42, &library);
        let c2 = random_circuit(8, 100, 42, &library);
        assert_eq!(c1, c2);
        assert!(c1.validate(&library).is_ok());
        assert_eq!(c1.gates().len(), 100);
        assert!(!c1.primary_outputs().is_empty());
        let c3 = random_circuit(8, 100, 43, &library);
        assert_ne!(c1, c3);
    }
}

/// An `n`-bit carry-select adder (generic form): blocks of `block` bits
/// computed twice (carry 0 and carry 1), the real block carry selecting
/// between them. Inputs/outputs match [`ripple_carry_adder_generic`].
///
/// # Panics
///
/// Panics if `n == 0` or `block == 0`.
pub fn carry_select_adder_generic(n: usize, block: usize) -> GenericCircuit {
    assert!(n > 0, "adder needs at least one bit");
    assert!(block > 0, "block size must be positive");
    let mut c = GenericCircuit::new(format!("csel{n}"));
    for i in 0..n {
        c.add_input(&format!("a{i}"));
    }
    for i in 0..n {
        c.add_input(&format!("b{i}"));
    }
    c.add_input("cin");
    let mut carry = "cin".to_string();
    for lo in (0..n).step_by(block) {
        let hi = (lo + block).min(n);
        // Two speculative ripple chains for this block.
        let mut spec_carry = [String::new(), String::new()];
        for (variant, slot) in spec_carry.iter_mut().enumerate() {
            let mut cprev: Option<String> = None;
            for i in lo..hi {
                let tag = format!("v{variant}_{i}");
                let (sum, co) = match &cprev {
                    None if variant == 0 => {
                        // carry-in = 0: sum = a⊕b, carry = a·b.
                        half_adder(&mut c, &format!("a{i}"), &format!("b{i}"), &tag)
                    }
                    None => {
                        // carry-in = 1: sum = ¬(a⊕b), carry = a+b.
                        let (s0, _) = half_adder(&mut c, &format!("a{i}"), &format!("b{i}"), &tag);
                        let s = format!("{tag}_ns");
                        c.add_gate(&s, GenericOp::Not, &[&s0]);
                        let co = format!("{tag}_or");
                        c.add_gate(&co, GenericOp::Or, &[&format!("a{i}"), &format!("b{i}")]);
                        (s, co)
                    }
                    Some(cp) => full_adder(&mut c, &format!("a{i}"), &format!("b{i}"), cp, &tag),
                };
                c.add_gate(&format!("s{variant}_{i}"), GenericOp::Buff, &[&sum]);
                cprev = Some(co);
            }
            *slot = cprev.expect("block non-empty");
        }
        // Select sums and the block carry with the incoming carry.
        let ncarry = format!("nc{lo}");
        c.add_gate(&ncarry, GenericOp::Not, &[&carry]);
        for i in lo..hi {
            let t0 = format!("sel0_{i}");
            let t1 = format!("sel1_{i}");
            c.add_gate(&t0, GenericOp::And, &[&format!("s0_{i}"), &ncarry]);
            c.add_gate(&t1, GenericOp::And, &[&format!("s1_{i}"), &carry]);
            c.add_gate(&format!("s{i}"), GenericOp::Or, &[&t0, &t1]);
            c.add_output(&format!("s{i}"));
        }
        let cname = if hi == n {
            "cout".to_string()
        } else {
            format!("bc{hi}")
        };
        let t0 = format!("selc0_{lo}");
        let t1 = format!("selc1_{lo}");
        c.add_gate(&t0, GenericOp::And, &[&spec_carry[0], &ncarry]);
        c.add_gate(&t1, GenericOp::And, &[&spec_carry[1], &carry]);
        c.add_gate(&cname, GenericOp::Or, &[&t0, &t1]);
        carry = cname;
    }
    c.add_output("cout");
    c
}

/// A carry-select adder mapped onto the library.
///
/// # Panics
///
/// Panics if `n == 0` or `block == 0`.
pub fn carry_select_adder(n: usize, block: usize, library: &Library) -> Circuit {
    map::map_default(&carry_select_adder_generic(n, block), library)
}

/// An `n`-bit carry-skip adder (generic form): ripple blocks of `block`
/// bits with a propagate-detect skip mux around each — the third classic
/// adder topology after ripple and select, and (like them) heavy with
/// reconvergent fanout: every operand bit feeds both its full adder and
/// the block-propagate AND, and the block carry-in fans out to the ripple
/// chain *and* the skip mux. Inputs/outputs match
/// [`ripple_carry_adder_generic`].
///
/// # Panics
///
/// Panics if `n == 0` or `block == 0`.
pub fn carry_skip_adder_generic(n: usize, block: usize) -> GenericCircuit {
    assert!(n > 0, "adder needs at least one bit");
    assert!(block > 0, "block size must be positive");
    let mut c = GenericCircuit::new(format!("cskip{n}"));
    for i in 0..n {
        c.add_input(&format!("a{i}"));
    }
    for i in 0..n {
        c.add_input(&format!("b{i}"));
    }
    c.add_input("cin");
    let mut carry = "cin".to_string();
    for lo in (0..n).step_by(block) {
        let hi = (lo + block).min(n);
        let block_in = carry.clone();
        // Per-bit propagate signals for the skip detector.
        for i in lo..hi {
            c.add_gate(
                &format!("p{i}"),
                GenericOp::Xor,
                &[&format!("a{i}"), &format!("b{i}")],
            );
        }
        // The ripple chain of the block.
        let mut ripple = block_in.clone();
        for i in lo..hi {
            let (sum, co) = full_adder(
                &mut c,
                &format!("a{i}"),
                &format!("b{i}"),
                &ripple,
                &format!("ks{i}"),
            );
            c.add_gate(&format!("s{i}"), GenericOp::Buff, &[&sum]);
            c.add_output(&format!("s{i}"));
            ripple = co;
        }
        // Block propagate: all bits propagate ⇒ the ripple carry out
        // equals the carry in, so skipping it is sound (and fast).
        let bp = format!("bp{lo}");
        let props: Vec<String> = (lo..hi).map(|i| format!("p{i}")).collect();
        let refs: Vec<&str> = props.iter().map(String::as_str).collect();
        if refs.len() == 1 {
            c.add_gate(&bp, GenericOp::Buff, &refs);
        } else {
            c.add_gate(&bp, GenericOp::And, &refs);
        }
        // Skip mux: carry-out = bp ? block_in : ripple.
        let cname = if hi == n {
            "cout".to_string()
        } else {
            format!("kc{hi}")
        };
        let nbp = format!("nbp{lo}");
        let t0 = format!("skip0_{lo}");
        let t1 = format!("skip1_{lo}");
        c.add_gate(&nbp, GenericOp::Not, &[&bp]);
        c.add_gate(&t0, GenericOp::And, &[&ripple, &nbp]);
        c.add_gate(&t1, GenericOp::And, &[&block_in, &bp]);
        c.add_gate(&cname, GenericOp::Or, &[&t0, &t1]);
        carry = cname;
    }
    c.add_output("cout");
    c
}

/// A carry-skip adder mapped onto the library.
///
/// # Panics
///
/// Panics if `n == 0` or `block == 0`.
pub fn carry_skip_adder(n: usize, block: usize, library: &Library) -> Circuit {
    map::map_default(&carry_skip_adder_generic(n, block), library)
}

/// A logarithmic barrel shifter (generic form): `n` data bits (n a power
/// of two), `log2(n)` shift-amount bits, left rotate.
///
/// # Panics
///
/// Panics if `n` is not a power of two in `2..=32`.
pub fn barrel_shifter_generic(n: usize) -> GenericCircuit {
    assert!(
        n.is_power_of_two() && (2..=32).contains(&n),
        "size must be a power of two in 2..=32"
    );
    let stages = n.trailing_zeros() as usize;
    let mut c = GenericCircuit::new(format!("bshift{n}"));
    for i in 0..n {
        c.add_input(&format!("d{i}"));
    }
    for s in 0..stages {
        c.add_input(&format!("sh{s}"));
        c.add_gate(&format!("nsh{s}"), GenericOp::Not, &[&format!("sh{s}")]);
    }
    let mut layer: Vec<String> = (0..n).map(|i| format!("d{i}")).collect();
    for s in 0..stages {
        let amount = 1usize << s;
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let straight = &layer[i];
            let rotated = &layer[(i + amount) % n];
            let t0 = format!("r{s}_{i}_0");
            let t1 = format!("r{s}_{i}_1");
            let y = format!("r{s}_{i}");
            c.add_gate(&t0, GenericOp::And, &[straight, &format!("nsh{s}")]);
            c.add_gate(&t1, GenericOp::And, &[rotated, &format!("sh{s}")]);
            c.add_gate(&y, GenericOp::Or, &[&t0, &t1]);
            next.push(y);
        }
        layer = next;
    }
    for (i, sig) in layer.iter().enumerate() {
        let o = format!("q{i}");
        c.add_gate(&o, GenericOp::Buff, &[sig]);
        c.add_output(&o);
    }
    c
}

/// A barrel shifter mapped onto the library.
///
/// # Panics
///
/// Panics if `n` is not a power of two in `2..=32`.
pub fn barrel_shifter(n: usize, library: &Library) -> Circuit {
    map::map_default(&barrel_shifter_generic(n), library)
}

/// An `n`-input priority encoder (generic form): input `n-1` has the
/// highest priority; outputs are `log2ceil(n)` index bits plus `valid`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn priority_encoder_generic(n: usize) -> GenericCircuit {
    assert!(n >= 2, "encoder needs at least 2 inputs");
    let mut c = GenericCircuit::new(format!("prio{n}"));
    for i in 0..n {
        c.add_input(&format!("r{i}"));
        c.add_gate(&format!("nr{i}"), GenericOp::Not, &[&format!("r{i}")]);
    }
    // grant_i = r_i · Π_{j>i} ¬r_j  (highest index wins).
    for i in 0..n {
        if i == n - 1 {
            c.add_gate(&format!("g{i}"), GenericOp::Buff, &[&format!("r{i}")]);
        } else {
            let mut terms = vec![format!("r{i}")];
            terms.extend((i + 1..n).map(|j| format!("nr{j}")));
            let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
            c.add_gate(&format!("g{i}"), GenericOp::And, &refs);
        }
    }
    let bits = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    for b in 0..bits.max(1) {
        let ones: Vec<String> = (0..n)
            .filter(|i| (i >> b) & 1 == 1)
            .map(|i| format!("g{i}"))
            .collect();
        let name = format!("y{b}");
        match ones.len() {
            0 => {
                // No grant sets this bit: constant 0 via r0·¬r0.
                c.add_gate(&name, GenericOp::And, &["r0", "nr0"]);
            }
            1 => {
                c.add_gate(&name, GenericOp::Buff, &[&ones[0]]);
            }
            _ => {
                let refs: Vec<&str> = ones.iter().map(String::as_str).collect();
                c.add_gate(&name, GenericOp::Or, &refs);
            }
        }
        c.add_output(&name);
    }
    let alls: Vec<String> = (0..n).map(|i| format!("r{i}")).collect();
    let refs: Vec<&str> = alls.iter().map(String::as_str).collect();
    c.add_gate("valid", GenericOp::Or, &refs);
    c.add_output("valid");
    c
}

/// A priority encoder mapped onto the library.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn priority_encoder(n: usize, library: &Library) -> Circuit {
    map::map_default(&priority_encoder_generic(n), library)
}

/// A Gray-code-to-binary converter (generic form): `b_i = ⊕_{j≥i} g_j`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn gray_to_binary_generic(n: usize) -> GenericCircuit {
    assert!(n > 0, "converter needs at least one bit");
    let mut c = GenericCircuit::new(format!("gray{n}"));
    for i in 0..n {
        c.add_input(&format!("g{i}"));
    }
    // b_{n-1} = g_{n-1}; b_i = g_i ⊕ b_{i+1}.
    let mut prev = format!("g{}", n - 1);
    c.add_gate(&format!("b{}", n - 1), GenericOp::Buff, &[&prev]);
    c.add_output(&format!("b{}", n - 1));
    prev = format!("b{}", n - 1);
    for i in (0..n.saturating_sub(1)).rev() {
        c.add_gate(&format!("b{i}"), GenericOp::Xor, &[&format!("g{i}"), &prev]);
        c.add_output(&format!("b{i}"));
        prev = format!("b{i}");
    }
    c
}

/// A Gray-to-binary converter mapped onto the library.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn gray_to_binary(n: usize, library: &Library) -> Circuit {
    map::map_default(&gray_to_binary_generic(n), library)
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    fn lib() -> Library {
        Library::standard()
    }

    #[test]
    fn carry_select_matches_ripple() {
        let csel = carry_select_adder_generic(6, 3);
        let rca = ripple_carry_adder_generic(6);
        for trial in 0..300usize {
            let m = trial.wrapping_mul(2654435761) % (1 << 13);
            let v: Vec<bool> = (0..13).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(
                csel.evaluate_outputs(&v),
                rca.evaluate_outputs(&v),
                "inputs {m:013b}"
            );
        }
        let library = lib();
        assert!(carry_select_adder(8, 4, &library)
            .validate(&library)
            .is_ok());
    }

    #[test]
    fn carry_skip_matches_ripple() {
        let cskip = carry_skip_adder_generic(6, 3);
        let rca = ripple_carry_adder_generic(6);
        for m in 0..(1usize << 13) {
            let v: Vec<bool> = (0..13).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(
                cskip.evaluate_outputs(&v),
                rca.evaluate_outputs(&v),
                "inputs {m:013b}"
            );
        }
        let library = lib();
        let mapped = carry_skip_adder(8, 4, &library);
        assert!(mapped.validate(&library).is_ok());
        assert_eq!(mapped, carry_skip_adder(8, 4, &library));
    }

    #[test]
    fn barrel_shifter_rotates() {
        let g = barrel_shifter_generic(8);
        for data in [0b1u32, 0b1010_0110, 0b1111_0000] {
            for sh in 0..8usize {
                let mut v = Vec::new();
                for i in 0..8 {
                    v.push((data >> i) & 1 == 1);
                }
                for s in 0..3 {
                    v.push((sh >> s) & 1 == 1);
                }
                let out = g.evaluate_outputs(&v);
                let got: u32 = out
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| u32::from(b) << i)
                    .sum();
                let want = ((data as u64) >> sh | (data as u64) << (8 - sh)) as u32 & 0xFF;
                assert_eq!(got, want, "data={data:08b} sh={sh}");
            }
        }
        let library = lib();
        assert!(barrel_shifter(8, &library).validate(&library).is_ok());
    }

    #[test]
    fn priority_encoder_encodes() {
        let g = priority_encoder_generic(8);
        for m in 0..256usize {
            let v: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
            let out = g.evaluate_outputs(&v);
            let valid = m != 0;
            assert_eq!(out[3], valid, "valid at {m:08b}");
            if valid {
                let expect = m.ilog2() as usize; // highest set bit wins
                let got: usize = (0..3).map(|b| usize::from(out[b]) << b).sum();
                assert_eq!(got, expect, "index at {m:08b}");
            }
        }
        let library = lib();
        assert!(priority_encoder(8, &library).validate(&library).is_ok());
    }

    #[test]
    fn gray_code_roundtrip() {
        let g = gray_to_binary_generic(6);
        for value in 0..64usize {
            let gray = value ^ (value >> 1);
            let v: Vec<bool> = (0..6).map(|i| (gray >> i) & 1 == 1).collect();
            let out = g.evaluate_outputs(&v);
            // Outputs are declared b5 first, then b4 … b0.
            let mut bits = [false; 6];
            let order: Vec<usize> = std::iter::once(5).chain((0..5).rev()).collect();
            for (slot, &bit_index) in order.iter().enumerate() {
                bits[bit_index] = out[slot];
            }
            let got: usize = bits
                .iter()
                .enumerate()
                .map(|(i, &b)| usize::from(b) << i)
                .sum();
            assert_eq!(got, value, "gray {gray:06b}");
        }
        let library = lib();
        assert!(gray_to_binary(6, &library).validate(&library).is_ok());
    }

    #[test]
    fn new_generators_are_deterministic() {
        let library = lib();
        assert_eq!(
            carry_select_adder(8, 4, &library),
            carry_select_adder(8, 4, &library)
        );
        assert_eq!(barrel_shifter(8, &library), barrel_shifter(8, &library));
        assert_eq!(priority_encoder(8, &library), priority_encoder(8, &library));
    }

    #[test]
    fn mac_tree_multiply_accumulates() {
        // 3 terms of 3×3 products, random-ish operand sweeps.
        let g = mac_tree_generic(3, 3);
        for trial in 0..64usize {
            let m = trial.wrapping_mul(0x9E3779B9) & ((1 << 18) - 1);
            let mut v = Vec::with_capacity(18);
            let mut want = 0usize;
            for t in 0..3 {
                let a = (m >> (6 * t)) & 7;
                let b = (m >> (6 * t + 3)) & 7;
                for i in 0..3 {
                    v.push((a >> i) & 1 == 1);
                }
                for i in 0..3 {
                    v.push((b >> i) & 1 == 1);
                }
                want += a * b;
            }
            let out = g.evaluate_outputs(&v);
            let got: usize = out
                .iter()
                .enumerate()
                .map(|(i, &bit)| usize::from(bit) << i)
                .sum();
            assert_eq!(got, want, "inputs {m:018b}");
        }
    }

    #[test]
    fn mac_tree_handles_odd_term_counts() {
        // terms = 5 exercises the odd-operand carry-up path.
        let g = mac_tree_generic(2, 5);
        let mut v = Vec::with_capacity(20);
        let mut want = 0usize;
        for t in 0..5 {
            let (a, b) = (t % 4, (t + 1) % 4);
            for i in 0..2 {
                v.push((a >> i) & 1 == 1);
            }
            for i in 0..2 {
                v.push((b >> i) & 1 == 1);
            }
            want += a * b;
        }
        let out = g.evaluate_outputs(&v);
        let got: usize = out
            .iter()
            .enumerate()
            .map(|(i, &bit)| usize::from(bit) << i)
            .sum();
        assert_eq!(got, want);
    }

    #[test]
    fn large_generators_reach_iscas_scale() {
        let library = lib();
        let mac = mac_tree(8, 4, &library);
        assert!(mac.validate(&library).is_ok());
        assert!(
            mac.gates().len() >= 2000,
            "mac_tree(8, 4) must pass 2000 gates, has {}",
            mac.gates().len()
        );
        let rnd = rnd_large(7, 2400, &library);
        assert!(rnd.validate(&library).is_ok());
        assert_eq!(rnd.gates().len(), 2400);
        assert!(rnd.primary_inputs().len() >= 32);
        assert_eq!(rnd, rnd_large(7, 2400, &library), "deterministic");
        assert_eq!(mac, mac_tree(8, 4, &library), "deterministic");
    }
}
