//! The mapped, gate-level circuit representation.

use std::collections::HashMap;
use std::fmt;
use tr_gatelib::{CellKind, Library};

/// Identifier of a net (a signal wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub usize);

/// Identifier of a gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub usize);

/// One gate instance: a library cell, its input nets (positional), its
/// output net, and the transistor-reordering configuration currently
/// chosen for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The library cell.
    pub cell: CellKind,
    /// Input nets, one per cell input, in cell-input order.
    pub inputs: Vec<NetId>,
    /// Output net (driven exclusively by this gate).
    pub output: NetId,
    /// Index into the cell's configuration list (0 = default).
    pub config: usize,
}

/// Errors raised by circuit validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A net is driven by more than one gate (or a gate drives a primary
    /// input).
    MultipleDrivers(NetId),
    /// A net is neither a primary input nor driven by a gate.
    Undriven(NetId),
    /// The gate graph contains a combinational cycle.
    Cycle,
    /// A gate's input count does not match its cell's arity.
    ArityMismatch(GateId),
    /// A gate references a cell missing from the library.
    UnknownCell(GateId),
    /// A gate's configuration index is out of range for its cell.
    BadConfiguration(GateId),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::MultipleDrivers(n) => write!(f, "net {} has multiple drivers", n.0),
            CircuitError::Undriven(n) => write!(f, "net {} is undriven", n.0),
            CircuitError::Cycle => write!(f, "combinational cycle detected"),
            CircuitError::ArityMismatch(g) => write!(f, "gate {} arity mismatch", g.0),
            CircuitError::UnknownCell(g) => write!(f, "gate {} uses an unknown cell", g.0),
            CircuitError::BadConfiguration(g) => {
                write!(f, "gate {} configuration out of range", g.0)
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// A combinational circuit mapped onto the cell library.
///
/// Nets are created first (primary inputs or internal), gates drive
/// exactly one net each, primary outputs designate nets observable from
/// outside. The structure is append-only; in-place mutation is limited
/// to the per-gate `config` field (the optimizer's move,
/// [`Circuit::set_config`]) and same-arity cell substitution
/// ([`Circuit::set_cell`]), so net and gate ids are stable for a
/// circuit's lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    name: String,
    net_names: Vec<String>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            net_names: Vec::new(),
            primary_inputs: Vec::new(),
            primary_outputs: Vec::new(),
            gates: Vec::new(),
        }
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a fresh net with the given name and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        self.net_names.push(name.into());
        NetId(self.net_names.len() - 1)
    }

    /// Adds a primary input net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.primary_inputs.push(id);
        id
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.primary_outputs.contains(&net) {
            self.primary_outputs.push(net);
        }
    }

    /// Adds a gate driving a fresh net; returns `(gate, output net)`.
    pub fn add_gate(
        &mut self,
        cell: CellKind,
        inputs: Vec<NetId>,
        output_name: impl Into<String>,
    ) -> (GateId, NetId) {
        let output = self.add_net(output_name);
        self.gates.push(Gate {
            cell,
            inputs,
            output,
            config: 0,
        });
        (GateId(self.gates.len() - 1), output)
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Name of a net.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.0]
    }

    /// Primary inputs in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary outputs in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// A gate by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0]
    }

    /// Sets the configuration of a gate (the optimizer's only mutation).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_config(&mut self, id: GateId, config: usize) {
        self.gates[id.0].config = config;
    }

    /// Substitutes a gate's library cell in place, keeping its nets. The
    /// replacement must have the same arity, so the netlist structure
    /// (and every NetId/GateId) survives — this is the "accepted cell
    /// change" that dirty-cone re-propagation invalidates statistics
    /// for, unlike [`Circuit::set_config`] which preserves the gate's
    /// Boolean function. The configuration resets to 0 (configuration
    /// indices of different cells are unrelated).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range or the new cell's input count
    /// differs from the gate's.
    pub fn set_cell(&mut self, id: GateId, cell: CellKind) {
        let gate = &mut self.gates[id.0];
        assert_eq!(
            cell.arity(),
            gate.inputs.len(),
            "replacement cell must keep the gate's arity"
        );
        gate.cell = cell;
        gate.config = 0;
    }

    /// The gate driving each net, if any.
    pub fn drivers(&self) -> HashMap<NetId, GateId> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.output, GateId(i)))
            .collect()
    }

    /// The gates reading each net (fanout).
    pub fn fanouts(&self) -> HashMap<NetId, Vec<GateId>> {
        let mut map: HashMap<NetId, Vec<GateId>> = HashMap::new();
        for (i, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                map.entry(inp).or_default().push(GateId(i));
            }
        }
        map
    }

    /// Gates in dependency order: every gate appears after all gates in
    /// its transitive fan-in (the paper's `DEPTH_FIRST_TRAVERSE`).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Cycle`] if the netlist is cyclic.
    pub fn topological_order(&self) -> Result<Vec<GateId>, CircuitError> {
        let drivers = self.drivers();
        let mut state = vec![0u8; self.gates.len()]; // 0 new, 1 open, 2 done
        let mut order = Vec::with_capacity(self.gates.len());
        // Iterative DFS so deep circuits (long adder chains) cannot blow
        // the stack.
        for root in 0..self.gates.len() {
            if state[root] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            state[root] = 1;
            while let Some(&mut (g, ref mut next)) = stack.last_mut() {
                let gate = &self.gates[g];
                if *next < gate.inputs.len() {
                    let input = gate.inputs[*next];
                    *next += 1;
                    if let Some(&dep) = drivers.get(&input) {
                        match state[dep.0] {
                            0 => {
                                state[dep.0] = 1;
                                stack.push((dep.0, 0));
                            }
                            1 => return Err(CircuitError::Cycle),
                            _ => {}
                        }
                    }
                } else {
                    state[g] = 2;
                    order.push(GateId(g));
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    /// Validates structural well-formedness against a library.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; see [`CircuitError`].
    pub fn validate(&self, library: &Library) -> Result<(), CircuitError> {
        // Single driver per net; primary inputs undriven.
        let mut driven = vec![false; self.net_count()];
        for (i, g) in self.gates.iter().enumerate() {
            if driven[g.output.0] || self.primary_inputs.contains(&g.output) {
                return Err(CircuitError::MultipleDrivers(g.output));
            }
            driven[g.output.0] = true;
            let cell = library
                .cell(&g.cell)
                .ok_or(CircuitError::UnknownCell(GateId(i)))?;
            if g.inputs.len() != cell.arity() {
                return Err(CircuitError::ArityMismatch(GateId(i)));
            }
            if g.config >= cell.configurations().len() {
                return Err(CircuitError::BadConfiguration(GateId(i)));
            }
        }
        for (n, &is_driven) in driven.iter().enumerate() {
            if !is_driven && !self.primary_inputs.contains(&NetId(n)) {
                return Err(CircuitError::Undriven(NetId(n)));
            }
        }
        self.topological_order().map(|_| ())
    }

    /// Evaluates the circuit on a primary-input assignment; returns the
    /// value of every net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary input count, the
    /// circuit is cyclic, or a cell is missing from the library.
    pub fn evaluate(&self, library: &Library, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.primary_inputs.len(),
            "one value per primary input"
        );
        let mut values = vec![false; self.net_count()];
        for (i, &net) in self.primary_inputs.iter().enumerate() {
            values[net.0] = inputs[i];
        }
        let order = self.topological_order().expect("cyclic circuit");
        for gid in order {
            let gate = &self.gates[gid.0];
            let cell = library.cell(&gate.cell).expect("unknown cell");
            let assignment: Vec<bool> = gate.inputs.iter().map(|n| values[n.0]).collect();
            values[gate.output.0] = cell.function().eval(&assignment);
        }
        values
    }

    /// Gate-count histogram by cell name (the `G` column of Table 3 is
    /// the total).
    pub fn cell_histogram(&self) -> HashMap<String, usize> {
        let mut h: HashMap<String, usize> = HashMap::new();
        for g in &self.gates {
            *h.entry(g.cell.name()).or_insert(0) += 1;
        }
        h
    }

    /// Maximum logic depth in gates (length of the longest PI→PO path).
    pub fn logic_depth(&self) -> usize {
        let order = match self.topological_order() {
            Ok(o) => o,
            Err(_) => return 0,
        };
        let drivers = self.drivers();
        let mut depth: HashMap<NetId, usize> = HashMap::new();
        for gid in order {
            let gate = &self.gates[gid.0];
            let d = gate
                .inputs
                .iter()
                .map(|n| {
                    if drivers.contains_key(n) {
                        depth.get(n).copied().unwrap_or(0)
                    } else {
                        0
                    }
                })
                .max()
                .unwrap_or(0)
                + 1;
            depth.insert(gate.output, d);
        }
        depth.values().copied().max().unwrap_or(0)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} inputs, {} outputs, {} gates, depth {}",
            self.name,
            self.primary_inputs.len(),
            self.primary_outputs.len(),
            self.gates.len(),
            self.logic_depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// c17-like toy: two NAND2 layers.
    fn toy(lib: &Library) -> Circuit {
        let _ = lib;
        let mut c = Circuit::new("toy");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let (_, n1) = c.add_gate(CellKind::Nand(2), vec![a, b], "n1");
        let (_, n2) = c.add_gate(CellKind::Nand(2), vec![n1, b], "n2");
        c.mark_output(n2);
        c
    }

    #[test]
    fn build_and_validate() {
        let lib = Library::standard();
        let c = toy(&lib);
        assert!(c.validate(&lib).is_ok());
        assert_eq!(c.net_count(), 4);
        assert_eq!(c.gates().len(), 2);
    }

    #[test]
    fn evaluate_nand_chain() {
        let lib = Library::standard();
        let c = toy(&lib);
        // n1 = !(a·b); n2 = !(n1·b)
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let v = c.evaluate(&lib, &[a, b]);
            let n1 = !(a && b);
            let n2 = !(n1 && b);
            assert_eq!(v[c.primary_outputs()[0].0], n2, "a={a} b={b}");
        }
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let lib = Library::standard();
        let c = toy(&lib);
        let order = c.topological_order().unwrap();
        assert_eq!(order, vec![GateId(0), GateId(1)]);
    }

    #[test]
    fn multiple_drivers_detected() {
        let lib = Library::standard();
        let mut c = Circuit::new("bad");
        let a = c.add_input("a");
        let (_, n1) = c.add_gate(CellKind::Inv, vec![a], "n1");
        // Second gate illegally drives the same net.
        c.gates.push(Gate {
            cell: CellKind::Inv,
            inputs: vec![a],
            output: n1,
            config: 0,
        });
        assert_eq!(c.validate(&lib), Err(CircuitError::MultipleDrivers(n1)));
    }

    #[test]
    fn undriven_net_detected() {
        let lib = Library::standard();
        let mut c = Circuit::new("bad");
        let a = c.add_input("a");
        let floating = c.add_net("floating");
        let (_, _) = c.add_gate(CellKind::Nand(2), vec![a, floating], "n1");
        assert_eq!(c.validate(&lib), Err(CircuitError::Undriven(floating)));
    }

    #[test]
    fn arity_mismatch_detected() {
        let lib = Library::standard();
        let mut c = Circuit::new("bad");
        let a = c.add_input("a");
        let (g, _) = c.add_gate(CellKind::Nand(2), vec![a], "n1");
        assert_eq!(c.validate(&lib), Err(CircuitError::ArityMismatch(g)));
    }

    #[test]
    fn bad_configuration_detected() {
        let lib = Library::standard();
        let mut c = Circuit::new("bad");
        let a = c.add_input("a");
        let (g, _) = c.add_gate(CellKind::Inv, vec![a], "n1");
        c.set_config(g, 7);
        assert_eq!(c.validate(&lib), Err(CircuitError::BadConfiguration(g)));
    }

    #[test]
    fn cycle_detected() {
        let lib = Library::standard();
        let mut c = Circuit::new("cyclic");
        let a = c.add_input("a");
        // Manually create a cycle: g0 reads g1's output and vice versa.
        let n0 = c.add_net("n0");
        let n1 = c.add_net("n1");
        c.gates.push(Gate {
            cell: CellKind::Nand(2),
            inputs: vec![a, n1],
            output: n0,
            config: 0,
        });
        c.gates.push(Gate {
            cell: CellKind::Nand(2),
            inputs: vec![a, n0],
            output: n1,
            config: 0,
        });
        assert_eq!(c.validate(&lib), Err(CircuitError::Cycle));
    }

    #[test]
    fn fanout_and_drivers() {
        let lib = Library::standard();
        let c = toy(&lib);
        let b = c.primary_inputs()[1];
        let fan = c.fanouts();
        assert_eq!(fan[&b].len(), 2);
        let drv = c.drivers();
        assert_eq!(drv.len(), 2);
    }

    #[test]
    fn depth_and_histogram() {
        let lib = Library::standard();
        let c = toy(&lib);
        assert_eq!(c.logic_depth(), 2);
        assert_eq!(c.cell_histogram()["nand2"], 2);
    }
}
