//! Native text format for *mapped, configured* circuits.
//!
//! `.bench`/BLIF describe technology-independent logic; after mapping and
//! optimization a netlist also carries, per gate, the library cell and
//! the chosen transistor-reordering configuration. The paper's flow
//! produces exactly such artifacts ("two new gate-level descriptions have
//! been created" — the best and the worst orderings); this module lets
//! them be saved and reloaded.
//!
//! ```text
//! # any comment
//! circuit rca8
//! input a0 a1 b0 b1 cin
//! output s0 s1 cout
//! g0 = nand2(a0, b0) config=1
//! g1 = oai21(a1, b1, g0) config=3
//! ```
//!
//! Gates are listed in definition order; the output net takes the gate's
//! name. The format round-trips exactly ([`write()`] ∘ [`parse`] =
//! identity on valid circuits, property-tested).

use crate::circuit::{Circuit, NetId};
use std::collections::HashMap;
use tr_gatelib::{CellKind, Library};

/// Parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// 1-based line number (0 for document-level errors).
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FormatError {}

/// Serializes a circuit (names, cells and configurations included).
pub fn write(circuit: &Circuit) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "circuit {}", circuit.name());
    let inputs: Vec<&str> = circuit
        .primary_inputs()
        .iter()
        .map(|&n| circuit.net_name(n))
        .collect();
    let _ = writeln!(out, "input {}", inputs.join(" "));
    let outputs: Vec<&str> = circuit
        .primary_outputs()
        .iter()
        .map(|&n| circuit.net_name(n))
        .collect();
    let _ = writeln!(out, "output {}", outputs.join(" "));
    for gate in circuit.gates() {
        let args: Vec<&str> = gate.inputs.iter().map(|&n| circuit.net_name(n)).collect();
        let _ = writeln!(
            out,
            "{} = {}({}) config={}",
            circuit.net_name(gate.output),
            gate.cell.name(),
            args.join(", "),
            gate.config
        );
    }
    out
}

/// Parses a document produced by [`write()`] (or written by hand).
///
/// The result is validated against `library` before being returned.
///
/// # Errors
///
/// Returns [`FormatError`] on syntax problems, unknown cells, undefined
/// nets, or validation failures (arity, configuration range, cycles).
pub fn parse(text: &str, library: &Library) -> Result<Circuit, FormatError> {
    let mut circuit: Option<Circuit> = None;
    let mut nets: HashMap<String, NetId> = HashMap::new();
    let mut pending_outputs: Vec<(usize, String)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            Some(i) => raw[..i].trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("circuit ") {
            circuit = Some(Circuit::new(rest.trim()));
            continue;
        }
        let c = circuit.as_mut().ok_or_else(|| FormatError {
            line: lineno,
            message: "`circuit <name>` must come first".into(),
        })?;
        if let Some(rest) = line.strip_prefix("input ") {
            for name in rest.split_whitespace() {
                if nets.contains_key(name) {
                    return Err(FormatError {
                        line: lineno,
                        message: format!("duplicate net `{name}`"),
                    });
                }
                nets.insert(name.to_string(), c.add_input(name));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("output ") {
            for name in rest.split_whitespace() {
                pending_outputs.push((lineno, name.to_string()));
            }
            continue;
        }
        // `net = cell(args…) config=N`
        let (lhs, rhs) = line.split_once('=').ok_or_else(|| FormatError {
            line: lineno,
            message: format!("expected `net = cell(...)`, got `{line}`"),
        })?;
        let lhs = lhs.trim();
        let rhs = rhs.trim();
        let open = rhs.find('(').ok_or_else(|| FormatError {
            line: lineno,
            message: "missing `(`".into(),
        })?;
        let close = rhs.rfind(')').ok_or_else(|| FormatError {
            line: lineno,
            message: "missing `)`".into(),
        })?;
        let cell_name = rhs[..open].trim();
        let cell = library.cell_by_name(cell_name).ok_or_else(|| FormatError {
            line: lineno,
            message: format!("unknown cell `{cell_name}`"),
        })?;
        let args: Vec<&str> = rhs[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let tail = rhs[close + 1..].trim();
        let config: usize = match tail.strip_prefix("config=") {
            Some(v) => v.trim().parse().map_err(|_| FormatError {
                line: lineno,
                message: format!("bad config `{v}`"),
            })?,
            None if tail.is_empty() => 0,
            None => {
                return Err(FormatError {
                    line: lineno,
                    message: format!("unexpected trailer `{tail}`"),
                })
            }
        };
        let mut input_ids = Vec::with_capacity(args.len());
        for a in &args {
            let id = nets.get(*a).copied().ok_or_else(|| FormatError {
                line: lineno,
                message: format!("net `{a}` used before definition"),
            })?;
            input_ids.push(id);
        }
        if nets.contains_key(lhs) {
            return Err(FormatError {
                line: lineno,
                message: format!("duplicate net `{lhs}`"),
            });
        }
        let kind: CellKind = cell.kind().clone();
        let (gid, out) = c.add_gate(kind, input_ids, lhs);
        c.set_config(gid, config);
        nets.insert(lhs.to_string(), out);
    }

    let mut c = circuit.ok_or_else(|| FormatError {
        line: 0,
        message: "empty document".into(),
    })?;
    for (lineno, name) in pending_outputs {
        let id = nets.get(&name).copied().ok_or_else(|| FormatError {
            line: lineno,
            message: format!("output net `{name}` never defined"),
        })?;
        c.mark_output(id);
    }
    c.validate(library).map_err(|e| FormatError {
        line: 0,
        message: format!("validation failed: {e}"),
    })?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_preserves_everything() {
        let lib = Library::standard();
        let mut original = generators::alu(4, &lib);
        // Scatter some non-default configurations.
        for i in 0..original.gates().len() {
            let cell = lib.cell(&original.gates()[i].cell).unwrap();
            let n = cell.configurations().len();
            original.set_config(crate::circuit::GateId(i), i % n);
        }
        let text = write(&original);
        let parsed = parse(&text, &lib).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn comments_and_default_config() {
        let lib = Library::standard();
        let text = "\
# a tiny netlist
circuit t
input a b
output y
n1 = nand2(a, b) config=1
y = inv(n1)
";
        let c = parse(text, &lib).unwrap();
        assert_eq!(c.gates()[0].config, 1);
        assert_eq!(c.gates()[1].config, 0);
        let v = c.evaluate(&lib, &[true, true]);
        assert!(v[c.primary_outputs()[0].0]);
    }

    #[test]
    fn rejects_unknown_cell() {
        let lib = Library::standard();
        let text = "circuit t\ninput a\noutput y\ny = xor2(a, a)\n";
        let err = parse(text, &lib).unwrap_err();
        assert!(err.message.contains("unknown cell"));
    }

    #[test]
    fn rejects_forward_references() {
        let lib = Library::standard();
        let text = "circuit t\ninput a\noutput y\ny = inv(z)\nz = inv(a)\n";
        let err = parse(text, &lib).unwrap_err();
        assert!(err.message.contains("before definition"));
    }

    #[test]
    fn rejects_bad_config() {
        let lib = Library::standard();
        let text = "circuit t\ninput a b\noutput y\ny = nand2(a, b) config=99\n";
        let err = parse(text, &lib).unwrap_err();
        assert!(err.message.contains("validation failed"));
    }

    #[test]
    fn rejects_duplicate_nets() {
        let lib = Library::standard();
        let text = "circuit t\ninput a a\noutput a\n";
        assert!(parse(text, &lib).is_err());
    }

    #[test]
    fn rejects_missing_output() {
        let lib = Library::standard();
        let text = "circuit t\ninput a\noutput nowhere\n";
        let err = parse(text, &lib).unwrap_err();
        assert!(err.message.contains("never defined"));
    }
}
