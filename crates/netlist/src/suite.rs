//! The benchmark suite for the Table 3 reproduction.
//!
//! The paper evaluates on 39 MCNC circuits ranging from ~24 to ~540 gates.
//! Those netlists are not redistributable, so this suite substitutes a
//! deterministic mix with the same character (see `DESIGN.md` §4):
//! arithmetic carry chains (the paper's own motivation for
//! activity-gradient optimization), wide AND/OR structures, XOR-heavy
//! parity logic, control-style muxing, and seeded random mapped netlists
//! covering the same gate-count range.

use crate::circuit::Circuit;
use crate::generators as gen;
use tr_gatelib::Library;

/// A named benchmark with its mapped circuit.
#[derive(Debug, Clone)]
pub struct BenchmarkCase {
    /// Suite-stable name (used in EXPERIMENTS.md tables).
    pub name: String,
    /// The mapped circuit.
    pub circuit: Circuit,
}

/// Builds the full benchmark suite.
///
/// Deterministic: same library → same circuits, in the same order.
pub fn standard_suite(library: &Library) -> Vec<BenchmarkCase> {
    let mut cases: Vec<BenchmarkCase> = Vec::new();
    let mut push = |name: &str, circuit: Circuit| {
        cases.push(BenchmarkCase {
            name: name.to_string(),
            circuit,
        });
    };
    push(
        "c17",
        crate::map::map_default(&crate::bench::c17(), library),
    );
    push("rca4", gen::ripple_carry_adder(4, library));
    push("rca8", gen::ripple_carry_adder(8, library));
    push("rca16", gen::ripple_carry_adder(16, library));
    push("rca32", gen::ripple_carry_adder(32, library));
    push("cla16", gen::carry_lookahead_adder(16, library));
    push("mult4", gen::array_multiplier(4, library));
    push("mult6", gen::array_multiplier(6, library));
    push("parity8", gen::parity_tree(8, library));
    push("parity16", gen::parity_tree(16, library));
    push("dec4", gen::decoder(4, library));
    push("dec5", gen::decoder(5, library));
    push("cmp8", gen::comparator(8, library));
    push("cmp16", gen::comparator(16, library));
    push("mux8", gen::mux_tree(3, library));
    push("mux16", gen::mux_tree(4, library));
    push("alu4", gen::alu(4, library));
    push("alu8", gen::alu(8, library));
    push("csel16", gen::carry_select_adder(16, 4, library));
    push("csel32", gen::carry_select_adder(32, 8, library));
    push("cskip24", gen::carry_skip_adder(24, 4, library));
    push("mult8", gen::array_multiplier(8, library));
    push("bshift16", gen::barrel_shifter(16, library));
    push("prio8", gen::priority_encoder(8, library));
    push("gray12", gen::gray_to_binary(12, library));
    push("rnd_a", gen::random_circuit(10, 60, 0xA5A5, library));
    push("rnd_b", gen::random_circuit(16, 120, 0xB00C, library));
    push("rnd_c", gen::random_circuit(20, 220, 0xC0DE, library));
    push("rnd_d", gen::random_circuit(24, 350, 0xD1CE, library));
    push("rnd_e", gen::random_circuit(32, 500, 0xE99E, library));
    cases
}

/// The large tier: ISCAS85-class circuits (≥~2000 gates) that sit far
/// past the whole-circuit BDD ceiling — the workload the partitioned
/// exact-statistics backend (`--prob part`) exists for. Kept separate
/// from [`standard_suite`] so the Table 3 tiers and their pinned counts
/// stay untouched.
///
/// Deterministic: same library → same circuits, in the same order.
pub fn large_suite(library: &Library) -> Vec<BenchmarkCase> {
    let mut cases: Vec<BenchmarkCase> = Vec::new();
    let mut push = |name: &str, circuit: Circuit| {
        cases.push(BenchmarkCase {
            name: name.to_string(),
            circuit,
        });
    };
    push("mult16", gen::array_multiplier(16, library));
    push("mac8x4", gen::mac_tree(8, 4, library));
    push("rnd_large_a", gen::rnd_large(0xA11CE, 2000, library));
    push("rnd_large_b", gen::rnd_large(0xB0B0, 3000, library));
    push("rca128", gen::ripple_carry_adder(128, library));
    cases
}

/// A fast subset (≲150 gates each) for smoke tests and `--quick` runs.
pub fn quick_suite(library: &Library) -> Vec<BenchmarkCase> {
    standard_suite(library)
        .into_iter()
        .filter(|c| c.circuit.gates().len() <= 150)
        .collect()
}

/// The 13-circuit small suite (≤100 gates each): the default workload of
/// `tr-opt batch`, small enough that a full scenario matrix over it
/// finishes in seconds yet still spanning adders, parity, decode,
/// compare, mux, ALU and random-mapped structure.
pub fn small_suite(library: &Library) -> Vec<BenchmarkCase> {
    standard_suite(library)
        .into_iter()
        .filter(|c| c.circuit.gates().len() <= 100)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_valid_and_deterministic() {
        let lib = Library::standard();
        let suite = standard_suite(&lib);
        assert!(suite.len() >= 20, "suite should be substantial");
        // The PR-4 reconvergent workloads for the BDD backend are in.
        for name in ["csel32", "cskip24", "mult8"] {
            assert!(suite.iter().any(|c| c.name == name), "{name} missing");
        }
        for case in &suite {
            assert!(case.circuit.validate(&lib).is_ok(), "{} invalid", case.name);
        }
        let again = standard_suite(&lib);
        for (a, b) in suite.iter().zip(&again) {
            assert_eq!(a.circuit, b.circuit, "{} not deterministic", a.name);
        }
    }

    #[test]
    fn suite_covers_paper_size_range() {
        // Table 3 circuits span ~24..540 gates; ours should too.
        let lib = Library::standard();
        let suite = standard_suite(&lib);
        let sizes: Vec<usize> = suite.iter().map(|c| c.circuit.gates().len()).collect();
        let min = *sizes.iter().min().expect("non-empty");
        let max = *sizes.iter().max().expect("non-empty");
        assert!(min <= 30, "smallest is {min}");
        assert!(max >= 400, "largest is {max}");
    }

    #[test]
    fn names_are_unique() {
        let lib = Library::standard();
        let suite = standard_suite(&lib);
        let mut names: Vec<&str> = suite.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn small_suite_is_the_13_circuit_batch_workload() {
        let lib = Library::standard();
        let small = small_suite(&lib);
        assert_eq!(small.len(), 13, "small suite is pinned at 13 circuits");
        for case in &small {
            assert!(case.circuit.gates().len() <= 100, "{} too big", case.name);
        }
    }

    #[test]
    fn large_suite_is_iscas_scale_and_deterministic() {
        let lib = Library::standard();
        let large = large_suite(&lib);
        assert!(large.len() >= 4);
        assert!(
            large.iter().any(|c| c.circuit.gates().len() >= 2000),
            "at least one ≥2000-gate circuit"
        );
        for case in &large {
            assert!(
                case.circuit.gates().len() >= 500,
                "{} too small for the large tier",
                case.name
            );
            assert!(case.circuit.validate(&lib).is_ok(), "{} invalid", case.name);
        }
        let again = large_suite(&lib);
        for (a, b) in large.iter().zip(&again) {
            assert_eq!(a.circuit, b.circuit, "{} not deterministic", a.name);
        }
    }

    #[test]
    fn quick_suite_is_strict_subset() {
        let lib = Library::standard();
        let quick = quick_suite(&lib);
        let full = standard_suite(&lib);
        assert!(!quick.is_empty());
        assert!(quick.len() < full.len());
        for c in &quick {
            assert!(c.circuit.gates().len() <= 150);
        }
    }
}
