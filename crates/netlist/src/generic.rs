//! Technology-independent netlists — the mapper's input.

use std::collections::HashMap;
use std::fmt;

/// Operators of the generic netlist (arbitrary fanin unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GenericOp {
    /// Conjunction.
    And,
    /// Disjunction.
    Or,
    /// Negated conjunction.
    Nand,
    /// Negated disjunction.
    Nor,
    /// Inversion (fanin 1).
    Not,
    /// Identity (fanin 1).
    Buff,
    /// Odd parity.
    Xor,
    /// Even parity.
    Xnor,
}

impl GenericOp {
    /// Evaluates the operator.
    ///
    /// # Panics
    ///
    /// Panics if `args` is empty, or has more than one element for
    /// `Not`/`Buff`.
    pub fn eval(&self, args: &[bool]) -> bool {
        assert!(!args.is_empty(), "generic op needs at least one operand");
        match self {
            GenericOp::And => args.iter().all(|&v| v),
            GenericOp::Or => args.iter().any(|&v| v),
            GenericOp::Nand => !args.iter().all(|&v| v),
            GenericOp::Nor => !args.iter().any(|&v| v),
            GenericOp::Not => {
                assert_eq!(args.len(), 1, "NOT takes one operand");
                !args[0]
            }
            GenericOp::Buff => {
                assert_eq!(args.len(), 1, "BUFF takes one operand");
                args[0]
            }
            GenericOp::Xor => args.iter().filter(|&&v| v).count() % 2 == 1,
            GenericOp::Xnor => args.iter().filter(|&&v| v).count() % 2 == 0,
        }
    }

    /// Parses a `.bench` operator name (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "AND" => Some(GenericOp::And),
            "OR" => Some(GenericOp::Or),
            "NAND" => Some(GenericOp::Nand),
            "NOR" => Some(GenericOp::Nor),
            "NOT" | "INV" => Some(GenericOp::Not),
            "BUF" | "BUFF" => Some(GenericOp::Buff),
            "XOR" => Some(GenericOp::Xor),
            "XNOR" => Some(GenericOp::Xnor),
            _ => None,
        }
    }
}

impl fmt::Display for GenericOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GenericOp::And => "AND",
            GenericOp::Or => "OR",
            GenericOp::Nand => "NAND",
            GenericOp::Nor => "NOR",
            GenericOp::Not => "NOT",
            GenericOp::Buff => "BUFF",
            GenericOp::Xor => "XOR",
            GenericOp::Xnor => "XNOR",
        };
        write!(f, "{s}")
    }
}

/// One generic gate: `output = op(inputs…)`, nets addressed by name index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenericGate {
    /// Operator.
    pub op: GenericOp,
    /// Input net indices.
    pub inputs: Vec<usize>,
    /// Output net index.
    pub output: usize,
}

/// A technology-independent combinational netlist.
///
/// Signals are indexed densely; names are kept for round-tripping
/// `.bench` files and for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct GenericCircuit {
    name: String,
    signal_names: Vec<String>,
    name_index: HashMap<String, usize>,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    gates: Vec<GenericGate>,
}

impl GenericCircuit {
    /// Creates an empty generic circuit.
    pub fn new(name: impl Into<String>) -> Self {
        GenericCircuit {
            name: name.into(),
            signal_names: Vec::new(),
            name_index: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
        }
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Interns a signal name, returning its index.
    pub fn signal(&mut self, name: &str) -> usize {
        if let Some(&i) = self.name_index.get(name) {
            return i;
        }
        self.signal_names.push(name.to_string());
        let i = self.signal_names.len() - 1;
        self.name_index.insert(name.to_string(), i);
        i
    }

    /// Declares a signal as primary input (interning it).
    pub fn add_input(&mut self, name: &str) -> usize {
        let i = self.signal(name);
        if !self.inputs.contains(&i) {
            self.inputs.push(i);
        }
        i
    }

    /// Declares a signal as primary output (interning it).
    pub fn add_output(&mut self, name: &str) -> usize {
        let i = self.signal(name);
        if !self.outputs.contains(&i) {
            self.outputs.push(i);
        }
        i
    }

    /// Adds a gate `output = op(inputs…)` by signal names.
    pub fn add_gate(&mut self, output: &str, op: GenericOp, inputs: &[&str]) -> usize {
        let out = self.signal(output);
        let ins: Vec<usize> = inputs.iter().map(|n| self.signal(n)).collect();
        self.gates.push(GenericGate {
            op,
            inputs: ins,
            output: out,
        });
        out
    }

    /// Adds a gate by signal indices.
    pub fn add_gate_ids(&mut self, output: usize, op: GenericOp, inputs: Vec<usize>) {
        self.gates.push(GenericGate { op, inputs, output });
    }

    /// Number of signals.
    pub fn signal_count(&self) -> usize {
        self.signal_names.len()
    }

    /// Name of a signal.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn signal_name(&self, id: usize) -> &str {
        &self.signal_names[id]
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[usize] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[usize] {
        &self.outputs
    }

    /// All gates.
    pub fn gates(&self) -> &[GenericGate] {
        &self.gates
    }

    /// Gates in dependency order.
    ///
    /// # Panics
    ///
    /// Panics on a combinational cycle.
    pub fn topological_order(&self) -> Vec<usize> {
        let driver: HashMap<usize, usize> = self
            .gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.output, i))
            .collect();
        let mut state = vec![0u8; self.gates.len()];
        let mut order = Vec::with_capacity(self.gates.len());
        for root in 0..self.gates.len() {
            if state[root] != 0 {
                continue;
            }
            let mut stack = vec![(root, 0usize)];
            state[root] = 1;
            while let Some(&mut (g, ref mut next)) = stack.last_mut() {
                if *next < self.gates[g].inputs.len() {
                    let sig = self.gates[g].inputs[*next];
                    *next += 1;
                    if let Some(&dep) = driver.get(&sig) {
                        match state[dep] {
                            0 => {
                                state[dep] = 1;
                                stack.push((dep, 0));
                            }
                            1 => panic!("combinational cycle in generic circuit"),
                            _ => {}
                        }
                    }
                } else {
                    state[g] = 2;
                    order.push(g);
                    stack.pop();
                }
            }
        }
        order
    }

    /// Evaluates every signal given a primary-input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the input count or the
    /// netlist is cyclic.
    pub fn evaluate(&self, values: &[bool]) -> Vec<bool> {
        assert_eq!(values.len(), self.inputs.len(), "one value per input");
        let mut sig = vec![false; self.signal_count()];
        for (i, &input) in self.inputs.iter().enumerate() {
            sig[input] = values[i];
        }
        for g in self.topological_order() {
            let gate = &self.gates[g];
            let args: Vec<bool> = gate.inputs.iter().map(|&i| sig[i]).collect();
            sig[gate.output] = gate.op.eval(&args);
        }
        sig
    }

    /// Evaluates and projects the primary outputs.
    ///
    /// # Panics
    ///
    /// Same as [`GenericCircuit::evaluate`].
    pub fn evaluate_outputs(&self, values: &[bool]) -> Vec<bool> {
        let sig = self.evaluate(values);
        self.outputs.iter().map(|&o| sig[o]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_evaluate() {
        assert!(GenericOp::And.eval(&[true, true, true]));
        assert!(!GenericOp::And.eval(&[true, false]));
        assert!(GenericOp::Nand.eval(&[true, false]));
        assert!(GenericOp::Or.eval(&[false, true]));
        assert!(GenericOp::Nor.eval(&[false, false]));
        assert!(GenericOp::Xor.eval(&[true, true, true]));
        assert!(!GenericOp::Xor.eval(&[true, true]));
        assert!(GenericOp::Xnor.eval(&[true, true]));
        assert!(GenericOp::Not.eval(&[false]));
        assert!(GenericOp::Buff.eval(&[true]));
    }

    #[test]
    fn parse_bench_names() {
        assert_eq!(GenericOp::parse("nand"), Some(GenericOp::Nand));
        assert_eq!(GenericOp::parse("XNOR"), Some(GenericOp::Xnor));
        assert_eq!(GenericOp::parse("DFF"), None);
    }

    #[test]
    fn build_and_evaluate_full_adder() {
        let mut c = GenericCircuit::new("fa");
        c.add_input("a");
        c.add_input("b");
        c.add_input("cin");
        c.add_gate("axb", GenericOp::Xor, &["a", "b"]);
        c.add_gate("sum", GenericOp::Xor, &["axb", "cin"]);
        c.add_gate("g1", GenericOp::And, &["a", "b"]);
        c.add_gate("g2", GenericOp::And, &["axb", "cin"]);
        c.add_gate("cout", GenericOp::Or, &["g1", "g2"]);
        c.add_output("sum");
        c.add_output("cout");
        for m in 0..8u32 {
            let a = m & 1 == 1;
            let b = (m >> 1) & 1 == 1;
            let cin = (m >> 2) & 1 == 1;
            let out = c.evaluate_outputs(&[a, b, cin]);
            let total = u32::from(a) + u32::from(b) + u32::from(cin);
            assert_eq!(out[0], total & 1 == 1, "sum for {m}");
            assert_eq!(out[1], total >= 2, "cout for {m}");
        }
    }

    #[test]
    fn signal_interning_is_stable() {
        let mut c = GenericCircuit::new("t");
        let a1 = c.signal("a");
        let a2 = c.signal("a");
        assert_eq!(a1, a2);
        assert_eq!(c.signal_count(), 1);
    }

    #[test]
    #[should_panic(expected = "combinational cycle")]
    fn cycle_panics() {
        let mut c = GenericCircuit::new("cyc");
        c.add_input("a");
        c.add_gate("x", GenericOp::And, &["a", "y"]);
        c.add_gate("y", GenericOp::And, &["a", "x"]);
        c.evaluate(&[true]);
    }
}
