//! Structural technology mapping onto the Table 2 library.
//!
//! The paper's benchmarks are "mapped into the gate library shown in
//! Table 2"; this module is that flow's stand-in. It lowers a
//! [`GenericCircuit`] through a normalized AND/OR/NOT DAG and emits
//! library cells, absorbing AND-OR-INVERT / OR-AND-INVERT patterns into
//! the AOI/OAI families where the library has a matching cell:
//!
//! * `NOT(OR(AND(a,b), c))`            → `aoi21`
//! * `NOT(AND(OR(a,b), OR(c,d), e))`   → `oai221`
//! * plain inverted groups             → `nandk` / `nork` (k ≤ 4)
//! * wider operators                   → balanced trees
//!
//! Mapping preserves functionality (property-tested against the generic
//! netlist) and never duplicates logic: shared subterms map to shared
//! nets.

use crate::circuit::{Circuit, NetId};
use crate::generic::{GenericCircuit, GenericOp};
use std::collections::HashMap;
use tr_gatelib::{CellKind, Library};

/// Options controlling the mapper.
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Absorb AOI/OAI patterns (on by default). Off gives a NAND/NOR/INV
    /// mapping — useful for ablations.
    pub absorb_aoi: bool,
    /// Maximum NAND/NOR fanin (the Table 2 library has 4).
    pub max_fanin: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            absorb_aoi: true,
            max_fanin: 4,
        }
    }
}

/// Normalized intermediate node.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NNode {
    /// Primary input (index into the generic circuit's input list).
    Input(usize),
    And(Vec<usize>),
    Or(Vec<usize>),
    Not(usize),
}

/// The normalized DAG plus bookkeeping.
struct Normalized {
    nodes: Vec<NNode>,
    fanout: Vec<usize>,
}

impl Normalized {
    fn push(&mut self, n: NNode) -> usize {
        self.nodes.push(n);
        self.fanout.push(0);
        self.nodes.len() - 1
    }
}

/// Maps a generic circuit onto the library.
///
/// Primary outputs keep their generic-circuit names; internal nets get
/// synthetic names. The result is validated before being returned.
///
/// # Panics
///
/// Panics if the generic circuit is cyclic, or if the library is missing
/// a required basic cell (`inv`, `nand2..4`, `nor2..4`).
pub fn map(generic: &GenericCircuit, library: &Library, options: &MapOptions) -> Circuit {
    map_with_outputs(generic, library, options).0
}

/// Like [`map`], additionally returning the mapped net of every generic
/// primary output, in declaration order.
///
/// Distinct generic outputs can alias the same net (e.g. through `BUFF`),
/// in which case `Circuit::primary_outputs` contains the net once but the
/// returned vector still has one entry per generic output.
///
/// # Panics
///
/// As [`map`].
pub fn map_with_outputs(
    generic: &GenericCircuit,
    library: &Library,
    options: &MapOptions,
) -> (Circuit, Vec<NetId>) {
    let mut mapper = Mapper::new(generic, library, options);
    let outputs = mapper.run();
    let circuit = mapper.circuit;
    circuit
        .validate(library)
        .expect("mapper produced an invalid circuit");
    (circuit, outputs)
}

/// Maps with default options.
pub fn map_default(generic: &GenericCircuit, library: &Library) -> Circuit {
    map(generic, library, &MapOptions::default())
}

struct Mapper<'a> {
    generic: &'a GenericCircuit,
    library: &'a Library,
    options: &'a MapOptions,
    norm: Normalized,
    /// Generic signal → normalized node.
    signal_node: HashMap<usize, usize>,
    /// Normalized node → realized (positive polarity) net.
    realized: HashMap<usize, NetId>,
    circuit: Circuit,
    fresh: usize,
}

impl<'a> Mapper<'a> {
    fn new(generic: &'a GenericCircuit, library: &'a Library, options: &'a MapOptions) -> Self {
        Mapper {
            generic,
            library,
            options,
            norm: Normalized {
                nodes: Vec::new(),
                fanout: Vec::new(),
            },
            signal_node: HashMap::new(),
            realized: HashMap::new(),
            circuit: Circuit::new(generic.name()),
            fresh: 0,
        }
    }

    fn run(&mut self) -> Vec<NetId> {
        // 1. Primary inputs.
        for (i, &sig) in self.generic.inputs().iter().enumerate() {
            let node = self.norm.push(NNode::Input(i));
            self.signal_node.insert(sig, node);
            let net = self.circuit.add_input(self.generic.signal_name(sig));
            self.realized.insert(node, net);
        }
        // 2. Normalize gates in dependency order.
        for g in self.generic.topological_order() {
            let gate = self.generic.gates()[g].clone();
            let args: Vec<usize> = gate
                .inputs
                .iter()
                .map(|s| *self.signal_node.get(s).expect("inputs precede use"))
                .collect();
            let node = self.normalize(gate.op, args);
            self.signal_node.insert(gate.output, node);
        }
        // 3. Flatten single-fanout associative chains, then split fanin.
        self.count_fanout();
        self.flatten();
        self.split_wide();
        self.count_fanout();
        // 4. Emit primary outputs (realizing their cones).
        let mut outputs = Vec::with_capacity(self.generic.outputs().len());
        for &sig in self.generic.outputs() {
            let node = *self
                .signal_node
                .get(&sig)
                .expect("output signal must be defined");
            let net = self.realize(node);
            self.circuit.mark_output(net);
            outputs.push(net);
        }
        outputs
    }

    fn normalize(&mut self, op: GenericOp, args: Vec<usize>) -> usize {
        match op {
            GenericOp::Buff => args[0],
            GenericOp::Not => self.norm.push(NNode::Not(args[0])),
            GenericOp::And => {
                if args.len() == 1 {
                    args[0]
                } else {
                    self.norm.push(NNode::And(args))
                }
            }
            GenericOp::Or => {
                if args.len() == 1 {
                    args[0]
                } else {
                    self.norm.push(NNode::Or(args))
                }
            }
            GenericOp::Nand => {
                let inner = self.normalize(GenericOp::And, args);
                self.norm.push(NNode::Not(inner))
            }
            GenericOp::Nor => {
                let inner = self.normalize(GenericOp::Or, args);
                self.norm.push(NNode::Not(inner))
            }
            GenericOp::Xor => {
                // Fold to binary XORs: a⊕b = a·b̄ + ā·b.
                let mut acc = args[0];
                for &b in &args[1..] {
                    let na = self.norm.push(NNode::Not(acc));
                    let nb = self.norm.push(NNode::Not(b));
                    let t1 = self.norm.push(NNode::And(vec![acc, nb]));
                    let t2 = self.norm.push(NNode::And(vec![na, b]));
                    acc = self.norm.push(NNode::Or(vec![t1, t2]));
                }
                acc
            }
            GenericOp::Xnor => {
                let x = self.normalize(GenericOp::Xor, args);
                self.norm.push(NNode::Not(x))
            }
        }
    }

    fn count_fanout(&mut self) {
        for f in &mut self.norm.fanout {
            *f = 0;
        }
        let bump = |children: &[usize], fanout: &mut Vec<usize>| {
            for &c in children {
                fanout[c] += 1;
            }
        };
        let nodes = self.norm.nodes.clone();
        for n in &nodes {
            match n {
                NNode::Input(_) => {}
                NNode::And(cs) | NNode::Or(cs) => bump(cs, &mut self.norm.fanout),
                NNode::Not(c) => bump(&[*c], &mut self.norm.fanout),
            }
        }
        // Outputs count as fanout so their nodes are never absorbed away.
        for &sig in self.generic.outputs() {
            if let Some(&n) = self.signal_node.get(&sig) {
                self.norm.fanout[n] += 1;
            }
        }
    }

    /// Collapses `And(And(a,b), c)` (inner fanout 1) into `And(a,b,c)`,
    /// and likewise for `Or`.
    fn flatten(&mut self) {
        for i in 0..self.norm.nodes.len() {
            let node = self.norm.nodes[i].clone();
            let (is_and, children) = match node {
                NNode::And(cs) => (true, cs),
                NNode::Or(cs) => (false, cs),
                _ => continue,
            };
            let mut flat = Vec::with_capacity(children.len());
            let mut changed = false;
            for c in children {
                let absorbable = self.norm.fanout[c] == 1
                    && matches!(
                        (&self.norm.nodes[c], is_and),
                        (NNode::And(_), true) | (NNode::Or(_), false)
                    );
                if absorbable {
                    match self.norm.nodes[c].clone() {
                        NNode::And(inner) | NNode::Or(inner) => {
                            flat.extend(inner);
                            changed = true;
                        }
                        _ => unreachable!("absorbable is And/Or"),
                    }
                } else {
                    flat.push(c);
                }
            }
            if changed {
                self.norm.nodes[i] = if is_and {
                    NNode::And(flat)
                } else {
                    NNode::Or(flat)
                };
            }
        }
    }

    /// Splits operators wider than `max_fanin` into balanced trees.
    fn split_wide(&mut self) {
        let max = self.options.max_fanin.max(2);
        let mut i = 0;
        while i < self.norm.nodes.len() {
            let node = self.norm.nodes[i].clone();
            let (is_and, children) = match node {
                NNode::And(cs) if cs.len() > max => (true, cs),
                NNode::Or(cs) if cs.len() > max => (false, cs),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Group into ⌈n/max⌉ chunks; the node becomes the combiner.
            let mut groups: Vec<usize> = Vec::new();
            for chunk in children.chunks(max) {
                if chunk.len() == 1 {
                    groups.push(chunk[0]);
                } else {
                    let sub = if is_and {
                        NNode::And(chunk.to_vec())
                    } else {
                        NNode::Or(chunk.to_vec())
                    };
                    groups.push(self.norm.push(sub));
                }
            }
            self.norm.nodes[i] = if is_and {
                NNode::And(groups)
            } else {
                NNode::Or(groups)
            };
            // Do not advance: the node may still be wider than `max`.
        }
    }

    fn fresh_name(&mut self, tag: &str) -> String {
        self.fresh += 1;
        format!("_{tag}{}", self.fresh)
    }

    /// Realizes node `n` as a net carrying its positive value.
    fn realize(&mut self, n: usize) -> NetId {
        if let Some(&net) = self.realized.get(&n) {
            return net;
        }
        let node = self.norm.nodes[n].clone();
        let net = match node {
            NNode::Input(_) => unreachable!("inputs are pre-realized"),
            NNode::Not(x) => {
                let inner = self.norm.nodes[x].clone();
                let single_use = self.norm.fanout[x] == 1;
                match inner {
                    NNode::And(args) if single_use => self.emit_inverted_and(&args),
                    NNode::Or(args) if single_use => self.emit_inverted_or(&args),
                    _ => {
                        let src = self.realize(x);
                        self.emit_cell(CellKind::Inv, vec![src], "inv")
                    }
                }
            }
            NNode::And(args) => {
                let nand = self.emit_inverted_and(&args);
                self.emit_cell(CellKind::Inv, vec![nand], "and")
            }
            NNode::Or(args) => {
                let nor = self.emit_inverted_or(&args);
                self.emit_cell(CellKind::Inv, vec![nor], "or")
            }
        };
        self.realized.insert(n, net);
        net
    }

    /// Emits `NOT(AND(args))`: an OAI cell when the children form a
    /// library pattern, otherwise a NAND.
    fn emit_inverted_and(&mut self, args: &[usize]) -> NetId {
        if args.len() == 1 {
            let src = self.realize(args[0]);
            return self.emit_cell(CellKind::Inv, vec![src], "inv");
        }
        if self.options.absorb_aoi && args.len() <= 3 {
            if let Some(net) = self.try_absorb(args, /*and_of_ors=*/ true) {
                return net;
            }
        }
        let nets: Vec<NetId> = args.iter().map(|&a| self.realize(a)).collect();
        self.emit_cell(CellKind::Nand(nets.len()), nets, "nand")
    }

    /// Emits `NOT(OR(args))`: an AOI cell when possible, otherwise a NOR.
    fn emit_inverted_or(&mut self, args: &[usize]) -> NetId {
        if args.len() == 1 {
            let src = self.realize(args[0]);
            return self.emit_cell(CellKind::Inv, vec![src], "inv");
        }
        if self.options.absorb_aoi && args.len() <= 3 {
            if let Some(net) = self.try_absorb(args, /*and_of_ors=*/ false) {
                return net;
            }
        }
        let nets: Vec<NetId> = args.iter().map(|&a| self.realize(a)).collect();
        self.emit_cell(CellKind::Nor(nets.len()), nets, "nor")
    }

    /// Attempts to absorb group children into an OAI (`and_of_ors`) or AOI
    /// cell. Returns `None` when the group-size pattern has no Table 2
    /// cell, in which case the caller falls back to NAND/NOR.
    fn try_absorb(&mut self, args: &[usize], and_of_ors: bool) -> Option<NetId> {
        // Collect groups: a child collapses into a group if it is the
        // complementary op, single-fanout, and small enough.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for &a in args {
            let group = match (&self.norm.nodes[a], and_of_ors) {
                (NNode::Or(sub), true) | (NNode::And(sub), false)
                    if self.norm.fanout[a] == 1 && sub.len() <= 3 =>
                {
                    sub.clone()
                }
                _ => vec![a],
            };
            groups.push(group);
        }
        // Library patterns require at least one real group.
        if groups.iter().all(|g| g.len() == 1) {
            return None;
        }
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        let kind = if and_of_ors {
            CellKind::Oai(sizes)
        } else {
            CellKind::Aoi(sizes)
        };
        self.library.cell(&kind)?;
        let mut nets: Vec<NetId> = Vec::new();
        for g in &groups {
            for &s in g {
                nets.push(self.realize(s));
            }
        }
        let tag = if and_of_ors { "oai" } else { "aoi" };
        Some(self.emit_cell(kind, nets, tag))
    }

    fn emit_cell(&mut self, cell: CellKind, inputs: Vec<NetId>, tag: &str) -> NetId {
        let name = self.fresh_name(tag);
        let (_, net) = self.circuit.add_gate(cell, inputs, name);
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench;
    use crate::generic::GenericOp;

    fn check_equivalent(generic: &GenericCircuit, mapped: &Circuit, library: &Library) {
        let n = generic.inputs().len();
        assert!(n <= 14, "exhaustive check limited to 14 inputs");
        for m in 0..(1usize << n) {
            let vals: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let want = generic.evaluate_outputs(&vals);
            let nets = mapped.evaluate(library, &vals);
            let got: Vec<bool> = mapped.primary_outputs().iter().map(|o| nets[o.0]).collect();
            assert_eq!(got, want, "mismatch on input {m:b}");
        }
    }

    #[test]
    fn maps_c17_equivalently() {
        let lib = Library::standard();
        let g = bench::c17();
        let c = map_default(&g, &lib);
        check_equivalent(&g, &c, &lib);
        // c17 is pure NAND2: mapping should not inflate it much.
        assert!(c.gates().len() <= 8, "got {} gates", c.gates().len());
    }

    #[test]
    fn absorbs_aoi21() {
        let lib = Library::standard();
        let mut g = GenericCircuit::new("aoi");
        g.add_input("a");
        g.add_input("b");
        g.add_input("c");
        g.add_gate("t", GenericOp::And, &["a", "b"]);
        g.add_gate("y", GenericOp::Nor, &["t", "c"]);
        g.add_output("y");
        let c = map_default(&g, &lib);
        check_equivalent(&g, &c, &lib);
        assert_eq!(c.gates().len(), 1);
        assert_eq!(c.gates()[0].cell, CellKind::aoi(&[2, 1]));
    }

    #[test]
    fn absorbs_oai221() {
        let lib = Library::standard();
        let mut g = GenericCircuit::new("oai");
        for n in ["a", "b", "c", "d", "e"] {
            g.add_input(n);
        }
        g.add_gate("t1", GenericOp::Or, &["a", "b"]);
        g.add_gate("t2", GenericOp::Or, &["c", "d"]);
        g.add_gate("y", GenericOp::Nand, &["t1", "t2", "e"]);
        g.add_output("y");
        let c = map_default(&g, &lib);
        check_equivalent(&g, &c, &lib);
        assert_eq!(c.gates().len(), 1);
        assert_eq!(c.gates()[0].cell, CellKind::oai(&[2, 2, 1]));
    }

    #[test]
    fn shared_group_is_not_absorbed() {
        // The AND feeds two gates: it must stay a separate gate.
        let lib = Library::standard();
        let mut g = GenericCircuit::new("shared");
        for n in ["a", "b", "c", "d"] {
            g.add_input(n);
        }
        g.add_gate("t", GenericOp::And, &["a", "b"]);
        g.add_gate("y1", GenericOp::Nor, &["t", "c"]);
        g.add_gate("y2", GenericOp::Nor, &["t", "d"]);
        g.add_output("y1");
        g.add_output("y2");
        let c = map_default(&g, &lib);
        check_equivalent(&g, &c, &lib);
        // t as nand+inv (or equivalent) plus two NOR2s: at least 4 gates.
        assert!(c.gates().len() >= 4);
    }

    #[test]
    fn xor_expands_and_matches() {
        let lib = Library::standard();
        let mut g = GenericCircuit::new("xor3");
        g.add_input("a");
        g.add_input("b");
        g.add_input("c");
        g.add_gate("y", GenericOp::Xor, &["a", "b", "c"]);
        g.add_output("y");
        let c = map_default(&g, &lib);
        check_equivalent(&g, &c, &lib);
    }

    #[test]
    fn wide_gates_split() {
        let lib = Library::standard();
        let mut g = GenericCircuit::new("wide");
        let names: Vec<String> = (0..9).map(|i| format!("i{i}")).collect();
        for n in &names {
            g.add_input(n);
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        g.add_gate("y", GenericOp::And, &refs);
        g.add_output("y");
        let c = map_default(&g, &lib);
        check_equivalent(&g, &c, &lib);
        for gate in c.gates() {
            assert!(gate.inputs.len() <= 6);
        }
    }

    #[test]
    fn buffers_alias_through() {
        let lib = Library::standard();
        let mut g = GenericCircuit::new("buf");
        g.add_input("a");
        g.add_gate("b", GenericOp::Buff, &["a"]);
        g.add_gate("y", GenericOp::Not, &["b"]);
        g.add_output("y");
        let c = map_default(&g, &lib);
        check_equivalent(&g, &c, &lib);
        assert_eq!(c.gates().len(), 1); // just the inverter
    }

    #[test]
    fn no_absorb_option_gives_nand_nor_only() {
        let lib = Library::standard();
        let mut g = GenericCircuit::new("plain");
        g.add_input("a");
        g.add_input("b");
        g.add_input("c");
        g.add_gate("t", GenericOp::And, &["a", "b"]);
        g.add_gate("y", GenericOp::Nor, &["t", "c"]);
        g.add_output("y");
        let opts = MapOptions {
            absorb_aoi: false,
            ..MapOptions::default()
        };
        let c = map(&g, &lib, &opts);
        check_equivalent(&g, &c, &lib);
        for gate in c.gates() {
            assert!(
                matches!(
                    gate.cell,
                    CellKind::Inv | CellKind::Nand(_) | CellKind::Nor(_)
                ),
                "unexpected {}",
                gate.cell
            );
        }
    }

    #[test]
    fn output_driven_by_input_is_handled() {
        let lib = Library::standard();
        let mut g = GenericCircuit::new("wire");
        g.add_input("a");
        g.add_gate("y", GenericOp::Buff, &["a"]);
        g.add_output("y");
        let c = map_default(&g, &lib);
        assert_eq!(c.gates().len(), 0);
        assert_eq!(c.primary_outputs(), &[c.primary_inputs()[0]]);
    }
}
