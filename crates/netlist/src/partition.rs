//! Cone partitioning: carve a [`CompiledCircuit`] into fanout-bounded
//! regions for per-region exact statistics.
//!
//! A monolithic whole-circuit BDD engine tops out near a hundred gates of
//! dense logic — reconvergence makes the global functions blow up even
//! when every local cone is tiny. The classic remedy (cutpoint
//! approximation) is to **cut** the netlist at selected internal nets:
//! each region gets its own small engine whose variables are the region's
//! *external* nets (primary inputs or cut nets from upstream regions),
//! and cut nets carry their upstream computed statistics downstream as
//! pseudo-inputs. The only information lost is the correlation *between*
//! a region's inputs; everything inside a region stays exact.
//!
//! [`partition`] packs gates greedily in topological order, closing the
//! current region when its estimated node cost would exceed the budget or
//! its external-input count would exceed the cut width, preferring to cut
//! right after high-fanout nets (their statistics are computed once and
//! reused by every reader). Region indices come out topologically sorted:
//! every dependency of region `r` has an index `< r`, so a serial
//! evaluation in index order — or a dataflow schedule over
//! [`Partition::dependencies`] — is always safe.
//!
//! [`Partition::approx_fraction`] reports which nets are *provably*
//! exact under the cut: a region whose external inputs have pairwise
//! disjoint primary-input supports (and are themselves exact) introduces
//! no approximation at all, because functions of disjoint independent
//! variables are independent. Trees, carry chains and well-cut datapaths
//! routinely come out 100% exact; the fraction of nets that do not is a
//! structural quality indicator for the chosen cut (0 ⇒ exact).

use crate::circuit::{GateId, NetId};
use crate::compiled::CompiledCircuit;

/// Packing knobs for [`partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionOptions {
    /// Estimated-node budget per region. Each gate is charged `2^arity`
    /// (its truth-table size — a proxy for the BDD nodes its composition
    /// can add), and a region closes before exceeding the budget. The
    /// per-region engine still enforces a hard live-node limit; this
    /// budget just sizes regions so the limit is rarely met.
    pub max_region_cost: usize,
    /// Maximum number of external input nets (primary inputs + cut nets)
    /// a region may read — the cut width. A region always accepts its
    /// first gate even if that gate alone exceeds the width.
    pub max_region_inputs: usize,
    /// Fanout count at or above which a net is considered a preferred
    /// cut point: once a region has consumed half its cost budget, it
    /// closes right after producing such a net.
    pub cut_fanout_threshold: usize,
    /// Cut-refinement budget: each region re-expands the fanin cone
    /// behind its cut inputs by up to this much extra gate cost
    /// (same `2^arity` units as `max_region_cost`), pushing its
    /// pseudo-input frontier toward the primary inputs. Re-expanded
    /// gates are *recomposed* locally — their statistics still come
    /// from their owning region — so nearby reconvergence (an XOR
    /// macro, an adjacent adder cell) is captured exactly and only
    /// long-range correlation is approximated. `0` disables
    /// refinement (the frontier is the raw cut).
    pub expand_cost: usize,
}

impl PartitionOptions {
    /// Options that produce exactly one region (no cuts): both budgets
    /// unbounded.
    pub fn single_region() -> Self {
        PartitionOptions {
            max_region_cost: usize::MAX,
            max_region_inputs: usize::MAX,
            cut_fanout_threshold: usize::MAX,
            expand_cost: 0,
        }
    }

    /// Options that cut every net: one gate per region.
    pub fn every_net_cut() -> Self {
        PartitionOptions {
            max_region_cost: 1,
            max_region_inputs: 0,
            cut_fanout_threshold: usize::MAX,
            expand_cost: 0,
        }
    }
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            max_region_cost: 512,
            max_region_inputs: 24,
            cut_fanout_threshold: 8,
            expand_cost: 512,
        }
    }
}

/// One region of a [`Partition`]: a contiguous (in topological order)
/// set of gates evaluated by one BDD engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// The region's gates, in topological order.
    pub gates: Vec<GateId>,
    /// Cut-refinement prefix: gates of *earlier* regions recomposed
    /// locally (topological order) so this region's functions reach
    /// back past the raw cut. Their statistics still come from their
    /// owning regions; these are evaluation duplicates only. Empty
    /// when [`PartitionOptions::expand_cost`] is `0`.
    pub expansion: Vec<GateId>,
    /// External nets the region reads (primary inputs or nets driven by
    /// earlier regions), in first-read order — the pseudo-input
    /// frontier *after* cut refinement. These become the region
    /// engine's variables.
    pub inputs: Vec<NetId>,
    /// Nets driven by the region's gates, parallel to `gates`.
    pub outputs: Vec<NetId>,
}

/// A cone partition of a [`CompiledCircuit`] — see [`partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    regions: Vec<Region>,
    /// Gate index -> owning region index.
    region_of_gate: Vec<u32>,
    /// Region -> distinct predecessor regions (producers of its cut
    /// inputs), ascending.
    dependencies: Vec<Vec<u32>>,
    /// Region -> distinct successor regions, ascending.
    dependents: Vec<Vec<u32>>,
    /// All nets read across a region boundary (non-primary-input region
    /// inputs), ascending, deduplicated.
    cut_nets: Vec<NetId>,
}

impl Partition {
    /// The regions, topologically sorted: every dependency of
    /// `regions()[r]` has an index `< r`.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region owning `gate`.
    pub fn region_of(&self, gate: GateId) -> usize {
        self.region_of_gate[gate.0] as usize
    }

    /// Distinct regions producing cut nets that `region` reads
    /// (ascending region indices, all `< region`).
    pub fn dependencies(&self, region: usize) -> &[u32] {
        &self.dependencies[region]
    }

    /// Distinct regions reading cut nets that `region` produces
    /// (ascending region indices, all `> region`).
    pub fn dependents(&self, region: usize) -> &[u32] {
        &self.dependents[region]
    }

    /// Every net that crosses a region boundary (ascending, distinct).
    pub fn cut_nets(&self) -> &[NetId] {
        &self.cut_nets
    }

    /// Fraction of gate-driven nets whose statistics are **not provably
    /// exact** under this cut, in `[0, 1]`.
    ///
    /// A net is provably exact when every external input of its region
    /// is itself exact and the region's external inputs have pairwise
    /// disjoint transitive primary-input supports: deterministic
    /// functions of disjoint sets of independent variables are mutually
    /// independent, so treating them as fresh independent pseudo-inputs
    /// loses nothing. `0.0` therefore certifies the partitioned result
    /// equals the full-BDD result (up to float rounding); a positive
    /// fraction is a structural *indicator* of how much of the circuit
    /// may carry cut-approximation error — not a bound on its magnitude.
    pub fn approx_fraction(&self, compiled: &CompiledCircuit) -> f64 {
        let n_pis = compiled.primary_inputs().len();
        let words = n_pis.div_ceil(64);
        let n_nets = compiled.net_count();
        // Transitive PI support per net, as bitsets (exact: one
        // topological pass over the gates).
        let mut support = vec![0u64; n_nets * words];
        for (pos, pi) in compiled.primary_inputs().iter().enumerate() {
            support[pi.0 * words + pos / 64] |= 1u64 << (pos % 64);
        }
        for &gid in compiled.order() {
            let gate = &compiled.gates()[gid.0];
            let out = gate.output.0;
            for i in 0..gate.arity as usize {
                let input = compiled.inputs(gate)[i].0;
                for w in 0..words {
                    let bits = support[input * words + w];
                    support[out * words + w] |= bits;
                }
            }
        }
        let disjoint = |a: usize, b: usize| {
            (0..words).all(|w| support[a * words + w] & support[b * words + w] == 0)
        };

        let mut exact = vec![false; n_nets];
        for pi in compiled.primary_inputs() {
            exact[pi.0] = true;
        }
        let mut approx_nets = 0usize;
        let mut total_nets = 0usize;
        for region in &self.regions {
            let inputs_exact = region.inputs.iter().all(|net| exact[net.0]);
            let inputs_disjoint = region
                .inputs
                .iter()
                .enumerate()
                .all(|(i, a)| region.inputs[..i].iter().all(|b| disjoint(a.0, b.0)));
            let region_exact = inputs_exact && inputs_disjoint;
            for out in &region.outputs {
                exact[out.0] = region_exact;
                total_nets += 1;
                if !region_exact {
                    approx_nets += 1;
                }
            }
        }
        if total_nets == 0 {
            0.0
        } else {
            approx_nets as f64 / total_nets as f64
        }
    }
}

/// Gates in fanin-DFS postorder from the primary outputs: a valid
/// topological order (fanins precede every reader) that keeps each
/// output cone *contiguous*, so greedy interval packing yields
/// cone-coherent regions. Plain creation order interleaves unrelated
/// logic (an array multiplier's rows, say), which makes every cut sever
/// correlated pairs; cone order cuts between cones instead. Gates
/// unreachable from any output are appended in compiled (topological)
/// order.
fn cone_order(compiled: &CompiledCircuit) -> Vec<GateId> {
    let n_gates = compiled.gates().len();
    let mut driver: Vec<Option<GateId>> = vec![None; compiled.net_count()];
    for (idx, gate) in compiled.gates().iter().enumerate() {
        driver[gate.output.0] = Some(GateId(idx));
    }
    let mut order = Vec::with_capacity(n_gates);
    let mut state = vec![0u8; n_gates]; // 0 unseen, 1 expanded, 2 emitted
    let mut stack: Vec<(GateId, bool)> = Vec::new();
    for &out in compiled.primary_outputs() {
        if let Some(root) = driver[out.0] {
            stack.push((root, false));
        }
        while let Some((gid, expanded)) = stack.pop() {
            if expanded {
                if state[gid.0] != 2 {
                    state[gid.0] = 2;
                    order.push(gid);
                }
                continue;
            }
            if state[gid.0] != 0 {
                continue;
            }
            state[gid.0] = 1;
            stack.push((gid, true));
            let gate = &compiled.gates()[gid.0];
            // Reverse so the first fanin is explored first.
            for net in compiled.inputs(gate).iter().rev() {
                if let Some(src) = driver[net.0] {
                    if state[src.0] == 0 {
                        stack.push((src, false));
                    }
                }
            }
        }
    }
    for &gid in compiled.order() {
        if state[gid.0] != 2 {
            order.push(gid);
        }
    }
    order
}

/// Greedy topological cone packing — see the module docs for the scheme
/// and [`PartitionOptions`] for the knobs. Deterministic: identical
/// inputs always produce the identical partition.
pub fn partition(compiled: &CompiledCircuit, options: &PartitionOptions) -> Partition {
    let n_nets = compiled.net_count();
    let n_gates = compiled.gates().len();
    const NO_REGION: u32 = u32::MAX;

    // Fanout counts, for the preferred-cut heuristic.
    let mut fanout = vec![0u32; n_nets];
    for gate in compiled.gates() {
        for input in compiled.inputs(gate) {
            fanout[input.0] += 1;
        }
    }

    let gate_cost = |gate: &crate::compiled::ResolvedGate| 1usize << (gate.arity as usize).min(10);

    let mut regions: Vec<Region> = Vec::new();
    let mut region_of_gate = vec![NO_REGION; n_gates];
    // net -> region that drives it (NO_REGION for primary inputs).
    let mut driver_region = vec![NO_REGION; n_nets];
    // net -> region whose input list already holds it (stamp dedup).
    let mut input_stamp = vec![NO_REGION; n_nets];

    let mut cur = Region {
        gates: Vec::new(),
        expansion: Vec::new(),
        inputs: Vec::new(),
        outputs: Vec::new(),
    };
    let mut cur_cost = 0usize;

    for &gid in &cone_order(compiled) {
        let gate = &compiled.gates()[gid.0];
        let cur_id = regions.len() as u32;
        if !cur.gates.is_empty() {
            let new_inputs = compiled
                .inputs(gate)
                .iter()
                .filter(|net| driver_region[net.0] != cur_id && input_stamp[net.0] != cur_id)
                .count();
            let over_cost = cur_cost + gate_cost(gate) > options.max_region_cost;
            let over_width = cur.inputs.len() + new_inputs > options.max_region_inputs;
            if over_cost || over_width {
                regions.push(std::mem::replace(
                    &mut cur,
                    Region {
                        gates: Vec::new(),
                        expansion: Vec::new(),
                        inputs: Vec::new(),
                        outputs: Vec::new(),
                    },
                ));
                cur_cost = 0;
            }
        }
        let cur_id = regions.len() as u32;
        for net in compiled.inputs(gate) {
            if driver_region[net.0] != cur_id && input_stamp[net.0] != cur_id {
                input_stamp[net.0] = cur_id;
                cur.inputs.push(*net);
            }
        }
        cur.gates.push(gid);
        cur.outputs.push(gate.output);
        region_of_gate[gid.0] = cur_id;
        driver_region[gate.output.0] = cur_id;
        cur_cost += gate_cost(gate);
        // Preferred cut: a hot net's statistics should be computed once
        // and fanned out, not replicated into many region supports.
        if fanout[gate.output.0] as usize >= options.cut_fanout_threshold
            && cur_cost.saturating_mul(2) >= options.max_region_cost
        {
            regions.push(std::mem::replace(
                &mut cur,
                Region {
                    gates: Vec::new(),
                    expansion: Vec::new(),
                    inputs: Vec::new(),
                    outputs: Vec::new(),
                },
            ));
            cur_cost = 0;
        }
    }
    if !cur.gates.is_empty() {
        regions.push(cur);
    }

    // Cut refinement: for every pseudo-input of every region, probe its
    // unexpanded fanin cone, *terminating* at primary inputs and at the
    // region's other pseudo-inputs. If the whole cone fits inside the
    // remaining `expand_cost` budget the region recomposes it locally:
    // the recomposed logic is then an exact function of genuinely
    // independent primary inputs and of the surviving cut variables, so
    // short-range correlation behind the cut — complementary
    // inverter/buffer copies, sum/carry macros, reconvergent fanout —
    // is recovered exactly. A cone that does not fit is left alone: the
    // cut stays exactly where packing put it, never at an arbitrary
    // mid-cone net whose correlation with its neighbours might be worse
    // than the original cut net's.
    if options.expand_cost > 0 && regions.len() > 1 {
        let mut driver_gate = vec![u32::MAX; n_nets];
        for (idx, gate) in compiled.gates().iter().enumerate() {
            driver_gate[gate.output.0] = idx as u32;
        }
        let mut topo_pos = vec![0u32; n_gates];
        for (i, &g) in compiled.order().iter().enumerate() {
            topo_pos[g.0] = i as u32;
        }
        let mut expanded_stamp = vec![NO_REGION; n_gates];
        let mut candidate_stamp = vec![NO_REGION; n_nets];
        let mut frontier_stamp = vec![NO_REGION; n_nets];
        let mut probe_stamp = vec![0u32; n_gates];
        let mut probe_id = 0u32;
        let mut stack: Vec<NetId> = Vec::new();
        let mut collected: Vec<u32> = Vec::new();
        let mut terminals: Vec<NetId> = Vec::new();
        let mut region_pis: Vec<NetId> = Vec::new();
        for (rid, region) in regions.iter_mut().enumerate() {
            let rid = rid as u32;
            let mut budget = options.expand_cost;
            let mut expansion: Vec<GateId> = Vec::new();
            let inputs = std::mem::take(&mut region.inputs);
            for net in &inputs {
                candidate_stamp[net.0] = rid;
            }
            region_pis.clear();
            for &cut in &inputs {
                let d0 = driver_gate[cut.0];
                if d0 == u32::MAX || expanded_stamp[d0 as usize] == rid {
                    continue; // a primary input, or already recomposed
                }
                // Probe the full cone behind `cut`, stopping at primary
                // inputs, at the region's other pseudo-inputs, and at
                // gates already committed for this region.
                probe_id += 1;
                let mut cost = 0usize;
                let mut fits = true;
                stack.clear();
                collected.clear();
                terminals.clear();
                stack.push(cut);
                while let Some(net) = stack.pop() {
                    let d = driver_gate[net.0];
                    if d == u32::MAX {
                        terminals.push(net);
                        continue;
                    }
                    let d = d as usize;
                    if expanded_stamp[d] == rid || probe_stamp[d] == probe_id {
                        continue;
                    }
                    probe_stamp[d] = probe_id;
                    cost += gate_cost(&compiled.gates()[d]);
                    if cost > budget {
                        fits = false;
                        break;
                    }
                    collected.push(d as u32);
                    for input in compiled.inputs(&compiled.gates()[d]) {
                        stack.push(*input);
                    }
                }
                if fits && !collected.is_empty() {
                    budget -= cost;
                    for &d in &collected {
                        expanded_stamp[d as usize] = rid;
                        expansion.push(GateId(d as usize));
                    }
                    for &t in &terminals {
                        // Newly reached primary inputs join the frontier;
                        // cut-input terminals are already in `inputs`.
                        if candidate_stamp[t.0] != rid && frontier_stamp[t.0] != rid {
                            frontier_stamp[t.0] = rid;
                            region_pis.push(t);
                        }
                    }
                }
            }
            // Depth-1 absorb: a pseudo-input whose driver reads only
            // nets already available locally (surviving cut variables,
            // reached primary inputs, or recomposed outputs) is itself
            // recomposed — one gate at a time, repeated until a fixed
            // point. This recovers complementary pairs exactly: when a
            // net and its inverted or buffered copy both cross the cut,
            // the copy becomes a local function of the original variable
            // instead of a second, spuriously independent variable.
            // Unlike deep recomposition *through* cut variables (which
            // measurably amplifies error by re-deriving logic from
            // correlated variables), a single absorbed gate is exactly
            // equivalent to packing having placed it in this region.
            let mut changed = true;
            while changed && budget > 0 {
                changed = false;
                for &cut in &inputs {
                    let d = driver_gate[cut.0];
                    if d == u32::MAX || expanded_stamp[d as usize] == rid {
                        continue;
                    }
                    let gate = &compiled.gates()[d as usize];
                    let cost = gate_cost(gate);
                    if cost > budget {
                        continue;
                    }
                    let absorbable = compiled.inputs(gate).iter().all(|&i| {
                        let di = driver_gate[i.0];
                        // Locally available: a primary input (added to
                        // the frontier below), another pseudo-input
                        // variable, or an already-recomposed output.
                        di == u32::MAX
                            || candidate_stamp[i.0] == rid
                            || expanded_stamp[di as usize] == rid
                    });
                    if absorbable {
                        expanded_stamp[d as usize] = rid;
                        budget -= cost;
                        expansion.push(GateId(d as usize));
                        for &i in compiled.inputs(gate) {
                            if driver_gate[i.0] == u32::MAX
                                && candidate_stamp[i.0] != rid
                                && frontier_stamp[i.0] != rid
                            {
                                frontier_stamp[i.0] = rid;
                                region_pis.push(i);
                            }
                        }
                        changed = true;
                    }
                }
            }
            // The surviving frontier: original pseudo-inputs whose driver
            // was not recomposed locally, plus every primary input the
            // committed cones reached.
            let mut frontier: Vec<NetId> = Vec::new();
            for &net in &inputs {
                let d = driver_gate[net.0];
                if d == u32::MAX || expanded_stamp[d as usize] != rid {
                    frontier.push(net);
                }
            }
            frontier.extend(region_pis.iter().copied());
            expansion.sort_unstable_by_key(|g| topo_pos[g.0]);
            region.expansion = expansion;
            region.inputs = frontier;
        }
    }

    // Dependency edges and cut nets, from each region's input list.
    let n_regions = regions.len();
    let mut dependencies: Vec<Vec<u32>> = vec![Vec::new(); n_regions];
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n_regions];
    let mut cut_nets: Vec<NetId> = Vec::new();
    for (rid, region) in regions.iter().enumerate() {
        for net in &region.inputs {
            let producer = driver_region[net.0];
            if producer != NO_REGION {
                dependencies[rid].push(producer);
                cut_nets.push(*net);
            }
        }
        dependencies[rid].sort_unstable();
        dependencies[rid].dedup();
        for &producer in &dependencies[rid] {
            dependents[producer as usize].push(rid as u32);
        }
    }
    cut_nets.sort_unstable();
    cut_nets.dedup();

    Partition {
        regions,
        region_of_gate,
        dependencies,
        dependents,
        cut_nets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use tr_gatelib::Library;

    fn compiled(circuit: &crate::Circuit, lib: &Library) -> CompiledCircuit {
        CompiledCircuit::compile(circuit, lib).expect("valid circuit")
    }

    /// Structural sanity: every gate in exactly one region, regions
    /// topologically sorted, inputs external and deduplicated.
    fn check_invariants(p: &Partition, cc: &CompiledCircuit) {
        let mut seen_gate = vec![false; cc.gates().len()];
        for (rid, region) in p.regions().iter().enumerate() {
            assert!(!region.gates.is_empty(), "no empty regions");
            assert_eq!(region.gates.len(), region.outputs.len());
            for (&gid, &out) in region.gates.iter().zip(&region.outputs) {
                assert!(!seen_gate[gid.0], "gate in two regions");
                seen_gate[gid.0] = true;
                assert_eq!(p.region_of(gid), rid);
                assert_eq!(cc.gates()[gid.0].output, out);
            }
            let mut inputs = region.inputs.clone();
            inputs.sort_unstable();
            inputs.dedup();
            assert_eq!(inputs.len(), region.inputs.len(), "inputs deduplicated");
            // Every external input is a PI or produced by an earlier region.
            for net in &region.inputs {
                assert!(
                    !region.outputs.contains(net),
                    "region input produced internally"
                );
            }
            for &dep in p.dependencies(rid) {
                assert!((dep as usize) < rid, "regions topologically sorted");
            }
            // Expansion gates belong to earlier regions, and the
            // expansion is fanin-closed up to the frontier.
            let mut local: std::collections::HashSet<crate::NetId> =
                region.inputs.iter().copied().collect();
            for &g in &region.expansion {
                assert!(
                    p.region_of(g) < rid,
                    "expansion reaches earlier regions only"
                );
                for net in cc.inputs(&cc.gates()[g.0]) {
                    assert!(local.contains(net), "expansion input not local");
                }
                local.insert(cc.gates()[g.0].output);
            }
            for (&gid, _) in region.gates.iter().zip(&region.outputs) {
                for net in cc.inputs(&cc.gates()[gid.0]) {
                    assert!(
                        local.contains(net) || region.outputs.contains(net),
                        "region gate input not local"
                    );
                }
            }
        }
        assert!(seen_gate.iter().all(|&s| s), "every gate assigned");
    }

    #[test]
    fn single_region_covers_everything_with_zero_cuts() {
        let lib = Library::standard();
        let cc = compiled(&generators::array_multiplier(4, &lib), &lib);
        let p = partition(&cc, &PartitionOptions::single_region());
        check_invariants(&p, &cc);
        assert_eq!(p.regions().len(), 1);
        assert!(p.cut_nets().is_empty());
        assert_eq!(p.approx_fraction(&cc), 0.0, "no cuts, no approximation");
    }

    #[test]
    fn every_net_cut_gives_one_gate_per_region() {
        let lib = Library::standard();
        let cc = compiled(&generators::ripple_carry_adder(4, &lib), &lib);
        let p = partition(&cc, &PartitionOptions::every_net_cut());
        check_invariants(&p, &cc);
        assert_eq!(p.regions().len(), cc.gates().len());
        assert!(p.regions().iter().all(|r| r.gates.len() == 1));
    }

    #[test]
    fn default_options_bound_width_and_stay_deterministic() {
        let lib = Library::standard();
        let cc = compiled(&generators::array_multiplier(8, &lib), &lib);
        // Width is a *raw-cut* cap; disable refinement to observe it
        // (the refined frontier deliberately widens past the cut).
        let opts = PartitionOptions {
            expand_cost: 0,
            ..PartitionOptions::default()
        };
        let p = partition(&cc, &opts);
        check_invariants(&p, &cc);
        assert!(p.regions().len() > 1, "mult8 does not fit one region");
        for region in p.regions() {
            assert!(region.expansion.is_empty(), "refinement disabled");
            // The width cap may only be exceeded by a region whose very
            // first gate already reads more nets than the cap.
            assert!(
                region.inputs.len() <= opts.max_region_inputs || region.gates.len() == 1,
                "cut width respected"
            );
        }
        assert_eq!(partition(&cc, &opts), p, "deterministic");
        // Refinement on: invariants still hold, and the multiplier's
        // regions actually reach back past their cuts.
        let refined = partition(&cc, &PartitionOptions::default());
        check_invariants(&refined, &cc);
        assert!(
            refined.regions().iter().any(|r| !r.expansion.is_empty()),
            "refinement expands something"
        );
        assert_eq!(partition(&cc, &PartitionOptions::default()), refined);
    }

    #[test]
    fn tree_partition_is_provably_exact() {
        // A genuine cell-level tree (every net read exactly once): any
        // cut yields disjoint supports, so the whole partition certifies
        // exact. Built inline — the mapped generator circuits expand
        // XOR into NAND macros with internal fanout, which is exactly
        // the reconvergence this test must exclude.
        let lib = Library::standard();
        let mut c = crate::Circuit::new("nand_tree");
        let mut layer: Vec<crate::NetId> = (0..32).map(|i| c.add_input(format!("x{i}"))).collect();
        let mut level = 0;
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .enumerate()
                .map(|(i, pair)| {
                    let (_, out) = c.add_gate(
                        tr_gatelib::CellKind::Nand(2),
                        pair.to_vec(),
                        format!("n{level}_{i}"),
                    );
                    out
                })
                .collect();
            level += 1;
        }
        c.mark_output(layer[0]);
        let cc = compiled(&c, &lib);
        let opts = PartitionOptions {
            max_region_cost: 16,
            max_region_inputs: 8,
            cut_fanout_threshold: 8,
            expand_cost: 16,
        };
        let p = partition(&cc, &opts);
        check_invariants(&p, &cc);
        assert!(p.regions().len() > 1);
        assert_eq!(p.approx_fraction(&cc), 0.0);
    }

    #[test]
    fn reconvergent_cut_reports_approximate_nets() {
        // Cutting inside a multiplier severs reconvergent paths: some
        // regions must read inputs with overlapping PI supports.
        let lib = Library::standard();
        let cc = compiled(&generators::array_multiplier(8, &lib), &lib);
        let p = partition(&cc, &PartitionOptions::default());
        let fraction = p.approx_fraction(&cc);
        assert!(fraction > 0.0, "multiplier cuts cannot all be exact");
        assert!(fraction <= 1.0);
    }
}
