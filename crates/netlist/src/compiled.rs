//! A library-resolved, flat view of a [`Circuit`] for hot evaluation loops.
//!
//! The plain [`Circuit`] stores a [`CellKind`] per gate, which forces every
//! consumer (power model, timing model, optimizer) to re-resolve the cell —
//! a `HashMap` probe that hashes a `CellKind` — for every gate visit, and
//! often for every *configuration* scored within a gate. [`CompiledCircuit`]
//! performs that resolution exactly once: each gate becomes a
//! [`ResolvedGate`] carrying its dense [`CellId`], arity and configuration
//! count, with all input nets flattened into one shared slice. The
//! optimizer's Fig. 3 inner loop then runs on plain array indexing.
//!
//! A compiled view is a snapshot: it captures the circuit's structure and
//! the per-gate configurations *at compile time*. Reordering optimizers
//! only rewrite configurations on their own output circuit, so the
//! structural part (cells, nets, topological order) never goes stale.

use crate::circuit::{Circuit, CircuitError, GateId, NetId};
use tr_gatelib::{CellId, Library};

/// One gate of a [`CompiledCircuit`]: everything the per-gate evaluation
/// loops need, resolved to dense indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedGate {
    /// Interned cell identity (index into the library's cell list).
    pub cell: CellId,
    /// Number of inputs of the cell.
    pub arity: u32,
    /// Number of transistor-reordering configurations of the cell.
    pub n_configs: u32,
    /// Configuration selected in the source circuit at compile time.
    pub config: u32,
    /// Start of this gate's inputs in `CompiledCircuit`'s flat input list.
    pub inputs_start: u32,
    /// The net this gate drives.
    pub output: NetId,
}

/// A [`Circuit`] with every cell reference resolved against a [`Library`]
/// and all per-gate data flattened for cache-friendly traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledCircuit {
    gates: Vec<ResolvedGate>,
    inputs_flat: Vec<NetId>,
    order: Vec<GateId>,
    net_count: usize,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
}

impl CompiledCircuit {
    /// Resolves every gate of `circuit` against `library`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownCell`] for an unmapped cell,
    /// [`CircuitError::ArityMismatch`] / [`CircuitError::BadConfiguration`]
    /// for malformed gates, and [`CircuitError::Cycle`] if the netlist is
    /// cyclic.
    pub fn compile(circuit: &Circuit, library: &Library) -> Result<Self, CircuitError> {
        let order = circuit.topological_order()?;
        let mut gates = Vec::with_capacity(circuit.gates().len());
        let mut inputs_flat = Vec::new();
        for (i, gate) in circuit.gates().iter().enumerate() {
            let id = library
                .cell_id(&gate.cell)
                .ok_or(CircuitError::UnknownCell(GateId(i)))?;
            let cell = library.cell_by_id(id);
            if gate.inputs.len() != cell.arity() {
                return Err(CircuitError::ArityMismatch(GateId(i)));
            }
            let n_configs = cell.configurations().len();
            if gate.config >= n_configs {
                return Err(CircuitError::BadConfiguration(GateId(i)));
            }
            let inputs_start = u32::try_from(inputs_flat.len()).expect("inputs fit in u32");
            inputs_flat.extend_from_slice(&gate.inputs);
            gates.push(ResolvedGate {
                cell: id,
                arity: cell.arity() as u32,
                n_configs: n_configs as u32,
                config: gate.config as u32,
                inputs_start,
                output: gate.output,
            });
        }
        Ok(CompiledCircuit {
            gates,
            inputs_flat,
            order,
            net_count: circuit.net_count(),
            primary_inputs: circuit.primary_inputs().to_vec(),
            primary_outputs: circuit.primary_outputs().to_vec(),
        })
    }

    /// The resolved gates, indexed like [`Circuit::gates`].
    pub fn gates(&self) -> &[ResolvedGate] {
        &self.gates
    }

    /// The input nets of a resolved gate.
    pub fn inputs(&self, gate: &ResolvedGate) -> &[NetId] {
        let start = gate.inputs_start as usize;
        &self.inputs_flat[start..start + gate.arity as usize]
    }

    /// Gates in dependency order (precomputed at compile time).
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Number of nets in the source circuit.
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Primary-input nets, in declaration order (snapshotted at compile
    /// time, like the rest of the structural view).
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary-output nets, in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Evaluates the circuit on a primary-input assignment using only
    /// interned ids — the by-id counterpart of [`Circuit::evaluate`],
    /// with no per-gate cell hashing. Returns one value per net.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count or
    /// `library` is not the library this view was compiled against.
    pub fn evaluate(&self, library: &Library, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; self.net_count];
        self.evaluate_into(library, inputs, &mut values);
        values
    }

    /// [`CompiledCircuit::evaluate`] into a caller-provided buffer of
    /// `net_count` values — the zero-allocation form the Monte Carlo
    /// estimator runs per time step.
    ///
    /// # Panics
    ///
    /// As [`CompiledCircuit::evaluate`], plus if `values.len()` differs
    /// from the net count.
    pub fn evaluate_into(&self, library: &Library, inputs: &[bool], values: &mut [bool]) {
        assert_eq!(
            inputs.len(),
            self.primary_inputs.len(),
            "one value per primary input"
        );
        assert_eq!(values.len(), self.net_count, "one value per net");
        for (i, &net) in self.primary_inputs.iter().enumerate() {
            values[net.0] = inputs[i];
        }
        let mut assignment = [false; tr_boolean::MAX_VARS];
        for &gid in &self.order {
            let gate = &self.gates[gid.0];
            let nets = self.inputs(gate);
            for (slot, net) in assignment.iter_mut().zip(nets) {
                *slot = values[net.0];
            }
            values[gate.output.0] = library
                .cell_by_id(gate.cell)
                .function()
                .eval(&assignment[..nets.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use tr_gatelib::CellKind;

    #[test]
    fn compile_resolves_every_gate() {
        let lib = Library::standard();
        let c = generators::ripple_carry_adder(4, &lib);
        let cc = CompiledCircuit::compile(&c, &lib).unwrap();
        assert_eq!(cc.gates().len(), c.gates().len());
        assert_eq!(cc.net_count(), c.net_count());
        assert_eq!(cc.order(), c.topological_order().unwrap());
        for (rg, g) in cc.gates().iter().zip(c.gates()) {
            let cell = lib.cell_by_id(rg.cell);
            assert_eq!(cell.kind(), &g.cell);
            assert_eq!(rg.arity as usize, cell.arity());
            assert_eq!(rg.n_configs as usize, cell.configurations().len());
            assert_eq!(rg.config as usize, g.config);
            assert_eq!(cc.inputs(rg), &g.inputs[..]);
            assert_eq!(rg.output, g.output);
        }
    }

    #[test]
    fn compile_rejects_unknown_cells() {
        let lib = Library::standard();
        let slim = Library::from_kinds([CellKind::Inv, CellKind::Nand(2)]);
        let mut c = Circuit::new("x");
        let a = c.add_input("a");
        let (_, y) = c.add_gate(CellKind::Nor(3), vec![a, a, a], "y");
        c.mark_output(y);
        assert!(CompiledCircuit::compile(&c, &lib).is_ok());
        assert_eq!(
            CompiledCircuit::compile(&c, &slim),
            Err(CircuitError::UnknownCell(GateId(0)))
        );
    }

    #[test]
    fn compiled_evaluate_matches_plain_circuit() {
        let lib = Library::standard();
        let c = generators::ripple_carry_adder(3, &lib);
        let cc = CompiledCircuit::compile(&c, &lib).unwrap();
        assert_eq!(cc.primary_inputs(), c.primary_inputs());
        assert_eq!(cc.primary_outputs(), c.primary_outputs());
        for m in 0..(1usize << 7) {
            let v: Vec<bool> = (0..7).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(
                cc.evaluate(&lib, &v),
                c.evaluate(&lib, &v),
                "inputs {m:07b}"
            );
        }
    }

    #[test]
    fn compile_rejects_bad_configs() {
        let lib = Library::standard();
        let mut c = Circuit::new("x");
        let a = c.add_input("a");
        let (g, y) = c.add_gate(CellKind::Inv, vec![a], "y");
        c.mark_output(y);
        c.set_config(g, 9);
        assert_eq!(
            CompiledCircuit::compile(&c, &lib),
            Err(CircuitError::BadConfiguration(g))
        );
    }
}
