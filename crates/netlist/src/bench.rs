//! Parser and writer for the ISCAS-style `.bench` netlist format.
//!
//! The format the classic combinational benchmarks circulate in:
//!
//! ```text
//! # c17
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! Only combinational operators are supported (`DFF` is rejected: the
//! paper optimizes combinational logic; latch the inputs per Scenario B
//! instead).

use crate::generic::{GenericCircuit, GenericOp};
use std::fmt::Write as _;

/// Parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a `.bench` document into a [`GenericCircuit`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed lines, unknown operators
/// (including sequential elements), or empty operand lists.
pub fn parse(name: &str, text: &str) -> Result<GenericCircuit, ParseError> {
    let mut circuit = GenericCircuit::new(name);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = strip_call(line, "INPUT") {
            circuit.add_input(rest.trim());
            continue;
        }
        if let Some(rest) = strip_call(line, "OUTPUT") {
            circuit.add_output(rest.trim());
            continue;
        }
        // `out = OP(in1, in2, …)`
        let (lhs, rhs) = line.split_once('=').ok_or_else(|| ParseError {
            line: lineno,
            message: format!("expected `signal = OP(...)`, got `{line}`"),
        })?;
        let lhs = lhs.trim();
        let rhs = rhs.trim();
        let open = rhs.find('(').ok_or_else(|| ParseError {
            line: lineno,
            message: "missing `(` in gate definition".to_string(),
        })?;
        if !rhs.ends_with(')') {
            return Err(ParseError {
                line: lineno,
                message: "missing `)` in gate definition".to_string(),
            });
        }
        let opname = rhs[..open].trim();
        let op = GenericOp::parse(opname).ok_or_else(|| ParseError {
            line: lineno,
            message: format!("unsupported operator `{opname}` (combinational only)"),
        })?;
        let args: Vec<&str> = rhs[open + 1..rhs.len() - 1]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if args.is_empty() {
            return Err(ParseError {
                line: lineno,
                message: "gate with no operands".to_string(),
            });
        }
        if matches!(op, GenericOp::Not | GenericOp::Buff) && args.len() != 1 {
            return Err(ParseError {
                line: lineno,
                message: format!("{op} takes exactly one operand"),
            });
        }
        circuit.add_gate(lhs, op, &args);
    }
    Ok(circuit)
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let upper = line.to_ascii_uppercase();
    if upper.starts_with(keyword) {
        let rest = line[keyword.len()..].trim();
        if let Some(inner) = rest.strip_prefix('(') {
            return inner.strip_suffix(')');
        }
    }
    None
}

/// Serializes a [`GenericCircuit`] back to `.bench` text.
pub fn write(circuit: &GenericCircuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    for &i in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.signal_name(i));
    }
    for &o in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.signal_name(o));
    }
    for g in circuit.gates() {
        let args: Vec<&str> = g.inputs.iter().map(|&i| circuit.signal_name(i)).collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            circuit.signal_name(g.output),
            g.op,
            args.join(", ")
        );
    }
    out
}

/// The ISCAS-85 c17 benchmark — the classic six-NAND teaching circuit,
/// embedded for tests and examples.
pub fn c17() -> GenericCircuit {
    parse(
        "c17",
        "# c17 ISCAS-85\n\
         INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\n\
         OUTPUT(22)\nOUTPUT(23)\n\
         10 = NAND(1, 3)\n\
         11 = NAND(3, 6)\n\
         16 = NAND(2, 11)\n\
         19 = NAND(11, 7)\n\
         22 = NAND(10, 16)\n\
         23 = NAND(16, 19)\n",
    )
    .expect("embedded c17 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_c17() {
        let c = c17();
        assert_eq!(c.inputs().len(), 5);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.gates().len(), 6);
    }

    #[test]
    fn c17_functional_spot_checks() {
        let c = c17();
        // All zeros: every NAND of zeros is 1 → 22 = NAND(1,1) = 0…
        // compute: 10 = 1, 11 = 1, 16 = NAND(0,1) = 1, 19 = NAND(1,0)=1,
        // 22 = NAND(1,1)=0, 23 = NAND(1,1)=0.
        let out = c.evaluate_outputs(&[false; 5]);
        assert_eq!(out, vec![false, false]);
    }

    #[test]
    fn roundtrip_through_writer() {
        let c = c17();
        let text = write(&c);
        let c2 = parse("c17", &text).unwrap();
        assert_eq!(c.inputs().len(), c2.inputs().len());
        assert_eq!(c.gates().len(), c2.gates().len());
        for m in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(c.evaluate_outputs(&v), c2.evaluate_outputs(&v));
        }
    }

    #[test]
    fn rejects_sequential() {
        let err = parse("seq", "INPUT(a)\nq = DFF(a)\n").unwrap_err();
        assert!(err.message.contains("unsupported operator"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("bad", "x NAND(a, b)\n").is_err());
        assert!(parse("bad", "x = NAND a, b\n").is_err());
        assert!(parse("bad", "x = NAND()\n").is_err());
        assert!(parse("bad", "x = NOT(a, b)\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let c = parse("t", "# hello\n\nINPUT(a)\n# more\nOUTPUT(a)\n").unwrap();
        assert_eq!(c.inputs().len(), 1);
    }
}
