//! Ordered series-parallel trees and gate topologies.

use std::fmt;

/// An ordered series-parallel switch network.
///
/// Leaves are transistors identified by the cell input that drives their
/// gate terminal. `Series` children are ordered: **index 0 is the block
/// closest to the output node** (for both pull-up and pull-down networks),
/// increasing indices move toward the supply rail. `Parallel` children are
/// electrically symmetric, so their order carries no meaning; constructors
/// canonicalize it.
///
/// Trees are kept in *normal form*: no nested `Series` directly inside
/// `Series`, no `Parallel` directly inside `Parallel`, and no one-child
/// composites. All constructors normalize.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpTree {
    /// One transistor, driven by the given input index.
    Leaf(usize),
    /// Blocks connected in series (ordered, output side first).
    Series(Vec<SpTree>),
    /// Blocks connected in parallel (canonically sorted).
    Parallel(Vec<SpTree>),
}

impl SpTree {
    /// A single transistor driven by input `input`.
    pub fn leaf(input: usize) -> Self {
        SpTree::Leaf(input)
    }

    /// Series composition (normalizing).
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty.
    pub fn series(children: Vec<SpTree>) -> Self {
        assert!(!children.is_empty(), "series needs at least one child");
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                SpTree::Series(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            SpTree::Series(flat)
        }
    }

    /// Parallel composition (normalizing and canonically sorting).
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty.
    pub fn parallel(children: Vec<SpTree>) -> Self {
        assert!(!children.is_empty(), "parallel needs at least one child");
        let mut flat = Vec::with_capacity(children.len());
        for c in children {
            match c {
                SpTree::Parallel(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            return flat.pop().expect("len checked");
        }
        flat.sort();
        SpTree::Parallel(flat)
    }

    /// The structural dual: series ↔ parallel, leaves unchanged.
    ///
    /// The pull-up network of a fully complementary static CMOS gate is the
    /// dual of its pull-down network (with P instead of N devices), so cell
    /// definitions only need to specify the pull-down.
    #[must_use]
    pub fn dual(&self) -> SpTree {
        match self {
            SpTree::Leaf(i) => SpTree::Leaf(*i),
            SpTree::Series(cs) => SpTree::parallel(cs.iter().map(SpTree::dual).collect()),
            SpTree::Parallel(cs) => SpTree::series(cs.iter().map(SpTree::dual).collect()),
        }
    }

    /// Number of transistors (leaves).
    pub fn transistor_count(&self) -> usize {
        match self {
            SpTree::Leaf(_) => 1,
            SpTree::Series(cs) | SpTree::Parallel(cs) => {
                cs.iter().map(SpTree::transistor_count).sum()
            }
        }
    }

    /// Inputs driving this network, in first-occurrence order.
    pub fn inputs(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_inputs(&mut out);
        out
    }

    fn collect_inputs(&self, out: &mut Vec<usize>) {
        match self {
            SpTree::Leaf(i) => {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
            SpTree::Series(cs) | SpTree::Parallel(cs) => {
                for c in cs {
                    c.collect_inputs(out);
                }
            }
        }
    }

    /// Number of internal circuit nodes this network creates: every series
    /// composition of `k` blocks contributes `k − 1` junction nodes.
    pub fn internal_node_count(&self) -> usize {
        match self {
            SpTree::Leaf(_) => 0,
            SpTree::Series(cs) => {
                (cs.len() - 1) + cs.iter().map(SpTree::internal_node_count).sum::<usize>()
            }
            SpTree::Parallel(cs) => cs.iter().map(SpTree::internal_node_count).sum(),
        }
    }

    /// Number of distinct transistor orderings of this network: the product
    /// over all series compositions of the factorial of their block count
    /// (§4.3; cross-checks the pivot enumeration and the paper's Table 2).
    pub fn ordering_count(&self) -> u64 {
        fn factorial(k: u64) -> u64 {
            (1..=k).product()
        }
        match self {
            SpTree::Leaf(_) => 1,
            SpTree::Series(cs) => {
                factorial(cs.len() as u64) * cs.iter().map(SpTree::ordering_count).product::<u64>()
            }
            SpTree::Parallel(cs) => cs.iter().map(SpTree::ordering_count).product(),
        }
    }

    /// The maximum number of transistors in series on any path through this
    /// network (stack height; determines worst-case gate resistance).
    pub fn stack_height(&self) -> usize {
        match self {
            SpTree::Leaf(_) => 1,
            SpTree::Series(cs) => cs.iter().map(SpTree::stack_height).sum(),
            SpTree::Parallel(cs) => cs.iter().map(SpTree::stack_height).max().unwrap_or(0),
        }
    }

    /// Renders the network with input names (series = `·`, parallel = `+`
    /// grouping of *switches*, not of the logic function).
    ///
    /// # Panics
    ///
    /// Panics if a leaf's input has no name.
    pub fn render(&self, names: &[&str]) -> String {
        match self {
            SpTree::Leaf(i) => names[*i].to_string(),
            SpTree::Series(cs) => cs
                .iter()
                .map(|c| match c {
                    SpTree::Parallel(_) => format!("({})", c.render(names)),
                    _ => c.render(names),
                })
                .collect::<Vec<_>>()
                .join("-"),
            SpTree::Parallel(cs) => cs
                .iter()
                .map(|c| c.render(names))
                .collect::<Vec<_>>()
                .join(" | "),
        }
    }
}

impl fmt::Display for SpTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.inputs().into_iter().max().map_or(0, |m| m + 1);
        let names: Vec<String> = (0..max).map(|i| format!("x{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        write!(f, "{}", self.render(&refs))
    }
}

/// One *configuration* of a gate: a concrete ordering of the pull-down and
/// pull-up networks.
///
/// The pull-down carries N transistors (conducting when the input is 1),
/// the pull-up P transistors (conducting when the input is 0). For the
/// fully complementary cells of the paper's library the pull-up is the
/// structural dual of the pull-down, but the two are reordered
/// *independently* — that is exactly the extra freedom transistor
/// reordering has over plain input reordering.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Topology {
    /// Pull-down (N) network between the output node and `Vss`.
    pub pulldown: SpTree,
    /// Pull-up (P) network between `Vdd` and the output node.
    pub pullup: SpTree,
}

impl Topology {
    /// Builds a fully complementary topology from the pull-down network:
    /// the pull-up is its structural dual.
    pub fn from_pulldown(pulldown: SpTree) -> Self {
        let pullup = pulldown.dual();
        Topology { pulldown, pullup }
    }

    /// Builds a topology from explicit networks.
    ///
    /// The networks must drive the same input set (a static CMOS gate needs
    /// every input on both sides); this is validated.
    ///
    /// # Panics
    ///
    /// Panics if the input sets differ.
    pub fn new(pulldown: SpTree, pullup: SpTree) -> Self {
        let mut a = pulldown.inputs();
        let mut b = pullup.inputs();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(
            a, b,
            "pull-down and pull-up must be driven by the same inputs"
        );
        Topology { pulldown, pullup }
    }

    /// Total transistor count (`2q` in the paper's notation).
    pub fn transistor_count(&self) -> usize {
        self.pulldown.transistor_count() + self.pullup.transistor_count()
    }

    /// Total internal nodes contributed by both networks.
    pub fn internal_node_count(&self) -> usize {
        self.pulldown.internal_node_count() + self.pullup.internal_node_count()
    }

    /// Total number of distinct configurations reachable by reordering.
    pub fn configuration_count(&self) -> u64 {
        self.pulldown.ordering_count() * self.pullup.ordering_count()
    }

    /// Inputs of the gate in first-occurrence order of the pull-down.
    pub fn inputs(&self) -> Vec<usize> {
        self.pulldown.inputs()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N:[{}] P:[{}]", self.pulldown, self.pullup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oai21_pulldown() -> SpTree {
        SpTree::series(vec![
            SpTree::parallel(vec![SpTree::leaf(0), SpTree::leaf(1)]),
            SpTree::leaf(2),
        ])
    }

    #[test]
    fn normalization_flattens() {
        let t = SpTree::series(vec![
            SpTree::leaf(0),
            SpTree::series(vec![SpTree::leaf(1), SpTree::leaf(2)]),
        ]);
        assert_eq!(
            t,
            SpTree::Series(vec![SpTree::Leaf(0), SpTree::Leaf(1), SpTree::Leaf(2)])
        );
        let p = SpTree::parallel(vec![
            SpTree::leaf(2),
            SpTree::parallel(vec![SpTree::leaf(0), SpTree::leaf(1)]),
        ]);
        assert_eq!(
            p,
            SpTree::Parallel(vec![SpTree::Leaf(0), SpTree::Leaf(1), SpTree::Leaf(2)])
        );
    }

    #[test]
    fn singleton_composites_collapse() {
        assert_eq!(SpTree::series(vec![SpTree::leaf(3)]), SpTree::Leaf(3));
        assert_eq!(SpTree::parallel(vec![SpTree::leaf(3)]), SpTree::Leaf(3));
    }

    #[test]
    fn parallel_is_canonical() {
        let a = SpTree::parallel(vec![SpTree::leaf(1), SpTree::leaf(0)]);
        let b = SpTree::parallel(vec![SpTree::leaf(0), SpTree::leaf(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn dual_swaps_series_and_parallel() {
        let chain = SpTree::series(vec![SpTree::leaf(0), SpTree::leaf(1)]);
        let pair = SpTree::parallel(vec![SpTree::leaf(0), SpTree::leaf(1)]);
        assert_eq!(chain.dual(), pair);
        assert_eq!(pair.dual(), chain);
        // Dual preserves sizes and swaps the ordering freedom.
        let t = oai21_pulldown();
        let d = t.dual();
        assert_eq!(d.transistor_count(), t.transistor_count());
        assert_eq!(d.ordering_count(), t.ordering_count());
        assert_eq!(d.dual().ordering_count(), t.ordering_count());
    }

    #[test]
    fn oai21_counts() {
        let topo = Topology::from_pulldown(oai21_pulldown());
        assert_eq!(topo.transistor_count(), 6);
        // Pull-down: 1 junction; pull-up: dual = (ā1·ā2) ∥ b̄ → 1 junction.
        assert_eq!(topo.internal_node_count(), 2);
        // 2 pull-down orders × 2 pull-up orders = the 4 configs of Fig. 1a.
        assert_eq!(topo.configuration_count(), 4);
    }

    #[test]
    fn nand3_counts() {
        let pd = SpTree::series(vec![SpTree::leaf(0), SpTree::leaf(1), SpTree::leaf(2)]);
        let topo = Topology::from_pulldown(pd);
        assert_eq!(topo.configuration_count(), 6); // 3! × 1
        assert_eq!(topo.internal_node_count(), 2);
        assert_eq!(topo.pulldown.stack_height(), 3);
        assert_eq!(topo.pullup.stack_height(), 1);
    }

    #[test]
    fn aoi222_counts_match_table2() {
        // Pull-down (ab) + (cd) + (ef): three series pairs in parallel.
        let pd = SpTree::parallel(vec![
            SpTree::series(vec![SpTree::leaf(0), SpTree::leaf(1)]),
            SpTree::series(vec![SpTree::leaf(2), SpTree::leaf(3)]),
            SpTree::series(vec![SpTree::leaf(4), SpTree::leaf(5)]),
        ]);
        let topo = Topology::from_pulldown(pd);
        // Table 2: aoi222 has 48 configurations.
        assert_eq!(topo.configuration_count(), 48);
    }

    #[test]
    fn aoi211_counts_match_table2() {
        // Pull-down ab + c + d.
        let pd = SpTree::parallel(vec![
            SpTree::series(vec![SpTree::leaf(0), SpTree::leaf(1)]),
            SpTree::leaf(2),
            SpTree::leaf(3),
        ]);
        let topo = Topology::from_pulldown(pd);
        // Table 2: aoi211 has 12 configurations.
        assert_eq!(topo.configuration_count(), 12);
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let pd = SpTree::leaf(0);
        let pu = SpTree::leaf(1);
        let result = std::panic::catch_unwind(|| Topology::new(pd, pu));
        assert!(result.is_err());
    }

    #[test]
    fn render_networks() {
        let t = oai21_pulldown();
        assert_eq!(t.render(&["a1", "a2", "b"]), "(a1 | a2)-b");
    }

    #[test]
    fn inputs_first_occurrence_order() {
        let t = SpTree::series(vec![SpTree::leaf(2), SpTree::leaf(0), SpTree::leaf(1)]);
        assert_eq!(t.inputs(), vec![2, 0, 1]);
    }
}
