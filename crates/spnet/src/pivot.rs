//! Exhaustive exploration of gate configurations (paper §4.3, Fig. 4/5).
//!
//! A *pivot* on an internal node swaps the two series blocks adjacent to
//! that node. The paper's `FIND_ALL_REORDERINGS` recursively pivots on
//! every internal node (excluding the node just pivoted, which would undo
//! the move), pruning configurations already visited; the companion
//! technical report \[5\] proves this generates every reordering of a
//! series-parallel gate.
//!
//! We provide the paper's recursive search ([`find_all_reorderings`],
//! with a traced variant for reproducing Fig. 5) *and* an independent
//! worklist closure ([`enumerate_closure`]); tests assert they agree with
//! each other and with the analytic count
//! [`Topology::configuration_count`].

use crate::tree::{SpTree, Topology};
use std::collections::HashSet;

/// Pivots on internal node `node` of the topology, swapping the two series
/// blocks that meet there.
///
/// Internal nodes are numbered like the gate graph builds them: pull-down
/// junctions first, then pull-up junctions; within a network, a series
/// chain's own junctions come before those inside its children
/// (pre-order).
///
/// # Panics
///
/// Panics if `node >= topology.internal_node_count()`.
#[must_use]
pub fn pivot(topology: &Topology, node: usize) -> Topology {
    let pd_nodes = topology.pulldown.internal_node_count();
    let total = pd_nodes + topology.pullup.internal_node_count();
    assert!(node < total, "internal node {node} out of range 0..{total}");
    if node < pd_nodes {
        let mut counter = 0;
        Topology {
            pulldown: pivot_in(&topology.pulldown, node, &mut counter),
            pullup: topology.pullup.clone(),
        }
    } else {
        let mut counter = 0;
        Topology {
            pulldown: topology.pulldown.clone(),
            pullup: pivot_in(&topology.pullup, node - pd_nodes, &mut counter),
        }
    }
}

/// Walks the tree in junction-numbering order and swaps at the target
/// boundary.
///
/// Children of `Parallel` nodes keep their positions: re-sorting them
/// would silently renumber internal nodes between pivots, so node
/// identities (and pivot involutivity) would be lost. Positions were
/// canonicalized when the tree was first built and a swap inside a series
/// chain never requires re-flattening, so constructing the enum variants
/// directly preserves normal form.
fn pivot_in(tree: &SpTree, target: usize, counter: &mut usize) -> SpTree {
    match tree {
        SpTree::Leaf(i) => SpTree::Leaf(*i),
        SpTree::Series(children) => {
            let first = *counter;
            *counter += children.len() - 1;
            let mut new_children: Vec<SpTree> = children
                .iter()
                .map(|c| pivot_in(c, target, counter))
                .collect();
            if target >= first && target < first + children.len() - 1 {
                let i = target - first;
                new_children.swap(i, i + 1);
            }
            SpTree::Series(new_children)
        }
        SpTree::Parallel(children) => SpTree::Parallel(
            children
                .iter()
                .map(|c| pivot_in(c, target, counter))
                .collect(),
        ),
    }
}

/// One step of the exploration, for rendering Fig. 5-style traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Index (into the discovery order) of the configuration pivoted from.
    pub from: usize,
    /// Internal node pivoted on.
    pub node: usize,
    /// Index of the resulting configuration in the discovery order.
    pub to: usize,
    /// Whether the result was new (`true`) or pruned as already visited.
    pub fresh: bool,
}

/// The paper's `FIND_ALL_REORDERINGS` (Fig. 4).
///
/// Returns every configuration reachable by pivoting, in discovery order,
/// starting with the input configuration itself. (The paper's pseudo-code
/// starts from an empty visited set; we seed it with the initial
/// configuration so the identity ordering is reported too — Fig. 5 shows
/// the starting graph among the four results.)
pub fn find_all_reorderings(topology: &Topology) -> Vec<Topology> {
    find_all_reorderings_traced(topology).0
}

/// [`find_all_reorderings`] plus the exploration trace of Fig. 5.
pub fn find_all_reorderings_traced(topology: &Topology) -> (Vec<Topology>, Vec<TraceStep>) {
    let n = topology.internal_node_count();
    let mut order: Vec<Topology> = vec![topology.clone()];
    let mut seen: HashSet<Topology> = HashSet::from([topology.clone()]);
    let mut trace: Vec<TraceStep> = Vec::new();
    for node in 0..n {
        pivot_and_search(topology, 0, node, n, &mut order, &mut seen, &mut trace);
    }
    (order, trace)
}

/// `PIVOT_AND_SEARCH` of Fig. 4: pivot, prune if visited, otherwise record
/// and recurse on every internal node except the one just used.
#[allow(clippy::too_many_arguments)]
fn pivot_and_search(
    at: &Topology,
    at_idx: usize,
    node: usize,
    n: usize,
    order: &mut Vec<Topology>,
    seen: &mut HashSet<Topology>,
    trace: &mut Vec<TraceStep>,
) {
    let next = pivot(at, node);
    if seen.contains(&next) {
        let to = order.iter().position(|t| *t == next).expect("seen ⊆ order");
        trace.push(TraceStep {
            from: at_idx,
            node,
            to,
            fresh: false,
        });
        return;
    }
    seen.insert(next.clone());
    order.push(next.clone());
    let next_idx = order.len() - 1;
    trace.push(TraceStep {
        from: at_idx,
        node,
        to: next_idx,
        fresh: true,
    });
    for other in (0..n).filter(|&i| i != node) {
        pivot_and_search(&next, next_idx, other, n, order, seen, trace);
    }
}

/// Independent enumeration: breadth-first closure applying *every* pivot to
/// *every* discovered configuration. Slower than the paper's pruned search
/// but trivially complete; used as the cross-check oracle.
pub fn enumerate_closure(topology: &Topology) -> Vec<Topology> {
    let n = topology.internal_node_count();
    let mut order: Vec<Topology> = vec![topology.clone()];
    let mut seen: HashSet<Topology> = HashSet::from([topology.clone()]);
    let mut cursor = 0;
    while cursor < order.len() {
        let current = order[cursor].clone();
        for node in 0..n {
            let next = pivot(&current, node);
            if seen.insert(next.clone()) {
                order.push(next);
            }
        }
        cursor += 1;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GateGraph;

    fn oai21() -> Topology {
        Topology::from_pulldown(SpTree::series(vec![
            SpTree::parallel(vec![SpTree::leaf(0), SpTree::leaf(1)]),
            SpTree::leaf(2),
        ]))
    }

    fn nand(k: usize) -> Topology {
        Topology::from_pulldown(SpTree::series((0..k).map(SpTree::leaf).collect()))
    }

    #[test]
    fn pivot_is_involutive() {
        let t = oai21();
        for node in 0..t.internal_node_count() {
            assert_eq!(pivot(&pivot(&t, node), node), t, "node {node}");
        }
    }

    #[test]
    fn figure5_oai21_generates_all_four() {
        // The paper's Fig. 5: starting from graph (C), all four
        // configurations of Fig. 1(a) are generated.
        let (all, trace) = find_all_reorderings_traced(&oai21());
        assert_eq!(all.len(), 4);
        assert!(trace.iter().filter(|s| s.fresh).count() >= 3);
        // All distinct.
        let set: HashSet<&Topology> = all.iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn paper_search_matches_closure_and_analytic_count() {
        for topo in [
            oai21(),
            nand(2),
            nand(3),
            nand(4),
            // aoi221: ab + cd + e
            Topology::from_pulldown(SpTree::parallel(vec![
                SpTree::series(vec![SpTree::leaf(0), SpTree::leaf(1)]),
                SpTree::series(vec![SpTree::leaf(2), SpTree::leaf(3)]),
                SpTree::leaf(4),
            ])),
        ] {
            let paper: HashSet<Topology> = find_all_reorderings(&topo).into_iter().collect();
            let closure: HashSet<Topology> = enumerate_closure(&topo).into_iter().collect();
            assert_eq!(paper, closure, "search strategies disagree for {topo}");
            assert_eq!(
                paper.len() as u64,
                topo.configuration_count(),
                "analytic count disagrees for {topo}"
            );
        }
    }

    #[test]
    fn nand3_generates_six_permutations() {
        let all = find_all_reorderings(&nand(3));
        assert_eq!(all.len(), 6);
        // Every permutation of (0,1,2) appears as the series order.
        let mut orders: Vec<Vec<usize>> = all
            .iter()
            .map(|t| match &t.pulldown {
                SpTree::Series(cs) => cs
                    .iter()
                    .map(|c| match c {
                        SpTree::Leaf(i) => *i,
                        _ => unreachable!("nand pulldown is a chain"),
                    })
                    .collect(),
                _ => unreachable!("nand pulldown is a series"),
            })
            .collect();
        orders.sort();
        assert_eq!(
            orders,
            vec![
                vec![0, 1, 2],
                vec![0, 2, 1],
                vec![1, 0, 2],
                vec![1, 2, 0],
                vec![2, 0, 1],
                vec![2, 1, 0],
            ]
        );
    }

    #[test]
    fn reordering_preserves_logic_function() {
        let topo = oai21();
        let reference = GateGraph::build(&topo, 3).output_function();
        for t in find_all_reorderings(&topo) {
            let y = GateGraph::build(&t, 3).output_function();
            assert_eq!(y, reference, "configuration {t} changed the function");
        }
    }

    #[test]
    fn reordering_preserves_sizes() {
        let topo = oai21();
        for t in find_all_reorderings(&topo) {
            assert_eq!(t.transistor_count(), topo.transistor_count());
            assert_eq!(t.internal_node_count(), topo.internal_node_count());
        }
    }

    #[test]
    fn inverter_has_single_configuration() {
        let inv = Topology::from_pulldown(SpTree::leaf(0));
        assert_eq!(find_all_reorderings(&inv).len(), 1);
        assert_eq!(inv.configuration_count(), 1);
    }

    #[test]
    fn pivot_out_of_range_panics() {
        let t = oai21();
        let n = t.internal_node_count();
        assert!(std::panic::catch_unwind(|| pivot(&t, n)).is_err());
    }
}
