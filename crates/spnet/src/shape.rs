//! Unlabeled topology shapes and library instances (paper §5.1).
//!
//! Two configurations that differ only in *which input drives which
//! transistor* can be realized by wiring one physical layout differently;
//! configurations whose series blocks sit in different stack positions
//! need a different layout. The paper therefore splits each cell into
//! *instances* — `oai21[A]` realizes configurations (A) and (B) of Fig. 1a,
//! `oai21[B]` realizes (C) and (D) — and notes that all instances of a cell
//! have the same area, so optimized circuits pay no area cost.
//!
//! The *shape* of a configuration is its topology with input labels
//! erased; instances are exactly the distinct shapes.

use crate::tree::{SpTree, Topology};

/// An unlabeled series-parallel shape. Series order is significant
/// (stack position matters physically); parallel children are canonically
/// sorted (branch placement does not matter).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Shape {
    /// One transistor.
    Leaf,
    /// Ordered series blocks (output side first).
    Series(Vec<Shape>),
    /// Unordered parallel blocks.
    Parallel(Vec<Shape>),
}

impl Shape {
    /// Erases the labels of a network.
    pub fn of(tree: &SpTree) -> Shape {
        match tree {
            SpTree::Leaf(_) => Shape::Leaf,
            SpTree::Series(cs) => Shape::Series(cs.iter().map(Shape::of).collect()),
            SpTree::Parallel(cs) => {
                let mut shapes: Vec<Shape> = cs.iter().map(Shape::of).collect();
                shapes.sort();
                Shape::Parallel(shapes)
            }
        }
    }

    /// Compact textual form (leaves are `.`): `(.|.)‑.` etc.
    pub fn notation(&self) -> String {
        match self {
            Shape::Leaf => ".".to_string(),
            Shape::Series(cs) => cs
                .iter()
                .map(|c| match c {
                    Shape::Parallel(_) => format!("({})", c.notation()),
                    _ => c.notation(),
                })
                .collect::<Vec<_>>()
                .join("-"),
            Shape::Parallel(cs) => cs.iter().map(Shape::notation).collect::<Vec<_>>().join("|"),
        }
    }
}

/// The unlabeled shape of a full configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TopologyShape {
    /// Pull-down shape.
    pub pulldown: Shape,
    /// Pull-up shape.
    pub pullup: Shape,
}

impl TopologyShape {
    /// Erases the labels of a configuration.
    pub fn of(topology: &Topology) -> TopologyShape {
        TopologyShape {
            pulldown: Shape::of(&topology.pulldown),
            pullup: Shape::of(&topology.pullup),
        }
    }
}

/// One library instance: a physical layout and the configurations it can
/// realize by input wiring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The layout's shape.
    pub shape: TopologyShape,
    /// Indices (into the enumerated configuration list) realizable by this
    /// instance.
    pub configurations: Vec<usize>,
}

/// Partitions configurations into instances by shape.
///
/// Configurations are indexed by their position in `configurations`; the
/// returned instances are sorted by shape so the partition is
/// deterministic, and labeled `[A]`, `[B]`, … in that order by convention.
pub fn instances(configurations: &[Topology]) -> Vec<Instance> {
    let mut buckets: Vec<(TopologyShape, Vec<usize>)> = Vec::new();
    for (idx, topo) in configurations.iter().enumerate() {
        let shape = TopologyShape::of(topo);
        match buckets.iter_mut().find(|(s, _)| *s == shape) {
            Some((_, v)) => v.push(idx),
            None => buckets.push((shape, vec![idx])),
        }
    }
    buckets.sort_by(|a, b| a.0.cmp(&b.0));
    buckets
        .into_iter()
        .map(|(shape, configurations)| Instance {
            shape,
            configurations,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pivot::find_all_reorderings;

    fn oai21() -> Topology {
        Topology::from_pulldown(SpTree::series(vec![
            SpTree::parallel(vec![SpTree::leaf(0), SpTree::leaf(1)]),
            SpTree::leaf(2),
        ]))
    }

    #[test]
    fn oai21_has_two_instances_of_two_configs() {
        // Paper §5.1: "there are two instances of gate oai21: oai21[A] …
        // and oai21[B]".
        let configs = find_all_reorderings(&oai21());
        let inst = instances(&configs);
        assert_eq!(inst.len(), 2);
        for i in &inst {
            assert_eq!(i.configurations.len(), 2);
        }
    }

    #[test]
    fn aoi211_has_three_instances() {
        // Table 2: aoi211[A,B,C] with 12 configurations total.
        let topo = Topology::from_pulldown(SpTree::parallel(vec![
            SpTree::series(vec![SpTree::leaf(0), SpTree::leaf(1)]),
            SpTree::leaf(2),
            SpTree::leaf(3),
        ]));
        let configs = find_all_reorderings(&topo);
        assert_eq!(configs.len(), 12);
        let inst = instances(&configs);
        assert_eq!(inst.len(), 3);
        for i in &inst {
            assert_eq!(i.configurations.len(), 4);
        }
    }

    #[test]
    fn aoi222_is_a_single_instance() {
        // All three parallel branches of the pull-down are series pairs and
        // the pull-up chain permutes identical parallel pairs: one shape.
        let topo = Topology::from_pulldown(SpTree::parallel(vec![
            SpTree::series(vec![SpTree::leaf(0), SpTree::leaf(1)]),
            SpTree::series(vec![SpTree::leaf(2), SpTree::leaf(3)]),
            SpTree::series(vec![SpTree::leaf(4), SpTree::leaf(5)]),
        ]));
        let configs = find_all_reorderings(&topo);
        assert_eq!(configs.len(), 48);
        let inst = instances(&configs);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].configurations.len(), 48);
    }

    #[test]
    fn nand_chain_is_single_instance() {
        let topo = Topology::from_pulldown(SpTree::series(vec![
            SpTree::leaf(0),
            SpTree::leaf(1),
            SpTree::leaf(2),
        ]));
        let configs = find_all_reorderings(&topo);
        let inst = instances(&configs);
        assert_eq!(inst.len(), 1);
        assert_eq!(inst[0].configurations.len(), 6);
    }

    #[test]
    fn shape_notation_roundtrips_visually() {
        let s = Shape::of(&oai21().pulldown);
        assert_eq!(s.notation(), "(.|.)-.");
    }

    #[test]
    fn instance_partition_covers_everything_once() {
        let configs = find_all_reorderings(&oai21());
        let inst = instances(&configs);
        let mut seen: Vec<usize> = inst.iter().flat_map(|i| i.configurations.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..configs.len()).collect::<Vec<_>>());
    }
}
