//! Path-function extraction (the paper's Fig. 2b algorithm).
//!
//! `H_nk` is the Boolean function over the gate inputs that is 1 exactly
//! when there exists a conducting path from node `nk` to `Vdd`; `G_nk`
//! likewise to `Vss`. A node is charged only when `H = 1` and discharged
//! only when `G = 1` (no charge sharing, §3.3.1). Paths may traverse the
//! whole graph — including the output node and the opposite network — but
//! never pass *through* a supply rail.
//!
//! `H` and `G` are complementary only for the output node (footnote 2 of
//! the paper); internal nodes can float, which is where the interesting
//! power behaviour of reordering lives.

use crate::graph::{GateGraph, NodeId, TransistorKind};
use tr_boolean::{BoolFn, Expr};

impl GateGraph {
    /// The path function `H_nk`: all conducting paths from `node` to Vdd.
    ///
    /// # Panics
    ///
    /// Panics if `node` is `Vdd` or `Vss` (rails have no path function).
    pub fn h_function(&self, node: NodeId) -> BoolFn {
        self.path_function(node, NodeId::Vdd)
    }

    /// The path function `G_nk`: all conducting paths from `node` to Vss.
    ///
    /// # Panics
    ///
    /// Panics if `node` is `Vdd` or `Vss`.
    pub fn g_function(&self, node: NodeId) -> BoolFn {
        self.path_function(node, NodeId::Vss)
    }

    /// The gate's logic function `y = H_y` (the output is 1 exactly when
    /// the pull-up conducts).
    pub fn output_function(&self) -> BoolFn {
        self.h_function(NodeId::Output)
    }

    fn path_function(&self, node: NodeId, target: NodeId) -> BoolFn {
        assert!(
            !matches!(node, NodeId::Vdd | NodeId::Vss),
            "path functions are defined for output/internal nodes only"
        );
        let mut acc = BoolFn::zero(self.nvars());
        let mut visited = vec![node];
        let mut literals: Vec<(usize, bool)> = Vec::new();
        self.dfs_paths(node, target, &mut visited, &mut literals, &mut acc);
        acc
    }

    /// Depth-first enumeration of simple paths, ANDing edge literals along
    /// the way and ORing into `acc` when the target rail is reached. This
    /// is the `CALCULATE_H_FUNCTION` of Fig. 2(b): each completed path
    /// contributes one minterm (product term) sharing its prefix with the
    /// previously emitted one.
    fn dfs_paths(
        &self,
        at: NodeId,
        target: NodeId,
        visited: &mut Vec<NodeId>,
        literals: &mut Vec<(usize, bool)>,
        acc: &mut BoolFn,
    ) {
        for e in self.edges() {
            let next = if e.a == at {
                e.b
            } else if e.b == at {
                e.a
            } else {
                continue;
            };
            if visited.contains(&next) {
                continue;
            }
            let positive = matches!(e.kind, TransistorKind::N);
            // Contradictory literal on the path ⇒ the term is 0; prune.
            if literals.contains(&(e.input, !positive)) {
                continue;
            }
            if next == target {
                let mut term = BoolFn::one(self.nvars());
                for &(input, pos) in literals.iter() {
                    term = term.and(&BoolFn::literal(self.nvars(), input, pos));
                }
                term = term.and(&BoolFn::literal(self.nvars(), e.input, positive));
                *acc = acc.or(&term);
                continue;
            }
            // The opposite rail is never an intermediate hop.
            if matches!(next, NodeId::Vdd | NodeId::Vss) {
                continue;
            }
            let duplicate = literals.contains(&(e.input, positive));
            visited.push(next);
            if !duplicate {
                literals.push((e.input, positive));
            }
            self.dfs_paths(next, target, visited, literals, acc);
            if !duplicate {
                literals.pop();
            }
            visited.pop();
        }
    }

    /// `H_nk` as a readable sum-of-paths expression (one conjunction per
    /// simple path). Useful for documentation and for checking against the
    /// paper's worked example.
    pub fn h_expr(&self, node: NodeId) -> Expr {
        self.path_expr(node, NodeId::Vdd)
    }

    /// `G_nk` as a readable sum-of-paths expression.
    pub fn g_expr(&self, node: NodeId) -> Expr {
        self.path_expr(node, NodeId::Vss)
    }

    fn path_expr(&self, node: NodeId, target: NodeId) -> Expr {
        assert!(
            !matches!(node, NodeId::Vdd | NodeId::Vss),
            "path functions are defined for output/internal nodes only"
        );
        let mut terms: Vec<Expr> = Vec::new();
        let mut visited = vec![node];
        let mut literals: Vec<(usize, bool)> = Vec::new();
        self.dfs_expr(node, target, &mut visited, &mut literals, &mut terms);
        if terms.is_empty() {
            Expr::constant(false)
        } else {
            Expr::or(terms)
        }
    }

    fn dfs_expr(
        &self,
        at: NodeId,
        target: NodeId,
        visited: &mut Vec<NodeId>,
        literals: &mut Vec<(usize, bool)>,
        terms: &mut Vec<Expr>,
    ) {
        for e in self.edges() {
            let next = if e.a == at {
                e.b
            } else if e.b == at {
                e.a
            } else {
                continue;
            };
            if visited.contains(&next) {
                continue;
            }
            let positive = matches!(e.kind, TransistorKind::N);
            if literals.contains(&(e.input, !positive)) {
                continue;
            }
            if next == target {
                let mut lits = literals.clone();
                if !lits.contains(&(e.input, positive)) {
                    lits.push((e.input, positive));
                }
                let term: Vec<Expr> = lits
                    .into_iter()
                    .map(|(i, pos)| {
                        if pos {
                            Expr::var(i)
                        } else {
                            Expr::not(Expr::var(i))
                        }
                    })
                    .collect();
                terms.push(if term.len() == 1 {
                    term.into_iter().next().expect("nonempty")
                } else {
                    Expr::and(term)
                });
                continue;
            }
            if matches!(next, NodeId::Vdd | NodeId::Vss) {
                continue;
            }
            let duplicate = literals.contains(&(e.input, positive));
            visited.push(next);
            if !duplicate {
                literals.push((e.input, positive));
            }
            self.dfs_expr(next, target, visited, literals, terms);
            if !duplicate {
                literals.pop();
            }
            visited.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{SpTree, Topology};

    /// The paper's Fig. 2(a) graph: OAI21, pair adjacent to the output.
    fn fig2a() -> GateGraph {
        let pd = SpTree::series(vec![
            SpTree::parallel(vec![SpTree::leaf(0), SpTree::leaf(1)]),
            SpTree::leaf(2),
        ]);
        GateGraph::build(&Topology::from_pulldown(pd), 3)
    }

    fn var(i: usize) -> BoolFn {
        BoolFn::var(3, i)
    }

    #[test]
    fn paper_example_h_n1() {
        // Paper: "leading to H_n1 = b̄·(a1 + a2)".
        let g = fig2a();
        let h = g.h_function(NodeId::Internal(0));
        let expected = var(0).or(&var(1)).and(&var(2).not());
        assert_eq!(h, expected);
    }

    #[test]
    fn paper_example_g_n1() {
        // Paper: "G_n1 = b".
        let g = fig2a();
        let gf = g.g_function(NodeId::Internal(0));
        assert_eq!(gf, var(2));
    }

    #[test]
    fn output_h_and_g_complementary() {
        // Footnote 2: H and G are complementary exactly at the output.
        let g = fig2a();
        let h = g.h_function(NodeId::Output);
        let gg = g.g_function(NodeId::Output);
        assert_eq!(h.not(), gg);
    }

    #[test]
    fn output_function_is_oai21() {
        let g = fig2a();
        let y = g.output_function();
        let expected = var(0).or(&var(1)).and(&var(2)).not();
        assert_eq!(y, expected);
    }

    #[test]
    fn internal_nodes_not_complementary() {
        // H_n1 + G_n1 < 1 (the node can float): both 0 when b=0, a1=a2=0…
        // actually H_n1 = b̄(a1+a2) is 0 and G_n1 = b is 0 at a1=a2=b=0.
        let g = fig2a();
        let h = g.h_function(NodeId::Internal(0));
        let gf = g.g_function(NodeId::Internal(0));
        let both_zero = h.or(&gf).not();
        assert!(!both_zero.is_zero(), "internal node must be able to float");
        // And they are never 1 simultaneously in a complementary gate.
        assert!(h.and(&gf).is_zero());
    }

    #[test]
    fn pullup_internal_node_functions() {
        // P-net of OAI21 = b̄ ∥ (ā1-ā2). With the canonical dual ordering
        // the series chain is ā1 (output side) then ā2 (vdd side), so the
        // junction m = Internal(1) has
        //   H_m = ā2 + ā1·b̄      (direct vdd device, or via y through b̄)
        //   G_m = ā1·a2·b        (via y down the conducting pull-down)
        let g = fig2a();
        let h = g.h_function(NodeId::Internal(1));
        let gf = g.g_function(NodeId::Internal(1));
        let a1 = var(0);
        let a2 = var(1);
        let b = var(2);
        assert_eq!(h, a2.not().or(&a1.not().and(&b.not())));
        assert_eq!(gf, a1.not().and(&a2).and(&b));
        // Never driven high and low at once in a complementary gate.
        assert!(h.and(&gf).is_zero());
    }

    #[test]
    fn solve_agrees_with_path_functions() {
        // For every node and assignment: driven-high ⇔ H, driven-low ⇔ G.
        let g = fig2a();
        for node in g.power_nodes() {
            let h = g.h_function(node);
            let gf = g.g_function(node);
            for m in 0..8usize {
                let a = [m & 1 == 1, (m >> 1) & 1 == 1, (m >> 2) & 1 == 1];
                let s = g.solve(&a);
                let expect = if gf.eval(&a) {
                    Some(false)
                } else if h.eval(&a) {
                    Some(true)
                } else {
                    None
                };
                assert_eq!(s.value(node), expect, "node {node} inputs {a:?}");
            }
        }
    }

    #[test]
    fn expr_rendering_matches_function() {
        let g = fig2a();
        for node in g.power_nodes() {
            let h_expr = g.h_expr(node);
            let h_fn = g.h_function(node);
            assert_eq!(h_expr.to_boolfn(3), h_fn, "node {node}");
            let g_expr = g.g_expr(node);
            let g_fn = g.g_function(node);
            assert_eq!(g_expr.to_boolfn(3), g_fn, "node {node}");
        }
    }

    #[test]
    fn nand2_junction_functions() {
        // NAND2 pd = a (output side) - b (vss side); junction n0.
        let pd = SpTree::series(vec![SpTree::leaf(0), SpTree::leaf(1)]);
        let g = GateGraph::build(&Topology::from_pulldown(pd), 2);
        let h = g.h_function(NodeId::Internal(0));
        let gf = g.g_function(NodeId::Internal(0));
        // G_n0 = b (direct path down).
        assert_eq!(gf, BoolFn::var(2, 1));
        // H_n0 = a·(ā + b̄) = a·b̄ (through the a transistor and pull-up).
        let a = BoolFn::var(2, 0);
        let b = BoolFn::var(2, 1);
        assert_eq!(h, a.and(&b.not()));
    }
}
