//! Series-parallel transistor networks and gate graphs.
//!
//! A static CMOS gate is two switch networks: a pull-down of N transistors
//! between the output and `Vss`, and a pull-up of P transistors between
//! `Vdd` and the output. Both are *series-parallel* (§4.3 of the paper:
//! "the gates of typical libraries can all be represented with this type of
//! graphs"). This crate provides:
//!
//! * [`SpTree`] — an ordered series-parallel tree whose leaves are
//!   transistors labeled by the input that drives them. The order of the
//!   children of a `Series` node **is** the transistor ordering the paper
//!   optimizes (index 0 = closest to the output node);
//! * [`Topology`] — a pull-down/pull-up pair, i.e. one *configuration* of a
//!   gate (Fig. 1a of the paper shows the four configurations of an OAI21);
//! * [`GateGraph`] — the flat node/edge representation of Fig. 2(a), with
//!   `vdd`, `vss`, the output node `y`, and the internal nodes `n₀…nₚ₋₁`;
//! * [`paths`] — extraction of the path functions `Hₙ` (node→Vdd) and `Gₙ`
//!   (node→Vss) by depth-first search, the algorithm of Fig. 2(b);
//! * [`pivot`] — the exhaustive reordering enumeration of Fig. 4/5, both as
//!   the paper's recursive pivot search and as a worklist closure, plus the
//!   analytic configuration count used as a cross-check;
//! * [`shape`] — unlabeled topology keys that partition configurations into
//!   the library *instances* of Table 2 (`oai21[A]`, `oai21[B]`, …).
//!
//! # Example
//!
//! Build the OAI21 gate of the paper's Fig. 2(a) and recover its path
//! functions:
//!
//! ```
//! use tr_spnet::{GateGraph, NodeId, SpTree, Topology};
//! use tr_boolean::BoolFn;
//!
//! // Pull-down (a1 + a2)·b with the parallel pair next to the output:
//! let pd = SpTree::series(vec![
//!     SpTree::parallel(vec![SpTree::leaf(0), SpTree::leaf(1)]),
//!     SpTree::leaf(2),
//! ]);
//! let topo = Topology::from_pulldown(pd);
//! let graph = GateGraph::build(&topo, 3);
//!
//! // H_n1 = (a1+a2)·b̄ — reaches Vdd through the P network (paper Fig. 2a).
//! let h = graph.h_function(NodeId::Internal(0));
//! let expected = BoolFn::var(3, 0)
//!     .or(&BoolFn::var(3, 1))
//!     .and(&BoolFn::var(3, 2).not());
//! assert_eq!(h, expected);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
pub mod paths;
pub mod pivot;
pub mod shape;
mod tree;

pub use graph::{Edge, GateGraph, NodeId, TransistorKind};
pub use tree::{SpTree, Topology};
