//! The flat gate-graph representation of Fig. 2(a).

use crate::tree::{SpTree, Topology};
use std::fmt;

/// N or P channel device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransistorKind {
    /// N-channel: conducts when its gate input is 1. Pull-down devices.
    N,
    /// P-channel: conducts when its gate input is 0. Pull-up devices.
    P,
}

/// A node of the gate graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeId {
    /// Power supply.
    Vdd,
    /// Ground.
    Vss,
    /// The gate's output node `y`.
    Output,
    /// Internal (diffusion junction) node `n_k`.
    Internal(usize),
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Vdd => write!(f, "vdd"),
            NodeId::Vss => write!(f, "vss"),
            NodeId::Output => write!(f, "y"),
            NodeId::Internal(k) => write!(f, "n{k}"),
        }
    }
}

/// One transistor: an edge of the gate graph connecting two nodes.
///
/// Conduction is bidirectional; `a`/`b` have no electrical direction. The
/// edge conducts when `input = 1` for N devices and `input = 0` for P
/// devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// One terminal.
    pub a: NodeId,
    /// The other terminal.
    pub b: NodeId,
    /// Cell input driving the transistor gate.
    pub input: usize,
    /// Device type.
    pub kind: TransistorKind,
}

impl Edge {
    /// Whether the transistor conducts under the given input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `input` is out of range of `assignment`.
    pub fn conducts(&self, assignment: &[bool]) -> bool {
        match self.kind {
            TransistorKind::N => assignment[self.input],
            TransistorKind::P => !assignment[self.input],
        }
    }
}

/// The graph `(V, E)` of one gate configuration (paper Fig. 2a).
///
/// `V = {n₀…nₚ₋₁, y, vdd, vss}`, `E` = the `2q` transistors. Internal
/// nodes are numbered in construction order: pull-down junctions first
/// (outermost series chain from the output side inward, depth first), then
/// pull-up junctions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GateGraph {
    nvars: usize,
    internal_count: usize,
    edges: Vec<Edge>,
}

impl GateGraph {
    /// Builds the graph of a topology over `nvars` cell inputs.
    ///
    /// # Panics
    ///
    /// Panics if the topology references an input `>= nvars`.
    pub fn build(topology: &Topology, nvars: usize) -> Self {
        for i in topology
            .pulldown
            .inputs()
            .iter()
            .chain(topology.pullup.inputs().iter())
        {
            assert!(*i < nvars, "input {i} out of range 0..{nvars}");
        }
        let mut graph = GateGraph {
            nvars,
            internal_count: 0,
            edges: Vec::with_capacity(topology.transistor_count()),
        };
        // Pull-down: output at the top of the stack, vss at the bottom.
        graph.build_net(
            &topology.pulldown,
            TransistorKind::N,
            NodeId::Output,
            NodeId::Vss,
        );
        // Pull-up: series index 0 is *also* output-adjacent by convention.
        graph.build_net(
            &topology.pullup,
            TransistorKind::P,
            NodeId::Output,
            NodeId::Vdd,
        );
        graph
    }

    fn build_net(&mut self, tree: &SpTree, kind: TransistorKind, top: NodeId, bottom: NodeId) {
        match tree {
            SpTree::Leaf(input) => {
                self.edges.push(Edge {
                    a: top,
                    b: bottom,
                    input: *input,
                    kind,
                });
            }
            SpTree::Series(children) => {
                // Create the k-1 junction nodes of this chain first so the
                // numbering matches the boundary enumeration in `pivot`.
                let mut nodes = Vec::with_capacity(children.len() + 1);
                nodes.push(top);
                for _ in 0..children.len() - 1 {
                    nodes.push(NodeId::Internal(self.internal_count));
                    self.internal_count += 1;
                }
                nodes.push(bottom);
                for (i, child) in children.iter().enumerate() {
                    self.build_net(child, kind, nodes[i], nodes[i + 1]);
                }
            }
            SpTree::Parallel(children) => {
                for child in children {
                    self.build_net(child, kind, top, bottom);
                }
            }
        }
    }

    /// Number of cell inputs.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of internal nodes `p`.
    pub fn internal_count(&self) -> usize {
        self.internal_count
    }

    /// All transistors.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over the nodes whose switching dissipates power: the output
    /// node first, then every internal node.
    pub fn power_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(NodeId::Output).chain((0..self.internal_count).map(NodeId::Internal))
    }

    /// Edges incident to `node`.
    pub fn incident(&self, node: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.a == node || e.b == node)
    }

    /// Number of transistor terminals (source/drain diffusions) of each
    /// kind touching `node` — the quantity the capacitance model scales.
    pub fn terminal_counts(&self, node: NodeId) -> (usize, usize) {
        let mut n = 0;
        let mut p = 0;
        for e in self.incident(node) {
            match e.kind {
                TransistorKind::N => n += 1,
                TransistorKind::P => p += 1,
            }
        }
        (n, p)
    }

    /// Steady-state logic value of every node under a static input
    /// assignment: `Some(true)` if connected to Vdd, `Some(false)` if
    /// connected to Vss, `None` if floating. Used by the switch-level
    /// simulator and by tests.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != nvars`. A node connected to both
    /// rails (ratioed fight — impossible in well-formed complementary
    /// gates) resolves to `Some(false)`, matching an N-dominant fight; the
    /// simulator separately reports such conflicts.
    pub fn solve(&self, assignment: &[bool]) -> NodeSolution {
        assert_eq!(assignment.len(), self.nvars, "assignment length mismatch");
        // Union-find over conducting edges would be fine; the graphs are
        // tiny, so two breadth-first floods are simpler.
        let reach_vdd = self.flood(NodeId::Vdd, assignment);
        let reach_vss = self.flood(NodeId::Vss, assignment);
        NodeSolution {
            reach_vdd,
            reach_vss,
            internal_count: self.internal_count,
        }
    }

    /// Nodes reachable from `start` through conducting transistors.
    fn flood(&self, start: NodeId, assignment: &[bool]) -> Vec<NodeId> {
        let mut visited = vec![start];
        let mut frontier = vec![start];
        while let Some(node) = frontier.pop() {
            for e in self.incident(node) {
                if !e.conducts(assignment) {
                    continue;
                }
                let other = if e.a == node { e.b } else { e.a };
                // Do not conduct *through* the opposite rail.
                if !visited.contains(&other) {
                    visited.push(other);
                    if other != NodeId::Vdd && other != NodeId::Vss {
                        frontier.push(other);
                    }
                }
            }
        }
        visited
    }
}

/// Result of statically solving a gate graph (see [`GateGraph::solve`]).
#[derive(Debug, Clone)]
pub struct NodeSolution {
    reach_vdd: Vec<NodeId>,
    reach_vss: Vec<NodeId>,
    internal_count: usize,
}

impl NodeSolution {
    /// Logic value of `node`: `Some(level)` if driven, `None` if floating.
    ///
    /// A (malformed) node seeing both rails reads as `Some(false)`.
    pub fn value(&self, node: NodeId) -> Option<bool> {
        if self.reach_vss.contains(&node) {
            Some(false)
        } else if self.reach_vdd.contains(&node) {
            Some(true)
        } else {
            None
        }
    }

    /// Whether any node is connected to both rails simultaneously.
    pub fn has_conflict(&self) -> bool {
        self.reach_vdd
            .iter()
            .any(|n| *n != NodeId::Vdd && self.reach_vss.contains(n))
    }

    /// Number of internal nodes of the solved graph.
    pub fn internal_count(&self) -> usize {
        self.internal_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 2(a): OAI21, parallel pair next to the output.
    fn fig2a() -> GateGraph {
        let pd = SpTree::series(vec![
            SpTree::parallel(vec![SpTree::leaf(0), SpTree::leaf(1)]),
            SpTree::leaf(2),
        ]);
        GateGraph::build(&Topology::from_pulldown(pd), 3)
    }

    #[test]
    fn fig2a_structure() {
        let g = fig2a();
        assert_eq!(g.edges().len(), 6);
        assert_eq!(g.internal_count(), 2);
        assert_eq!(g.nvars(), 3);
        // Output touches: 2 N (parallel pair) + 1 or 2 P depending on dual
        // ordering; total terminals at output must be >= 3.
        let (n, p) = g.terminal_counts(NodeId::Output);
        assert_eq!(n, 2);
        assert!(p >= 1);
    }

    #[test]
    fn inverter_graph() {
        let g = GateGraph::build(&Topology::from_pulldown(SpTree::leaf(0)), 1);
        assert_eq!(g.edges().len(), 2);
        assert_eq!(g.internal_count(), 0);
        let s = g.solve(&[true]);
        assert_eq!(s.value(NodeId::Output), Some(false));
        let s = g.solve(&[false]);
        assert_eq!(s.value(NodeId::Output), Some(true));
        assert!(!s.has_conflict());
    }

    #[test]
    fn oai21_truth_table_via_solve() {
        let g = fig2a();
        for m in 0..8usize {
            let a = [m & 1 == 1, (m >> 1) & 1 == 1, (m >> 2) & 1 == 1];
            let expected = !((a[0] || a[1]) && a[2]);
            let s = g.solve(&a);
            assert_eq!(s.value(NodeId::Output), Some(expected), "inputs {a:?}");
            assert!(!s.has_conflict());
        }
    }

    #[test]
    fn internal_node_can_float() {
        // NAND2: with a=0 (top transistor off, bottom on? depends on
        // ordering) some assignment leaves the junction floating.
        let pd = SpTree::series(vec![SpTree::leaf(0), SpTree::leaf(1)]);
        let g = GateGraph::build(&Topology::from_pulldown(pd), 2);
        assert_eq!(g.internal_count(), 1);
        // a=0 and b=0: both N transistors off; junction floats (the P side
        // connects only to the output, not the junction).
        let s = g.solve(&[false, false]);
        assert_eq!(s.value(NodeId::Internal(0)), None);
        assert_eq!(s.value(NodeId::Output), Some(true));
    }

    #[test]
    fn power_nodes_order() {
        let g = fig2a();
        let nodes: Vec<NodeId> = g.power_nodes().collect();
        assert_eq!(
            nodes,
            vec![NodeId::Output, NodeId::Internal(0), NodeId::Internal(1)]
        );
    }

    #[test]
    fn out_of_range_input_panics() {
        let pd = SpTree::leaf(5);
        let r = std::panic::catch_unwind(|| GateGraph::build(&Topology::from_pulldown(pd), 2));
        assert!(r.is_err());
    }
}
