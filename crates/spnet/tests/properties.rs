//! Property-based tests over random series-parallel gates.

use proptest::prelude::*;
use std::collections::HashSet;
use tr_spnet::{pivot, shape, GateGraph, NodeId, SpTree, Topology};

/// Recursively builds a random SP network over the given distinct inputs.
/// `structure` supplies raw randomness; depth is bounded by input count.
fn build_tree(inputs: &[usize], structure: &mut impl Iterator<Item = u8>, series: bool) -> SpTree {
    if inputs.len() == 1 {
        return SpTree::leaf(inputs[0]);
    }
    // Split the inputs into 2..=3 contiguous groups.
    let groups = 2 + (structure.next().unwrap_or(0) as usize) % 2;
    let groups = groups.min(inputs.len());
    let mut children = Vec::new();
    let base = inputs.len() / groups;
    let mut start = 0;
    for g in 0..groups {
        let extra = usize::from(g < inputs.len() % groups);
        let end = start + base + extra;
        children.push(build_tree(&inputs[start..end], structure, !series));
        start = end;
    }
    if series {
        SpTree::series(children)
    } else {
        SpTree::parallel(children)
    }
}

fn arb_topology(max_inputs: usize) -> impl Strategy<Value = Topology> {
    (
        2..=max_inputs,
        prop::collection::vec(any::<u8>(), 8),
        any::<bool>(),
    )
        .prop_map(|(n, structure, series_root)| {
            let inputs: Vec<usize> = (0..n).collect();
            let mut it = structure.into_iter();
            Topology::from_pulldown(build_tree(&inputs, &mut it, series_root))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn paper_search_equals_closure(topo in arb_topology(5)) {
        let a: HashSet<Topology> = pivot::find_all_reorderings(&topo).into_iter().collect();
        let b: HashSet<Topology> = pivot::enumerate_closure(&topo).into_iter().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn enumeration_matches_analytic_count(topo in arb_topology(5)) {
        let all = pivot::find_all_reorderings(&topo);
        prop_assert_eq!(all.len() as u64, topo.configuration_count());
    }

    #[test]
    fn reordering_never_changes_the_function(topo in arb_topology(5)) {
        let n = 1 + topo.inputs().into_iter().max().unwrap_or(0);
        let reference = GateGraph::build(&topo, n).output_function();
        for t in pivot::find_all_reorderings(&topo) {
            let y = GateGraph::build(&t, n).output_function();
            prop_assert_eq!(&y, &reference);
        }
    }

    #[test]
    fn output_h_g_complementary(topo in arb_topology(5)) {
        let n = 1 + topo.inputs().into_iter().max().unwrap_or(0);
        let g = GateGraph::build(&topo, n);
        let h = g.h_function(NodeId::Output);
        let gf = g.g_function(NodeId::Output);
        prop_assert_eq!(h.not(), gf);
    }

    #[test]
    fn internal_nodes_never_fight(topo in arb_topology(5)) {
        // In a complementary gate no node can see both rails at once.
        let n = 1 + topo.inputs().into_iter().max().unwrap_or(0);
        let g = GateGraph::build(&topo, n);
        for node in g.power_nodes() {
            let h = g.h_function(node);
            let gf = g.g_function(node);
            prop_assert!(h.and(&gf).is_zero(), "node {} fights", node);
        }
    }

    #[test]
    fn solve_matches_path_functions(topo in arb_topology(4)) {
        let n = 1 + topo.inputs().into_iter().max().unwrap_or(0);
        let g = GateGraph::build(&topo, n);
        for node in g.power_nodes() {
            let h = g.h_function(node);
            let gf = g.g_function(node);
            for m in 0..(1usize << n) {
                let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                let s = g.solve(&a);
                let expect = if gf.eval(&a) {
                    Some(false)
                } else if h.eval(&a) {
                    Some(true)
                } else {
                    None
                };
                prop_assert_eq!(s.value(node), expect);
            }
        }
    }

    #[test]
    fn pivot_is_involutive(topo in arb_topology(5)) {
        for node in 0..topo.internal_node_count() {
            prop_assert_eq!(pivot::pivot(&pivot::pivot(&topo, node), node), topo.clone());
        }
    }

    #[test]
    fn instances_partition_configurations(topo in arb_topology(5)) {
        let configs = pivot::find_all_reorderings(&topo);
        let inst = shape::instances(&configs);
        let mut covered: Vec<usize> =
            inst.iter().flat_map(|i| i.configurations.clone()).collect();
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..configs.len()).collect::<Vec<_>>());
        // Shapes within an instance agree; across instances differ.
        for i in &inst {
            for &c in &i.configurations {
                prop_assert_eq!(shape::TopologyShape::of(&configs[c]), i.shape.clone());
            }
        }
    }

    #[test]
    fn graph_node_count_matches_tree(topo in arb_topology(5)) {
        let n = 1 + topo.inputs().into_iter().max().unwrap_or(0);
        let g = GateGraph::build(&topo, n);
        prop_assert_eq!(g.internal_count(), topo.internal_node_count());
        prop_assert_eq!(g.edges().len(), topo.transistor_count());
    }
}
