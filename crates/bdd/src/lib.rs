//! # tr-bdd — a shared ROBDD engine for exact signal statistics
//!
//! `tr_power::propagate` is fast but assumes gate inputs are independent,
//! which reconvergent fanout (the ripple-carry structure of the paper's
//! own §1.1 motivation) violates; `tr_power::propagate_exact` is exact
//! but capped at [`tr_boolean::MAX_VARS`] primary inputs by its dense
//! truth tables. This crate removes the cap: a reduced-ordered binary
//! decision diagram manager with **complement edges**, a unique table and
//! memoized ITE/restrict/Boolean-difference operations ([`Bdd`]), plus a
//! whole-circuit engine ([`CircuitBdds`]) that expresses every net of a
//! [`tr_netlist::CompiledCircuit`] as a global function of the primary
//! inputs and computes **exact** signal probabilities and Najm transition
//! densities — reconvergent correlation handled exactly, any input count
//! whose *live* BDDs fit the node budget.
//!
//! The manager is built for speed at scale: a struct-of-arrays node pool
//! with recycled slots, a custom open-addressed unique table, fixed-size
//! direct-mapped operation caches, and **mark-and-sweep garbage
//! collection** rooted at the registered net edges — dead composition
//! and Boolean-difference intermediates (routinely 10–30× the live set)
//! are reclaimed instead of counted against the budget.
//!
//! Variable ordering is pluggable ([`OrderHeuristic`]): topological,
//! fanin-DFS (default; interleaves operand bits along carry chains) and
//! a bounded **in-place sifting** refinement (adjacent level swaps per
//! Rudell — no rebuilds).
//!
//! # Example
//!
//! Exact probability of a reconvergent output no truth table could hold
//! (33 primary inputs):
//!
//! ```
//! use tr_bdd::{BuildOptions, CircuitBdds};
//! use tr_boolean::SignalStats;
//! use tr_gatelib::Library;
//! use tr_netlist::{generators, CompiledCircuit};
//!
//! let lib = Library::standard();
//! let adder = generators::ripple_carry_adder(16, &lib);
//! let compiled = CompiledCircuit::compile(&adder, &lib).unwrap();
//! let mut bdds = CircuitBdds::build(&compiled, &lib, BuildOptions::default()).unwrap();
//! let stats = bdds.exact_stats(&vec![SignalStats::default(); 33]).unwrap();
//! let cout = compiled.primary_outputs()[16];
//! assert!((stats[cout.0].probability() - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
mod manager;
pub mod order;

pub use circuit::{BuildOptions, CircuitBddStats, CircuitBdds};
pub use manager::{
    apportioned_gc_threshold, Bdd, BddError, CacheStats, DensityScratch, Edge, EngineStats,
    GcStats, ProbScratch, VisitScratch, DEFAULT_GC_THRESHOLD, DEFAULT_NODE_LIMIT,
};
pub use order::OrderHeuristic;
