//! Variable-ordering heuristics.
//!
//! BDD size is notoriously ordering-sensitive (an adder is linear under
//! an interleaved ordering and exponential under a bad one), so the
//! engine never hardcodes "primary input `i` is variable `i`". An order
//! is a permutation `order[level] = primary-input position`: the PI that
//! sits at the root level of the manager comes first.
//!
//! Two static heuristics are provided, plus a bounded **in-place
//! sifting** refinement ([`crate::circuit::CircuitBdds::sift_in_place`]):
//! adjacent variable levels are swapped inside the node pool, per
//! Rudell, so scoring a candidate position costs one swap instead of a
//! whole-circuit rebuild:
//!
//! * [`topological`] — declaration order, the identity permutation;
//! * [`fanin_dfs`] — depth-first from the primary outputs through gate
//!   fanins, appending each input when first reached. This groups inputs
//!   that feed the same cone next to each other (for the ripple-carry
//!   adder it interleaves `aᵢ`/`bᵢ` along the carry chain), which is the
//!   classic netlist-ordering heuristic.

use tr_netlist::CompiledCircuit;

/// How the circuit engine picks its variable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderHeuristic {
    /// Primary inputs in declaration order.
    Topological,
    /// Depth-first search from the primary outputs through gate fanins
    /// (default — near-optimal for arithmetic carry structures).
    #[default]
    FaninDfs,
    /// [`OrderHeuristic::FaninDfs`] refined by a bounded, in-place
    /// sifting pass: each variable is moved through every level by
    /// adjacent swaps inside the node pool and settled where the live
    /// node count is smallest, spending at most `max_swaps` exploration
    /// swaps.
    Sifted {
        /// Upper bound on exploration swaps (settling a variable back to
        /// its best position always completes, so the result never
        /// worsens).
        max_swaps: usize,
    },
}

/// The identity order: `order[level] = level`.
pub fn topological(compiled: &CompiledCircuit) -> Vec<usize> {
    (0..compiled.primary_inputs().len()).collect()
}

/// Fanin-DFS order: walk each primary output's cone depth-first (inputs
/// left to right), appending every primary input when first encountered;
/// inputs unreachable from any output keep declaration order at the end.
pub fn fanin_dfs(compiled: &CompiledCircuit) -> Vec<usize> {
    let n_pis = compiled.primary_inputs().len();
    // net -> driving gate, and net -> primary-input position.
    let mut driver: Vec<Option<usize>> = vec![None; compiled.net_count()];
    for (i, gate) in compiled.gates().iter().enumerate() {
        driver[gate.output.0] = Some(i);
    }
    let mut pi_pos: Vec<Option<usize>> = vec![None; compiled.net_count()];
    for (i, net) in compiled.primary_inputs().iter().enumerate() {
        pi_pos[net.0] = Some(i);
    }

    let mut order = Vec::with_capacity(n_pis);
    let mut seen_pi = vec![false; n_pis];
    let mut seen_gate = vec![false; compiled.gates().len()];
    let mut stack: Vec<usize> = Vec::new();
    for po in compiled.primary_outputs() {
        stack.push(po.0);
        while let Some(net) = stack.pop() {
            if let Some(gid) = driver[net] {
                if seen_gate[gid] {
                    continue;
                }
                seen_gate[gid] = true;
                let gate = &compiled.gates()[gid];
                // Reverse push so inputs are visited left to right.
                for input in compiled.inputs(gate).iter().rev() {
                    stack.push(input.0);
                }
            } else if let Some(pos) = pi_pos[net] {
                if !seen_pi[pos] {
                    seen_pi[pos] = true;
                    order.push(pos);
                }
            }
        }
    }
    for (pos, seen) in seen_pi.iter().enumerate() {
        if !seen {
            order.push(pos);
        }
    }
    order
}

/// Resolves a static heuristic to a concrete order. ([`OrderHeuristic::
/// Sifted`] starts from fanin-DFS; the in-place refinement happens in
/// [`crate::circuit::CircuitBdds::build`] after the first construction.)
pub fn initial_order(compiled: &CompiledCircuit, heuristic: OrderHeuristic) -> Vec<usize> {
    match heuristic {
        OrderHeuristic::Topological => topological(compiled),
        OrderHeuristic::FaninDfs | OrderHeuristic::Sifted { .. } => fanin_dfs(compiled),
    }
}

/// Information-measure order: each primary input is scored by the
/// binary entropy of its signal probability times the size of its
/// transitive fanout cone (in gates), and inputs are placed root-first
/// by descending score — the variables carrying the most information
/// about the most of the circuit decide earliest. This is the cheap
/// entropy-driven ordering in the spirit of the information-theoretic
/// BDD-minimization literature: one BFS per input, no trial builds.
///
/// The exact-statistics degradation ladder uses it as a *different*
/// second opinion when the default fanin-DFS order blows the node
/// budget; it is deterministic (ties break by declaration position).
///
/// # Panics
///
/// Panics if `pi_probs.len()` differs from the primary-input count.
pub fn info_measure(compiled: &CompiledCircuit, pi_probs: &[f64]) -> Vec<usize> {
    let n_pis = compiled.primary_inputs().len();
    assert_eq!(pi_probs.len(), n_pis, "one probability per primary input");
    // net -> gates reading it.
    let mut readers: Vec<Vec<usize>> = vec![Vec::new(); compiled.net_count()];
    for (gid, gate) in compiled.gates().iter().enumerate() {
        for input in compiled.inputs(gate) {
            readers[input.0].push(gid);
        }
    }
    let mut cones: Vec<usize> = Vec::with_capacity(n_pis);
    let mut seen_gate = vec![u32::MAX; compiled.gates().len()];
    let mut frontier: Vec<usize> = Vec::new();
    for (pos, net) in compiled.primary_inputs().iter().enumerate() {
        // BFS over the fanout cone, counting distinct gates.
        let stamp = pos as u32;
        let mut cone = 0usize;
        frontier.clear();
        frontier.extend(readers[net.0].iter().copied());
        while let Some(gid) = frontier.pop() {
            if seen_gate[gid] == stamp {
                continue;
            }
            seen_gate[gid] = stamp;
            cone += 1;
            let out = compiled.gates()[gid].output;
            frontier.extend(readers[out.0].iter().copied());
        }
        cones.push(cone);
    }
    rank_by_information(pi_probs, &cones)
}

/// The ranking kernel behind [`info_measure`], decoupled from circuit
/// traversal so per-region engines (whose "inputs" are a mix of primary
/// inputs and cut nets) can reuse it: position `i` is scored
/// `H(probs[i]) × cone_sizes[i]` (binary entropy times fanout-cone gate
/// count) and positions are returned by descending score, ties broken by
/// ascending position — fully deterministic.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn rank_by_information(probs: &[f64], cone_sizes: &[usize]) -> Vec<usize> {
    assert_eq!(
        probs.len(),
        cone_sizes.len(),
        "one cone size per scored probability"
    );
    let entropy = |p: f64| {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 || p >= 1.0 {
            0.0
        } else {
            -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
        }
    };
    let mut scored: Vec<(f64, usize)> = probs
        .iter()
        .zip(cone_sizes)
        .enumerate()
        .map(|(pos, (&p, &cone))| (entropy(p) * cone as f64, pos))
        .collect();
    // Descending score, ascending position on ties — fully deterministic
    // (scores are finite: entropy ∈ [0, 1], cone ≤ gate count).
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, pos)| pos).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_gatelib::Library;
    use tr_netlist::generators;

    fn compiled(circuit: &tr_netlist::Circuit, lib: &Library) -> CompiledCircuit {
        CompiledCircuit::compile(circuit, lib).expect("valid circuit")
    }

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order.iter().all(|&i| {
                let fresh = i < n && !seen[i];
                if fresh {
                    seen[i] = true;
                }
                fresh
            })
    }

    #[test]
    fn both_heuristics_are_permutations() {
        let lib = Library::standard();
        for circuit in [
            generators::ripple_carry_adder(8, &lib),
            generators::array_multiplier(4, &lib),
            generators::carry_select_adder(16, 4, &lib),
        ] {
            let cc = compiled(&circuit, &lib);
            let n = cc.primary_inputs().len();
            assert!(is_permutation(&topological(&cc), n));
            assert!(is_permutation(&fanin_dfs(&cc), n));
        }
    }

    #[test]
    fn fanin_dfs_interleaves_adder_operands() {
        // rca inputs are a0..a7, b0..b7, cin (positions 0..16). The DFS
        // from s0 reaches a0, b0, cin before any higher bit.
        let lib = Library::standard();
        let cc = compiled(&generators::ripple_carry_adder(8, &lib), &lib);
        let order = fanin_dfs(&cc);
        let pos_of = |pi: usize| order.iter().position(|&p| p == pi).unwrap();
        // Bit-0 operands (positions 0 and 8) come before bit-7 operands
        // (positions 7 and 15).
        assert!(pos_of(0) < pos_of(7));
        assert!(pos_of(8) < pos_of(15));
        // And a0/b0 are close together (within the first full-adder cone).
        assert!(pos_of(0).abs_diff(pos_of(8)) <= 3);
    }

    #[test]
    fn info_measure_is_a_permutation_and_ranks_wide_cones_first() {
        let lib = Library::standard();
        let cc = compiled(&generators::array_multiplier(4, &lib), &lib);
        let n = cc.primary_inputs().len();
        let order = info_measure(&cc, &vec![0.5; n]);
        assert!(is_permutation(&order, n));
        // A constant input carries zero entropy: it must sort last even
        // though its cone is as wide as anyone's.
        let mut probs = vec![0.5; n];
        probs[3] = 1.0;
        let order = info_measure(&cc, &probs);
        assert!(is_permutation(&order, n));
        assert_eq!(*order.last().unwrap(), 3, "zero-entropy input sorts last");
    }

    #[test]
    fn info_measure_is_deterministic() {
        let lib = Library::standard();
        let cc = compiled(&generators::carry_select_adder(16, 4, &lib), &lib);
        let n = cc.primary_inputs().len();
        let probs: Vec<f64> = (0..n).map(|i| 0.2 + 0.015 * i as f64).collect();
        assert_eq!(info_measure(&cc, &probs), info_measure(&cc, &probs));
    }

    #[test]
    fn unreachable_inputs_keep_declaration_order() {
        let lib = Library::standard();
        let mut c = tr_netlist::Circuit::new("dangling");
        let a = c.add_input("a");
        let _unused_b = c.add_input("b");
        let _unused_c = c.add_input("c");
        let (_, y) = c.add_gate(tr_gatelib::CellKind::Inv, vec![a], "y");
        c.mark_output(y);
        let cc = compiled(&c, &lib);
        assert_eq!(fanin_dfs(&cc), vec![0, 1, 2]);
    }
}
