//! Whole-circuit BDDs and the exact statistics engine.
//!
//! [`CircuitBdds::build`] expresses every net of a [`CompiledCircuit`] as
//! a global Boolean function of the primary inputs — one shared manager,
//! gates composed in topological order — so reconvergent fanout is
//! handled *exactly*: `NAND(a, a)` is `¬a`, not a fresh independent
//! signal. [`CircuitBdds::exact_stats`] then computes, per net, the exact
//! Parker–McCluskey signal probability (one linear pass over the shared
//! graph) and the exact Najm transition density
//! `D(y) = Σᵥ P(∂y/∂xᵥ)·D(xᵥ)` via BDD Boolean differences.
//!
//! **Garbage collection**: every net's root is registered with the
//! manager as it is computed, so the only unrooted nodes are the
//! intermediates of gate composition — exactly the allocations that
//! used to count against the node budget. The build collects at safe
//! points (between gates) under the manager's growth policy, and
//! retries a gate once after a forced collection when composition hits
//! the budget, so the limit now measures the *live* working set. The
//! statistics pass allocates nothing at all (densities walk cofactor
//! pairs via [`Bdd::difference_probability`] instead of materializing
//! difference BDDs). `rnd_e` — 500 gates of dense random logic whose
//! old materialized density pass ground ~14 M nodes of garbage into a
//! budget error — now completes well inside the default budget.
//!
//! Unlike `tr_power::propagate_exact` (dense truth tables, capped at
//! `tr_boolean::MAX_VARS` primary inputs) the only limit here is the
//! manager's node budget, which the benchmark suite's arithmetic
//! circuits don't come near under the fanin-DFS ordering.

use crate::manager::{
    Bdd, BddError, CacheStats, DensityScratch, Edge, ProbScratch, VisitScratch,
    DEFAULT_GC_THRESHOLD, DEFAULT_NODE_LIMIT,
};
use crate::order::{initial_order, OrderHeuristic};
use tr_boolean::govern::Governor;
use tr_boolean::SignalStats;
use tr_gatelib::Library;
use tr_netlist::{CompiledCircuit, GateId, NetId};

/// Construction options for [`CircuitBdds::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Variable-ordering heuristic (default fanin-DFS).
    pub heuristic: OrderHeuristic,
    /// Manager *live*-node budget (default [`DEFAULT_NODE_LIMIT`]).
    pub node_limit: usize,
    /// Live-node floor below which the manager's collector stays idle
    /// (default [`DEFAULT_GC_THRESHOLD`]). Tiny values force frequent
    /// collections — useful for stress-testing GC transparency.
    pub gc_threshold: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            heuristic: OrderHeuristic::default(),
            node_limit: DEFAULT_NODE_LIMIT,
            gc_threshold: DEFAULT_GC_THRESHOLD,
        }
    }
}

/// Size, GC and cache statistics of a built [`CircuitBdds`] (reported in
/// EXPERIMENTS.md and by the `independence_error` experiment binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBddStats {
    /// All-time node allocations (recycled slots count once per reuse):
    /// together with `live_nodes` this tells the garbage story.
    pub allocated_nodes: usize,
    /// Distinct nodes reachable from the per-net roots.
    pub live_nodes: usize,
    /// Completed mark-and-sweep collections.
    pub gc_runs: u64,
    /// High-water mark of the live node count (what the budget actually
    /// had to accommodate).
    pub peak_live: usize,
    /// Registered GC roots (one per net plus any caller additions) —
    /// incremental users assert this stays balanced across
    /// [`CircuitBdds::repropagate`] rounds and interrupted runs.
    pub protected_count: usize,
    /// Memoization counters of the underlying manager.
    pub cache: CacheStats,
}

/// Every net of a circuit as a BDD over the primary inputs, in one
/// shared manager.
///
/// # Example
///
/// ```
/// use tr_bdd::{BuildOptions, CircuitBdds};
/// use tr_boolean::SignalStats;
/// use tr_gatelib::Library;
/// use tr_netlist::{generators, CompiledCircuit};
///
/// let lib = Library::standard();
/// let rca = generators::ripple_carry_adder(16, &lib); // 33 inputs: over
/// let compiled = CompiledCircuit::compile(&rca, &lib).unwrap(); // MAX_VARS
/// let mut bdds = CircuitBdds::build(&compiled, &lib, BuildOptions::default()).unwrap();
/// let pi = vec![SignalStats::new(0.5, 0.5); 33];
/// let stats = bdds.exact_stats(&pi).unwrap();
/// assert_eq!(stats.len(), compiled.net_count());
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBdds {
    manager: Bdd,
    roots: Vec<Edge>,
    /// `order[level] = primary-input position`.
    order: Vec<usize>,
    /// `level_of_pi[primary-input position] = level`.
    level_of_pi: Vec<usize>,
}

/// Builds per-net roots under a fixed order, registering each net's edge
/// as a GC root the moment it exists. Composition intermediates are the
/// only unrooted nodes, so the manager is free to collect between gates;
/// a gate that trips the budget is retried once after a forced
/// collection (the aborted attempt's intermediates are garbage by then).
fn build_roots(
    compiled: &CompiledCircuit,
    library: &Library,
    order: &[usize],
    node_limit: usize,
    gc_threshold: usize,
    governor: Option<&Governor>,
) -> Result<(Bdd, Vec<Edge>), BddError> {
    let n_pis = compiled.primary_inputs().len();
    debug_assert_eq!(order.len(), n_pis, "order must be a PI permutation");
    let mut level_of_pi = vec![0usize; n_pis];
    for (level, &pos) in order.iter().enumerate() {
        level_of_pi[pos] = level;
    }
    let mut manager = Bdd::with_node_limit(n_pis, node_limit);
    manager.set_gc_threshold(gc_threshold);
    manager.set_governor(governor.cloned());
    // Nets that are neither primary inputs nor gate outputs stay ZERO —
    // a valid circuit has none.
    let mut roots = vec![Edge::ZERO; compiled.net_count()];
    for (pos, net) in compiled.primary_inputs().iter().enumerate() {
        let edge = manager.var(level_of_pi[pos]);
        roots[net.0] = edge;
        manager.protect(edge);
    }
    let mut args: Vec<Edge> = Vec::new();
    for &gid in compiled.order() {
        let gate = &compiled.gates()[gid.0];
        args.clear();
        args.extend(compiled.inputs(gate).iter().map(|n| roots[n.0]));
        let function = library.cell_by_id(gate.cell).function();
        let edge = match manager.compose_fn(function, &args) {
            Ok(edge) => edge,
            Err(BddError::NodeLimit { .. }) => {
                // Reclaim dead intermediates (including the aborted
                // attempt's) and try once more; a second failure means
                // the live set itself does not fit.
                manager.gc();
                manager.compose_fn(function, &args)?
            }
            // Cancellation/deadline: no retry will help; the half-built
            // attempt is ordinary garbage.
            Err(e @ BddError::Interrupted(_)) => return Err(e),
        };
        roots[gate.output.0] = edge;
        manager.protect(edge);
        manager.maybe_gc();
    }
    Ok((manager, roots))
}

impl CircuitBdds {
    /// Builds BDDs for every net, gates composed in topological order.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the circuit's live BDDs do not
    /// fit the node budget under the chosen ordering (dead intermediates
    /// are garbage-collected and never count).
    pub fn build(
        compiled: &CompiledCircuit,
        library: &Library,
        options: BuildOptions,
    ) -> Result<Self, BddError> {
        CircuitBdds::build_governed(compiled, library, options, None)
    }

    /// [`CircuitBdds::build`] under a [`Governor`]: the manager checks
    /// the governor on every node allocation, so a cancelled token or a
    /// passed deadline aborts the build (and any later governed
    /// operation on the result) with [`BddError::Interrupted`]. The
    /// governor stays attached to the manager; replace or detach it with
    /// [`CircuitBdds::set_governor`].
    ///
    /// # Errors
    ///
    /// As [`CircuitBdds::build`], plus [`BddError::Interrupted`] when
    /// the governor trips.
    pub fn build_governed(
        compiled: &CompiledCircuit,
        library: &Library,
        options: BuildOptions,
        governor: Option<&Governor>,
    ) -> Result<Self, BddError> {
        let _g = tr_trace::span!(
            "bdd.build",
            pis = compiled.primary_inputs().len(),
            gates = compiled.gates().len()
        );
        let order = initial_order(compiled, options.heuristic);
        let (manager, roots) = build_roots(
            compiled,
            library,
            &order,
            options.node_limit,
            options.gc_threshold,
            governor,
        )?;
        let mut level_of_pi = vec![0usize; order.len()];
        for (level, &pos) in order.iter().enumerate() {
            level_of_pi[pos] = level;
        }
        let mut this = CircuitBdds {
            manager,
            roots,
            order,
            level_of_pi,
        };
        if let OrderHeuristic::Sifted { max_swaps } = options.heuristic {
            this.sift_in_place(max_swaps);
        }
        tr_trace::counter!("bdd.cache_hit_rate", this.manager.cache_stats().hit_rate());
        Ok(this)
    }

    /// [`CircuitBdds::build_governed`] under an explicit variable order
    /// (a permutation of primary-input positions) instead of a
    /// heuristic — how the degradation ladder retries a budget-blown
    /// build under the information-measure order
    /// ([`crate::order::info_measure`]).
    ///
    /// # Errors
    ///
    /// As [`CircuitBdds::build_governed`].
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of
    /// `0..primary_inputs().len()`.
    pub fn build_with_order(
        compiled: &CompiledCircuit,
        library: &Library,
        options: BuildOptions,
        order: Vec<usize>,
        governor: Option<&Governor>,
    ) -> Result<Self, BddError> {
        let n_pis = compiled.primary_inputs().len();
        let mut seen = vec![false; n_pis];
        assert!(
            order.len() == n_pis
                && order.iter().all(|&p| {
                    let fresh = p < n_pis && !seen[p];
                    if fresh {
                        seen[p] = true;
                    }
                    fresh
                }),
            "order must be a permutation of primary-input positions"
        );
        let _g = tr_trace::span!(
            "bdd.build",
            pis = compiled.primary_inputs().len(),
            gates = compiled.gates().len(),
            explicit_order = true
        );
        let (manager, roots) = build_roots(
            compiled,
            library,
            &order,
            options.node_limit,
            options.gc_threshold,
            governor,
        )?;
        let mut level_of_pi = vec![0usize; order.len()];
        for (level, &pos) in order.iter().enumerate() {
            level_of_pi[pos] = level;
        }
        Ok(CircuitBdds {
            manager,
            roots,
            order,
            level_of_pi,
        })
    }

    /// Attaches (or with `None` detaches) a [`Governor`] that every
    /// subsequent fallible operation on this engine — repropagation,
    /// statistics walks, node allocation — checks cooperatively.
    pub fn set_governor(&mut self, governor: Option<Governor>) {
        self.manager.set_governor(governor);
    }

    /// The underlying manager (read-only).
    pub fn manager(&self) -> &Bdd {
        &self.manager
    }

    /// The BDD root of a net.
    pub fn root(&self, net: NetId) -> Edge {
        self.roots[net.0]
    }

    /// The chosen variable order: `order()[level]` is the primary-input
    /// position at that level.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The inverse permutation of [`CircuitBdds::order`]: the manager
    /// level a primary input (by position) was assigned to.
    pub fn level_of_pi(&self, position: usize) -> usize {
        self.level_of_pi[position]
    }

    /// Forces a mark-and-sweep collection from the per-net roots and
    /// returns the number of nodes freed. Every net root survives (they
    /// are all protected), so this is always safe; useful to trim a
    /// long-lived incremental engine between
    /// [`CircuitBdds::repropagate`] rounds.
    pub fn collect_garbage(&mut self) -> usize {
        self.manager.gc()
    }

    /// Size, GC and cache statistics.
    pub fn stats(&self) -> CircuitBddStats {
        let gc = self.manager.gc_stats();
        CircuitBddStats {
            allocated_nodes: self.manager.allocated_total() as usize,
            live_nodes: self.manager.live_size(self.roots.iter().copied()),
            gc_runs: gc.runs,
            peak_live: gc.peak_live,
            protected_count: self.manager.protected_count(),
            cache: self.manager.cache_stats(),
        }
    }

    /// Live node count reachable from the circuit's net roots (the
    /// quantity sifting minimizes).
    fn live_size_now(&self) -> usize {
        self.manager.live_size(self.roots.iter().copied())
    }

    /// Swaps adjacent levels `level` / `level + 1` in the manager and
    /// keeps the level↔primary-input maps in sync.
    fn swap_levels(&mut self, level: usize) {
        self.manager.swap_adjacent(level as u32);
        self.order.swap(level, level + 1);
        self.level_of_pi[self.order[level]] = level;
        self.level_of_pi[self.order[level + 1]] = level + 1;
    }

    /// True in-place sifting (Rudell): each variable in turn is moved
    /// through every level by adjacent swaps inside the pool — no
    /// rebuilds — and settled at the level minimizing the live node
    /// count. `max_swaps` bounds the *exploration* swaps (settling back
    /// to the best seen position is always completed, so the result
    /// never worsens); the whole pass is deterministic. Returns the
    /// number of exploration swaps spent.
    ///
    /// Net functions (over the primary inputs) are preserved exactly —
    /// roots keep their node identity while [`CircuitBdds::order`] and
    /// the per-level meaning are permuted together.
    pub fn sift_in_place(&mut self, max_swaps: usize) -> usize {
        let _g = tr_trace::span!("bdd.sift", max_swaps = max_swaps);
        let n = self.order.len();
        if n < 3 || max_swaps == 0 {
            return 0;
        }
        let mut swaps = 0usize;
        // Visit variables (identified by PI position — stable across
        // swaps) in their initial root-first order: root levels influence
        // size the most.
        let by_initial_level: Vec<usize> = self.order.clone();
        for pi in by_initial_level {
            if swaps >= max_swaps {
                break;
            }
            // Sifting is best-effort optimization: a tripped governor
            // stops it at a variable boundary (levels are consistent
            // there) instead of surfacing an error — the BDDs stay
            // valid, just less compact.
            if self
                .manager
                .governor()
                .is_some_and(|g| g.check_now("sift").is_err())
            {
                break;
            }
            // Sweep the strays of the previous variable so the pool scan
            // inside each swap stays proportional to the live set.
            self.manager.gc();
            let mut level = self.level_of_pi[pi];
            let mut best_size = self.live_size_now();
            let mut best_level = level;
            // Down to the bottom...
            while level + 1 < n && swaps < max_swaps {
                self.swap_levels(level);
                swaps += 1;
                level += 1;
                let size = self.live_size_now();
                if size < best_size {
                    best_size = size;
                    best_level = level;
                }
            }
            // ...then up to the top...
            while level > 0 && swaps < max_swaps {
                self.swap_levels(level - 1);
                swaps += 1;
                level -= 1;
                let size = self.live_size_now();
                if size < best_size {
                    best_size = size;
                    best_level = level;
                }
            }
            // ...and settle at the best position seen (never counted
            // against the budget: stopping short would strand the
            // variable somewhere worse than where it started).
            while level < best_level {
                self.swap_levels(level);
                level += 1;
            }
            while level > best_level {
                self.swap_levels(level - 1);
                level -= 1;
            }
        }
        self.manager.gc();
        swaps
    }

    /// Exact `(P, D)` statistics for every net, given per-primary-input
    /// statistics (independent primary inputs — the paper's §3.1 signal
    /// model; *internal* correlation from reconvergent fanout is exact).
    ///
    /// The density pass never materializes a difference BDD:
    /// [`Bdd::difference_probability`] walks cofactor pairs over the
    /// shared graph, so the whole statistics pass is allocation-free
    /// (one reusable [`ProbScratch`]/[`DensityScratch`]/[`VisitScratch`]
    /// trio shared across every net) and cannot trip the node budget —
    /// which is why `rnd_e`, whose old materialized pass ground through
    /// ~14 M garbage nodes into a budget error, now just completes.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::Interrupted`] when an attached [`Governor`]
    /// trips mid-pass (the engine itself stays consistent — no roots
    /// move during statistics).
    ///
    /// # Panics
    ///
    /// Panics if `pi_stats.len()` differs from the primary-input count.
    pub fn exact_stats(&mut self, pi_stats: &[SignalStats]) -> Result<Vec<SignalStats>, BddError> {
        let nets: Vec<NetId> = (0..self.roots.len()).map(NetId).collect();
        let mut out = vec![SignalStats::new(0.0, 0.0); self.roots.len()];
        self.exact_stats_into(pi_stats, &nets, &mut out)?;
        Ok(out)
    }

    /// Exact `(P, D)` statistics for a *subset* of nets, written into
    /// `out[net.0]` — the incremental counterpart of
    /// [`CircuitBdds::exact_stats`]. Entries for nets not listed are left
    /// untouched, so a caller that re-derived only a dirty cone (see
    /// [`CircuitBdds::repropagate`]) refreshes exactly those slots of a
    /// previously computed statistics vector. Each listed net is computed
    /// by the identical per-root walk the full pass uses, so the refreshed
    /// entries are bit-for-bit what a full rebuild would produce.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::Interrupted`] when an attached [`Governor`]
    /// trips mid-pass; already-written `out` slots hold valid values,
    /// the rest are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `pi_stats.len()` differs from the primary-input count or
    /// `out.len()` differs from the net count.
    pub fn exact_stats_into(
        &mut self,
        pi_stats: &[SignalStats],
        nets: &[NetId],
        out: &mut [SignalStats],
    ) -> Result<(), BddError> {
        assert_eq!(
            pi_stats.len(),
            self.order.len(),
            "one SignalStats per primary input"
        );
        assert_eq!(out.len(), self.roots.len(), "one output slot per net");
        let _g = tr_trace::span!("bdd.exact_stats", nets = nets.len());
        // Per-level views of the input statistics.
        let probs: Vec<f64> = self
            .order
            .iter()
            .map(|&pos| pi_stats[pos].probability())
            .collect();
        let dens: Vec<f64> = self
            .order
            .iter()
            .map(|&pos| pi_stats[pos].density())
            .collect();

        // One scratch trio for the whole pass: probabilities are a
        // property of (node, probs), and probs is fixed here. The
        // scratches self-invalidate if the manager ever collects.
        let mut prob = ProbScratch::new();
        let mut density = DensityScratch::new();
        let mut visited = VisitScratch::new();
        let mut seen = vec![false; self.order.len()];
        for &net in nets {
            // A boundary check per net keeps deadline latency bounded
            // even when every per-level walk below is cache-hot (and
            // therefore skips the manager's amortized checks).
            if let Some(g) = self.manager.governor() {
                g.check_now("exact-stats")?;
            }
            let root = self.roots[net.0];
            let p = self.manager.probability(root, &probs, &mut prob);
            self.manager.support_into(root, &mut seen, &mut visited);
            let mut d = 0.0f64;
            for level in 0..self.order.len() {
                if !seen[level] || dens[level] == 0.0 {
                    continue;
                }
                d += self.manager.difference_probability(
                    root,
                    level,
                    &probs,
                    &mut prob,
                    &mut density,
                )? * dens[level];
            }
            out[net.0] = SignalStats::new(p, d.max(0.0));
        }
        tr_trace::counter!("bdd.cache_hit_rate", self.manager.cache_stats().hit_rate());
        Ok(())
    }

    /// Re-derives the fanout cone of `dirty_gates` after the circuit
    /// changed (a cell substitution, or any edit that preserves the net
    /// and gate numbering), in place: one sweep over `compiled.order()`
    /// recomposes every gate that is itself dirty or reads a net whose
    /// root changed, GC-safely swapping the net's protected root
    /// (protect the new edge, then release the old one). Gates whose
    /// recomposed function hash-conses to the *same* edge — the
    /// config-only case, since reordering never changes a gate's Boolean
    /// function (§4.2) — terminate their cone on the spot.
    ///
    /// Returns the nets whose roots actually changed, in topological
    /// order — exactly the slots [`CircuitBdds::exact_stats_into`] must
    /// refresh. The manager's pool, caches and unrelated roots are
    /// reused; nothing outside the cone is recomputed.
    ///
    /// `compiled` must describe the *edited* circuit and match the build
    /// in net count, primary inputs and gate order.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if a recomposed cone does not fit
    /// the node budget even after a forced collection, and
    /// [`BddError::Interrupted`] when an attached [`Governor`] trips
    /// mid-sweep (roots stay protected and consistent either way).
    ///
    /// # Panics
    ///
    /// Panics if `compiled` disagrees with the built circuit's net or
    /// primary-input count.
    pub fn repropagate(
        &mut self,
        compiled: &CompiledCircuit,
        library: &Library,
        dirty_gates: &[GateId],
    ) -> Result<Vec<NetId>, BddError> {
        assert_eq!(
            compiled.net_count(),
            self.roots.len(),
            "compiled circuit must match the built one"
        );
        assert_eq!(
            compiled.primary_inputs().len(),
            self.order.len(),
            "compiled circuit must match the built one"
        );
        let _g = tr_trace::span!("bdd.repropagate", dirty_gates = dirty_gates.len());
        let mut gate_dirty = vec![false; compiled.gates().len()];
        for &g in dirty_gates {
            gate_dirty[g.0] = true;
        }
        let mut net_dirty = vec![false; compiled.net_count()];
        let mut dirty_nets: Vec<NetId> = Vec::new();
        let mut args: Vec<Edge> = Vec::new();
        for &gid in compiled.order() {
            let gate = &compiled.gates()[gid.0];
            if !gate_dirty[gid.0] && !compiled.inputs(gate).iter().any(|n| net_dirty[n.0]) {
                continue;
            }
            args.clear();
            args.extend(compiled.inputs(gate).iter().map(|n| self.roots[n.0]));
            let function = library.cell_by_id(gate.cell).function();
            let edge = match self.manager.compose_fn(function, &args) {
                Ok(edge) => edge,
                Err(BddError::NodeLimit { .. }) => {
                    // Old and new roots are all protected at this point,
                    // so a forced collection only reclaims composition
                    // intermediates; retry once, as in the full build.
                    self.manager.gc();
                    self.manager.compose_fn(function, &args)?
                }
                // Interrupted mid-cone: every root swapped so far was
                // protected before its predecessor was released, so the
                // engine is consistent — it just describes a circuit
                // partway through the edit. Callers treat the whole
                // repropagation as failed and rebuild or fall back.
                Err(e @ BddError::Interrupted(_)) => return Err(e),
            };
            let old = self.roots[gate.output.0];
            if edge != old {
                self.manager.protect(edge);
                self.manager.unprotect(old);
                self.roots[gate.output.0] = edge;
                net_dirty[gate.output.0] = true;
                dirty_nets.push(gate.output);
            }
            self.manager.maybe_gc();
        }
        Ok(dirty_nets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_gatelib::{CellKind, Library};
    use tr_netlist::{generators, Circuit};

    fn compiled(circuit: &Circuit, lib: &Library) -> CompiledCircuit {
        CompiledCircuit::compile(circuit, lib).expect("valid circuit")
    }

    fn build(circuit: &Circuit, lib: &Library) -> CircuitBdds {
        CircuitBdds::build(&compiled(circuit, lib), lib, BuildOptions::default())
            .expect("fits the node budget")
    }

    #[test]
    fn roots_agree_with_functional_evaluation() {
        let lib = Library::standard();
        let c = generators::array_multiplier(3, &lib);
        let cc = compiled(&c, &lib);
        let bdds = build(&c, &lib);
        for m in 0..(1usize << 6) {
            let v: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
            let nets = cc.evaluate(&lib, &v);
            // The BDD assignment is per *level*; permute through order().
            let mut by_level = vec![false; 6];
            for (level, &pos) in bdds.order().iter().enumerate() {
                by_level[level] = v[pos];
            }
            for (net, &want) in nets.iter().enumerate() {
                assert_eq!(
                    bdds.manager()
                        .eval(bdds.root(tr_netlist::NetId(net)), &by_level),
                    want,
                    "net {net} at inputs {m:06b}"
                );
            }
        }
    }

    #[test]
    fn reconvergence_is_exact() {
        // y = NAND(a, a) = ¬a: probability must be 1 − P(a), and the BDD
        // must literally be the complement of a's.
        let lib = Library::standard();
        let mut c = Circuit::new("reconv");
        let a = c.add_input("a");
        let (_, y) = c.add_gate(CellKind::Nand(2), vec![a, a], "y");
        c.mark_output(y);
        let mut bdds = build(&c, &lib);
        assert_eq!(bdds.root(y), bdds.root(a).complement());
        let stats = bdds.exact_stats(&[SignalStats::new(0.3, 2.0e5)]).unwrap();
        assert!((stats[y.0].probability() - 0.7).abs() < 1e-15);
        assert!((stats[y.0].density() - 2.0e5).abs() < 1e-9);
    }

    #[test]
    fn stats_match_truth_table_exact_on_small_circuit() {
        // c17 has 5 inputs: tr_power::propagate_exact applies, and so
        // does a hand truth-table check of probabilities here.
        let lib = Library::standard();
        let c = tr_netlist::map::map_default(&tr_netlist::bench::c17(), &lib);
        let cc = compiled(&c, &lib);
        let mut bdds = build(&c, &lib);
        let pi: Vec<SignalStats> = (0..5)
            .map(|i| SignalStats::new(0.1 + 0.17 * i as f64, 1.0e5 * (i + 1) as f64))
            .collect();
        let stats = bdds.exact_stats(&pi).unwrap();
        // Brute-force probability per net from the truth table.
        for (net, got) in stats.iter().enumerate() {
            let mut want = 0.0f64;
            for m in 0..(1usize << 5) {
                let v: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
                if cc.evaluate(&lib, &v)[net] {
                    let mut term = 1.0;
                    for (i, &bit) in v.iter().enumerate() {
                        let p = pi[i].probability();
                        term *= if bit { p } else { 1.0 - p };
                    }
                    want += term;
                }
            }
            assert!(
                (got.probability() - want).abs() < 1e-12,
                "net {net}: {} vs {want}",
                got.probability()
            );
        }
    }

    #[test]
    fn no_input_cap() {
        // 33 primary inputs — beyond MAX_VARS=16; BDDs handle it easily.
        let lib = Library::standard();
        let c = generators::ripple_carry_adder(16, &lib);
        let mut bdds = build(&c, &lib);
        let pi = vec![SignalStats::new(0.5, 0.5); 33];
        let stats = bdds.exact_stats(&pi).unwrap();
        assert_eq!(stats.len(), c.net_count());
        // The final carry has probability 1/2 by symmetry of addition.
        let cout = c.primary_outputs()[16];
        assert!((stats[cout.0].probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fanin_dfs_beats_topological_on_the_adder() {
        // Declaration order (a0..a15, b0..b15, cin) separates the operand
        // bits each carry needs; fanin DFS interleaves them. The live
        // node count should improve materially.
        let lib = Library::standard();
        let c = generators::ripple_carry_adder(16, &lib);
        let cc = compiled(&c, &lib);
        let dfs = CircuitBdds::build(
            &cc,
            &lib,
            BuildOptions {
                heuristic: OrderHeuristic::FaninDfs,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let topo = CircuitBdds::build(
            &cc,
            &lib,
            BuildOptions {
                heuristic: OrderHeuristic::Topological,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        assert!(
            dfs.stats().live_nodes * 2 < topo.stats().live_nodes,
            "fanin-DFS {} vs topological {}",
            dfs.stats().live_nodes,
            topo.stats().live_nodes
        );
    }

    #[test]
    fn sifting_never_worsens_and_is_deterministic() {
        let lib = Library::standard();
        let c = generators::comparator(6, &lib);
        let cc = compiled(&c, &lib);
        let base = CircuitBdds::build(
            &cc,
            &lib,
            BuildOptions {
                heuristic: OrderHeuristic::FaninDfs,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let build_sifted = || {
            CircuitBdds::build(
                &cc,
                &lib,
                BuildOptions {
                    heuristic: OrderHeuristic::Sifted { max_swaps: 200 },
                    ..BuildOptions::default()
                },
            )
            .unwrap()
        };
        let sifted = build_sifted();
        assert!(sifted.stats().live_nodes <= base.stats().live_nodes);
        assert_eq!(sifted.order(), build_sifted().order());
        // Sifting must not change any function: spot-check evaluation.
        let n = cc.primary_inputs().len();
        for m in [0usize, 0x155, 0xFFF, 0x9A5] {
            let v: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let nets = cc.evaluate(&lib, &v);
            let mut by_level = vec![false; n];
            for (level, &pos) in sifted.order().iter().enumerate() {
                by_level[level] = v[pos];
            }
            for (net, &want) in nets.iter().enumerate() {
                assert_eq!(
                    sifted
                        .manager()
                        .eval(sifted.root(tr_netlist::NetId(net)), &by_level),
                    want
                );
            }
        }
    }

    #[test]
    fn forced_gc_is_invisible_to_results() {
        // A tiny GC threshold forces collections throughout the build and
        // the statistics pass; every number must match the lazy build.
        let lib = Library::standard();
        let c = generators::carry_select_adder(16, 4, &lib);
        let cc = compiled(&c, &lib);
        let n = cc.primary_inputs().len();
        let pi: Vec<SignalStats> = (0..n)
            .map(|i| SignalStats::new(0.1 + 0.02 * i as f64, 1.0e4 * (1 + i % 7) as f64))
            .collect();
        let mut lazy = CircuitBdds::build(&cc, &lib, BuildOptions::default()).unwrap();
        let mut forced = CircuitBdds::build(
            &cc,
            &lib,
            BuildOptions {
                gc_threshold: 1,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        assert!(
            forced.stats().gc_runs > 0,
            "threshold 1 must force collections"
        );
        let a = lazy.exact_stats(&pi).unwrap();
        let b = forced.exact_stats(&pi).unwrap();
        for (net, (x, y)) in a.iter().zip(&b).enumerate() {
            assert!(
                (x.probability() - y.probability()).abs() < 1e-12,
                "net {net}: P {} vs {}",
                x.probability(),
                y.probability()
            );
            let tol = 1e-12 * x.density().abs().max(1.0);
            assert!(
                (x.density() - y.density()).abs() < tol,
                "net {net}: D {} vs {}",
                x.density(),
                y.density()
            );
        }
    }

    /// Swaps a victim gate's cell for its same-arity dual (NAND↔NOR,
    /// AOI↔OAI) — a cell substitution, the function-changing edit
    /// repropagation exists for.
    fn toggle_cell(c: &mut Circuit, g: GateId) {
        let new = match c.gate(g).cell.clone() {
            CellKind::Nand(k) => CellKind::Nor(k),
            CellKind::Nor(k) => CellKind::Nand(k),
            CellKind::Aoi(gs) => CellKind::Oai(gs),
            CellKind::Oai(gs) => CellKind::Aoi(gs),
            CellKind::Inv => panic!("an inverter has no same-arity dual"),
        };
        c.set_cell(g, new);
    }

    fn pick_victim(c: &Circuit) -> GateId {
        GateId(
            c.gates()
                .iter()
                .position(|g| !matches!(g.cell, CellKind::Inv))
                .expect("suite circuits contain multi-input gates"),
        )
    }

    fn assert_stats_match(a: &[SignalStats], b: &[SignalStats]) {
        for (net, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.probability() - y.probability()).abs() < 1e-12,
                "net {net}: P {} vs {}",
                x.probability(),
                y.probability()
            );
            let tol = 1e-12 * x.density().abs().max(1.0);
            assert!(
                (x.density() - y.density()).abs() < tol,
                "net {net}: D {} vs {}",
                x.density(),
                y.density()
            );
        }
    }

    #[test]
    fn repropagate_matches_fresh_build_after_cell_substitution() {
        let lib = Library::standard();
        let mut c = generators::carry_select_adder(16, 4, &lib);
        let n = c.primary_inputs().len();
        let pi: Vec<SignalStats> = (0..n)
            .map(|i| SignalStats::new(0.1 + 0.02 * i as f64, 1.0e4 * (1 + i % 7) as f64))
            .collect();
        let mut bdds = build(&c, &lib);
        let mut stats = bdds.exact_stats(&pi).unwrap();
        let victim = pick_victim(&c);
        toggle_cell(&mut c, victim);
        let cc = compiled(&c, &lib);
        let dirty = bdds.repropagate(&cc, &lib, &[victim]).unwrap();
        assert!(!dirty.is_empty(), "a cell substitution must dirty its cone");
        assert!(
            dirty.len() < c.net_count(),
            "the dirty cone must not be the whole circuit"
        );
        bdds.exact_stats_into(&pi, &dirty, &mut stats).unwrap();
        let want = build(&c, &lib).exact_stats(&pi).unwrap();
        assert_stats_match(&stats, &want);
    }

    #[test]
    fn repropagate_is_a_noop_for_config_only_changes() {
        // Reordering never changes a gate's Boolean function (§4.2), so
        // marking every gate dirty after config flips must recompose to
        // the same hash-consed roots and return an empty dirty set.
        let lib = Library::standard();
        let mut c = generators::comparator(6, &lib);
        let n = c.primary_inputs().len();
        let pi: Vec<SignalStats> = (0..n)
            .map(|i| SignalStats::new(0.3 + 0.04 * i as f64, 2.0e4 * (1 + i) as f64))
            .collect();
        let mut bdds = build(&c, &lib);
        let before = bdds.exact_stats(&pi).unwrap();
        let choices: Vec<usize> = c
            .gates()
            .iter()
            .map(|g| lib.cell(&g.cell).unwrap().configurations().len() - 1)
            .collect();
        for (i, cfg) in choices.into_iter().enumerate() {
            c.set_config(GateId(i), cfg);
        }
        let all: Vec<GateId> = (0..c.gates().len()).map(GateId).collect();
        let cc = compiled(&c, &lib);
        let dirty = bdds.repropagate(&cc, &lib, &all).unwrap();
        assert!(dirty.is_empty(), "config flips must not dirty any net");
        let after = bdds.exact_stats(&pi).unwrap();
        assert_eq!(before, after, "stats must be untouched");
    }

    #[test]
    fn repropagate_under_forced_gc_matches_fresh_build() {
        // Collect unconditionally after every repropagation round: if the
        // protect/unprotect swap ever left a live root unregistered, the
        // sweep would reclaim it and the statistics would diverge.
        let lib = Library::standard();
        let mut c = generators::carry_skip_adder(12, 4, &lib);
        let n = c.primary_inputs().len();
        let pi: Vec<SignalStats> = (0..n)
            .map(|i| SignalStats::new(0.2 + 0.03 * i as f64, 1.0e4 * (1 + i % 5) as f64))
            .collect();
        let cc0 = compiled(&c, &lib);
        let mut forced = CircuitBdds::build(
            &cc0,
            &lib,
            BuildOptions {
                gc_threshold: 1,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        assert!(
            forced.stats().gc_runs > 0,
            "threshold 1 must force collections during the build"
        );
        let mut stats = forced.exact_stats(&pi).unwrap();
        let victim = pick_victim(&c);
        for _ in 0..3 {
            toggle_cell(&mut c, victim);
            let cc = compiled(&c, &lib);
            let dirty = forced.repropagate(&cc, &lib, &[victim]).unwrap();
            forced.collect_garbage();
            forced.exact_stats_into(&pi, &dirty, &mut stats).unwrap();
            let want = build(&c, &lib).exact_stats(&pi).unwrap();
            assert_stats_match(&stats, &want);
        }
    }

    #[test]
    fn repropagate_keeps_protected_roots_balanced() {
        let lib = Library::standard();
        let mut c = generators::carry_skip_adder(8, 4, &lib);
        let n = c.primary_inputs().len();
        let pi: Vec<SignalStats> = (0..n)
            .map(|i| SignalStats::new(0.4 + 0.01 * i as f64, 5.0e4))
            .collect();
        let mut bdds = build(&c, &lib);
        let original = bdds.exact_stats(&pi).unwrap();
        let before = bdds.manager().protected_count();
        assert_eq!(before, c.net_count(), "one protected root per net");
        let victim = pick_victim(&c);
        let mut stats = original.clone();
        for _ in 0..6 {
            toggle_cell(&mut c, victim);
            let cc = compiled(&c, &lib);
            let dirty = bdds.repropagate(&cc, &lib, &[victim]).unwrap();
            bdds.exact_stats_into(&pi, &dirty, &mut stats).unwrap();
            assert_eq!(
                bdds.manager().protected_count(),
                before,
                "every protect must be paired with an unprotect"
            );
        }
        // An even number of toggles lands back on the original circuit.
        assert_stats_match(&stats, &original);
    }

    #[test]
    fn tripped_governor_interrupts_the_build() {
        let lib = Library::standard();
        let c = generators::array_multiplier(6, &lib);
        let cc = compiled(&c, &lib);
        let gov = Governor::with_trip_after(200);
        let err = CircuitBdds::build_governed(&cc, &lib, BuildOptions::default(), Some(&gov))
            .unwrap_err();
        assert!(
            matches!(&err, BddError::Interrupted(i) if i.phase == "bdd"),
            "{err:?}"
        );
    }

    #[test]
    fn interrupted_stats_leave_the_engine_consistent() {
        // Cancel mid-statistics, then detach the governor and rerun: the
        // results must match a fresh engine, and the protected-root count
        // must never move.
        let lib = Library::standard();
        let c = generators::carry_select_adder(16, 4, &lib);
        let cc = compiled(&c, &lib);
        let n = cc.primary_inputs().len();
        let pi: Vec<SignalStats> = (0..n)
            .map(|i| SignalStats::new(0.1 + 0.02 * i as f64, 1.0e4 * (1 + i % 7) as f64))
            .collect();
        let mut bdds = build(&c, &lib);
        let baseline_protected = bdds.stats().protected_count;
        assert_eq!(baseline_protected, c.net_count());
        bdds.set_governor(Some(Governor::with_trip_after(500)));
        let err = bdds.exact_stats(&pi).unwrap_err();
        assert!(matches!(err, BddError::Interrupted(_)), "{err:?}");
        assert_eq!(bdds.stats().protected_count, baseline_protected);
        bdds.set_governor(None);
        let got = bdds.exact_stats(&pi).unwrap();
        let want = build(&c, &lib).exact_stats(&pi).unwrap();
        assert_stats_match(&got, &want);
    }

    #[test]
    fn node_limit_surfaces_as_error() {
        let lib = Library::standard();
        let c = generators::array_multiplier(6, &lib);
        let cc = compiled(&c, &lib);
        let err = CircuitBdds::build(
            &cc,
            &lib,
            BuildOptions {
                node_limit: 64,
                ..BuildOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, BddError::NodeLimit { limit: 64 });
    }
}
