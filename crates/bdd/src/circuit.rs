//! Whole-circuit BDDs and the exact statistics engine.
//!
//! [`CircuitBdds::build`] expresses every net of a [`CompiledCircuit`] as
//! a global Boolean function of the primary inputs — one shared manager,
//! gates composed in topological order — so reconvergent fanout is
//! handled *exactly*: `NAND(a, a)` is `¬a`, not a fresh independent
//! signal. [`CircuitBdds::exact_stats`] then computes, per net, the exact
//! Parker–McCluskey signal probability (one linear pass over the shared
//! graph) and the exact Najm transition density
//! `D(y) = Σᵥ P(∂y/∂xᵥ)·D(xᵥ)` via BDD Boolean differences.
//!
//! Unlike `tr_power::propagate_exact` (dense truth tables, capped at
//! `tr_boolean::MAX_VARS` primary inputs) the only limit here is the
//! manager's node budget, which the benchmark suite's arithmetic
//! circuits don't come near under the fanin-DFS ordering.

use crate::manager::{Bdd, BddError, CacheStats, Edge, DEFAULT_NODE_LIMIT};
use crate::order::{initial_order, OrderHeuristic};
use std::collections::HashMap;
use tr_boolean::SignalStats;
use tr_gatelib::Library;
use tr_netlist::{CompiledCircuit, NetId};

/// Construction options for [`CircuitBdds::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Variable-ordering heuristic (default fanin-DFS).
    pub heuristic: OrderHeuristic,
    /// Manager node budget (default [`DEFAULT_NODE_LIMIT`]).
    pub node_limit: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            heuristic: OrderHeuristic::default(),
            node_limit: DEFAULT_NODE_LIMIT,
        }
    }
}

/// Size and cache statistics of a built [`CircuitBdds`] (reported in
/// EXPERIMENTS.md and by the `independence_error` experiment binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBddStats {
    /// Nodes allocated in the manager (including dead intermediates).
    pub allocated_nodes: usize,
    /// Distinct nodes reachable from the per-net roots.
    pub live_nodes: usize,
    /// Memoization counters of the underlying manager.
    pub cache: CacheStats,
}

/// Every net of a circuit as a BDD over the primary inputs, in one
/// shared manager.
///
/// # Example
///
/// ```
/// use tr_bdd::{BuildOptions, CircuitBdds};
/// use tr_boolean::SignalStats;
/// use tr_gatelib::Library;
/// use tr_netlist::{generators, CompiledCircuit};
///
/// let lib = Library::standard();
/// let rca = generators::ripple_carry_adder(16, &lib); // 33 inputs: over
/// let compiled = CompiledCircuit::compile(&rca, &lib).unwrap(); // MAX_VARS
/// let mut bdds = CircuitBdds::build(&compiled, &lib, BuildOptions::default()).unwrap();
/// let pi = vec![SignalStats::new(0.5, 0.5); 33];
/// let stats = bdds.exact_stats(&pi).unwrap();
/// assert_eq!(stats.len(), compiled.net_count());
/// ```
#[derive(Debug)]
pub struct CircuitBdds {
    manager: Bdd,
    roots: Vec<Edge>,
    /// `order[level] = primary-input position`.
    order: Vec<usize>,
    /// `level_of_pi[primary-input position] = level`.
    level_of_pi: Vec<usize>,
}

/// Builds per-net roots under a fixed order. The workhorse shared by
/// [`CircuitBdds::build`] and the sifting refinement.
fn build_roots(
    compiled: &CompiledCircuit,
    library: &Library,
    order: &[usize],
    node_limit: usize,
) -> Result<(Bdd, Vec<Edge>), BddError> {
    let n_pis = compiled.primary_inputs().len();
    debug_assert_eq!(order.len(), n_pis, "order must be a PI permutation");
    let mut level_of_pi = vec![0usize; n_pis];
    for (level, &pos) in order.iter().enumerate() {
        level_of_pi[pos] = level;
    }
    let mut manager = Bdd::with_node_limit(n_pis, node_limit);
    // Nets that are neither primary inputs nor gate outputs stay ZERO —
    // a valid circuit has none.
    let mut roots = vec![Edge::ZERO; compiled.net_count()];
    for (pos, net) in compiled.primary_inputs().iter().enumerate() {
        roots[net.0] = manager.var(level_of_pi[pos]);
    }
    let mut args: Vec<Edge> = Vec::new();
    for &gid in compiled.order() {
        let gate = &compiled.gates()[gid.0];
        args.clear();
        args.extend(compiled.inputs(gate).iter().map(|n| roots[n.0]));
        let function = library.cell_by_id(gate.cell).function();
        roots[gate.output.0] = manager.compose_fn(function, &args)?;
    }
    Ok((manager, roots))
}

/// Live node count of a candidate order, or `usize::MAX` if it blows the
/// node budget (so sifting treats a blow-up as strictly worse).
fn order_cost(
    compiled: &CompiledCircuit,
    library: &Library,
    order: &[usize],
    node_limit: usize,
) -> usize {
    match build_roots(compiled, library, order, node_limit) {
        Ok((manager, roots)) => manager.live_size(roots.iter().copied()),
        Err(BddError::NodeLimit { .. }) => usize::MAX,
    }
}

/// Bounded rebuild-based sifting: move one variable at a time through
/// every position, keep the position minimizing the live node count, and
/// stop after `max_rebuilds` candidate evaluations. Deterministic;
/// returns the refined order.
///
/// This trades the classic in-place adjacent-swap machinery for whole-
/// circuit rebuilds — asymptotically more work per candidate, but the
/// suite's circuits rebuild in microseconds-to-milliseconds and the
/// manager stays simple (no per-level unique tables, no reference
/// counting).
fn sift_order(
    compiled: &CompiledCircuit,
    library: &Library,
    mut order: Vec<usize>,
    node_limit: usize,
    max_rebuilds: usize,
) -> Vec<usize> {
    let n = order.len();
    if n < 3 || max_rebuilds == 0 {
        return order;
    }
    let mut best_cost = order_cost(compiled, library, &order, node_limit);
    let mut rebuilds = 0usize;
    // Sift each variable once, in initial root-first order (root levels
    // influence size the most). Iterate over a snapshot of variable ids,
    // not positions: applied moves shift the positions of later
    // variables, and indexing by position would skip some and re-sift
    // others.
    let vars: Vec<usize> = order.clone();
    let mut exhausted = false;
    for var in vars {
        let level = order.iter().position(|&v| v == var).expect("permutation");
        let mut best_pos = level;
        for candidate in 0..n {
            if candidate == level {
                continue;
            }
            if rebuilds >= max_rebuilds {
                exhausted = true;
                break;
            }
            let mut trial = order.clone();
            trial.remove(level);
            trial.insert(candidate, var);
            rebuilds += 1;
            let cost = order_cost(compiled, library, &trial, node_limit);
            if cost < best_cost {
                best_cost = cost;
                best_pos = candidate;
            }
        }
        // Apply even when the budget ran out mid-variable: the rebuilds
        // that found this improvement are already paid for.
        if best_pos != level {
            order.remove(level);
            order.insert(best_pos, var);
        }
        if exhausted {
            break;
        }
    }
    order
}

impl CircuitBdds {
    /// Builds BDDs for every net, gates composed in topological order.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the circuit does not fit the
    /// node budget under the chosen ordering.
    pub fn build(
        compiled: &CompiledCircuit,
        library: &Library,
        options: BuildOptions,
    ) -> Result<Self, BddError> {
        let mut order = initial_order(compiled, options.heuristic);
        if let OrderHeuristic::Sifted { max_rebuilds } = options.heuristic {
            order = sift_order(compiled, library, order, options.node_limit, max_rebuilds);
        }
        let (manager, roots) = build_roots(compiled, library, &order, options.node_limit)?;
        let mut level_of_pi = vec![0usize; order.len()];
        for (level, &pos) in order.iter().enumerate() {
            level_of_pi[pos] = level;
        }
        Ok(CircuitBdds {
            manager,
            roots,
            order,
            level_of_pi,
        })
    }

    /// The underlying manager (read-only).
    pub fn manager(&self) -> &Bdd {
        &self.manager
    }

    /// The BDD root of a net.
    pub fn root(&self, net: NetId) -> Edge {
        self.roots[net.0]
    }

    /// The chosen variable order: `order()[level]` is the primary-input
    /// position at that level.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The inverse permutation of [`CircuitBdds::order`]: the manager
    /// level a primary input (by position) was assigned to.
    pub fn level_of_pi(&self, position: usize) -> usize {
        self.level_of_pi[position]
    }

    /// Size and cache statistics.
    pub fn stats(&self) -> CircuitBddStats {
        CircuitBddStats {
            allocated_nodes: self.manager.node_count(),
            live_nodes: self.manager.live_size(self.roots.iter().copied()),
            cache: self.manager.cache_stats(),
        }
    }

    /// Exact `(P, D)` statistics for every net, given per-primary-input
    /// statistics (independent primary inputs — the paper's §3.1 signal
    /// model; *internal* correlation from reconvergent fanout is exact).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if a Boolean difference exceeds
    /// the node budget.
    ///
    /// # Panics
    ///
    /// Panics if `pi_stats.len()` differs from the primary-input count.
    pub fn exact_stats(&mut self, pi_stats: &[SignalStats]) -> Result<Vec<SignalStats>, BddError> {
        assert_eq!(
            pi_stats.len(),
            self.order.len(),
            "one SignalStats per primary input"
        );
        // Per-level views of the input statistics.
        let probs: Vec<f64> = self
            .order
            .iter()
            .map(|&pos| pi_stats[pos].probability())
            .collect();
        let dens: Vec<f64> = self
            .order
            .iter()
            .map(|&pos| pi_stats[pos].density())
            .collect();

        // One probability cache for the whole pass: probabilities are a
        // property of (node, probs), and probs is fixed here.
        let mut p_cache: HashMap<u32, f64> = HashMap::new();
        let mut seen = vec![false; self.order.len()];
        let mut visited: Vec<bool> = Vec::new();
        let mut out = Vec::with_capacity(self.roots.len());
        for i in 0..self.roots.len() {
            let root = self.roots[i];
            let p = self.manager.probability(root, &probs, &mut p_cache);
            self.manager.support_into(root, &mut seen, &mut visited);
            let mut d = 0.0f64;
            for level in 0..self.order.len() {
                if !seen[level] || dens[level] == 0.0 {
                    continue;
                }
                let diff = self.manager.boolean_difference(root, level)?;
                if diff == Edge::ZERO {
                    continue;
                }
                d += self.manager.probability(diff, &probs, &mut p_cache) * dens[level];
            }
            out.push(SignalStats::new(p, d.max(0.0)));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_gatelib::{CellKind, Library};
    use tr_netlist::{generators, Circuit};

    fn compiled(circuit: &Circuit, lib: &Library) -> CompiledCircuit {
        CompiledCircuit::compile(circuit, lib).expect("valid circuit")
    }

    fn build(circuit: &Circuit, lib: &Library) -> CircuitBdds {
        CircuitBdds::build(&compiled(circuit, lib), lib, BuildOptions::default())
            .expect("fits the node budget")
    }

    #[test]
    fn roots_agree_with_functional_evaluation() {
        let lib = Library::standard();
        let c = generators::array_multiplier(3, &lib);
        let cc = compiled(&c, &lib);
        let bdds = build(&c, &lib);
        for m in 0..(1usize << 6) {
            let v: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
            let nets = cc.evaluate(&lib, &v);
            // The BDD assignment is per *level*; permute through order().
            let mut by_level = vec![false; 6];
            for (level, &pos) in bdds.order().iter().enumerate() {
                by_level[level] = v[pos];
            }
            for (net, &want) in nets.iter().enumerate() {
                assert_eq!(
                    bdds.manager()
                        .eval(bdds.root(tr_netlist::NetId(net)), &by_level),
                    want,
                    "net {net} at inputs {m:06b}"
                );
            }
        }
    }

    #[test]
    fn reconvergence_is_exact() {
        // y = NAND(a, a) = ¬a: probability must be 1 − P(a), and the BDD
        // must literally be the complement of a's.
        let lib = Library::standard();
        let mut c = Circuit::new("reconv");
        let a = c.add_input("a");
        let (_, y) = c.add_gate(CellKind::Nand(2), vec![a, a], "y");
        c.mark_output(y);
        let mut bdds = build(&c, &lib);
        assert_eq!(bdds.root(y), bdds.root(a).complement());
        let stats = bdds.exact_stats(&[SignalStats::new(0.3, 2.0e5)]).unwrap();
        assert!((stats[y.0].probability() - 0.7).abs() < 1e-15);
        assert!((stats[y.0].density() - 2.0e5).abs() < 1e-9);
    }

    #[test]
    fn stats_match_truth_table_exact_on_small_circuit() {
        // c17 has 5 inputs: tr_power::propagate_exact applies, and so
        // does a hand truth-table check of probabilities here.
        let lib = Library::standard();
        let c = tr_netlist::map::map_default(&tr_netlist::bench::c17(), &lib);
        let cc = compiled(&c, &lib);
        let mut bdds = build(&c, &lib);
        let pi: Vec<SignalStats> = (0..5)
            .map(|i| SignalStats::new(0.1 + 0.17 * i as f64, 1.0e5 * (i + 1) as f64))
            .collect();
        let stats = bdds.exact_stats(&pi).unwrap();
        // Brute-force probability per net from the truth table.
        for (net, got) in stats.iter().enumerate() {
            let mut want = 0.0f64;
            for m in 0..(1usize << 5) {
                let v: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
                if cc.evaluate(&lib, &v)[net] {
                    let mut term = 1.0;
                    for (i, &bit) in v.iter().enumerate() {
                        let p = pi[i].probability();
                        term *= if bit { p } else { 1.0 - p };
                    }
                    want += term;
                }
            }
            assert!(
                (got.probability() - want).abs() < 1e-12,
                "net {net}: {} vs {want}",
                got.probability()
            );
        }
    }

    #[test]
    fn no_input_cap() {
        // 33 primary inputs — beyond MAX_VARS=16; BDDs handle it easily.
        let lib = Library::standard();
        let c = generators::ripple_carry_adder(16, &lib);
        let mut bdds = build(&c, &lib);
        let pi = vec![SignalStats::new(0.5, 0.5); 33];
        let stats = bdds.exact_stats(&pi).unwrap();
        assert_eq!(stats.len(), c.net_count());
        // The final carry has probability 1/2 by symmetry of addition.
        let cout = c.primary_outputs()[16];
        assert!((stats[cout.0].probability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fanin_dfs_beats_topological_on_the_adder() {
        // Declaration order (a0..a15, b0..b15, cin) separates the operand
        // bits each carry needs; fanin DFS interleaves them. The live
        // node count should improve materially.
        let lib = Library::standard();
        let c = generators::ripple_carry_adder(16, &lib);
        let cc = compiled(&c, &lib);
        let dfs = CircuitBdds::build(
            &cc,
            &lib,
            BuildOptions {
                heuristic: OrderHeuristic::FaninDfs,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let topo = CircuitBdds::build(
            &cc,
            &lib,
            BuildOptions {
                heuristic: OrderHeuristic::Topological,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        assert!(
            dfs.stats().live_nodes * 2 < topo.stats().live_nodes,
            "fanin-DFS {} vs topological {}",
            dfs.stats().live_nodes,
            topo.stats().live_nodes
        );
    }

    #[test]
    fn sifting_never_worsens_and_is_deterministic() {
        let lib = Library::standard();
        let c = generators::comparator(6, &lib);
        let cc = compiled(&c, &lib);
        let base = CircuitBdds::build(
            &cc,
            &lib,
            BuildOptions {
                heuristic: OrderHeuristic::Topological,
                ..BuildOptions::default()
            },
        )
        .unwrap();
        let build_sifted = || {
            CircuitBdds::build(
                &cc,
                &lib,
                BuildOptions {
                    heuristic: OrderHeuristic::Sifted { max_rebuilds: 60 },
                    ..BuildOptions::default()
                },
            )
            .unwrap()
        };
        let sifted = build_sifted();
        assert!(sifted.stats().live_nodes <= base.stats().live_nodes);
        assert_eq!(sifted.order(), build_sifted().order());
        // Sifting must not change any function: spot-check evaluation.
        let n = cc.primary_inputs().len();
        for m in [0usize, 0x155, 0xFFF, 0x9A5] {
            let v: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            let nets = cc.evaluate(&lib, &v);
            let mut by_level = vec![false; n];
            for (level, &pos) in sifted.order().iter().enumerate() {
                by_level[level] = v[pos];
            }
            for (net, &want) in nets.iter().enumerate() {
                assert_eq!(
                    sifted
                        .manager()
                        .eval(sifted.root(tr_netlist::NetId(net)), &by_level),
                    want
                );
            }
        }
    }

    #[test]
    fn node_limit_surfaces_as_error() {
        let lib = Library::standard();
        let c = generators::array_multiplier(6, &lib);
        let cc = compiled(&c, &lib);
        let err = CircuitBdds::build(
            &cc,
            &lib,
            BuildOptions {
                node_limit: 64,
                ..BuildOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, BddError::NodeLimit { limit: 64 });
    }
}
