//! The shared ROBDD manager: node pool, unique table, memoized ITE,
//! mark-and-sweep garbage collection.
//!
//! Design notes, for readers coming from the textbook presentation:
//!
//! * **Complement edges** (Brace–Rudell–Bryant): an [`Edge`] is a node
//!   index plus a complement bit, so negation is free and `f`/`¬f` share
//!   every node. Canonical form: the *high* (then) edge of a stored node
//!   is never complemented; [`Bdd::mk`] re-roots and complements the
//!   result edge when it would be.
//! * **Variables are levels**: the manager orders variables by their
//!   index, so variable `0` is always the root level. Callers pick the
//!   ordering by deciding which circuit input each manager variable
//!   stands for (see [`crate::order`]).
//! * **One terminal**: node `0` is the constant `1`; `0` is its
//!   complement. The terminal's `var` is [`TERMINAL_VAR`], which sorts
//!   below every real level.
//! * **Node pool**: nodes live in a struct-of-arrays pool (`vars` /
//!   `lows` / `highs`, each a flat `Vec<u32>`), indexed by the edge's
//!   node index. Dead slots are threaded into a free list (next pointer
//!   stored in `lows`) and recycled by the allocator, so a long build
//!   touches a working set near its *live* size, not its allocation
//!   total.
//! * **Unique table**: a custom open-addressed hash table (power-of-two
//!   capacity, multiplicative hashing, linear probing, no tombstones).
//!   Slots store only the node index; key comparison reads the pool, so
//!   the table is rebuilt — never patched — whenever pool contents
//!   change wholesale (garbage collection, level swaps).
//! * **Operation caches**: ITE, restrict and Boolean-difference results
//!   go through direct-mapped caches — lossy by design, no allocation
//!   per operation — that start small and double with the node pool up
//!   to a fixed cap. [`Bdd::cache_stats`] exposes the hit counters that
//!   EXPERIMENTS.md reports.
//! * **Garbage collection**: mark-and-sweep from the *registered roots*
//!   ([`Bdd::protect`]). Collection never runs behind the caller's back:
//!   it happens only in [`Bdd::gc`] and [`Bdd::maybe_gc`], which callers
//!   (the whole-circuit engine in [`crate::circuit`]) invoke at safe
//!   points where every edge they still need is protected; `maybe_gc`
//!   fires once the live count crosses an adaptive trigger (a multiple
//!   of the last collection's survivor count, floored at the
//!   configurable threshold). A collection recycles dead nodes into the
//!   free list, rebuilds the unique table and clears the operation
//!   caches (whose entries may reference recycled indices). **Any
//!   unprotected edge is invalidated by a collection.**
//! * **Node budget**: [`BddError::NodeLimit`] now fires on the *live*
//!   node count (allocated minus recycled), not the historical
//!   allocation total — dead intermediates that a collection can reclaim
//!   no longer count against the budget.

use std::fmt;
use tr_boolean::govern::{Governor, Interrupted};

/// Level assigned to the terminal node: sorts after every real variable.
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// Level marking a pool slot as free (on the free list, awaiting reuse).
const FREE_VAR: u32 = u32::MAX - 1;

/// Sentinel for "no index" in the free list and unique table.
const NIL: u32 = u32::MAX;

/// Unique-table capacity floor (slots).
const MIN_TABLE_CAPACITY: usize = 1 << 10;

/// Direct-mapped cache size bounds (entries). The caches start at the
/// minimum and double as the node pool grows (a 6-gate circuit must not
/// pay a 20-MB memset; `mult8`-scale managers want every slot), capped
/// at the maximum. The ITE cache carries the bulk of the memoization
/// traffic; restrict feeds the Boolean-difference loop; the difference
/// cache holds only top-level `(f, var)` results.
const ITE_CACHE_MIN: usize = 1 << 12;
const ITE_CACHE_MAX: usize = 1 << 20;
const RESTRICT_CACHE_MIN: usize = 1 << 11;
const RESTRICT_CACHE_MAX: usize = 1 << 19;
const DIFF_CACHE_MIN: usize = 1 << 10;
const DIFF_CACHE_MAX: usize = 1 << 16;

/// Default live-node floor below which [`Bdd::maybe_gc`] never collects.
/// Collecting clears the operation caches (their entries may reference
/// recycled indices), so eager collection trades cache hits for memory;
/// two-million-node pools (~24 MB) are cheap enough to let garbage ride
/// until the working set is genuinely large.
pub const DEFAULT_GC_THRESHOLD: usize = 1 << 21;

/// After a collection the next one arms at this multiple of the
/// surviving live count (floored at the threshold): garbage must
/// dominate the pool again before another cache-clearing sweep pays.
const GC_GROWTH_FACTOR: usize = 4;

/// Floor for [`apportioned_gc_threshold`]: even with hundreds of
/// coexisting engines, collecting below ~16k live nodes costs more in
/// cleared caches than it recovers in memory.
const APPORTIONED_GC_FLOOR: usize = 1 << 14;

/// The GC threshold each of `engines` concurrently live managers should
/// use so their *combined* uncollected garbage stays near one
/// [`DEFAULT_GC_THRESHOLD`], instead of `engines` times it.
///
/// The default threshold assumes one manager owns the process: two
/// million nodes (~24 MB) of garbage are allowed to ride before the
/// first cache-clearing sweep. A partitioned statistics pass runs one
/// manager per pool worker — with N workers at the default floor the
/// fleet could hold N×2M dead nodes before any engine collects. Callers
/// that know how many engines coexist divide the budget here (floored,
/// so tiny shares don't thrash the operation caches).
pub fn apportioned_gc_threshold(engines: usize) -> usize {
    (DEFAULT_GC_THRESHOLD / engines.max(1)).max(APPORTIONED_GC_FLOOR)
}

/// Errors from BDD construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// The *live* node count reached the configured limit; the function
    /// being built is too large under the current variable ordering even
    /// after garbage collection.
    NodeLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// The manager's [`Governor`] tripped (cancellation, deadline or a
    /// deterministic work-limit trip point) mid-operation. The pool and
    /// unique table stay consistent — protected roots are untouched and
    /// any half-built intermediates are ordinary garbage for the next
    /// collection — so the manager remains fully usable.
    ///
    /// Boxed so the error variant does not widen `Result<Edge, BddError>`
    /// on the ITE hot path (a fat error would push every recursive
    /// return through memory).
    Interrupted(Box<Interrupted>),
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit { limit } => {
                write!(f, "BDD node limit of {limit} live nodes exceeded")
            }
            BddError::Interrupted(i) => write!(f, "{i}"),
        }
    }
}

impl std::error::Error for BddError {}

impl From<Interrupted> for BddError {
    fn from(i: Interrupted) -> Self {
        BddError::Interrupted(Box::new(i))
    }
}

/// Zero-sized "the governor tripped" marker used inside the density
/// walk's recursion, so its `Result<f64, Tripped>` stays two machine
/// words and returns in registers. Converted to the full
/// [`BddError::Interrupted`] at the walk's public entry point.
struct Tripped;

/// A reference to a BDD function: node index plus complement bit.
///
/// Copyable and 4 bytes; negation ([`Edge::complement`]) costs one XOR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge(u32);

impl Edge {
    /// The constant-true function.
    pub const ONE: Edge = Edge(0);
    /// The constant-false function (complement of the terminal).
    pub const ZERO: Edge = Edge(1);

    #[inline]
    fn new(index: u32, complemented: bool) -> Self {
        Edge(index << 1 | u32::from(complemented))
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    #[inline]
    pub(crate) fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// `¬f`, for free.
    #[inline]
    #[must_use]
    pub fn complement(self) -> Self {
        Edge(self.0 ^ 1)
    }

    /// Whether this is one of the two constant functions.
    pub fn is_constant(self) -> bool {
        self.index() == 0
    }

    /// The raw key used in cache tables.
    #[inline]
    fn key(self) -> u32 {
        self.0
    }
}

/// Cache hit/lookup counters, exposed for EXPERIMENTS.md and tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// ITE cache probes.
    pub ite_lookups: u64,
    /// ITE cache probes that hit.
    pub ite_hits: u64,
    /// Restrict/Boolean-difference cache probes.
    pub restrict_lookups: u64,
    /// Restrict/Boolean-difference cache probes that hit.
    pub restrict_hits: u64,
}

impl CacheStats {
    /// Combined hit fraction over both op caches (0 when nothing was
    /// probed) — the headline number for the report's `perf` block.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.ite_lookups + self.restrict_lookups;
        if lookups == 0 {
            0.0
        } else {
            (self.ite_hits + self.restrict_hits) as f64 / lookups as f64
        }
    }
}

/// Garbage-collection counters ([`Bdd::gc_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Completed mark-and-sweep collections.
    pub runs: u64,
    /// Nodes recycled onto the free list, summed over all collections.
    pub freed: u64,
    /// High-water mark of the live node count.
    pub peak_live: usize,
}

/// One coherent snapshot of the engine's health ([`Bdd::engine_stats`]):
/// the op-cache and GC counters that previously had to be read through
/// two separate calls (and could drift between them), plus the live and
/// all-time node counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Op-cache hit/lookup counters.
    pub caches: CacheStats,
    /// Collection counters, including the live-node high-water mark.
    pub gc: GcStats,
    /// Live nodes right now (allocated minus recycled, incl. terminal).
    pub live: usize,
    /// All-time allocation count (recycled slots count once per reuse).
    pub allocated_total: u64,
}

/// GC-epoch tracker shared by every external memo keyed on node indices
/// ([`DensityScratch`], [`ProbScratch`]): a collection recycles indices,
/// so any memoized value may alias a different node afterwards.
#[derive(Debug, Clone, Copy, Default)]
struct GcEpoch {
    runs: u64,
}

impl GcEpoch {
    /// Catches up with the manager's collection count; returns whether a
    /// collection has run since the previous call (= the memo is stale).
    fn stale(&mut self, bdd: &Bdd) -> bool {
        if self.runs == bdd.gc.runs {
            false
        } else {
            self.runs = bdd.gc.runs;
            true
        }
    }
}

/// Direct-mapped ITE cache entry (`a == NIL` marks an empty slot).
#[derive(Clone, Copy)]
struct Ite4 {
    a: u32,
    b: u32,
    c: u32,
    r: u32,
}

const ITE4_EMPTY: Ite4 = Ite4 {
    a: NIL,
    b: 0,
    c: 0,
    r: 0,
};

/// Direct-mapped restrict/difference cache entry (`f == NIL` is empty;
/// `k` packs `var << 1 | val` for restrict and plain `var` for the
/// difference cache).
#[derive(Clone, Copy)]
struct Memo2 {
    f: u32,
    k: u32,
    r: u32,
}

const MEMO2_EMPTY: Memo2 = Memo2 { f: NIL, k: 0, r: 0 };

/// Multiplicative triple hash for the unique table and op caches: three
/// odd-constant multiplies folded with a final avalanche, so power-of-two
/// masking sees well-mixed high bits. No SipHash, no allocation.
#[inline]
fn hash3(a: u32, b: u32, c: u32) -> usize {
    let h = (u64::from(a)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (u64::from(b)).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (u64::from(c)).wrapping_mul(0x1656_67B1_9E37_79F9);
    let h = (h ^ (h >> 31)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    (h >> 32) as usize
}

/// Epoch-stamped visited set over the node pool, for traversals that
/// repeat across many roots ([`Bdd::support_into`]). Bumping the epoch
/// invalidates every mark in O(1) — no per-call memset of a pool-sized
/// bitmap, which dominated the statistics pass on large managers.
#[derive(Debug, Clone, Default)]
pub struct VisitScratch {
    stamp: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
}

impl VisitScratch {
    /// Empty scratch; storage grows to the pool size on first use.
    pub fn new() -> Self {
        VisitScratch::default()
    }

    /// Starts a fresh traversal over a pool of `n` slots.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale stamps could collide with the new epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.stack.clear();
    }

    /// Marks `idx`; returns whether this was the first visit.
    #[inline]
    fn visit(&mut self, idx: usize) -> bool {
        if self.stamp[idx] == self.epoch {
            false
        } else {
            self.stamp[idx] = self.epoch;
            true
        }
    }
}

/// Direct-mapped probability-memo entry for [`DensityScratch`]
/// (`a == NIL` marks an empty slot).
#[derive(Clone, Copy)]
struct PairP {
    a: u32,
    b: u32,
    p: f64,
}

const PAIRP_EMPTY: PairP = PairP {
    a: NIL,
    b: 0,
    p: 0.0,
};

/// Memo size bounds for [`Bdd::difference_probability`] (sized to the
/// manager's pool on first use, like the op caches): the XOR-pair memo
/// walks the product of two cofactor graphs, the descent memo one
/// `(node, variable)` pair per level above the differenced variable.
const XOR_MEMO_MIN: usize = 1 << 10;
const XOR_MEMO_MAX: usize = 1 << 18;
const DIFF_MEMO_MIN: usize = 1 << 10;
const DIFF_MEMO_MAX: usize = 1 << 17;

/// Reusable scratch for [`Bdd::difference_probability`]: two
/// direct-mapped probability memos (lossy, fixed-size, no allocation
/// per query).
///
/// Values stay valid across calls **only** for an identical probability
/// vector; call [`DensityScratch::reset`] when the probabilities
/// change. A garbage collection in the manager invalidates the scratch
/// automatically (recycled node indices would otherwise alias stale
/// entries).
#[derive(Clone)]
pub struct DensityScratch {
    xor_memo: Vec<PairP>,
    diff_memo: Vec<PairP>,
    epoch: GcEpoch,
}

impl fmt::Debug for DensityScratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DensityScratch").finish_non_exhaustive()
    }
}

impl Default for DensityScratch {
    fn default() -> Self {
        DensityScratch::new()
    }
}

impl DensityScratch {
    /// Empty scratch; the memos are sized to the manager's pool on
    /// first use.
    pub fn new() -> Self {
        DensityScratch {
            xor_memo: Vec::new(),
            diff_memo: Vec::new(),
            epoch: GcEpoch::default(),
        }
    }

    /// Drops all memoized values (required when the probability vector
    /// changes between calls).
    pub fn reset(&mut self) {
        self.xor_memo.fill(PAIRP_EMPTY);
        self.diff_memo.fill(PAIRP_EMPTY);
    }

    /// Sizes the memos for `bdd`'s pool (growing only, pow-2, clamped)
    /// and invalidates the scratch if the manager has collected since
    /// the last call.
    fn prepare(&mut self, bdd: &Bdd) {
        if self.epoch.stale(bdd) {
            self.reset();
        }
        let pool = bdd.vars.len();
        let xor_want = (pool * 2)
            .next_power_of_two()
            .clamp(XOR_MEMO_MIN, XOR_MEMO_MAX);
        if self.xor_memo.len() < xor_want {
            self.xor_memo = vec![PAIRP_EMPTY; xor_want];
        }
        let diff_want = pool.next_power_of_two().clamp(DIFF_MEMO_MIN, DIFF_MEMO_MAX);
        if self.diff_memo.len() < diff_want {
            self.diff_memo = vec![PAIRP_EMPTY; diff_want];
        }
    }
}

/// Reusable scratch for [`Bdd::probability`]: per-node probabilities in
/// a flat, epoch-stamped array instead of a fresh `HashMap` per call
/// (mirroring `tr_reorder`'s `Scratch` pattern).
///
/// Values stay valid across calls **only** for an identical probability
/// vector; call [`ProbScratch::reset`] when the probabilities change. A
/// garbage collection in the manager invalidates the scratch
/// automatically (recycled node indices would otherwise alias stale
/// entries).
#[derive(Debug, Clone, Default)]
pub struct ProbScratch {
    values: Vec<f64>,
    stamp: Vec<u32>,
    stamp_epoch: u32,
    epoch: GcEpoch,
}

impl ProbScratch {
    /// Empty scratch; storage grows to the pool size on first use.
    pub fn new() -> Self {
        ProbScratch {
            values: Vec::new(),
            stamp: Vec::new(),
            stamp_epoch: 1,
            epoch: GcEpoch::default(),
        }
    }

    /// Drops all memoized values (required when the probability vector
    /// changes between calls).
    pub fn reset(&mut self) {
        self.stamp_epoch = self.stamp_epoch.wrapping_add(1);
        if self.stamp_epoch == 0 {
            // Wrapped: stale stamps could collide with the new epoch.
            self.stamp.fill(0);
            self.stamp_epoch = 1;
        }
    }

    /// Sizes the scratch for `bdd`'s pool and invalidates it if the
    /// manager has collected since the last call.
    fn prepare(&mut self, bdd: &Bdd) {
        if self.epoch.stale(bdd) {
            self.reset();
        }
        let n = bdd.vars.len();
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.values.resize(n, 0.0);
        }
    }
}

/// A reduced-ordered BDD manager with complement edges, recycled nodes
/// and a mark-and-sweep collector.
///
/// # Example
///
/// ```
/// use tr_bdd::{Bdd, Edge};
///
/// let mut bdd = Bdd::new(2);
/// let a = bdd.var(0);
/// let b = bdd.var(1);
/// let f = bdd.and(a, b).unwrap();
/// assert_eq!(bdd.eval(f, &[true, true]), true);
/// assert_eq!(bdd.eval(f, &[true, false]), false);
/// // Complementation is free and canonical:
/// let g = bdd.or(a.complement(), b.complement()).unwrap();
/// assert_eq!(g, f.complement());
/// ```
#[derive(Clone)]
pub struct Bdd {
    /// Node levels; `TERMINAL_VAR` for the terminal, `FREE_VAR` for
    /// recycled slots.
    vars: Vec<u32>,
    /// Low (else) edges, raw bits; next-free index for recycled slots.
    lows: Vec<u32>,
    /// High (then) edges, raw bits — never complemented.
    highs: Vec<u32>,
    /// Head of the free list (`NIL` when empty).
    free_head: u32,
    /// Open-addressed unique table: node indices, `NIL` marks empty.
    table: Vec<u32>,
    table_mask: usize,
    table_occupied: usize,
    ite_cache: Vec<Ite4>,
    restrict_cache: Vec<Memo2>,
    diff_cache: Vec<Memo2>,
    /// External roots for mark-and-sweep (see [`Bdd::protect`]).
    roots: Vec<Edge>,
    /// Mark bitmap scratch reused across collections.
    mark: Vec<bool>,
    n_vars: usize,
    node_limit: usize,
    /// Live nodes: allocated minus recycled (includes the terminal).
    live: usize,
    /// All-time allocation count (each free-list reuse counts again).
    total_allocated: u64,
    /// Level swaps leave ordering-dependent cache entries behind; the
    /// next operation that would read them clears lazily (so a sifting
    /// pass of hundreds of swaps pays one clear, not hundreds).
    caches_stale: bool,
    /// Live-count floor below which [`Bdd::maybe_gc`] stays idle.
    gc_threshold: usize,
    /// Live count that arms the next threshold-triggered collection.
    next_gc: usize,
    stats: CacheStats,
    gc: GcStats,
    /// Optional cooperative-cancellation governor, consulted (amortized)
    /// on every node get-or-create and every probability-walk visit.
    governor: Option<Governor>,
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bdd")
            .field("n_vars", &self.n_vars)
            .field("live", &self.live)
            .field("total_allocated", &self.total_allocated)
            .field("node_limit", &self.node_limit)
            .field("roots", &self.roots.len())
            .field("gc", &self.gc)
            .finish_non_exhaustive()
    }
}

/// Default node limit: generous for the benchmark suite (the largest
/// circuits peak in the hundreds of thousands of live nodes) while
/// bounding memory to well under a gigabyte in the worst case. The limit
/// counts **live** nodes; garbage awaiting collection is free.
pub const DEFAULT_NODE_LIMIT: usize = 8_000_000;

impl Bdd {
    /// A manager over `n_vars` variables with the default node limit.
    pub fn new(n_vars: usize) -> Self {
        Bdd::with_node_limit(n_vars, DEFAULT_NODE_LIMIT)
    }

    /// A manager with an explicit node limit (construction returns
    /// [`BddError::NodeLimit`] once the *live* node count reaches it).
    pub fn with_node_limit(n_vars: usize, node_limit: usize) -> Self {
        Bdd {
            vars: vec![TERMINAL_VAR],
            lows: vec![Edge::ONE.key()],
            highs: vec![Edge::ONE.key()],
            free_head: NIL,
            table: vec![NIL; MIN_TABLE_CAPACITY],
            table_mask: MIN_TABLE_CAPACITY - 1,
            table_occupied: 0,
            ite_cache: vec![ITE4_EMPTY; ITE_CACHE_MIN],
            restrict_cache: vec![MEMO2_EMPTY; RESTRICT_CACHE_MIN],
            diff_cache: vec![MEMO2_EMPTY; DIFF_CACHE_MIN],
            roots: Vec::new(),
            mark: Vec::new(),
            n_vars,
            node_limit,
            live: 1,
            total_allocated: 1,
            caches_stale: false,
            gc_threshold: DEFAULT_GC_THRESHOLD,
            next_gc: DEFAULT_GC_THRESHOLD,
            stats: CacheStats::default(),
            gc: GcStats {
                runs: 0,
                freed: 0,
                peak_live: 1,
            },
            governor: None,
        }
    }

    /// Attaches (or detaches, with `None`) a cooperative [`Governor`]:
    /// subsequent node creation and probability walks check it every
    /// ~4k operations and return [`BddError::Interrupted`] once it
    /// trips. Interruption never corrupts the manager — see
    /// [`BddError::Interrupted`].
    pub fn set_governor(&mut self, governor: Option<Governor>) {
        self.governor = governor;
    }

    /// The attached governor, if any.
    pub fn governor(&self) -> Option<&Governor> {
        self.governor.as_ref()
    }

    /// Amortized governor check, tagged with the BDD phase.
    #[inline]
    fn govern_check(&self) -> Result<(), BddError> {
        match &self.governor {
            None => Ok(()),
            Some(g) => g.check("bdd").map_err(BddError::from),
        }
    }

    /// Amortized governor check for the density walk's hot recursion:
    /// the error is a zero-sized marker so `Result<f64, Tripped>` still
    /// returns in registers; [`Bdd::trip_error`] rebuilds the real
    /// [`Interrupted`] at the walk's entry point.
    #[inline]
    fn govern_poll(&self) -> Result<(), Tripped> {
        match &self.governor {
            None => Ok(()),
            Some(g) => g.check("bdd").map_err(|_| Tripped),
        }
    }

    /// Materializes the [`BddError::Interrupted`] a [`Tripped`] marker
    /// stands for. Every trip condition is monotone (a cancelled token
    /// stays cancelled, a passed deadline stays passed, the work counter
    /// only grows), so re-consulting the governor reproduces the trip.
    fn trip_error(&self) -> BddError {
        match self.governor.as_ref().map(|g| g.check_now("bdd")) {
            Some(Err(i)) => BddError::from(i),
            _ => unreachable!("density walk aborted without a tripped governor"),
        }
    }

    /// Number of variables in the ordering.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Live nodes currently in the store (allocated minus recycled,
    /// including the terminal).
    pub fn node_count(&self) -> usize {
        self.live
    }

    /// All-time allocation count (recycled slots count once per reuse) —
    /// together with [`Bdd::node_count`] this tells the garbage story.
    pub fn allocated_total(&self) -> u64 {
        self.total_allocated
    }

    /// Cache hit/lookup counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Garbage-collection counters so far.
    pub fn gc_stats(&self) -> GcStats {
        self.gc
    }

    /// One coherent snapshot of caches, GC counters, peak and current
    /// live nodes — prefer this over separate [`Bdd::cache_stats`] /
    /// [`Bdd::gc_stats`] / [`Bdd::node_count`] calls, which can drift
    /// apart when operations run in between.
    pub fn engine_stats(&self) -> EngineStats {
        EngineStats {
            caches: self.stats,
            gc: self.gc,
            live: self.live,
            allocated_total: self.total_allocated,
        }
    }

    /// Registers `e` as a root: it and everything reachable from it
    /// survive garbage collection. Roots accumulate for the manager's
    /// lifetime (the whole-circuit engine registers one per net).
    pub fn protect(&mut self, e: Edge) {
        self.roots.push(e);
    }

    /// Removes one occurrence of `e` from the root set (the reverse of
    /// [`Bdd::protect`]), so incremental rebuilds can release a replaced
    /// net's edge without leaking it across the manager's lifetime.
    /// Returns whether an occurrence was found; duplicate registrations
    /// (two nets sharing one hash-consed function) are removed one at a
    /// time, matching their one-`protect`-per-net registration.
    pub fn unprotect(&mut self, e: Edge) -> bool {
        if let Some(i) = self.roots.iter().position(|&r| r == e) {
            self.roots.swap_remove(i);
            true
        } else {
            debug_assert!(
                false,
                "unprotect without a matching protect: {e:?} is not a registered root \
                 (a protect/unprotect imbalance leaks roots or frees live nodes)"
            );
            false
        }
    }

    /// Number of registered roots (one per [`Bdd::protect`] not yet
    /// reversed by [`Bdd::unprotect`]) — lets incremental users assert
    /// their protect/unprotect bookkeeping stays balanced.
    pub fn protected_count(&self) -> usize {
        self.roots.len()
    }

    /// Sets the live-count floor below which [`Bdd::maybe_gc`] never
    /// collects, and re-arms the trigger against it: raising the floor
    /// postpones the next collection, lowering it to the current live
    /// count (or below) makes the next safe point collect. Tiny values
    /// force frequent collections (useful for stress-testing GC
    /// transparency); the default is [`DEFAULT_GC_THRESHOLD`].
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.gc_threshold = threshold.max(1);
        self.next_gc = self.gc_threshold.max(self.live);
    }

    /// Replaces the live-node budget for subsequent construction.
    /// Lowering it below the current live count does not free anything;
    /// the next allocation that finds `live >= limit` fails.
    pub fn set_node_limit(&mut self, node_limit: usize) {
        self.node_limit = node_limit;
    }

    /// Returns the manager to its just-constructed state over `n_vars`
    /// variables **without deallocating**: the node pool, unique table,
    /// operation caches and mark bitmap all keep their grown capacity, so
    /// a pool worker can evaluate hundreds of regions through one engine
    /// with zero steady-state allocation (the same pattern as
    /// `optimize_with_scratch`).
    ///
    /// Every previously returned [`Edge`] is invalidated, all roots are
    /// dropped, and the GC epoch advances so caller-held [`ProbScratch`]/
    /// [`DensityScratch`] values self-invalidate on their next use.
    /// Cache/GC *counters* keep accumulating across resets (they tell the
    /// engine's whole-lifetime story); the governor stays attached.
    pub fn reset(&mut self, n_vars: usize) {
        self.vars.truncate(1);
        self.lows.truncate(1);
        self.highs.truncate(1);
        self.free_head = NIL;
        // Keep the grown table: re-filling in place beats reallocating,
        // and an over-sized table only lowers the load factor.
        self.table.fill(NIL);
        self.table_occupied = 0;
        self.ite_cache.fill(ITE4_EMPTY);
        self.restrict_cache.fill(MEMO2_EMPTY);
        self.diff_cache.fill(MEMO2_EMPTY);
        self.roots.clear();
        self.live = 1;
        self.caches_stale = false;
        self.next_gc = self.gc_threshold;
        self.n_vars = n_vars;
        // Advance the GC epoch: external scratches key their memoized
        // node values to it, and every node index they memoized is now
        // dangling.
        self.gc.runs += 1;
    }

    /// Collects garbage if the growth policy asks for it: the live
    /// count crossing the adaptive trigger (four times the live size
    /// after the previous collection, floored at the configured
    /// threshold). Returns whether a collection ran.
    ///
    /// Call only at safe points: **every** edge still needed must be
    /// reachable from a [`Bdd::protect`]-registered root.
    pub fn maybe_gc(&mut self) -> bool {
        if self.live >= self.next_gc {
            self.gc();
            return true;
        }
        false
    }

    /// Unconditional mark-and-sweep collection from the registered
    /// roots. Recycles every unreachable node onto the free list,
    /// rebuilds the unique table and clears the operation caches.
    /// Returns the number of nodes freed.
    ///
    /// **Every unprotected edge is invalidated** — only call when all
    /// live references are registered roots (or reachable from one).
    pub fn gc(&mut self) -> usize {
        let _g = tr_trace::span!("bdd.gc", live = self.live);
        let n = self.vars.len();
        self.mark.clear();
        self.mark.resize(n, false);
        self.mark[0] = true;
        let mut stack: Vec<u32> = Vec::new();
        for i in 0..self.roots.len() {
            let idx = self.roots[i].index();
            if !self.mark[idx] {
                self.mark[idx] = true;
                stack.push(idx as u32);
            }
        }
        while let Some(idx) = stack.pop() {
            let idx = idx as usize;
            if self.vars[idx] == TERMINAL_VAR {
                continue;
            }
            let lo = Edge(self.lows[idx]).index();
            let hi = Edge(self.highs[idx]).index();
            if !self.mark[lo] {
                self.mark[lo] = true;
                stack.push(lo as u32);
            }
            if !self.mark[hi] {
                self.mark[hi] = true;
                stack.push(hi as u32);
            }
        }
        let mut freed = 0usize;
        for idx in 1..n {
            if !self.mark[idx] && self.vars[idx] != FREE_VAR {
                self.vars[idx] = FREE_VAR;
                self.lows[idx] = self.free_head;
                self.free_head = idx as u32;
                freed += 1;
            }
        }
        self.live -= freed;
        self.rebuild_table();
        self.clear_caches();
        self.next_gc = (self.live.saturating_mul(GC_GROWTH_FACTOR)).max(self.gc_threshold);
        self.gc.runs += 1;
        self.gc.freed += freed as u64;
        tr_trace::counter!("bdd.live", self.live);
        freed
    }

    /// Rebuilds the unique table from the pool (sized to twice the live
    /// count, shrinking by at most half per rebuild so capacity doesn't
    /// see-saw between collections, floored at the minimum capacity).
    /// Every live node's triple is unique by construction, so insertion
    /// never compares keys.
    fn rebuild_table(&mut self) {
        let want = (self.live * 2)
            .next_power_of_two()
            .max(self.table.len() / 2)
            .max(MIN_TABLE_CAPACITY);
        if self.table.len() == want {
            self.table.fill(NIL);
        } else {
            self.table = vec![NIL; want];
        }
        self.table_mask = want - 1;
        let mut occupied = 0usize;
        for idx in 1..self.vars.len() {
            let var = self.vars[idx];
            if var == FREE_VAR {
                continue;
            }
            let mut slot = hash3(var, self.lows[idx], self.highs[idx]) & self.table_mask;
            while self.table[slot] != NIL {
                slot = (slot + 1) & self.table_mask;
            }
            self.table[slot] = idx as u32;
            occupied += 1;
        }
        self.table_occupied = occupied;
    }

    /// Doubles the unique table. Growth itself never collects — garbage
    /// piling up is [`Bdd::maybe_gc`]'s business, and sweeping must wait
    /// for a safe point anyway (mid-operation intermediates are not
    /// rooted).
    fn grow_table(&mut self) {
        let want = self.table.len() * 2;
        let mut table = vec![NIL; want];
        let mask = want - 1;
        for &idx in &self.table {
            if idx == NIL {
                continue;
            }
            let i = idx as usize;
            let mut slot = hash3(self.vars[i], self.lows[i], self.highs[i]) & mask;
            while table[slot] != NIL {
                slot = (slot + 1) & mask;
            }
            table[slot] = idx;
        }
        self.table = table;
        self.table_mask = mask;
    }

    fn clear_caches(&mut self) {
        self.ite_cache.fill(ITE4_EMPTY);
        self.restrict_cache.fill(MEMO2_EMPTY);
        self.diff_cache.fill(MEMO2_EMPTY);
        self.caches_stale = false;
    }

    /// Clears level-swap-stale cache entries before they could be read.
    #[inline]
    fn ensure_caches_fresh(&mut self) {
        if self.caches_stale {
            self.clear_caches();
        }
    }

    /// Doubles the operation caches toward their caps as the pool
    /// grows, so small managers stay small and big builds get full-size
    /// memoization. Growing (re)clears the affected cache — lossy by
    /// contract — and is safe mid-operation: every entry is verified by
    /// its full key on lookup, so an in-flight store landing at an
    /// out-of-date slot is just a future miss.
    fn grow_caches(&mut self) {
        let ite = self
            .live
            .next_power_of_two()
            .clamp(ITE_CACHE_MIN, ITE_CACHE_MAX);
        if ite > self.ite_cache.len() {
            self.ite_cache = vec![ITE4_EMPTY; ite];
        }
        let restrict = (self.live / 2)
            .next_power_of_two()
            .clamp(RESTRICT_CACHE_MIN, RESTRICT_CACHE_MAX);
        if restrict > self.restrict_cache.len() {
            self.restrict_cache = vec![MEMO2_EMPTY; restrict];
        }
        let diff = (self.live / 8)
            .next_power_of_two()
            .clamp(DIFF_CACHE_MIN, DIFF_CACHE_MAX);
        if diff > self.diff_cache.len() {
            self.diff_cache = vec![MEMO2_EMPTY; diff];
        }
    }

    /// The single-variable function `xᵥ`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn var(&mut self, var: usize) -> Edge {
        assert!(var < self.n_vars, "variable {var} out of range");
        // Variable nodes bypass the budget: there are at most `n_vars`
        // of them, they may legitimately be re-acquired right after a
        // collection freed them, and a typed error here would force
        // every caller through a Result for a node that always fits.
        self.mk_unlimited(var as u32, Edge::ZERO, Edge::ONE)
    }

    /// Get-or-create the node `(var, low, high)`, enforcing canonicity.
    fn mk(&mut self, var: u32, low: Edge, high: Edge) -> Result<Edge, BddError> {
        if low == high {
            return Ok(low);
        }
        // Canonical form: the high edge is regular. If it is complemented,
        // store the complemented node and complement the returned edge.
        if high.is_complemented() {
            let inner = self.mk_raw(var, low.complement(), high.complement(), true)?;
            return Ok(inner.complement());
        }
        self.mk_raw(var, low, high, true)
    }

    fn mk_raw(
        &mut self,
        var: u32,
        low: Edge,
        high: Edge,
        enforce_limit: bool,
    ) -> Result<Edge, BddError> {
        debug_assert!(!high.is_complemented());
        // The unlimited path (variable nodes, level swaps) must stay
        // infallible: a half-done level swap would corrupt the order, so
        // sifting is interrupted only *between* swaps, never inside one.
        if enforce_limit {
            self.govern_check()?;
        }
        let mut slot = hash3(var, low.key(), high.key()) & self.table_mask;
        loop {
            let t = self.table[slot];
            if t == NIL {
                break;
            }
            let i = t as usize;
            if self.vars[i] == var && self.lows[i] == low.key() && self.highs[i] == high.key() {
                return Ok(Edge::new(t, false));
            }
            slot = (slot + 1) & self.table_mask;
        }
        // The budget bounds *live* nodes: garbage awaiting collection
        // has already been subtracted. (The terminal and variable nodes
        // are admitted outside this check — see `var`.)
        if enforce_limit && self.live >= self.node_limit {
            return Err(BddError::NodeLimit {
                limit: self.node_limit,
            });
        }
        let idx = self.alloc(var, low, high);
        self.table[slot] = idx;
        self.table_occupied += 1;
        // Grow at 2/3 load: linear probing stays short, and growth flags
        // a collection for the next safe point.
        if self.table_occupied * 3 >= self.table.len() * 2 {
            self.grow_table();
        }
        Ok(Edge::new(idx, false))
    }

    /// Takes a slot off the free list, or extends the pool.
    fn alloc(&mut self, var: u32, low: Edge, high: Edge) -> u32 {
        self.total_allocated += 1;
        self.live += 1;
        if self.live > self.gc.peak_live {
            self.gc.peak_live = self.live;
        }
        if self.live > self.ite_cache.len() && self.ite_cache.len() < ITE_CACHE_MAX {
            self.grow_caches();
        }
        if self.free_head != NIL {
            let idx = self.free_head;
            let i = idx as usize;
            debug_assert_eq!(self.vars[i], FREE_VAR);
            self.free_head = self.lows[i];
            self.vars[i] = var;
            self.lows[i] = low.key();
            self.highs[i] = high.key();
            return idx;
        }
        let idx = u32::try_from(self.vars.len()).expect("node count fits in u32");
        assert!(idx < u32::MAX >> 1, "node index fits in an edge");
        self.vars.push(var);
        self.lows.push(low.key());
        self.highs.push(high.key());
        idx
    }

    /// The level (variable) labelling the edge's root node.
    #[inline]
    fn level(&self, e: Edge) -> u32 {
        self.vars[e.index()]
    }

    /// Cofactors of `e` with respect to `var`, complement pushed through.
    /// `var` must be at or above `e`'s root level.
    #[inline]
    fn split(&self, e: Edge, var: u32) -> (Edge, Edge) {
        let idx = e.index();
        if self.vars[idx] != var {
            return (e, e);
        }
        let low = Edge(self.lows[idx]);
        let high = Edge(self.highs[idx]);
        if e.is_complemented() {
            (low.complement(), high.complement())
        } else {
            (low, high)
        }
    }

    /// If-then-else: the universal binary operator, memoized.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the result would exceed the
    /// node limit.
    pub fn ite(&mut self, f: Edge, g: Edge, h: Edge) -> Result<Edge, BddError> {
        // Terminal cases.
        if f == Edge::ONE {
            return Ok(g);
        }
        if f == Edge::ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Edge::ONE && h == Edge::ZERO {
            return Ok(f);
        }
        if g == Edge::ZERO && h == Edge::ONE {
            return Ok(f.complement());
        }
        // Collapse g/h that repeat f.
        let (mut f, mut g, mut h) = (f, g, h);
        if g == f {
            g = Edge::ONE;
        } else if g == f.complement() {
            g = Edge::ZERO;
        }
        if h == f {
            h = Edge::ZERO;
        } else if h == f.complement() {
            h = Edge::ONE;
        }
        if g == Edge::ONE && h == Edge::ZERO {
            return Ok(f);
        }
        if g == h {
            return Ok(g);
        }
        // Canonicalize for the cache: first argument regular, then-branch
        // regular (complement pulled out of the result).
        if f.is_complemented() {
            f = f.complement();
            std::mem::swap(&mut g, &mut h);
        }
        let negate = g.is_complemented();
        if negate {
            g = g.complement();
            h = h.complement();
        }
        self.ensure_caches_fresh();
        let slot = hash3(f.key(), g.key(), h.key()) & (self.ite_cache.len() - 1);
        self.stats.ite_lookups += 1;
        {
            let e = self.ite_cache[slot];
            if e.a == f.key() && e.b == g.key() && e.c == h.key() {
                self.stats.ite_hits += 1;
                let hit = Edge(e.r);
                return Ok(if negate { hit.complement() } else { hit });
            }
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.split(f, top);
        let (g0, g1) = self.split(g, top);
        let (h0, h1) = self.split(h, top);
        let t = self.ite(f1, g1, h1)?;
        let e = self.ite(f0, g0, h0)?;
        let result = self.mk(top, e, t)?;
        // The caches may have grown during the recursion; `slot` then
        // indexes the new, larger cache at an out-of-date position —
        // harmless for a full-key-verified lossy cache (a future miss),
        // and always in bounds (caches only grow).
        let slot = slot & (self.ite_cache.len() - 1);
        self.ite_cache[slot] = Ite4 {
            a: f.key(),
            b: g.key(),
            c: h.key(),
            r: result.key(),
        };
        Ok(if negate { result.complement() } else { result })
    }

    /// `f ∧ g`.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    pub fn and(&mut self, f: Edge, g: Edge) -> Result<Edge, BddError> {
        self.ite(f, g, Edge::ZERO)
    }

    /// `f ∨ g`.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    pub fn or(&mut self, f: Edge, g: Edge) -> Result<Edge, BddError> {
        self.ite(f, Edge::ONE, g)
    }

    /// `f ⊕ g`.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    pub fn xor(&mut self, f: Edge, g: Edge) -> Result<Edge, BddError> {
        self.ite(f, g.complement(), g)
    }

    /// The cofactor `f|ᵥₐᵣ₌ᵥₐₗ`, memoized.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn restrict(&mut self, f: Edge, var: usize, val: bool) -> Result<Edge, BddError> {
        assert!(var < self.n_vars, "variable {var} out of range");
        self.restrict_rec(f, var as u32, val)
    }

    fn restrict_rec(&mut self, f: Edge, var: u32, val: bool) -> Result<Edge, BddError> {
        let node_var = self.level(f);
        // Ordering invariant: everything below `f`'s root is labelled with
        // a larger variable, so once we pass `var` it cannot occur.
        if node_var > var {
            return Ok(f);
        }
        if node_var == var {
            let (lo, hi) = self.split(f, var);
            return Ok(if val { hi } else { lo });
        }
        let k = var << 1 | u32::from(val);
        self.ensure_caches_fresh();
        let slot = hash3(f.key(), k, 0x5EED) & (self.restrict_cache.len() - 1);
        self.stats.restrict_lookups += 1;
        {
            let e = self.restrict_cache[slot];
            if e.f == f.key() && e.k == k {
                self.stats.restrict_hits += 1;
                return Ok(Edge(e.r));
            }
        }
        let (lo, hi) = self.split(f, node_var);
        let new_lo = self.restrict_rec(lo, var, val)?;
        let new_hi = self.restrict_rec(hi, var, val)?;
        let result = self.mk(node_var, new_lo, new_hi)?;
        let slot = slot & (self.restrict_cache.len() - 1);
        self.restrict_cache[slot] = Memo2 {
            f: f.key(),
            k,
            r: result.key(),
        };
        Ok(result)
    }

    /// The Boolean difference `∂f/∂xᵥ = f|ᵥ₌₁ ⊕ f|ᵥ₌₀`, memoized.
    ///
    /// A transition of `xᵥ` propagates to `f` exactly when the remaining
    /// inputs satisfy this function — the core of Najm's density
    /// propagation.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn boolean_difference(&mut self, f: Edge, var: usize) -> Result<Edge, BddError> {
        assert!(var < self.n_vars, "variable {var} out of range");
        // The difference is complement-invariant: ∂(¬f) = ∂f. Cache on the
        // regular edge so both phases share the entry.
        let canonical = if f.is_complemented() {
            f.complement()
        } else {
            f
        };
        let k = var as u32;
        self.ensure_caches_fresh();
        let slot = hash3(canonical.key(), k, 0xD1FF) & (self.diff_cache.len() - 1);
        {
            let e = self.diff_cache[slot];
            if e.f == canonical.key() && e.k == k {
                return Ok(Edge(e.r));
            }
        }
        let hi = self.restrict_rec(canonical, k, true)?;
        let lo = self.restrict_rec(canonical, k, false)?;
        let result = self.xor(hi, lo)?;
        let slot = slot & (self.diff_cache.len() - 1);
        self.diff_cache[slot] = Memo2 {
            f: canonical.key(),
            k,
            r: result.key(),
        };
        Ok(result)
    }

    /// `P(∂f/∂xᵥ)` — the probability that a transition of `xᵥ`
    /// propagates to `f` — **without materializing the difference BDD**.
    ///
    /// [`Bdd::boolean_difference`] builds `f|ᵥ₌₁ ⊕ f|ᵥ₌₀` as nodes
    /// (restrict, restrict, XOR: unique-table inserts and garbage on
    /// every step) only for the caller to reduce it straight to one
    /// number. This walks the *pair graph* instead: descend `f` to the
    /// differenced level, then recurse over `(then, else)` cofactor
    /// pairs, combining child probabilities by the Shannon convex rule.
    /// Pure reads — no allocation, no node construction, cannot hit the
    /// node limit — with both recursions memoized in `scratch`.
    /// Complement edges fold in as `P(¬a ⊕ b) = 1 − P(a ⊕ b)`, so each
    /// unordered regular pair is computed once.
    ///
    /// This is the workhorse of the exact Najm density pass
    /// (`D(y) = Σᵥ P(∂y/∂xᵥ)·D(xᵥ)` in `CircuitBdds::exact_stats`).
    ///
    /// # Errors
    ///
    /// Returns [`BddError::Interrupted`] if an attached governor trips
    /// mid-walk (the walk allocates nothing, so interruption leaves no
    /// garbage — only a cold memo).
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars` or `probs.len() != n_vars`.
    pub fn difference_probability(
        &self,
        f: Edge,
        var: usize,
        probs: &[f64],
        prob: &mut ProbScratch,
        scratch: &mut DensityScratch,
    ) -> Result<f64, BddError> {
        assert!(var < self.n_vars, "variable {var} out of range");
        assert_eq!(probs.len(), self.n_vars, "one probability per variable");
        prob.prepare(self);
        scratch.prepare(self);
        match self.diff_prob_rec(f, var as u32, probs, prob, scratch) {
            Ok(p) => Ok(p.clamp(0.0, 1.0)),
            Err(Tripped) => Err(self.trip_error()),
        }
    }

    fn diff_prob_rec(
        &self,
        f: Edge,
        var: u32,
        probs: &[f64],
        prob: &mut ProbScratch,
        scratch: &mut DensityScratch,
    ) -> Result<f64, Tripped> {
        let node_var = self.level(f);
        // Ordering invariant: below `f`'s root every label is larger, so
        // once we pass `var` the function no longer depends on it.
        if node_var > var {
            return Ok(0.0);
        }
        if node_var == var {
            let (lo, hi) = self.split(f, var);
            return self.xor_prob(lo, hi, probs, prob, scratch);
        }
        self.govern_poll()?;
        // ∂(¬f) = ∂f: memoize on the regular edge.
        let rf = if f.is_complemented() {
            f.complement()
        } else {
            f
        };
        let slot = hash3(rf.key(), var, 0xDE25) & (scratch.diff_memo.len() - 1);
        {
            let e = scratch.diff_memo[slot];
            if e.a == rf.key() && e.b == var {
                return Ok(e.p);
            }
        }
        let (lo, hi) = self.split(rf, node_var);
        let p_lo = self.diff_prob_rec(lo, var, probs, prob, scratch)?;
        let p_hi = self.diff_prob_rec(hi, var, probs, prob, scratch)?;
        let pv = probs[node_var as usize];
        let p = p_lo + pv * (p_hi - p_lo);
        scratch.diff_memo[slot] = PairP {
            a: rf.key(),
            b: var,
            p,
        };
        Ok(p)
    }

    /// `P(a ⊕ b)` over the pair graph, memoized per unordered regular
    /// pair (complements folded out front).
    fn xor_prob(
        &self,
        a: Edge,
        b: Edge,
        probs: &[f64],
        prob: &mut ProbScratch,
        scratch: &mut DensityScratch,
    ) -> Result<f64, Tripped> {
        if a == b {
            return Ok(0.0);
        }
        if a == b.complement() {
            return Ok(1.0);
        }
        self.govern_poll()?;
        let flip = a.is_complemented() ^ b.is_complemented();
        let ra = Edge(a.key() & !1);
        let rb = Edge(b.key() & !1);
        let (ra, rb) = if ra.key() <= rb.key() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let q = if ra == Edge::ONE {
            // 1 ⊕ g = ¬g.
            1.0 - self.probability_rec(rb.index(), probs, prob)
        } else {
            let slot = hash3(ra.key(), rb.key(), 0x0A0B) & (scratch.xor_memo.len() - 1);
            let e = scratch.xor_memo[slot];
            if e.a == ra.key() && e.b == rb.key() {
                e.p
            } else {
                let top = self.level(ra).min(self.level(rb));
                let (a0, a1) = self.split(ra, top);
                let (b0, b1) = self.split(rb, top);
                let q0 = self.xor_prob(a0, b0, probs, prob, scratch)?;
                let q1 = self.xor_prob(a1, b1, probs, prob, scratch)?;
                let pv = probs[top as usize];
                let q = q0 + pv * (q1 - q0);
                scratch.xor_memo[slot] = PairP {
                    a: ra.key(),
                    b: rb.key(),
                    p: q,
                };
                q
            }
        };
        Ok(if flip { 1.0 - q } else { q })
    }

    /// Evaluates `f` on a full variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != n_vars`.
    pub fn eval(&self, f: Edge, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.n_vars, "one value per variable");
        let mut e = f;
        let mut parity = false;
        loop {
            parity ^= e.is_complemented();
            let idx = e.index();
            let var = self.vars[idx];
            if var == TERMINAL_VAR {
                return !parity;
            }
            e = if assignment[var as usize] {
                Edge(self.highs[idx])
            } else {
                Edge(self.lows[idx])
            };
        }
    }

    /// The set of variables `f` depends on, as a sorted list.
    pub fn support(&self, f: Edge) -> Vec<usize> {
        let mut seen = vec![false; self.n_vars];
        let mut visited = VisitScratch::new();
        self.support_into(f, &mut seen, &mut visited);
        (0..self.n_vars).filter(|&v| seen[v]).collect()
    }

    /// Marks every variable `f` depends on in a caller-provided bitmap
    /// (the allocation-free form of [`Bdd::support`], used by the density
    /// loop). `visited` carries the epoch-stamped node marks across
    /// calls, so repeated supports cost `O(|f|)` — not `O(pool)`.
    pub fn support_into(&self, f: Edge, seen: &mut [bool], visited: &mut VisitScratch) {
        assert!(seen.len() >= self.n_vars, "support bitmap too short");
        seen[..self.n_vars].fill(false);
        visited.begin(self.vars.len());
        let mut stack = std::mem::take(&mut visited.stack);
        stack.push(f.index() as u32);
        while let Some(idx) = stack.pop() {
            let idx = idx as usize;
            if !visited.visit(idx) {
                continue;
            }
            let var = self.vars[idx];
            if var == TERMINAL_VAR {
                continue;
            }
            seen[var as usize] = true;
            stack.push(Edge(self.lows[idx]).index() as u32);
            stack.push(Edge(self.highs[idx]).index() as u32);
        }
        visited.stack = stack;
    }

    /// Number of distinct nodes reachable from `roots` (counting the
    /// terminal once if reached) — the "live size" of a set of functions.
    pub fn live_size(&self, roots: impl IntoIterator<Item = Edge>) -> usize {
        let mut visited: Vec<bool> = vec![false; self.vars.len()];
        let mut stack: Vec<usize> = roots.into_iter().map(Edge::index).collect();
        let mut count = 0usize;
        while let Some(idx) = stack.pop() {
            if visited[idx] {
                continue;
            }
            visited[idx] = true;
            count += 1;
            if self.vars[idx] != TERMINAL_VAR {
                stack.push(Edge(self.lows[idx]).index());
                stack.push(Edge(self.highs[idx]).index());
            }
        }
        count
    }

    /// Exact probability that `f = 1` given one `P(xᵥ = 1)` per variable,
    /// assuming the variables are independent.
    ///
    /// One `O(|f|)` pass: each plain node's probability is the convex
    /// combination of its children's; a complemented edge reads `1 − P`.
    /// `scratch` memoizes per regular node and may be reused across calls
    /// **only** with identical `probs` (the whole-circuit engine shares
    /// one scratch across every net); call [`ProbScratch::reset`] when
    /// the probabilities change.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != n_vars`.
    pub fn probability(&self, f: Edge, probs: &[f64], scratch: &mut ProbScratch) -> f64 {
        assert_eq!(probs.len(), self.n_vars, "one probability per variable");
        scratch.prepare(self);
        let p = self.probability_rec(f.index(), probs, scratch);
        let p = if f.is_complemented() { 1.0 - p } else { p };
        p.clamp(0.0, 1.0)
    }

    fn probability_rec(&self, idx: usize, probs: &[f64], scratch: &mut ProbScratch) -> f64 {
        let var = self.vars[idx];
        if var == TERMINAL_VAR {
            return 1.0;
        }
        if scratch.stamp[idx] == scratch.stamp_epoch {
            return scratch.values[idx];
        }
        let low = Edge(self.lows[idx]);
        let p_lo = {
            let raw = self.probability_rec(low.index(), probs, scratch);
            if low.is_complemented() {
                1.0 - raw
            } else {
                raw
            }
        };
        // The high edge is regular by canonical form.
        let p_hi = self.probability_rec(Edge(self.highs[idx]).index(), probs, scratch);
        let pv = probs[var as usize];
        let p = p_lo + pv * (p_hi - p_lo);
        scratch.stamp[idx] = scratch.stamp_epoch;
        scratch.values[idx] = p;
        p
    }

    /// Builds the BDD of a dense truth table over argument functions:
    /// Shannon expansion of `f` with `args[i]` substituted for variable
    /// `i`. This is how gate outputs compose their cell function over the
    /// fanin BDDs.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != f.nvars()`.
    pub fn compose_fn(&mut self, f: &tr_boolean::BoolFn, args: &[Edge]) -> Result<Edge, BddError> {
        assert_eq!(
            args.len(),
            f.nvars(),
            "one argument edge per function input"
        );
        self.compose_rec(f, args, args.len())
    }

    fn compose_rec(
        &mut self,
        f: &tr_boolean::BoolFn,
        args: &[Edge],
        remaining: usize,
    ) -> Result<Edge, BddError> {
        if f.is_zero() {
            return Ok(Edge::ZERO);
        }
        if f.is_one() {
            return Ok(Edge::ONE);
        }
        debug_assert!(remaining > 0, "non-constant function with no variables");
        let k = remaining - 1;
        if !f.depends_on(k) {
            return self.compose_rec(f, args, k);
        }
        let hi = self.compose_rec(&f.cofactor(k, true), args, k)?;
        let lo = self.compose_rec(&f.cofactor(k, false), args, k)?;
        self.ite(args[k], hi, lo)
    }

    /// Swaps adjacent levels `level` and `level + 1` in place — the
    /// primitive of Rudell's sifting. Every node keeps its pool index,
    /// so rooted edges stay valid; the *meaning* of the two levels is
    /// exchanged (the caller swaps its level→variable map alongside).
    ///
    /// Three node populations are touched:
    ///
    /// * level-`l+1` nodes move up to level `l` unchanged (their
    ///   children sit strictly below `l+1` either way);
    /// * level-`l` nodes that do not reference level `l+1` move down to
    ///   level `l+1` unchanged;
    /// * level-`l` nodes that do reference level `l+1` are restructured
    ///   in place around the swapped split, creating (or sharing) their
    ///   new children at level `l+1`.
    ///
    /// The swap itself ignores the node limit (it may transiently
    /// allocate before sifting shrinks the pool); dead nodes it strands
    /// are reclaimed by the next collection. The unique table is
    /// rebuilt; operation caches are flagged stale (entries are
    /// ordering-dependent) and cleared lazily by the next operation.
    /// Caller-owned [`ProbScratch`]/[`DensityScratch`] memos are *not*
    /// tracked here — a sifting pass must end with [`Bdd::gc`] (whose
    /// run counter those scratches watch) before statistics resume,
    /// which [`crate::circuit::CircuitBdds::sift_in_place`] does.
    pub(crate) fn swap_adjacent(&mut self, level: u32) {
        let l1 = level + 1;
        debug_assert!((l1 as usize) < self.n_vars, "swap needs two real levels");
        // Pass 1: classify level-`level` nodes, recording the four
        // grandchild cofactors of the dependent ones. Cofactor edges
        // always point strictly below `l1`, so later relabeling and
        // rewriting cannot invalidate them.
        let mut dependent: Vec<(u32, [Edge; 4])> = Vec::new();
        let mut move_down: Vec<u32> = Vec::new();
        let mut move_up: Vec<u32> = Vec::new();
        for idx in 1..self.vars.len() {
            let var = self.vars[idx];
            if var == level {
                let low = Edge(self.lows[idx]);
                let high = Edge(self.highs[idx]);
                if self.vars[low.index()] == l1 || self.vars[high.index()] == l1 {
                    let (e0, e1) = self.split(low, l1);
                    let (t0, t1) = self.split(high, l1);
                    dependent.push((idx as u32, [e0, e1, t0, t1]));
                } else {
                    move_down.push(idx as u32);
                }
            } else if var == l1 {
                move_up.push(idx as u32);
            }
        }
        // Pass 2: relabel the independent movers.
        for idx in move_up {
            self.vars[idx as usize] = level;
        }
        for idx in move_down {
            self.vars[idx as usize] = l1;
        }
        // Pass 3: re-key the unique table so `mk` lookups during the
        // rewrite see the relabeled nodes (stale dependent entries keep
        // their old, still-unique triples and match nothing).
        self.rebuild_table();
        // Pass 4: restructure the dependent nodes in place. New children
        // live at level `l1`; the high child of each is a high cofactor
        // of a regular edge, hence regular, so no complement ever needs
        // to escape through the node's (fixed) identity.
        for (idx, [e0, e1, t0, t1]) in dependent {
            let low_new = self.mk_unlimited(l1, e0, t0);
            let high_new = self.mk_unlimited(l1, e1, t1);
            debug_assert!(!high_new.is_complemented());
            self.lows[idx as usize] = low_new.key();
            self.highs[idx as usize] = high_new.key();
        }
        // Pass 5: the rewritten nodes changed their triples; re-key and
        // flag the (ordering-dependent) operation caches stale — the
        // next ITE/restrict/difference clears them lazily, so a sifting
        // pass of hundreds of swaps pays one clear instead of hundreds
        // of multi-megabyte memsets.
        self.rebuild_table();
        self.caches_stale = true;
    }

    /// `mk` without the node limit: for variable nodes (bounded by
    /// `n_vars`, see [`Bdd::var`]) and for [`Bdd::swap_adjacent`] (a
    /// swap must complete atomically once started).
    fn mk_unlimited(&mut self, var: u32, low: Edge, high: Edge) -> Edge {
        if low == high {
            return low;
        }
        if high.is_complemented() {
            return self
                .mk_raw(var, low.complement(), high.complement(), false)
                .expect("unlimited mk cannot fail")
                .complement();
        }
        self.mk_raw(var, low, high, false)
            .expect("unlimited mk cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_boolean::BoolFn;

    #[test]
    fn constants_and_vars() {
        let mut bdd = Bdd::new(2);
        assert_eq!(Edge::ONE.complement(), Edge::ZERO);
        let a = bdd.var(0);
        assert!(bdd.eval(a, &[true, false]));
        assert!(!bdd.eval(a, &[false, true]));
        assert!(!bdd.eval(a.complement(), &[true, false]));
        // var() is canonical: same node both times.
        assert_eq!(a, bdd.var(0));
    }

    #[test]
    fn ite_matches_truth_tables() {
        // Exhaustively check every 3-input function pair against BoolFn.
        let mut bdd = Bdd::new(3);
        let vars: Vec<Edge> = (0..3).map(|v| bdd.var(v)).collect();
        let fns: Vec<BoolFn> = (0..256u32)
            .step_by(37)
            .map(|tt| {
                BoolFn::from_fn(3, |a| {
                    (tt >> (usize::from(a[0]) | usize::from(a[1]) << 1 | usize::from(a[2]) << 2))
                        & 1
                        == 1
                })
            })
            .collect();
        for f in &fns {
            let fe = bdd.compose_fn(f, &vars).unwrap();
            for m in 0..8usize {
                let a = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
                assert_eq!(bdd.eval(fe, &a), f.eval(&a), "{f:?} at {m:03b}");
            }
        }
    }

    #[test]
    fn canonicity_demorgan() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let nand = bdd.and(a, b).unwrap().complement();
        let or_of_nots = bdd.or(a.complement(), b.complement()).unwrap();
        assert_eq!(nand, or_of_nots);
        let before = bdd.node_count();
        // Rebuilding identical functions allocates nothing.
        let again = bdd.and(a, b).unwrap().complement();
        assert_eq!(again, nand);
        assert_eq!(bdd.node_count(), before);
    }

    #[test]
    fn xor_and_difference() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b).unwrap();
        let f = bdd.xor(ab, c).unwrap();
        // ∂f/∂c = 1, ∂f/∂a = b.
        assert_eq!(bdd.boolean_difference(f, 2).unwrap(), Edge::ONE);
        assert_eq!(bdd.boolean_difference(f, 0).unwrap(), b);
        // Complement-invariant, served from the cache.
        assert_eq!(bdd.boolean_difference(f.complement(), 0).unwrap(), b);
    }

    #[test]
    fn restrict_is_cofactor() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let bc = bdd.or(b, c).unwrap();
        let f = bdd.and(a, bc).unwrap();
        assert_eq!(bdd.restrict(f, 0, false).unwrap(), Edge::ZERO);
        assert_eq!(bdd.restrict(f, 0, true).unwrap(), bc);
        let f_b0 = bdd.restrict(f, 1, false).unwrap();
        assert_eq!(f_b0, bdd.and(a, c).unwrap());
    }

    #[test]
    fn probability_of_majority() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b).unwrap();
        let ac = bdd.and(a, c).unwrap();
        let bc = bdd.and(b, c).unwrap();
        let t = bdd.or(ab, ac).unwrap();
        let maj = bdd.or(t, bc).unwrap();
        let mut scratch = ProbScratch::new();
        let p = bdd.probability(maj, &[0.5, 0.5, 0.5], &mut scratch);
        assert!((p - 0.5).abs() < 1e-15);
        scratch.reset();
        let p2 = bdd.probability(maj, &[0.2, 0.3, 0.4], &mut scratch);
        // P(maj) = ab + ac + bc − 2abc.
        let want = 0.2 * 0.3 + 0.2 * 0.4 + 0.3 * 0.4 - 2.0 * 0.2 * 0.3 * 0.4;
        assert!((p2 - want).abs() < 1e-15, "{p2} vs {want}");
        // Complemented root reads 1 − P (served from the same scratch).
        let pc = bdd.probability(maj.complement(), &[0.2, 0.3, 0.4], &mut scratch);
        assert!((pc - (1.0 - want)).abs() < 1e-15);
    }

    #[test]
    fn support_tracks_dependencies() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0);
        let c = bdd.var(2);
        let f = bdd.xor(a, c).unwrap();
        assert_eq!(bdd.support(f), vec![0, 2]);
        assert_eq!(bdd.support(Edge::ONE), Vec::<usize>::new());
        let mut seen = vec![false; 4];
        let mut visited = VisitScratch::new();
        bdd.support_into(f, &mut seen, &mut visited);
        assert_eq!(seen, vec![true, false, true, false]);
        // Reuse across calls: the epoch bump invalidates old marks.
        let g = bdd.var(1);
        bdd.support_into(g, &mut seen, &mut visited);
        assert_eq!(seen, vec![false, true, false, false]);
    }

    #[test]
    fn node_limit_is_enforced() {
        // A parity chain over 8 vars needs ~2 nodes per level; a limit of
        // 10 nodes (vars are always admitted) cannot hold it.
        let mut bdd = Bdd::with_node_limit(8, 10);
        let vars: Vec<Edge> = (0..8).map(|v| bdd.var(v)).collect();
        let mut f = vars[0];
        let mut hit = false;
        for &x in &vars[1..] {
            match bdd.xor(f, x) {
                Ok(next) => f = next,
                Err(BddError::NodeLimit { limit }) => {
                    assert_eq!(limit, 10);
                    hit = true;
                    break;
                }
                Err(e @ BddError::Interrupted(_)) => panic!("no governor attached: {e}"),
            }
        }
        assert!(hit, "limit of 10 nodes should have been exceeded");
    }

    #[test]
    fn cache_statistics_accumulate() {
        let mut bdd = Bdd::new(6);
        let vars: Vec<Edge> = (0..6).map(|v| bdd.var(v)).collect();
        let mut f = vars[0];
        for &v in &vars[1..] {
            f = bdd.xor(f, v).unwrap();
        }
        // Rebuild: everything should now hit the ITE cache.
        let mut g = vars[0];
        for &v in &vars[1..] {
            g = bdd.xor(g, v).unwrap();
        }
        assert_eq!(f, g);
        let stats = bdd.cache_stats();
        assert!(stats.ite_lookups > 0);
        assert!(stats.ite_hits > 0);
    }

    #[test]
    fn live_size_counts_shared_nodes_once() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let ab = bdd.and(a, b).unwrap();
        // a, b, ab share structure; the union is smaller than the sum.
        let union = bdd.live_size([a, b, ab]);
        let solo: usize = [a, b, ab].iter().map(|&e| bdd.live_size([e])).sum();
        assert!(union < solo);
        assert_eq!(bdd.live_size([Edge::ONE]), 1);
    }

    #[test]
    fn gc_recycles_dead_nodes_and_preserves_roots() {
        let mut bdd = Bdd::new(8);
        let vars: Vec<Edge> = (0..8).map(|v| bdd.var(v)).collect();
        // A kept function and a pile of garbage.
        let mut keep = vars[0];
        for &v in &vars[1..] {
            keep = bdd.xor(keep, v).unwrap();
        }
        bdd.protect(keep);
        let mut junk = vars[0];
        for &v in &vars[1..] {
            junk = bdd.and(junk, v).unwrap();
            junk = bdd.or(junk, vars[2]).unwrap();
        }
        let before = bdd.node_count();
        let freed = bdd.gc();
        assert!(freed > 0, "the junk chain must be collected");
        assert_eq!(bdd.node_count(), before - freed);
        assert_eq!(bdd.node_count(), bdd.live_size([keep]));
        // The kept parity function still evaluates correctly...
        for m in [0usize, 0x55, 0xFF, 0x9A] {
            let a: Vec<bool> = (0..8).map(|i| (m >> i) & 1 == 1).collect();
            let want = a.iter().filter(|&&b| b).count() % 2 == 1;
            assert_eq!(bdd.eval(keep, &a), want, "{m:02x}");
        }
        // ...and rebuilding it is a pure lookup at the top (canonicity
        // survived the table rebuild). Variables are re-acquired: their
        // old edges may have been collected with the junk.
        let mut again = bdd.var(0);
        for v in 1..8 {
            let x = bdd.var(v);
            again = bdd.xor(again, x).unwrap();
        }
        assert_eq!(again, keep);
    }

    #[test]
    fn gc_recycled_slots_are_reused() {
        let mut bdd = Bdd::new(6);
        let vars: Vec<Edge> = (0..6).map(|v| bdd.var(v)).collect();
        let keep = bdd.and(vars[0], vars[1]).unwrap();
        bdd.protect(keep);
        let mut junk = vars[0];
        for &v in &vars[1..] {
            junk = bdd.xor(junk, v).unwrap();
        }
        let _ = junk;
        bdd.gc();
        let pool_after_gc = bdd.vars.len();
        // Rebuilding garbage of similar size fits in the recycled slots:
        // the pool does not grow. (Variables are re-acquired — their old
        // edges died with the junk.)
        let vs: Vec<Edge> = (0..6).map(|v| bdd.var(v)).collect();
        let mut again = vs[0];
        for &v in &vs[1..] {
            again = bdd.xor(again, v).unwrap();
        }
        assert_eq!(bdd.vars.len(), pool_after_gc, "free list must be reused");
        for m in [0usize, 0x2A, 0x3F] {
            let a: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
            let want = a.iter().filter(|&&b| b).count() % 2 == 1;
            assert_eq!(bdd.eval(again, &a), want, "{m:02x}");
        }
    }

    #[test]
    fn maybe_gc_honors_threshold() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b).unwrap();
        bdd.protect(f);
        // Default threshold: far from triggering.
        assert!(!bdd.maybe_gc());
        assert_eq!(bdd.gc_stats().runs, 0);
        // Tiny threshold: collects immediately.
        bdd.set_gc_threshold(1);
        assert!(bdd.maybe_gc());
        assert_eq!(bdd.gc_stats().runs, 1);
        // Raising the floor re-arms the trigger upward too: no further
        // collection below the new floor.
        bdd.set_gc_threshold(1 << 24);
        assert!(!bdd.maybe_gc());
        assert_eq!(bdd.gc_stats().runs, 1);
    }

    #[test]
    fn var_is_admitted_at_the_limit() {
        // The budget may be fully consumed by protected nodes; variable
        // nodes must still be acquirable without a panic or error.
        let mut bdd = Bdd::with_node_limit(4, 5);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2); // live: terminal + 3 vars = 4
        let ab = bdd.and(a, b).unwrap(); // live 5 == limit
        bdd.protect(ab);
        // Ordinary construction is out of budget...
        assert!(bdd.and(ab, c).is_err());
        // ...but a variable node is always admitted.
        let d = bdd.var(3);
        assert!(bdd.eval(d, &[false, false, false, true]));
    }

    #[test]
    fn node_limit_counts_live_not_allocated() {
        // Repeatedly build and discard garbage under a limit the live set
        // never crosses: with GC between rounds the historic allocation
        // total sails past the limit while construction keeps succeeding.
        let mut bdd = Bdd::with_node_limit(6, 40);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let keep = bdd.and(a, b).unwrap();
        bdd.protect(keep);
        for _round in 0..20 {
            // Re-acquire variables each round: unprotected edges do not
            // survive a collection.
            let vs: Vec<Edge> = (0..6).map(|v| bdd.var(v)).collect();
            let mut f = vs[0];
            for &v in &vs[1..] {
                f = bdd.xor(f, v).unwrap();
            }
            bdd.gc();
        }
        assert!(
            bdd.allocated_total() > 40,
            "allocation total passed the limit"
        );
        assert!(bdd.node_count() <= 40, "live count stayed within it");
    }

    #[test]
    fn swap_adjacent_preserves_functions() {
        // A function with nontrivial structure across the swapped levels:
        // f = (x0 ∧ x1) ⊕ (x2 ∨ ¬x1).
        let mut bdd = Bdd::new(3);
        let x0 = bdd.var(0);
        let x1 = bdd.var(1);
        let x2 = bdd.var(2);
        let a = bdd.and(x0, x1).unwrap();
        let b = bdd.or(x2, x1.complement()).unwrap();
        let f = bdd.xor(a, b).unwrap();
        bdd.protect(f);
        let reference: Vec<bool> = (0..8)
            .map(|m| {
                let v = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
                bdd.eval(f, &v)
            })
            .collect();
        // Swap levels 0 and 1: variable x0 now lives at level 1 and x1 at
        // level 0, so assignments must be permuted accordingly.
        bdd.swap_adjacent(0);
        for (m, &want) in reference.iter().enumerate() {
            let v = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
            let permuted = [v[1], v[0], v[2]];
            assert_eq!(bdd.eval(f, &permuted), want, "minterm {m:03b}");
        }
        // Swap back: the original evaluation returns.
        bdd.swap_adjacent(0);
        for (m, &want) in reference.iter().enumerate() {
            let v = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
            assert_eq!(bdd.eval(f, &v), want, "minterm {m:03b}");
        }
    }

    #[test]
    fn reset_reuses_capacity_and_invalidates_scratches() {
        let mut bdd = Bdd::new(8);
        let mut prob = ProbScratch::new();
        // Build something sizable so the pool and table grow.
        let vs: Vec<Edge> = (0..8).map(|v| bdd.var(v)).collect();
        let mut f = vs[0];
        for &v in &vs[1..] {
            let t = bdd.and(f, v).unwrap();
            f = bdd.xor(t, v).unwrap();
        }
        bdd.protect(f);
        let grown_pool = bdd.vars.capacity();
        let p_before = bdd.probability(f, &[0.3; 8], &mut prob);
        assert!(p_before.is_finite());

        bdd.reset(3);
        assert_eq!(bdd.n_vars(), 3);
        assert_eq!(bdd.node_count(), 1, "only the terminal survives");
        assert_eq!(bdd.protected_count(), 0, "roots are dropped");
        assert!(
            bdd.vars.capacity() >= grown_pool,
            "pool capacity is retained across reset"
        );

        // The engine behaves exactly like a fresh manager, and the
        // caller-held scratch (whose memoized node values now point at
        // recycled slots) self-invalidates via the bumped GC epoch.
        let a = bdd.var(0);
        let b = bdd.var(1);
        let g = bdd.or(a, b).unwrap();
        let p = bdd.probability(g, &[0.5, 0.5, 0.5], &mut prob);
        assert!((p - 0.75).abs() < 1e-12);

        let mut fresh = Bdd::new(3);
        let fa = fresh.var(0);
        let fb = fresh.var(1);
        let fg = fresh.or(fa, fb).unwrap();
        let mut fresh_prob = ProbScratch::new();
        assert_eq!(p, fresh.probability(fg, &[0.5, 0.5, 0.5], &mut fresh_prob));
    }

    #[test]
    fn reset_rearms_gc_trigger_and_keeps_threshold() {
        let mut bdd = Bdd::new(4);
        bdd.set_gc_threshold(8);
        bdd.reset(4);
        // Build garbage past the small threshold: maybe_gc must fire,
        // proving reset re-armed the trigger from the configured
        // threshold rather than a stale adaptive value. Each iteration
        // composes a distinct function so hash-consing cannot cap the
        // pool below the trigger.
        let vs: Vec<Edge> = (0..4).map(|v| bdd.var(v)).collect();
        let mut f = vs[0];
        for round in 0..4 {
            for &v in &vs {
                let t = bdd.and(f, v).unwrap();
                f = if round % 2 == 0 {
                    bdd.xor(t, v).unwrap()
                } else {
                    bdd.or(t, v).unwrap()
                };
            }
        }
        assert!(bdd.node_count() >= 8);
        assert!(bdd.maybe_gc(), "threshold survives reset");
        assert_eq!(bdd.node_count(), 1);
    }

    #[test]
    fn apportioned_threshold_divides_and_floors() {
        assert_eq!(apportioned_gc_threshold(0), DEFAULT_GC_THRESHOLD);
        assert_eq!(apportioned_gc_threshold(1), DEFAULT_GC_THRESHOLD);
        assert_eq!(apportioned_gc_threshold(4), DEFAULT_GC_THRESHOLD / 4);
        // Hundreds of engines hit the floor instead of thrashing.
        assert_eq!(apportioned_gc_threshold(1 << 10), 1 << 14);
    }
}
