//! The shared ROBDD manager: node store, unique table, memoized ITE.
//!
//! Design notes, for readers coming from the textbook presentation:
//!
//! * **Complement edges** (Brace–Rudell–Bryant): an [`Edge`] is a node
//!   index plus a complement bit, so negation is free and `f`/`¬f` share
//!   every node. Canonical form: the *high* (then) edge of a stored node
//!   is never complemented; [`Bdd::mk`] re-roots and complements the
//!   result edge when it would be.
//! * **Variables are levels**: the manager orders variables by their
//!   index, so variable `0` is always the root level. Callers pick the
//!   ordering by deciding which circuit input each manager variable
//!   stands for (see [`crate::order`]).
//! * **One terminal**: node `0` is the constant `1`; `0` is its
//!   complement. The terminal's `var` is [`TERMINAL_VAR`], which sorts
//!   below every real level.
//! * **Memoization**: ITE, restrict and Boolean-difference results are
//!   cached for the manager's lifetime; [`Bdd::cache_stats`] exposes the
//!   hit counters that EXPERIMENTS.md reports. There is no garbage
//!   collection — a manager is built, queried and dropped, which is the
//!   whole-circuit-statistics lifecycle it exists for.

use std::collections::HashMap;
use std::fmt;

/// Level assigned to the terminal node: sorts after every real variable.
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// Errors from BDD construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BddError {
    /// The node store reached the configured limit; the function being
    /// built is too large under the current variable ordering.
    NodeLimit {
        /// The limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit { limit } => {
                write!(f, "BDD node limit of {limit} nodes exceeded")
            }
        }
    }
}

impl std::error::Error for BddError {}

/// A reference to a BDD function: node index plus complement bit.
///
/// Copyable and 4 bytes; negation ([`Edge::complement`]) costs one XOR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge(u32);

impl Edge {
    /// The constant-true function.
    pub const ONE: Edge = Edge(0);
    /// The constant-false function (complement of the terminal).
    pub const ZERO: Edge = Edge(1);

    #[inline]
    fn new(index: u32, complemented: bool) -> Self {
        Edge(index << 1 | u32::from(complemented))
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    #[inline]
    pub(crate) fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// `¬f`, for free.
    #[inline]
    #[must_use]
    pub fn complement(self) -> Self {
        Edge(self.0 ^ 1)
    }

    /// Whether this is one of the two constant functions.
    pub fn is_constant(self) -> bool {
        self.index() == 0
    }

    /// The raw key used in cache tables.
    #[inline]
    fn key(self) -> u32 {
        self.0
    }
}

/// One stored node. `high` is never complemented (canonical form).
#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    low: Edge,
    high: Edge,
}

/// Cache hit/lookup counters, exposed for EXPERIMENTS.md and tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// ITE cache probes.
    pub ite_lookups: u64,
    /// ITE cache probes that hit.
    pub ite_hits: u64,
    /// Restrict/Boolean-difference cache probes.
    pub restrict_lookups: u64,
    /// Restrict/Boolean-difference cache probes that hit.
    pub restrict_hits: u64,
}

/// A reduced-ordered BDD manager with complement edges.
///
/// # Example
///
/// ```
/// use tr_bdd::{Bdd, Edge};
///
/// let mut bdd = Bdd::new(2);
/// let a = bdd.var(0);
/// let b = bdd.var(1);
/// let f = bdd.and(a, b).unwrap();
/// assert_eq!(bdd.eval(f, &[true, true]), true);
/// assert_eq!(bdd.eval(f, &[true, false]), false);
/// // Complementation is free and canonical:
/// let g = bdd.or(a.complement(), b.complement()).unwrap();
/// assert_eq!(g, f.complement());
/// ```
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), Edge>,
    restrict_cache: HashMap<(u32, u32, u8), Edge>,
    diff_cache: HashMap<(u32, u32), Edge>,
    n_vars: usize,
    node_limit: usize,
    stats: CacheStats,
}

/// Default node limit: generous for the benchmark suite (the largest
/// circuits build in tens of thousands of nodes) while bounding memory to
/// well under a gigabyte in the worst case.
pub const DEFAULT_NODE_LIMIT: usize = 8_000_000;

impl Bdd {
    /// A manager over `n_vars` variables with the default node limit.
    pub fn new(n_vars: usize) -> Self {
        Bdd::with_node_limit(n_vars, DEFAULT_NODE_LIMIT)
    }

    /// A manager with an explicit node limit (construction returns
    /// [`BddError::NodeLimit`] once the store reaches it).
    pub fn with_node_limit(n_vars: usize, node_limit: usize) -> Self {
        let terminal = Node {
            var: TERMINAL_VAR,
            low: Edge::ONE,
            high: Edge::ONE,
        };
        Bdd {
            nodes: vec![terminal],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            restrict_cache: HashMap::new(),
            diff_cache: HashMap::new(),
            n_vars,
            node_limit,
            stats: CacheStats::default(),
        }
    }

    /// Number of variables in the ordering.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Total nodes allocated (including the terminal).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cache hit/lookup counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// The single-variable function `xᵥ`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn var(&mut self, var: usize) -> Edge {
        assert!(var < self.n_vars, "variable {var} out of range");
        self.mk(var as u32, Edge::ZERO, Edge::ONE)
            .expect("a single node never exceeds the limit")
    }

    /// Get-or-create the node `(var, low, high)`, enforcing canonicity.
    fn mk(&mut self, var: u32, low: Edge, high: Edge) -> Result<Edge, BddError> {
        if low == high {
            return Ok(low);
        }
        // Canonical form: the high edge is regular. If it is complemented,
        // store the complemented node and complement the returned edge.
        if high.is_complemented() {
            let inner = self.mk_raw(var, low.complement(), high.complement())?;
            return Ok(inner.complement());
        }
        self.mk_raw(var, low, high)
    }

    fn mk_raw(&mut self, var: u32, low: Edge, high: Edge) -> Result<Edge, BddError> {
        debug_assert!(!high.is_complemented());
        if let Some(&idx) = self.unique.get(&(var, low.key(), high.key())) {
            return Ok(Edge::new(idx, false));
        }
        // The terminal and one node per variable are always admitted, so
        // `var()` cannot fail even under a tiny limit.
        if self.nodes.len() >= self.node_limit.max(self.n_vars + 1) {
            return Err(BddError::NodeLimit {
                limit: self.node_limit,
            });
        }
        let idx = u32::try_from(self.nodes.len()).expect("node count fits in u32");
        self.nodes.push(Node { var, low, high });
        self.unique.insert((var, low.key(), high.key()), idx);
        Ok(Edge::new(idx, false))
    }

    /// The level (variable) labelling the edge's root node.
    #[inline]
    fn level(&self, e: Edge) -> u32 {
        self.nodes[e.index()].var
    }

    /// Cofactors of `e` with respect to `var`, complement pushed through.
    /// `var` must be at or above `e`'s root level.
    #[inline]
    fn split(&self, e: Edge, var: u32) -> (Edge, Edge) {
        let node = &self.nodes[e.index()];
        if node.var != var {
            return (e, e);
        }
        if e.is_complemented() {
            (node.low.complement(), node.high.complement())
        } else {
            (node.low, node.high)
        }
    }

    /// If-then-else: the universal binary operator, memoized.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::NodeLimit`] if the result would exceed the
    /// node limit.
    pub fn ite(&mut self, f: Edge, g: Edge, h: Edge) -> Result<Edge, BddError> {
        // Terminal cases.
        if f == Edge::ONE {
            return Ok(g);
        }
        if f == Edge::ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Edge::ONE && h == Edge::ZERO {
            return Ok(f);
        }
        if g == Edge::ZERO && h == Edge::ONE {
            return Ok(f.complement());
        }
        // Collapse g/h that repeat f.
        let (mut f, mut g, mut h) = (f, g, h);
        if g == f {
            g = Edge::ONE;
        } else if g == f.complement() {
            g = Edge::ZERO;
        }
        if h == f {
            h = Edge::ZERO;
        } else if h == f.complement() {
            h = Edge::ONE;
        }
        if g == Edge::ONE && h == Edge::ZERO {
            return Ok(f);
        }
        if g == h {
            return Ok(g);
        }
        // Canonicalize for the cache: first argument regular, then-branch
        // regular (complement pulled out of the result).
        if f.is_complemented() {
            f = f.complement();
            std::mem::swap(&mut g, &mut h);
        }
        let negate = g.is_complemented();
        if negate {
            g = g.complement();
            h = h.complement();
        }
        let key = (f.key(), g.key(), h.key());
        self.stats.ite_lookups += 1;
        if let Some(&hit) = self.ite_cache.get(&key) {
            self.stats.ite_hits += 1;
            return Ok(if negate { hit.complement() } else { hit });
        }
        let top = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.split(f, top);
        let (g0, g1) = self.split(g, top);
        let (h0, h1) = self.split(h, top);
        let t = self.ite(f1, g1, h1)?;
        let e = self.ite(f0, g0, h0)?;
        let result = self.mk(top, e, t)?;
        self.ite_cache.insert(key, result);
        Ok(if negate { result.complement() } else { result })
    }

    /// `f ∧ g`.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    pub fn and(&mut self, f: Edge, g: Edge) -> Result<Edge, BddError> {
        self.ite(f, g, Edge::ZERO)
    }

    /// `f ∨ g`.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    pub fn or(&mut self, f: Edge, g: Edge) -> Result<Edge, BddError> {
        self.ite(f, Edge::ONE, g)
    }

    /// `f ⊕ g`.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    pub fn xor(&mut self, f: Edge, g: Edge) -> Result<Edge, BddError> {
        self.ite(f, g.complement(), g)
    }

    /// The cofactor `f|ᵥₐᵣ₌ᵥₐₗ`, memoized.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn restrict(&mut self, f: Edge, var: usize, val: bool) -> Result<Edge, BddError> {
        assert!(var < self.n_vars, "variable {var} out of range");
        self.restrict_rec(f, var as u32, val)
    }

    fn restrict_rec(&mut self, f: Edge, var: u32, val: bool) -> Result<Edge, BddError> {
        let node_var = self.level(f);
        // Ordering invariant: everything below `f`'s root is labelled with
        // a larger variable, so once we pass `var` it cannot occur.
        if node_var > var {
            return Ok(f);
        }
        if node_var == var {
            let (lo, hi) = self.split(f, var);
            return Ok(if val { hi } else { lo });
        }
        let key = (f.key(), var, u8::from(val));
        self.stats.restrict_lookups += 1;
        if let Some(&hit) = self.restrict_cache.get(&key) {
            self.stats.restrict_hits += 1;
            return Ok(hit);
        }
        let (lo, hi) = self.split(f, node_var);
        let new_lo = self.restrict_rec(lo, var, val)?;
        let new_hi = self.restrict_rec(hi, var, val)?;
        let result = self.mk(node_var, new_lo, new_hi)?;
        self.restrict_cache.insert(key, result);
        Ok(result)
    }

    /// The Boolean difference `∂f/∂xᵥ = f|ᵥ₌₁ ⊕ f|ᵥ₌₀`, memoized.
    ///
    /// A transition of `xᵥ` propagates to `f` exactly when the remaining
    /// inputs satisfy this function — the core of Najm's density
    /// propagation.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    ///
    /// # Panics
    ///
    /// Panics if `var >= n_vars`.
    pub fn boolean_difference(&mut self, f: Edge, var: usize) -> Result<Edge, BddError> {
        assert!(var < self.n_vars, "variable {var} out of range");
        // The difference is complement-invariant: ∂(¬f) = ∂f. Cache on the
        // regular edge so both phases share the entry.
        let canonical = if f.is_complemented() {
            f.complement()
        } else {
            f
        };
        let key = (canonical.key(), var as u32);
        if let Some(&hit) = self.diff_cache.get(&key) {
            return Ok(hit);
        }
        let hi = self.restrict_rec(canonical, var as u32, true)?;
        let lo = self.restrict_rec(canonical, var as u32, false)?;
        let result = self.xor(hi, lo)?;
        self.diff_cache.insert(key, result);
        Ok(result)
    }

    /// Evaluates `f` on a full variable assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != n_vars`.
    pub fn eval(&self, f: Edge, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.n_vars, "one value per variable");
        let mut e = f;
        let mut parity = false;
        loop {
            parity ^= e.is_complemented();
            let node = &self.nodes[e.index()];
            if node.var == TERMINAL_VAR {
                return !parity;
            }
            e = if assignment[node.var as usize] {
                node.high
            } else {
                node.low
            };
        }
    }

    /// The set of variables `f` depends on, as a sorted list.
    pub fn support(&self, f: Edge) -> Vec<usize> {
        let mut seen = vec![false; self.n_vars];
        let mut visited = Vec::new();
        self.support_into(f, &mut seen, &mut visited);
        (0..self.n_vars).filter(|&v| seen[v]).collect()
    }

    /// Marks every variable `f` depends on in a caller-provided bitmap
    /// (the allocation-free form of [`Bdd::support`], used by the density
    /// loop), reusing `visited` as scratch (cleared on entry).
    pub fn support_into(&self, f: Edge, seen: &mut [bool], visited: &mut Vec<bool>) {
        assert!(seen.len() >= self.n_vars, "support bitmap too short");
        seen[..self.n_vars].fill(false);
        visited.clear();
        visited.resize(self.nodes.len(), false);
        let mut stack = vec![f.index()];
        while let Some(idx) = stack.pop() {
            if visited[idx] {
                continue;
            }
            visited[idx] = true;
            let node = &self.nodes[idx];
            if node.var == TERMINAL_VAR {
                continue;
            }
            seen[node.var as usize] = true;
            stack.push(node.low.index());
            stack.push(node.high.index());
        }
    }

    /// Number of distinct nodes reachable from `roots` (counting the
    /// terminal once if reached) — the "live size" of a set of functions.
    pub fn live_size(&self, roots: impl IntoIterator<Item = Edge>) -> usize {
        let mut visited: Vec<bool> = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = roots.into_iter().map(Edge::index).collect();
        let mut count = 0usize;
        while let Some(idx) = stack.pop() {
            if visited[idx] {
                continue;
            }
            visited[idx] = true;
            count += 1;
            let node = &self.nodes[idx];
            if node.var != TERMINAL_VAR {
                stack.push(node.low.index());
                stack.push(node.high.index());
            }
        }
        count
    }

    /// Exact probability that `f = 1` given one `P(xᵥ = 1)` per variable,
    /// assuming the variables are independent.
    ///
    /// One `O(|f|)` pass: each plain node's probability is the convex
    /// combination of its children's; a complemented edge reads `1 − P`.
    /// `cache` maps node index → probability of the *regular* edge and
    /// may be reused across calls **only** with identical `probs` (the
    /// whole-circuit engine shares one cache across every net).
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != n_vars`.
    pub fn probability(&self, f: Edge, probs: &[f64], cache: &mut HashMap<u32, f64>) -> f64 {
        assert_eq!(probs.len(), self.n_vars, "one probability per variable");
        let p = self.probability_rec(f.index() as u32, probs, cache);
        let p = if f.is_complemented() { 1.0 - p } else { p };
        p.clamp(0.0, 1.0)
    }

    fn probability_rec(&self, idx: u32, probs: &[f64], cache: &mut HashMap<u32, f64>) -> f64 {
        let node = &self.nodes[idx as usize];
        if node.var == TERMINAL_VAR {
            return 1.0;
        }
        if let Some(&p) = cache.get(&idx) {
            return p;
        }
        let p_lo = {
            let raw = self.probability_rec(node.low.index() as u32, probs, cache);
            if node.low.is_complemented() {
                1.0 - raw
            } else {
                raw
            }
        };
        // The high edge is regular by canonical form.
        let p_hi = self.probability_rec(node.high.index() as u32, probs, cache);
        let pv = probs[node.var as usize];
        let p = p_lo + pv * (p_hi - p_lo);
        cache.insert(idx, p);
        p
    }

    /// Builds the BDD of a dense truth table over argument functions:
    /// Shannon expansion of `f` with `args[i]` substituted for variable
    /// `i`. This is how gate outputs compose their cell function over the
    /// fanin BDDs.
    ///
    /// # Errors
    ///
    /// As [`Bdd::ite`].
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != f.nvars()`.
    pub fn compose_fn(&mut self, f: &tr_boolean::BoolFn, args: &[Edge]) -> Result<Edge, BddError> {
        assert_eq!(
            args.len(),
            f.nvars(),
            "one argument edge per function input"
        );
        self.compose_rec(f, args, args.len())
    }

    fn compose_rec(
        &mut self,
        f: &tr_boolean::BoolFn,
        args: &[Edge],
        remaining: usize,
    ) -> Result<Edge, BddError> {
        if f.is_zero() {
            return Ok(Edge::ZERO);
        }
        if f.is_one() {
            return Ok(Edge::ONE);
        }
        debug_assert!(remaining > 0, "non-constant function with no variables");
        let k = remaining - 1;
        if !f.depends_on(k) {
            return self.compose_rec(f, args, k);
        }
        let hi = self.compose_rec(&f.cofactor(k, true), args, k)?;
        let lo = self.compose_rec(&f.cofactor(k, false), args, k)?;
        self.ite(args[k], hi, lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_boolean::BoolFn;

    #[test]
    fn constants_and_vars() {
        let mut bdd = Bdd::new(2);
        assert_eq!(Edge::ONE.complement(), Edge::ZERO);
        let a = bdd.var(0);
        assert!(bdd.eval(a, &[true, false]));
        assert!(!bdd.eval(a, &[false, true]));
        assert!(!bdd.eval(a.complement(), &[true, false]));
        // var() is canonical: same node both times.
        assert_eq!(a, bdd.var(0));
    }

    #[test]
    fn ite_matches_truth_tables() {
        // Exhaustively check every 3-input function pair against BoolFn.
        let mut bdd = Bdd::new(3);
        let vars: Vec<Edge> = (0..3).map(|v| bdd.var(v)).collect();
        let fns: Vec<BoolFn> = (0..256u32)
            .step_by(37)
            .map(|tt| {
                BoolFn::from_fn(3, |a| {
                    (tt >> (usize::from(a[0]) | usize::from(a[1]) << 1 | usize::from(a[2]) << 2))
                        & 1
                        == 1
                })
            })
            .collect();
        for f in &fns {
            let fe = bdd.compose_fn(f, &vars).unwrap();
            for m in 0..8usize {
                let a = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
                assert_eq!(bdd.eval(fe, &a), f.eval(&a), "{f:?} at {m:03b}");
            }
        }
    }

    #[test]
    fn canonicity_demorgan() {
        let mut bdd = Bdd::new(2);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let nand = bdd.and(a, b).unwrap().complement();
        let or_of_nots = bdd.or(a.complement(), b.complement()).unwrap();
        assert_eq!(nand, or_of_nots);
        let before = bdd.node_count();
        // Rebuilding identical functions allocates nothing.
        let again = bdd.and(a, b).unwrap().complement();
        assert_eq!(again, nand);
        assert_eq!(bdd.node_count(), before);
    }

    #[test]
    fn xor_and_difference() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b).unwrap();
        let f = bdd.xor(ab, c).unwrap();
        // ∂f/∂c = 1, ∂f/∂a = b.
        assert_eq!(bdd.boolean_difference(f, 2).unwrap(), Edge::ONE);
        assert_eq!(bdd.boolean_difference(f, 0).unwrap(), b);
        // Complement-invariant, served from the cache.
        assert_eq!(bdd.boolean_difference(f.complement(), 0).unwrap(), b);
    }

    #[test]
    fn restrict_is_cofactor() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let bc = bdd.or(b, c).unwrap();
        let f = bdd.and(a, bc).unwrap();
        assert_eq!(bdd.restrict(f, 0, false).unwrap(), Edge::ZERO);
        assert_eq!(bdd.restrict(f, 0, true).unwrap(), bc);
        let f_b0 = bdd.restrict(f, 1, false).unwrap();
        assert_eq!(f_b0, bdd.and(a, c).unwrap());
    }

    #[test]
    fn probability_of_majority() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b).unwrap();
        let ac = bdd.and(a, c).unwrap();
        let bc = bdd.and(b, c).unwrap();
        let t = bdd.or(ab, ac).unwrap();
        let maj = bdd.or(t, bc).unwrap();
        let mut cache = HashMap::new();
        let p = bdd.probability(maj, &[0.5, 0.5, 0.5], &mut cache);
        assert!((p - 0.5).abs() < 1e-15);
        let mut cache2 = HashMap::new();
        let p2 = bdd.probability(maj, &[0.2, 0.3, 0.4], &mut cache2);
        // P(maj) = ab + ac + bc − 2abc.
        let want = 0.2 * 0.3 + 0.2 * 0.4 + 0.3 * 0.4 - 2.0 * 0.2 * 0.3 * 0.4;
        assert!((p2 - want).abs() < 1e-15, "{p2} vs {want}");
        // Complemented root reads 1 − P.
        let pc = bdd.probability(maj.complement(), &[0.2, 0.3, 0.4], &mut cache2);
        assert!((pc - (1.0 - want)).abs() < 1e-15);
    }

    #[test]
    fn support_tracks_dependencies() {
        let mut bdd = Bdd::new(4);
        let a = bdd.var(0);
        let c = bdd.var(2);
        let f = bdd.xor(a, c).unwrap();
        assert_eq!(bdd.support(f), vec![0, 2]);
        assert_eq!(bdd.support(Edge::ONE), Vec::<usize>::new());
        let mut seen = vec![false; 4];
        let mut visited = Vec::new();
        bdd.support_into(f, &mut seen, &mut visited);
        assert_eq!(seen, vec![true, false, true, false]);
    }

    #[test]
    fn node_limit_is_enforced() {
        // A parity chain over 8 vars needs ~2 nodes per level; a limit of
        // 10 nodes (vars are always admitted) cannot hold it.
        let mut bdd = Bdd::with_node_limit(8, 10);
        let vars: Vec<Edge> = (0..8).map(|v| bdd.var(v)).collect();
        let mut f = vars[0];
        let mut hit = false;
        for &x in &vars[1..] {
            match bdd.xor(f, x) {
                Ok(next) => f = next,
                Err(BddError::NodeLimit { limit }) => {
                    assert_eq!(limit, 10);
                    hit = true;
                    break;
                }
            }
        }
        assert!(hit, "limit of 10 nodes should have been exceeded");
    }

    #[test]
    fn cache_statistics_accumulate() {
        let mut bdd = Bdd::new(6);
        let vars: Vec<Edge> = (0..6).map(|v| bdd.var(v)).collect();
        let mut f = vars[0];
        for &v in &vars[1..] {
            f = bdd.xor(f, v).unwrap();
        }
        // Rebuild: everything should now hit the ITE cache.
        let mut g = vars[0];
        for &v in &vars[1..] {
            g = bdd.xor(g, v).unwrap();
        }
        assert_eq!(f, g);
        let stats = bdd.cache_stats();
        assert!(stats.ite_lookups > 0);
        assert!(stats.ite_hits > 0);
    }

    #[test]
    fn live_size_counts_shared_nodes_once() {
        let mut bdd = Bdd::new(3);
        let a = bdd.var(0);
        let b = bdd.var(1);
        let ab = bdd.and(a, b).unwrap();
        // a, b, ab share structure; the union is smaller than the sum.
        let union = bdd.live_size([a, b, ab]);
        let solo: usize = [a, b, ab].iter().map(|&e| bdd.live_size([e])).sum();
        assert!(union < solo);
        assert_eq!(bdd.live_size([Edge::ONE]), 1);
    }
}
