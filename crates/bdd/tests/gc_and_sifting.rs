//! Semantic transparency of the manager's memory machinery: garbage
//! collection and in-place sifting may recycle, relabel and restructure
//! nodes at will, but `exact_stats` must not move by a single ulp
//! beyond float tolerance.
//!
//! 1. A proptest builds random circuits and forces collections
//!    throughout the build and statistics pass (GC threshold 1), pinning
//!    every probability and density to the no-GC result at 1e-12.
//! 2. In-place sifting (adjacent level swaps per Rudell) must preserve
//!    every net function and every statistic, while never increasing the
//!    live node count.

use proptest::prelude::*;
use tr_bdd::{BuildOptions, CircuitBdds, OrderHeuristic};
use tr_boolean::SignalStats;
use tr_gatelib::Library;
use tr_netlist::{generators, CompiledCircuit};

fn assert_stats_equal(name: &str, a: &[SignalStats], b: &[SignalStats]) {
    assert_eq!(a.len(), b.len(), "{name}: net count");
    for (net, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x.probability() - y.probability()).abs() < 1e-12,
            "{name} net {net}: P {} vs {}",
            x.probability(),
            y.probability()
        );
        let tol = 1e-12 * x.density().abs().max(y.density().abs()).max(1.0);
        assert!(
            (x.density() - y.density()).abs() < tol,
            "{name} net {net}: D {} vs {}",
            x.density(),
            y.density()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// GC correctness: collections forced at every safe point (threshold
    /// 1) are invisible in the statistics of random circuits.
    #[test]
    fn forced_gc_matches_no_gc_statistics(
        inputs in 3usize..9,
        gates in 5usize..60,
        seed in 0u64..1u64 << 48,
        raw in prop::collection::vec((0.05f64..=0.95, 0.0f64..1.0e6), 9),
    ) {
        let lib = Library::standard();
        let circuit = generators::random_circuit(inputs, gates, seed, &lib);
        let compiled = CompiledCircuit::compile(&circuit, &lib).expect("generated circuits compile");
        let pi: Vec<SignalStats> = raw[..inputs]
            .iter()
            .map(|&(p, d)| SignalStats::new(p, d))
            .collect();
        // Never collects: the default threshold dwarfs these circuits.
        let mut lazy = CircuitBdds::build(&compiled, &lib, BuildOptions::default())
            .expect("fits the budget");
        // Collects constantly: mid-build, whenever the pool has garbage.
        let mut forced = CircuitBdds::build(
            &compiled,
            &lib,
            BuildOptions { gc_threshold: 1, ..BuildOptions::default() },
        )
        .expect("fits the budget");
        prop_assert_eq!(lazy.stats().gc_runs, 0, "default threshold must stay lazy here");
        prop_assert!(forced.stats().gc_runs > 0, "threshold 1 must force collections");
        let a = lazy.exact_stats(&pi).expect("statistics");
        let b = forced.exact_stats(&pi).expect("statistics");
        assert_stats_equal("random", &a, &b);
    }
}

/// In-place sifting preserves functions and statistics exactly, and the
/// refined order never holds more live nodes than the starting one.
#[test]
fn sifting_is_semantically_invisible() {
    let lib = Library::standard();
    let cases = [
        ("cmp6", generators::comparator(6, &lib)),
        ("rca8", generators::ripple_carry_adder(8, &lib)),
        ("rnd", generators::random_circuit(10, 80, 0x51F7, &lib)),
    ];
    for (name, circuit) in cases {
        let compiled = CompiledCircuit::compile(&circuit, &lib).expect("compiles");
        let n = compiled.primary_inputs().len();
        let pi: Vec<SignalStats> = (0..n)
            .map(|i| SignalStats::new(0.1 + 0.07 * (i % 10) as f64, 2.0e4 * (1 + i % 4) as f64))
            .collect();
        let mut plain =
            CircuitBdds::build(&compiled, &lib, BuildOptions::default()).expect("fits the budget");
        let mut sifted = CircuitBdds::build(
            &compiled,
            &lib,
            BuildOptions {
                heuristic: OrderHeuristic::Sifted { max_swaps: 500 },
                ..BuildOptions::default()
            },
        )
        .expect("fits the budget");
        assert!(
            sifted.stats().live_nodes <= plain.stats().live_nodes,
            "{name}: sifting worsened {} -> {}",
            plain.stats().live_nodes,
            sifted.stats().live_nodes
        );
        // Function preservation: every net, a spread of assignments.
        for trial in 0..24usize {
            let m = trial.wrapping_mul(0x9E3779B97F4A7C15usize);
            let v: Vec<bool> = (0..n).map(|i| (m >> (i % 60)) & 1 == 1).collect();
            let nets = compiled.evaluate(&lib, &v);
            let mut by_level = vec![false; n];
            for (level, &pos) in sifted.order().iter().enumerate() {
                by_level[level] = v[pos];
            }
            for (net, &want) in nets.iter().enumerate() {
                assert_eq!(
                    sifted
                        .manager()
                        .eval(sifted.root(tr_netlist::NetId(net)), &by_level),
                    want,
                    "{name} net {net} trial {trial}"
                );
            }
        }
        // Statistic preservation to 1e-12.
        let a = plain.exact_stats(&pi).expect("statistics");
        let b = sifted.exact_stats(&pi).expect("statistics");
        assert_stats_equal(name, &a, &b);
    }
}

/// Sifting composes with forced GC: collections between and during the
/// swap passes leave the statistics untouched.
#[test]
fn sifting_with_forced_gc_is_invisible() {
    let lib = Library::standard();
    let circuit = generators::comparator(5, &lib);
    let compiled = CompiledCircuit::compile(&circuit, &lib).expect("compiles");
    let n = compiled.primary_inputs().len();
    let pi: Vec<SignalStats> = (0..n)
        .map(|i| SignalStats::new(0.2 + 0.05 * i as f64, 1.0e5))
        .collect();
    let mut plain =
        CircuitBdds::build(&compiled, &lib, BuildOptions::default()).expect("fits the budget");
    let mut stressed = CircuitBdds::build(
        &compiled,
        &lib,
        BuildOptions {
            heuristic: OrderHeuristic::Sifted { max_swaps: 300 },
            gc_threshold: 1,
            ..BuildOptions::default()
        },
    )
    .expect("fits the budget");
    assert!(stressed.stats().gc_runs > 0);
    let a = plain.exact_stats(&pi).expect("statistics");
    let b = stressed.exact_stats(&pi).expect("statistics");
    assert_stats_equal("cmp5", &a, &b);
}
