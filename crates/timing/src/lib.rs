//! Elmore RC delay model for reordered gates, plus static timing analysis.
//!
//! Transistor reordering trades power against delay (column D of the
//! paper's Table 3): the classic speed rule puts the critical (latest-
//! arriving) transistor **near the output**, while the low-power rule of
//! the paper's case (2) often wants it near the ground node. This crate
//! models that tension:
//!
//! * per-input gate delay is the Elmore delay of the RC ladder along the
//!   switching path, with the *pre-discharge refinement*: when input `x`
//!   arrives last, the stack nodes between `x`'s transistor and the rail
//!   have already been (dis)charged by the earlier inputs, so only the
//!   capacitance at or above `x`'s device still moves. This reproduces
//!   the "critical transistor near the output is fastest" rule;
//! * delay depends linearly on output load: `τ(load) = τ₀ + R_path·load`;
//! * [`arrival_times`] runs a topological worst-case STA and
//!   [`critical_path_delay`] reports the circuit delay used for Table 3's
//!   D column.
//!
//! # Example
//!
//! ```
//! use tr_gatelib::{CellKind, Library, Process};
//! use tr_timing::TimingModel;
//!
//! let lib = Library::standard();
//! let timing = TimingModel::new(&lib, Process::default());
//! // NAND2 config 0: input 0 adjacent to the output → faster through
//! // input 0 than through input 1 (which sees the internal node too).
//! let d0 = timing.gate_delay(&CellKind::Nand(2), 0, 0, 0.0);
//! let d1 = timing.gate_delay(&CellKind::Nand(2), 0, 1, 0.0);
//! assert!(d0 < d1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use tr_gatelib::{CellId, CellKind, Library, Process};
use tr_netlist::Circuit;
use tr_spnet::{Edge, GateGraph, NodeId, TransistorKind};

/// Per-(cell, config, input) delay coefficients: `τ = base + r_path·load`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DelayCoeff {
    base: f64,
    r_path: f64,
}

/// Delay data of one cell: coefficients for every configuration,
/// flattened `[config × arity + pin]`.
#[derive(Debug, Clone)]
struct CellTiming {
    arity: usize,
    n_configs: usize,
    coeffs: Vec<DelayCoeff>,
    /// Per-input gate capacitance (for fanout loads).
    input_caps: Vec<f64>,
}

/// Precomputed Elmore delay tables over a library.
///
/// Tables are stored dense in [`CellId`] order (the library's cell
/// order), so lookups through an interned id — the path the compiled
/// optimizer takes — are plain array indexing; the by-[`CellKind`] API
/// pays one hash probe.
#[derive(Debug, Clone)]
pub struct TimingModel {
    process: Process,
    cells: Vec<CellTiming>,
    index: HashMap<CellKind, usize>,
}

impl TimingModel {
    /// Precomputes delay tables for every configuration of every cell.
    pub fn new(library: &Library, process: Process) -> Self {
        let mut cells = Vec::with_capacity(library.cells().len());
        let mut index = HashMap::new();
        for cell in library.cells() {
            let arity = cell.arity();
            let n_configs = cell.configurations().len();
            let mut coeffs = Vec::with_capacity(n_configs * arity);
            for ci in 0..n_configs {
                let graph = cell.graph(ci);
                coeffs.extend((0..arity).map(|input| worst_coeff(&graph, input, &process)));
            }
            let graph = cell.default_graph();
            let input_caps: Vec<f64> = (0..arity)
                .map(|i| process.input_capacitance(graph, i))
                .collect();
            index.insert(cell.kind().clone(), cells.len());
            cells.push(CellTiming {
                arity,
                n_configs,
                coeffs,
                input_caps,
            });
        }
        TimingModel {
            process,
            cells,
            index,
        }
    }

    /// The process parameters in use.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Interns a kind into the dense id the by-id fast path takes.
    ///
    /// Equals the [`Library::cell_id`] of the library the model was built
    /// from.
    pub fn cell_id(&self, cell: &CellKind) -> Option<CellId> {
        self.index.get(cell).copied().map(CellId)
    }

    /// Worst-case (rise/fall) propagation delay from `input` to the output
    /// of the given configuration, in seconds, under `load` farads of
    /// external output load.
    ///
    /// # Panics
    ///
    /// Panics if the `(cell, config)` pair is unknown or `input` is out of
    /// range.
    pub fn gate_delay(&self, cell: &CellKind, config: usize, input: usize, load: f64) -> f64 {
        let id = self
            .cell_id(cell)
            .filter(|&id| config < self.cells[id.0].n_configs)
            .unwrap_or_else(|| panic!("unknown cell/config {cell}/{config}"));
        self.gate_delay_by_id(id, config, input, load)
    }

    /// By-id variant of [`TimingModel::gate_delay`] — pure array indexing
    /// for the compiled optimizer's delay-bounded inner loop.
    ///
    /// The id must come from this model's library (equivalently, from
    /// [`TimingModel::cell_id`]); ids interned against a different
    /// library index other cells' tables.
    ///
    /// # Panics
    ///
    /// Panics if the id, `config` or `input` is out of range.
    pub fn gate_delay_by_id(&self, cell: CellId, config: usize, input: usize, load: f64) -> f64 {
        let ct = &self.cells[cell.0];
        assert!(input < ct.arity, "input {input} out of range");
        let c = ct.coeffs[config * ct.arity + input];
        c.base + c.r_path * load
    }

    /// External load on every net (fanout gate-input capacitance).
    pub fn external_loads(&self, circuit: &Circuit) -> Vec<f64> {
        let mut loads = vec![0.0f64; circuit.net_count()];
        for gate in circuit.gates() {
            let ct = &self.cells[*self
                .index
                .get(&gate.cell)
                .unwrap_or_else(|| panic!("unknown cell {}", gate.cell))];
            for (pin, net) in gate.inputs.iter().enumerate() {
                loads[net.0] += ct.input_caps[pin];
            }
        }
        loads
    }
}

/// Worst Elmore coefficient over both transitions and all structural
/// paths through `input`'s devices.
fn worst_coeff(graph: &GateGraph, input: usize, process: &Process) -> DelayCoeff {
    let mut worst = DelayCoeff {
        base: 0.0,
        r_path: 0.0,
    };
    for rail in [NodeId::Vss, NodeId::Vdd] {
        let kind = if rail == NodeId::Vss {
            TransistorKind::N
        } else {
            TransistorKind::P
        };
        for path in paths_through(graph, rail, input, kind) {
            let c = elmore(graph, &path, input, process);
            // Compare at a representative load so base/r trade-offs rank
            // consistently; 10 fF ≈ a few fanouts.
            let probe = 10.0e-15;
            if c.base + c.r_path * probe > worst.base + worst.r_path * probe {
                worst = c;
            }
        }
    }
    worst
}

/// All simple paths Output→rail staying inside the rail's network and
/// passing through `input`'s device.
fn paths_through(
    graph: &GateGraph,
    rail: NodeId,
    input: usize,
    kind: TransistorKind,
) -> Vec<Vec<Edge>> {
    let mut result = Vec::new();
    let mut path: Vec<Edge> = Vec::new();
    let mut visited = vec![NodeId::Output];
    dfs(
        graph,
        NodeId::Output,
        rail,
        kind,
        &mut visited,
        &mut path,
        &mut result,
    );
    result
        .into_iter()
        .filter(|p| p.iter().any(|e| e.input == input))
        .collect()
}

fn dfs(
    graph: &GateGraph,
    at: NodeId,
    rail: NodeId,
    kind: TransistorKind,
    visited: &mut Vec<NodeId>,
    path: &mut Vec<Edge>,
    result: &mut Vec<Vec<Edge>>,
) {
    for e in graph.edges() {
        if e.kind != kind {
            continue;
        }
        let next = if e.a == at {
            e.b
        } else if e.b == at {
            e.a
        } else {
            continue;
        };
        if visited.contains(&next) {
            continue;
        }
        path.push(*e);
        if next == rail {
            result.push(path.clone());
        } else if !matches!(next, NodeId::Vdd | NodeId::Vss) {
            visited.push(next);
            dfs(graph, next, rail, kind, visited, path, result);
            visited.pop();
        }
        path.pop();
    }
}

/// Elmore delay of one path (ordered Output→rail), with nodes strictly
/// below the critical device treated as pre-discharged.
fn elmore(graph: &GateGraph, path: &[Edge], input: usize, process: &Process) -> DelayCoeff {
    // Nodes along the path: v0 = Output, then the far endpoint of each
    // edge. Node v_k sits above edge k+... let v_k be the node above edge
    // e_k (v_0 = Output above e_0).
    let mut nodes: Vec<NodeId> = vec![NodeId::Output];
    let mut at = NodeId::Output;
    for e in path {
        at = if e.a == at { e.b } else { e.a };
        nodes.push(at);
    }
    // Resistance from node v_k to the rail = Σ resistances of edges k….
    let mut r_below: Vec<f64> = vec![0.0; nodes.len()];
    for k in (0..path.len()).rev() {
        r_below[k] = r_below[k + 1] + process.resistance(path[k].kind);
    }
    // Critical device position: the edge driven by `input`.
    let crit = path
        .iter()
        .position(|e| e.input == input)
        .expect("path must pass through the input's device");
    // Sum C·R over nodes at or above the critical device (v_0..v_crit).
    let mut base = 0.0;
    for (k, &node) in nodes.iter().enumerate().take(crit + 1) {
        let c = process.node_capacitance(graph, node, 0.0);
        base += c * r_below[k];
    }
    DelayCoeff {
        base,
        r_path: r_below[0],
    }
}

/// Worst-case arrival time of every net (primary inputs arrive at t = 0).
///
/// # Panics
///
/// Panics if the circuit is cyclic or uses unknown cells.
pub fn arrival_times(circuit: &Circuit, timing: &TimingModel) -> Vec<f64> {
    let loads = timing.external_loads(circuit);
    let mut arrival = vec![0.0f64; circuit.net_count()];
    let order = circuit.topological_order().expect("cyclic circuit");
    for gid in order {
        let gate = circuit.gate(gid);
        let load = loads[gate.output.0];
        let mut worst: f64 = 0.0;
        for (pin, net) in gate.inputs.iter().enumerate() {
            let d = timing.gate_delay(&gate.cell, gate.config, pin, load);
            worst = worst.max(arrival[net.0] + d);
        }
        arrival[gate.output.0] = worst;
    }
    arrival
}

/// The circuit's critical-path delay (seconds): the worst net arrival.
///
/// # Panics
///
/// Panics if the circuit is cyclic or uses unknown cells.
pub fn critical_path_delay(circuit: &Circuit, timing: &TimingModel) -> f64 {
    arrival_times(circuit, timing)
        .into_iter()
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tr_netlist::generators;

    fn timing() -> TimingModel {
        TimingModel::new(&Library::standard(), Process::default())
    }

    #[test]
    fn critical_input_near_output_is_fastest() {
        // NAND3: configurations are the 6 stack orders. For each config,
        // the fastest input must be the one adjacent to the output.
        let lib = Library::standard();
        let t = timing();
        let cell = lib.cell_by_name("nand3").unwrap();
        for c in 0..cell.configurations().len() {
            let delays: Vec<f64> = (0..3)
                .map(|i| t.gate_delay(cell.kind(), c, i, 5.0e-15))
                .collect();
            // The pulldown is a series chain; its first element is the
            // output-adjacent input.
            let topo = &cell.configurations()[c];
            let top_input = topo.pulldown.inputs()[0];
            let fastest = delays
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                .map(|(i, _)| i)
                .expect("non-empty");
            assert_eq!(
                fastest, top_input,
                "config {c}: delays {delays:?}, topo {topo}"
            );
        }
    }

    #[test]
    fn by_id_delay_matches_by_kind() {
        let lib = Library::standard();
        let t = timing();
        for cell in lib.cells() {
            let id = t.cell_id(cell.kind()).unwrap();
            assert_eq!(id, lib.cell_id(cell.kind()).unwrap());
            for c in 0..cell.configurations().len() {
                for pin in 0..cell.arity() {
                    assert_eq!(
                        t.gate_delay(cell.kind(), c, pin, 7.0e-15),
                        t.gate_delay_by_id(id, c, pin, 7.0e-15),
                        "{} config {c} pin {pin}",
                        cell.name()
                    );
                }
            }
        }
    }

    #[test]
    fn delay_monotone_in_load() {
        let t = timing();
        let d1 = t.gate_delay(&CellKind::Nand(2), 0, 0, 0.0);
        let d2 = t.gate_delay(&CellKind::Nand(2), 0, 0, 10.0e-15);
        let d3 = t.gate_delay(&CellKind::Nand(2), 0, 0, 20.0e-15);
        assert!(d1 < d2 && d2 < d3);
        // Linear in load.
        assert!(((d3 - d2) - (d2 - d1)).abs() < 1e-18);
    }

    #[test]
    fn bigger_stacks_are_slower() {
        let t = timing();
        let d2 = t.gate_delay(&CellKind::Nand(2), 0, 1, 5.0e-15);
        let d3 = t.gate_delay(&CellKind::Nand(3), 0, 2, 5.0e-15);
        let d4 = t.gate_delay(&CellKind::Nand(4), 0, 3, 5.0e-15);
        assert!(d2 < d3 && d3 < d4);
    }

    #[test]
    fn delays_are_physical() {
        // Everything in the sub-nanosecond range for fF/kΩ constants.
        let lib = Library::standard();
        let t = timing();
        for cell in lib.cells() {
            for c in 0..cell.configurations().len() {
                for i in 0..cell.arity() {
                    let d = t.gate_delay(cell.kind(), c, i, 8.0e-15);
                    assert!(d > 1.0e-12, "{} too fast: {d}", cell.name());
                    assert!(d < 5.0e-9, "{} too slow: {d}", cell.name());
                }
            }
        }
    }

    #[test]
    fn inverter_chain_delay_accumulates() {
        let lib = Library::standard();
        let t = timing();
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let (_, n1) = c.add_gate(CellKind::Inv, vec![a], "n1");
        let (_, n2) = c.add_gate(CellKind::Inv, vec![n1], "n2");
        let (_, n3) = c.add_gate(CellKind::Inv, vec![n2], "n3");
        c.mark_output(n3);
        assert!(c.validate(&lib).is_ok());
        let arrivals = arrival_times(&c, &t);
        assert!(arrivals[n1.0] > 0.0);
        assert!(arrivals[n2.0] > arrivals[n1.0]);
        assert!(arrivals[n3.0] > arrivals[n2.0]);
        // Loaded stages are slower than the last (unloaded) stage.
        let s1 = arrivals[n1.0];
        let s3 = arrivals[n3.0] - arrivals[n2.0];
        assert!(s1 > s3);
        let cp = critical_path_delay(&c, &t);
        assert!((cp - arrivals[n3.0]).abs() < 1e-18);
    }

    #[test]
    fn adder_critical_path_tracks_depth() {
        let lib = Library::standard();
        let t = timing();
        let rca8 = generators::ripple_carry_adder(8, &lib);
        let rca16 = generators::ripple_carry_adder(16, &lib);
        let d8 = critical_path_delay(&rca8, &t);
        let d16 = critical_path_delay(&rca16, &t);
        assert!(d16 > 1.5 * d8, "d8={d8} d16={d16}");
    }

    #[test]
    fn reordering_changes_delay() {
        let lib = Library::standard();
        let t = timing();
        let cell = lib.cell_by_name("nand3").unwrap();
        let delays: Vec<f64> = (0..cell.configurations().len())
            .map(|c| t.gate_delay(cell.kind(), c, 0, 5.0e-15))
            .collect();
        let min = delays.iter().cloned().fold(f64::MAX, f64::min);
        let max = delays.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min * 1.02, "delays {delays:?}");
    }
}
