//! `tr-trace`: structured tracing and metrics for the transistor-reordering
//! workspace, hand-rolled to match the vendored-shim convention (no crates.io
//! dependencies).
//!
//! Three pieces:
//!
//! * a **span-based tracer** — thread-local event buffers over a shared
//!   monotonic clock, merged at flush into [Chrome trace-event JSON] that
//!   Perfetto and `chrome://tracing` load directly ([`span!`], [`counter!`],
//!   [`instant!`], [`write_chrome_trace`]);
//! * a **metrics registry** ([`metrics`]) — named atomic counters, gauges,
//!   and log₂-bucketed latency histograms with quantile extraction, designed
//!   to back a future `tr-serve` `/metrics` endpoint;
//! * an **offline analyzer** ([`summary`]) — a minimal JSON parser plus a
//!   folder that turns a trace file into a per-span-name self-profile
//!   (count, total, mean, p99) and validates its shape.
//!
//! # Cost model
//!
//! Recording is double-gated. The `trace` cargo feature gates compilation:
//! without it [`is_enabled`] is a constant `false` and every call site folds
//! away. With the feature on (the workspace default), a relaxed atomic load
//! gates each site at runtime, so an idle tracer costs one predictable branch
//! per instrumentation point — a CI bench gate holds this under 3% on the
//! hottest propagation path. Each thread owns its buffer behind an
//! uncontended mutex; the only cross-thread locking happens at flush.
//!
//! [Chrome trace-event JSON]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

pub mod metrics;
pub mod summary;

use std::borrow::Cow;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Typed value attached to a span or instant event, rendered into the
/// event's `args` object. Constructed via `From` in the [`span!`] macro.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (also the target of `usize`/`u32` conversions).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point; non-finite values render as `null`.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form string.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<i32> for ArgValue {
    fn from(v: i32) -> Self {
        ArgValue::I64(i64::from(v))
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded trace event. `ph` follows the Chrome trace-event phase
/// letters: `B`/`E` span begin/end, `C` counter, `i` instant.
#[derive(Clone, Debug)]
struct Event {
    name: Cow<'static, str>,
    ph: char,
    ts_us: u64,
    tid: u64,
    /// Counter payload, meaningful only when `ph == 'C'`.
    value: f64,
    args: Vec<(&'static str, ArgValue)>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();
/// Every thread's buffer, registered on first use so flush can reach buffers
/// of threads that have since exited (the `Arc` keeps them alive).
static BUFFERS: Mutex<Vec<Arc<Mutex<Vec<Event>>>>> = Mutex::new(Vec::new());
static THREAD_NAMES: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());

struct Local {
    tid: u64,
    buf: Arc<Mutex<Vec<Event>>>,
}

thread_local! {
    static LOCAL: Local = {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let buf = Arc::new(Mutex::new(Vec::new()));
        BUFFERS
            .lock()
            .expect("trace buffer registry poisoned")
            .push(Arc::clone(&buf));
        Local { tid, buf }
    };
}

/// Whether events are being recorded right now. A constant `false` when the
/// `trace` feature is compiled out, so guarded call sites fold away entirely.
#[inline(always)]
pub fn is_enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Turns recording on and pins the clock epoch. With the `trace` feature
/// compiled out this still flips the flag, but [`is_enabled`] stays `false`
/// and nothing is recorded.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Already-buffered events are kept until
/// [`chrome_trace_json`] drains them or [`reset`] discards them.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Discards all buffered events and thread names without writing them.
pub fn reset() {
    for buf in BUFFERS
        .lock()
        .expect("trace buffer registry poisoned")
        .iter()
    {
        buf.lock().expect("trace buffer poisoned").clear();
    }
    THREAD_NAMES
        .lock()
        .expect("thread-name registry poisoned")
        .clear();
}

/// Microseconds since the tracer epoch (pinned at [`enable`] or first use).
fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn current_tid() -> u64 {
    LOCAL.with(|l| l.tid)
}

fn push(ev: Event) {
    // Owner-only push: the mutex is uncontended except while a flush on
    // another thread briefly holds it.
    LOCAL.with(|l| l.buf.lock().expect("trace buffer poisoned").push(ev));
}

/// Labels the calling thread in the trace timeline (a `thread_name`
/// metadata event). No-op while recording is off.
pub fn set_thread_name(name: &str) {
    if !is_enabled() {
        return;
    }
    let tid = current_tid();
    let mut names = THREAD_NAMES.lock().expect("thread-name registry poisoned");
    if let Some(slot) = names.iter_mut().find(|(t, _)| *t == tid) {
        slot.1 = name.to_string();
    } else {
        names.push((tid, name.to_string()));
    }
}

/// RAII guard for an open span: emits the matching `E` event on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    name: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Close unconditionally (not gated on `is_enabled`) so a span whose
        // `B` was recorded stays balanced even if tracing is disabled while
        // it is open.
        push(Event {
            name: Cow::Borrowed(self.name),
            ph: 'E',
            ts_us: now_us(),
            tid: current_tid(),
            value: 0.0,
            args: Vec::new(),
        });
    }
}

/// Opens a span; prefer the [`span!`] macro. Returns `None` (and records
/// nothing) while recording is off.
pub fn span(name: &'static str) -> Option<SpanGuard> {
    span_with(name, Vec::new())
}

/// Opens a span with arguments attached to its `B` event.
pub fn span_with(name: &'static str, args: Vec<(&'static str, ArgValue)>) -> Option<SpanGuard> {
    if !is_enabled() {
        return None;
    }
    push(Event {
        name: Cow::Borrowed(name),
        ph: 'B',
        ts_us: now_us(),
        tid: current_tid(),
        value: 0.0,
        args,
    });
    Some(SpanGuard { name })
}

/// Records a counter sample (`ph: C`) — a named time series in the viewer.
pub fn counter(name: &'static str, value: f64) {
    if !is_enabled() {
        return;
    }
    push(Event {
        name: Cow::Borrowed(name),
        ph: 'C',
        ts_us: now_us(),
        tid: current_tid(),
        value,
        args: Vec::new(),
    });
}

/// Records an instant event (`ph: i`) — a zero-duration mark.
pub fn instant(name: &'static str) {
    instant_with(name, Vec::new());
}

/// Records an instant event with arguments.
pub fn instant_with(name: &'static str, args: Vec<(&'static str, ArgValue)>) {
    if !is_enabled() {
        return;
    }
    push(Event {
        name: Cow::Borrowed(name),
        ph: 'i',
        ts_us: now_us(),
        tid: current_tid(),
        value: 0.0,
        args,
    });
}

/// Opens a span bound to the enclosing scope.
///
/// ```
/// let _g = tr_trace::span!("bdd.build");
/// let _g = tr_trace::span!("part.region", id = 3usize, cut = 7usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        if $crate::is_enabled() {
            $crate::span_with(
                $name,
                vec![$((stringify!($key), $crate::ArgValue::from($val))),+],
            )
        } else {
            None
        }
    };
}

/// Records a counter sample: `tr_trace::counter!("bdd.live", live)`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $value:expr) => {
        $crate::counter($name, $value as f64)
    };
}

/// Records an instant mark, optionally with arguments.
#[macro_export]
macro_rules! instant {
    ($name:expr) => {
        $crate::instant($name)
    };
    ($name:expr, $($key:ident = $val:expr),+ $(,)?) => {
        if $crate::is_enabled() {
            $crate::instant_with(
                $name,
                vec![$((stringify!($key), $crate::ArgValue::from($val))),+],
            )
        }
    };
}

/// Escapes a string for inclusion in a JSON string literal (shared by the
/// trace writer and the metrics renderer; `tr-trace` sits below `tr-flow`
/// so it cannot reuse the flow JSON helpers).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => out.push_str(&n.to_string()),
        ArgValue::I64(n) => out.push_str(&n.to_string()),
        ArgValue::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
        ArgValue::F64(_) => out.push_str("null"),
        ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        ArgValue::Str(s) => {
            out.push('"');
            out.push_str(&escape_json(s));
            out.push('"');
        }
    }
}

/// Drains every thread's buffer and merges by timestamp. The sort is stable,
/// so each thread's own push order (e.g. `B` before `E` at equal `ts`) is
/// preserved.
fn drain_events() -> Vec<Event> {
    let mut all = Vec::new();
    for buf in BUFFERS
        .lock()
        .expect("trace buffer registry poisoned")
        .iter()
    {
        all.append(&mut buf.lock().expect("trace buffer poisoned"));
    }
    all.sort_by_key(|e| e.ts_us);
    all
}

/// Serializes (and drains) all buffered events as a Chrome trace-event JSON
/// document: `{"traceEvents": [...]}` with `thread_name` metadata first.
pub fn chrome_trace_json() -> String {
    let events = drain_events();
    let names: Vec<(u64, String)> = THREAD_NAMES
        .lock()
        .expect("thread-name registry poisoned")
        .drain(..)
        .collect();
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (tid, name) in &names {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }
    for ev in &events {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
            escape_json(&ev.name),
            ev.ph,
            ev.tid,
            ev.ts_us
        ));
        if ev.ph == 'C' {
            out.push_str(",\"args\":{\"value\":");
            write_arg_value(&mut out, &ArgValue::F64(ev.value));
            out.push('}');
        } else if !ev.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in ev.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape_json(k));
                out.push_str("\":");
                write_arg_value(&mut out, v);
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Writes (and drains) the buffered trace to `path` as Chrome trace JSON.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_value_conversions() {
        assert_eq!(ArgValue::from(3usize), ArgValue::U64(3));
        assert_eq!(ArgValue::from(-2i32), ArgValue::I64(-2));
        assert_eq!(ArgValue::from(0.5f64), ArgValue::F64(0.5));
        assert_eq!(ArgValue::from("x"), ArgValue::Str("x".to_string()));
        assert_eq!(ArgValue::from(true), ArgValue::Bool(true));
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn disabled_feature_records_nothing() {
        enable();
        assert!(!is_enabled());
        let g = span("never");
        assert!(g.is_none());
        counter("never", 1.0);
        assert!(!chrome_trace_json().contains("never"));
        disable();
    }
}
