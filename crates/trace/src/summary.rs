//! Offline trace analysis: a minimal JSON parser (the workspace has JSON
//! *writers* only) and a folder that turns a Chrome trace-event file into a
//! per-span-name self-profile while validating its shape — valid JSON,
//! balanced `B`/`E` pairs per thread, monotone per-thread timestamps.
//!
//! Available without the `trace` feature: analysis of an existing trace file
//! never needs the runtime tracer.

use std::collections::BTreeMap;

/// A parsed JSON value. Objects preserve key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String with escapes decoded.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as a key/value list in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            // Decode a UTF-16 surrogate pair if one follows.
                            let c = if (0xd800..0xdc00).contains(&cp)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(combined).unwrap_or('\u{fffd}')
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (strings are the only place
                    // multi-byte sequences can appear).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON document"));
    }
    Ok(value)
}

/// Aggregate statistics for one span name.
#[derive(Clone, Debug)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Completed spans with this name.
    pub count: u64,
    /// Summed duration, µs.
    pub total_us: u64,
    /// Mean duration, µs.
    pub mean_us: f64,
    /// Exact 99th-percentile duration (nearest-rank), µs.
    pub p99_us: u64,
}

/// A folded trace: total wall-clock extent plus per-span-name statistics.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// `max(ts) - min(ts)` over all non-metadata events, µs.
    pub wall_us: u64,
    /// Non-metadata events seen.
    pub events: usize,
    /// Per-name statistics sorted by `total_us` descending.
    pub spans: Vec<SpanStat>,
}

impl TraceSummary {
    /// Renders the self-profile as an aligned text table.
    pub fn render_table(&self) -> String {
        let name_w = self
            .spans
            .iter()
            .map(|s| s.name.len())
            .chain(std::iter::once("span".len()))
            .max()
            .unwrap_or(4);
        let mut out = format!(
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>12}\n",
            "span", "count", "total_us", "mean_us", "p99_us"
        );
        for s in &self.spans {
            out.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>12}  {:>12.1}  {:>12}\n",
                s.name, s.count, s.total_us, s.mean_us, s.p99_us
            ));
        }
        out.push_str(&format!(
            "wall time: {} us over {} events\n",
            self.wall_us, self.events
        ));
        out
    }
}

/// Folds a Chrome trace-event JSON document into a [`TraceSummary`],
/// validating shape along the way: every event needs `ph`/`ts`/`tid`, `B`/`E`
/// must balance per thread with matching names, and per-thread timestamps
/// must be monotone. Returns a description of the first violation found.
pub fn fold(src: &str) -> Result<TraceSummary, String> {
    let root = parse(src)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing 'traceEvents' array".to_string())?;

    let mut stacks: BTreeMap<u64, Vec<(String, u64)>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut durations: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut min_ts = u64::MAX;
    let mut max_ts = 0u64;
    let mut counted = 0usize;

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing 'ph'"))?;
        if ph == "M" {
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing or negative 'ts'"))?;
        let tid = ev
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing 'tid'"))?;
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        counted += 1;
        min_ts = min_ts.min(ts);
        max_ts = max_ts.max(ts);
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "event {i}: timestamp {ts} < {prev} — not monotone on tid {tid}"
                ));
            }
        }
        last_ts.insert(tid, ts);

        match ph {
            "B" => stacks.entry(tid).or_default().push((name.to_string(), ts)),
            "E" => {
                let (open_name, open_ts) = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .ok_or_else(|| format!("event {i}: 'E' with no open span on tid {tid}"))?;
                if !name.is_empty() && name != open_name {
                    return Err(format!(
                        "event {i}: 'E' for '{name}' closes open span '{open_name}' on tid {tid}"
                    ));
                }
                durations.entry(open_name).or_default().push(ts - open_ts);
            }
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("event {i}: 'X' without 'dur'"))?;
                max_ts = max_ts.max(ts + dur);
                durations.entry(name.to_string()).or_default().push(dur);
            }
            "C" | "i" | "I" => {}
            other => return Err(format!("event {i}: unsupported phase '{other}'")),
        }
    }

    for (tid, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!(
                "unbalanced trace: span '{name}' still open on tid {tid} ({} open total)",
                stack.len()
            ));
        }
    }

    let mut spans: Vec<SpanStat> = durations
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            let count = durs.len() as u64;
            let total: u64 = durs.iter().sum();
            // Nearest-rank p99 over the exact durations (the registry
            // histograms bucket; here we have every sample).
            let rank = ((0.99 * count as f64).ceil() as usize).clamp(1, durs.len());
            SpanStat {
                name,
                count,
                total_us: total,
                mean_us: total as f64 / count as f64,
                p99_us: durs[rank - 1],
            }
        })
        .collect();
    spans.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));

    Ok(TraceSummary {
        wall_us: if counted == 0 { 0 } else { max_ts - min_ts },
        events: counted,
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_basic_values() {
        assert_eq!(parse("null"), Ok(Json::Null));
        assert_eq!(parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(parse("-1.5e2"), Ok(Json::Num(-150.0)));
        assert_eq!(parse(r#""a\"bA\n""#), Ok(Json::Str("a\"bA\n".to_string())));
        assert_eq!(
            parse(r#"[1, {"k": "v"}, []]"#),
            Ok(Json::Arr(vec![
                Json::Num(1.0),
                Json::Obj(vec![("k".to_string(), Json::Str("v".to_string()))]),
                Json::Arr(vec![]),
            ]))
        );
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1] x").is_err());
    }

    #[test]
    fn parse_decodes_surrogate_pairs() {
        assert_eq!(parse(r#""😀""#), Ok(Json::Str("😀".to_string())));
    }

    #[test]
    fn fold_computes_per_span_stats() {
        let src = r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"main"}},
            {"name":"a","ph":"B","pid":1,"tid":1,"ts":0},
            {"name":"b","ph":"B","pid":1,"tid":1,"ts":10},
            {"name":"b","ph":"E","pid":1,"tid":1,"ts":40},
            {"name":"a","ph":"E","pid":1,"tid":1,"ts":100},
            {"name":"b","ph":"X","pid":1,"tid":2,"ts":50,"dur":20}
        ]}"#;
        let summary = fold(src).expect("valid trace");
        assert_eq!(summary.events, 5);
        assert_eq!(summary.wall_us, 100);
        assert_eq!(summary.spans.len(), 2);
        assert_eq!(summary.spans[0].name, "a");
        assert_eq!(summary.spans[0].total_us, 100);
        assert_eq!(summary.spans[1].name, "b");
        assert_eq!(summary.spans[1].count, 2);
        assert_eq!(summary.spans[1].total_us, 50);
        assert_eq!(summary.spans[1].p99_us, 30);
    }

    #[test]
    fn fold_rejects_malformed_traces() {
        let unbalanced = r#"{"traceEvents":[{"name":"a","ph":"B","pid":1,"tid":1,"ts":0}]}"#;
        assert!(fold(unbalanced).unwrap_err().contains("still open"));
        let crossed = r#"{"traceEvents":[
            {"name":"a","ph":"B","pid":1,"tid":1,"ts":0},
            {"name":"x","ph":"E","pid":1,"tid":1,"ts":5}
        ]}"#;
        assert!(fold(crossed).unwrap_err().contains("closes open span"));
        let backwards = r#"{"traceEvents":[
            {"name":"a","ph":"i","pid":1,"tid":1,"ts":10},
            {"name":"b","ph":"i","pid":1,"tid":1,"ts":5}
        ]}"#;
        assert!(fold(backwards).unwrap_err().contains("not monotone"));
        let stray_end = r#"{"traceEvents":[{"name":"a","ph":"E","pid":1,"tid":1,"ts":0}]}"#;
        assert!(fold(stray_end).unwrap_err().contains("no open span"));
        assert!(fold("not json").is_err());
    }
}
