//! Process-wide metrics registry: named atomic counters, gauges, and
//! log₂-bucketed latency histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones of
//! registry slots; look one up once (e.g. in a constructor) and update it on
//! the hot path with relaxed atomics. [`snapshot`] and [`render_text`] read
//! everything at once — `render_text` emits the Prometheus text exposition
//! format so a future `tr-serve` `/metrics` endpoint can serve it verbatim.
//!
//! Unlike the span tracer, the registry is always live (it does not consult
//! [`crate::is_enabled`]): metric updates are single relaxed atomic ops on
//! cold-to-warm paths, and callers that need zero cost gate on
//! [`crate::is_enabled`] themselves.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonically increasing event count.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point level (stored as `f64` bits).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i)`, and bucket 64 tops out at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Lock-free latency histogram with power-of-two buckets. Values are
/// unitless `u64`s; the workspace records microseconds.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// Bucket index for a recorded value: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Largest value the bucket can hold (`2^i - 1`, saturating at `u64::MAX`);
/// quantiles report this inclusive upper bound.
pub fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile (`0 < q ≤ 1`);
    /// 0 when empty. `quantile(0.5)` is the median bucket bound.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            seen += self.0.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Per-bucket counts (index `i` as in [`bucket_index`]).
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Looks up (creating on first use) the named counter.
pub fn counter(name: &str) -> Counter {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    reg.counters.entry(name.to_string()).or_default().clone()
}

/// Looks up (creating on first use) the named gauge.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    reg.gauges.entry(name.to_string()).or_default().clone()
}

/// Looks up (creating on first use) the named histogram.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    reg.histograms.entry(name.to_string()).or_default().clone()
}

/// Drops every registered metric (existing handles keep working but are
/// orphaned from future snapshots). Intended for tests.
pub fn reset() {
    *registry().lock().expect("metrics registry poisoned") = Registry::default();
}

/// Point-in-time view of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Median bucket upper bound.
    pub p50: u64,
    /// 90th-percentile bucket upper bound.
    pub p90: u64,
    /// 99th-percentile bucket upper bound.
    pub p99: u64,
}

/// Point-in-time view of the whole registry, sorted by metric name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Reads every registered metric at once.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().expect("metrics registry poisoned");
    MetricsSnapshot {
        counters: reg
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: v.count(),
                        sum: v.sum(),
                        p50: v.quantile(0.50),
                        p90: v.quantile(0.90),
                        p99: v.quantile(0.99),
                    },
                )
            })
            .collect(),
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders the registry in the Prometheus text exposition format
/// (metric names sanitized to `[a-zA-Z0-9_]`; histograms expose
/// `_count`, `_sum`, and quantile series).
pub fn render_text() -> String {
    let snap = snapshot();
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        out.push_str(&format!("{n}{{quantile=\"0.5\"}} {}\n", h.p50));
        out.push_str(&format!("{n}{{quantile=\"0.9\"}} {}\n", h.p90));
        out.push_str(&format!("{n}{{quantile=\"0.99\"}} {}\n", h.p99));
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(0.75);
        assert!((g.get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Pin the bucketing scheme: 0 → bucket 0; [2^(i-1), 2^i) → bucket i.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(11), 2047);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_report_bucket_upper_bounds() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), 0);
        // 99 fast observations and one slow outlier: p50 stays in the fast
        // bucket, p99 lands exactly on the 99th rank (still fast), and only
        // p100 sees the outlier.
        for _ in 0..99 {
            h.record(100); // bucket 7: [64, 128)
        }
        h.record(1_000_000); // bucket 20
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 99 * 100 + 1_000_000);
        assert_eq!(h.quantile(0.50), bucket_upper(7));
        assert_eq!(h.quantile(0.99), bucket_upper(7));
        assert_eq!(h.quantile(1.0), bucket_upper(20));
    }

    #[test]
    fn registry_snapshot_and_render() {
        reset();
        counter("test.reqs").add(3);
        gauge("test.load").set(1.5);
        histogram("test.lat_us").record(9);
        let snap = snapshot();
        assert_eq!(snap.counters, vec![("test.reqs".to_string(), 3)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
        assert_eq!(snap.histograms[0].1.p99, bucket_upper(4));
        let text = render_text();
        assert!(text.contains("# TYPE test_reqs counter"));
        assert!(text.contains("test_reqs 3"));
        assert!(text.contains("test_lat_us{quantile=\"0.99\"} 15"));
        reset();
    }
}
