//! Golden test for the Chrome trace-event JSON emitted by the tracer: the
//! document must parse, carry thread names, keep `B`/`E` balanced with
//! monotone per-thread timestamps, and survive its own validator.
//!
//! Runs single-threaded through the global tracer, so everything lives in
//! one `#[test]` (integration tests share a process).
#![cfg(feature = "trace")]

use tr_trace::summary::{fold, parse, Json};

#[test]
fn chrome_trace_shape() {
    tr_trace::reset();
    tr_trace::enable();
    tr_trace::set_thread_name("golden-main");

    {
        let _outer = tr_trace::span!("outer", gates = 12usize, mode = "part");
        for i in 0..3usize {
            let _inner = tr_trace::span!("inner", index = i);
            std::hint::black_box(i);
        }
        tr_trace::counter!("live_nodes", 42);
        tr_trace::instant!("checkpoint", phase = "stats");
    }

    tr_trace::disable();
    let json = tr_trace::chrome_trace_json();

    // Valid JSON with a traceEvents array.
    let root = parse(&json).expect("tracer must emit valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    // Metadata: the thread is named.
    let meta: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .collect();
    assert_eq!(meta.len(), 1);
    assert_eq!(
        meta[0]
            .get("args")
            .and_then(|a| a.get("name"))
            .and_then(Json::as_str),
        Some("golden-main")
    );

    // Span args made it through with their types.
    let outer_b = events
        .iter()
        .find(|e| {
            e.get("name").and_then(Json::as_str) == Some("outer")
                && e.get("ph").and_then(Json::as_str) == Some("B")
        })
        .expect("outer B event");
    let args = outer_b.get("args").expect("outer args");
    assert_eq!(args.get("gates").and_then(Json::as_u64), Some(12));
    assert_eq!(args.get("mode").and_then(Json::as_str), Some("part"));

    // Every event carries pid/tid/ts (except M, which has no ts).
    for e in events {
        assert_eq!(e.get("pid").and_then(Json::as_u64), Some(1));
        assert!(e.get("tid").and_then(Json::as_u64).is_some());
    }

    // Balanced B/E, monotone timestamps — the validator is the oracle.
    let summary = fold(&json).expect("well-formed trace");
    // 4 B + 4 E + 1 C + 1 i.
    assert_eq!(summary.events, 10);
    let outer = summary.spans.iter().find(|s| s.name == "outer").unwrap();
    assert_eq!(outer.count, 1);
    let inner = summary.spans.iter().find(|s| s.name == "inner").unwrap();
    assert_eq!(inner.count, 3);
    // Nesting: the outer span extends at least as far as its inners.
    assert!(outer.total_us >= inner.total_us);

    // The buffer drained: a second flush is empty.
    let empty = fold(&tr_trace::chrome_trace_json()).expect("empty trace still valid");
    assert_eq!(empty.events, 0);
}
