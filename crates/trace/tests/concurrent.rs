//! Multi-threaded property test: concurrent span emission from a pool of
//! worker threads must never interleave corruptly — the merged trace stays
//! valid JSON with balanced `B`/`E` per tid, monotone per-thread timestamps,
//! and exactly the spans each worker emitted, on that worker's own tid.
//!
//! The tracer is a process-wide singleton, so the whole property runs inside
//! one `#[test]` (proptest drives the cases sequentially).
#![cfg(feature = "trace")]

use proptest::prelude::*;
use tr_trace::summary::{fold, Json};

fn worker(id: usize, spans: usize, depth: usize) {
    tr_trace::set_thread_name(&format!("worker-{id}"));
    for s in 0..spans {
        let _outer = tr_trace::span!("work", worker = id, item = s);
        for d in 0..depth {
            let _inner = tr_trace::span!("step", level = d);
            std::hint::black_box(d);
        }
        tr_trace::counter!("items_done", s + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn concurrent_span_emission_stays_well_formed(
        threads in 2usize..6,
        spans in 1usize..8,
        depth in 0usize..4,
    ) {
        tr_trace::reset();
        tr_trace::enable();
        let handles: Vec<_> = (0..threads)
            .map(|id| std::thread::spawn(move || worker(id, spans, depth)))
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        tr_trace::disable();

        let json = tr_trace::chrome_trace_json();
        // fold() is the oracle: parses, checks balance and monotonicity.
        let summary = fold(&json).unwrap_or_else(|e| panic!("corrupt trace: {e}"));

        let work = summary.spans.iter().find(|s| s.name == "work");
        prop_assert_eq!(work.map(|s| s.count), Some((threads * spans) as u64));
        let steps = summary.spans.iter().find(|s| s.name == "step");
        prop_assert_eq!(
            steps.map_or(0, |s| s.count),
            (threads * spans * depth) as u64
        );

        // Each worker's spans sit on its own tid: as many distinct tids carry
        // "work" B events as there were threads, and each tid carries exactly
        // `spans` of them.
        let root = tr_trace::summary::parse(&json).unwrap();
        let events = root.get("traceEvents").and_then(Json::as_arr).unwrap();
        let mut per_tid: std::collections::BTreeMap<u64, u64> = Default::default();
        for e in events {
            if e.get("name").and_then(Json::as_str) == Some("work")
                && e.get("ph").and_then(Json::as_str) == Some("B")
            {
                *per_tid.entry(e.get("tid").and_then(Json::as_u64).unwrap()).or_default() += 1;
            }
        }
        prop_assert_eq!(per_tid.len(), threads);
        prop_assert!(per_tid.values().all(|&n| n == spans as u64));
    }
}
