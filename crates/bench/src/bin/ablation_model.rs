//! Model ablations (ours, motivated by the paper's §1/§2 discussion):
//!
//! 1. **Density-blind optimization** — what earlier input-reordering work
//!    (Carlson'93 etc.) could do: optimize with equilibrium probabilities
//!    only (every input density forced equal). The paper argues this
//!    misses most of the opportunity; we quantify it.
//! 2. **Output-only model** — ignore internal nodes (pre-paper power
//!    models): the optimizer can then only exploit output-diffusion
//!    differences and loses most of its signal.
//! 3. **Load sweep** — savings versus external output load: as the output
//!    capacitance dominates, the internal nodes (the paper's entire
//!    optimization surface) matter less.
//!
//! Run: `cargo run -p tr-bench --release --bin ablation_model`

use tr_bench::Harness;
use tr_boolean::SignalStats;
use tr_gatelib::FEMTO;
use tr_netlist::{suite, Circuit};
use tr_power::scenario::Scenario;
use tr_power::{circuit_power, external_loads, propagate};
use tr_reorder::{optimize, Objective};

/// Model power of `circuit` under `stats`.
fn model_power(h: &Harness, circuit: &Circuit, stats: &[SignalStats]) -> f64 {
    let net_stats = propagate(circuit, &h.library, stats);
    circuit_power(circuit, &h.model, &net_stats).total
}

/// A probability-only optimizer (what pre-Najm input-reordering work had
/// to work with): every gate is explored with its true input
/// *probabilities* but a uniform transition density on every pin, so
/// activity gradients — including the ones the circuit itself creates,
/// like carry chains — are invisible to the choice.
fn optimize_density_blind(h: &Harness, circuit: &Circuit, stats: &[SignalStats]) -> Circuit {
    let net_stats = propagate(circuit, &h.library, stats);
    let loads = external_loads(circuit, &h.model);
    let mut result = circuit.clone();
    for (i, gate) in circuit.gates().iter().enumerate() {
        let blind: Vec<SignalStats> = gate
            .inputs
            .iter()
            .map(|n| SignalStats::new(net_stats[n.0].probability(), 1.0e5))
            .collect();
        let (best, _) = h
            .model
            .best_and_worst(&gate.cell, &blind, loads[gate.output.0]);
        result.set_config(tr_netlist::GateId(i), best);
    }
    result
}

fn main() {
    let h = Harness::new();
    let cases: Vec<_> = suite::quick_suite(&h.library)
        .into_iter()
        .filter(|c| c.circuit.gates().len() >= 20)
        .collect();

    for (scen_name, scenario) in [
        ("A (P,D random)", Scenario::a()),
        ("B (P=0.5)", Scenario::b()),
    ] {
        println!("Ablation 1: density-blind optimization, scenario {scen_name}");
        println!(
            "{:<10} {:>10} {:>14} {:>14}",
            "circuit", "full M%", "dens-blind M%", "headroom kept"
        );
        let mut full_sum = 0.0;
        let mut blind_sum = 0.0;
        for case in &cases {
            let n = case.circuit.primary_inputs().len();
            let stats = scenario.input_stats(n, 0xAB1);
            // Full-information optimization.
            let best = optimize(
                &case.circuit,
                &h.library,
                &h.model,
                &stats,
                Objective::MinimizePower,
            );
            let worst = optimize(
                &case.circuit,
                &h.library,
                &h.model,
                &stats,
                Objective::MaximizePower,
            );
            let full = 100.0 * (worst.power_after - best.power_after) / worst.power_after;

            // Density-blind: the optimizer sees true probabilities but a
            // uniform density on every gate pin; evaluation uses the truth.
            let blind_best = optimize_density_blind(&h, &case.circuit, &stats);
            let p_blind = model_power(&h, &blind_best, &stats);
            let p_best = model_power(&h, &best.circuit, &stats);
            let p_worst = model_power(&h, &worst.circuit, &stats);
            let blind = 100.0 * (p_worst - p_blind) / p_worst;
            let kept = if p_worst > p_best {
                (p_worst - p_blind) / (p_worst - p_best)
            } else {
                1.0
            };
            full_sum += full;
            blind_sum += blind;
            println!(
                "{:<10} {:>10.1} {:>14.1} {:>13.0}%",
                case.name,
                full,
                blind,
                100.0 * kept
            );
        }
        let n = cases.len().max(1) as f64;
        println!(
            "{:<10} {:>10.1} {:>14.1}   (averages)",
            "AVG",
            full_sum / n,
            blind_sum / n
        );
        println!();
    }
    println!("Interpretation: at circuit level a probability-only optimizer stays");
    println!("surprisingly competitive, because internal net *probabilities* vary");
    println!("and correlate with activity. The density information is decisive");
    println!("exactly where the paper's Table 1 lives: gates whose pins share one");
    println!("probability but differ in activity. Ablation 1c isolates that:");
    println!();

    // Ablation 1c: the Table 1 gate — equal probabilities, skewed density.
    {
        let lib = &h.library;
        let cell = lib.cell_by_name("oai21").expect("oai21");
        let blind_stats = [SignalStats::new(0.5, 1.0e5); 3];
        let load = 8.0 * FEMTO;
        let (blind_best, _) = h.model.best_and_worst(cell.kind(), &blind_stats, load);
        println!("Ablation 1c: OAI21 with P=0.5 on every pin (the Table 1 setting):");
        for (name, dens) in [
            ("case (1)", [1.0e4, 1.0e5, 1.0e6]),
            ("case (2)", [1.0e6, 1.0e5, 1.0e4]),
        ] {
            let true_stats: Vec<SignalStats> =
                dens.iter().map(|&d| SignalStats::new(0.5, d)).collect();
            let (full_best, worst) = h.model.best_and_worst(cell.kind(), &true_stats, load);
            let p = |c: usize| h.model.gate_power(cell.kind(), c, &true_stats, load).total;
            println!(
                "  {name}: full picks cfg {full_best} ({:.1}% below worst); blind picks cfg {blind_best} ({:.1}% below worst)",
                100.0 * (p(worst) - p(full_best)) / p(worst),
                100.0 * (p(worst) - p(blind_best)) / p(worst),
            );
        }
        println!("  the blind choice cannot follow the activity skew — it keeps one");
        println!("  fixed ordering, which forfeits roughly half the benefit when the");
        println!("  hot input moves (case 2). That is the paper's §1.1 argument.");
    }
    println!();

    // Ablation 2: output-only power model (the pre-paper baseline).
    println!("Ablation 2: output-node-only model (internal nodes invisible)");
    println!(
        "{:<10} {:>10} {:>14} {:>14}",
        "circuit", "full M%", "out-only M%", "headroom kept"
    );
    let mut full_sum = 0.0;
    let mut out_sum = 0.0;
    for case in &cases {
        let n = case.circuit.primary_inputs().len();
        let stats = Scenario::a().input_stats(n, 0xAB1);
        let best = optimize(
            &case.circuit,
            &h.library,
            &h.model,
            &stats,
            Objective::MinimizePower,
        );
        let worst = optimize(
            &case.circuit,
            &h.library,
            &h.model,
            &stats,
            Objective::MaximizePower,
        );
        // Output-only: per gate, choose the config minimizing *output node*
        // power alone (what a classic gate-level model can see).
        let net_stats = propagate(&case.circuit, &h.library, &stats);
        let loads = external_loads(&case.circuit, &h.model);
        let mut out_only = case.circuit.clone();
        for (i, gate) in case.circuit.gates().iter().enumerate() {
            let cell = h.library.cell(&gate.cell).expect("library cell");
            let inputs: Vec<SignalStats> = gate.inputs.iter().map(|n| net_stats[n.0]).collect();
            let best_cfg = (0..cell.configurations().len())
                .min_by(|&a, &b| {
                    let pa = h
                        .model
                        .gate_power(cell.kind(), a, &inputs, loads[gate.output.0])
                        .output();
                    let pb = h
                        .model
                        .gate_power(cell.kind(), b, &inputs, loads[gate.output.0])
                        .output();
                    pa.total_cmp(&pb)
                })
                .expect("at least one configuration");
            out_only.set_config(tr_netlist::GateId(i), best_cfg);
        }
        let p_out = model_power(&h, &out_only, &stats);
        let p_best = best.power_after;
        let p_worst = worst.power_after;
        let full = 100.0 * (p_worst - p_best) / p_worst;
        let outm = 100.0 * (p_worst - p_out) / p_worst;
        let kept = if p_worst > p_best {
            100.0 * (p_worst - p_out) / (p_worst - p_best)
        } else {
            100.0
        };
        full_sum += full;
        out_sum += outm;
        println!(
            "{:<10} {:>10.1} {:>14.1} {:>13.0}%",
            case.name, full, outm, kept
        );
    }
    let n = cases.len().max(1) as f64;
    println!(
        "{:<10} {:>10.1} {:>14.1}   (averages)",
        "AVG",
        full_sum / n,
        out_sum / n
    );
    println!();
    println!("Interpretation: a model that cannot see internal nodes captures only");
    println!("the diffusion-at-output side effect of reordering and leaves most of");
    println!("the headroom on the table — the paper's extended model is the point.");
    println!();

    // Ablation 4: rule-of-thumb reordering (Shen et al. [9]) vs the model.
    println!("Ablation 4: rule-based reordering vs the stochastic model (Scenario A)");
    println!(
        "{:<10} {:>10} {:>14} {:>14}",
        "circuit", "model M%", "hot@output M%", "hot@rail M%"
    );
    let mut sums = (0.0f64, 0.0f64, 0.0f64);
    for case in &cases {
        let n = case.circuit.primary_inputs().len();
        let stats = Scenario::a().input_stats(n, 0xAB1);
        let best = optimize(
            &case.circuit,
            &h.library,
            &h.model,
            &stats,
            Objective::MinimizePower,
        );
        let worst = optimize(
            &case.circuit,
            &h.library,
            &h.model,
            &stats,
            Objective::MaximizePower,
        );
        let span = |p: f64| 100.0 * (worst.power_after - p) / worst.power_after;
        let out_rule = tr_reorder::optimize_rule_based(
            &case.circuit,
            &h.library,
            &h.model,
            &stats,
            tr_reorder::Rule::HotNearOutput,
        );
        let rail_rule = tr_reorder::optimize_rule_based(
            &case.circuit,
            &h.library,
            &h.model,
            &stats,
            tr_reorder::Rule::HotNearRail,
        );
        sums.0 += span(best.power_after);
        sums.1 += span(out_rule.power_after);
        sums.2 += span(rail_rule.power_after);
        println!(
            "{:<10} {:>10.1} {:>14.1} {:>14.1}",
            case.name,
            span(best.power_after),
            span(out_rule.power_after),
            span(rail_rule.power_after)
        );
    }
    let n = cases.len().max(1) as f64;
    println!(
        "{:<10} {:>10.1} {:>14.1} {:>14.1}   (averages)",
        "AVG",
        sums.0 / n,
        sums.1 / n,
        sums.2 / n
    );
    println!();
    println!("Interpretation: a fixed rule of thumb captures part of the headroom");
    println!("but cannot adapt to probabilities, capacitance asymmetries or the");
    println!("charge state; the paper's per-gate exhaustive search under the full");
    println!("model recovers the rest — and never loses to either rule.");
    println!();

    // Ablation 3: load sweep on the motivating gate population (rca8).
    println!("Ablation 3: Scenario-A savings vs external load per gate output");
    println!("{:>12} {:>10}", "extra load", "M%");
    let rca = tr_netlist::generators::ripple_carry_adder(8, &h.library);
    let stats = Scenario::a().input_stats(rca.primary_inputs().len(), 0x10AD);
    for extra_ff in [0.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
        // Emulate heavier wiring by scaling the process' output wire cap.
        let mut process = h.process.clone();
        process.c_wire_output += extra_ff * FEMTO;
        let model = tr_power::PowerModel::new(&h.library, process);
        let best = optimize(&rca, &h.library, &model, &stats, Objective::MinimizePower);
        let worst = optimize(&rca, &h.library, &model, &stats, Objective::MaximizePower);
        let m = 100.0 * (worst.power_after - best.power_after) / worst.power_after;
        println!("{:>10.0}fF {:>10.1}", extra_ff, m);
    }
    println!();
    println!("Interpretation: reordering's leverage shrinks as the (fixed) output");
    println!("load dominates — consistent with the paper's Sea-of-Gates setting");
    println!("where internal diffusion is a substantial fraction of node charge.");
}
