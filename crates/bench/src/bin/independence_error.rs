//! The independence-error table (ours, enabled by `tr-bdd`): how far the
//! paper's §3 input-independence assumption drifts from the exact signal
//! statistics, per suite circuit, plus the BDD engine's size, GC and
//! cache statistics and wall-clock — the perf trajectory of the exact
//! backend lives in this table.
//!
//! For every suite circuit, the table reports, under Scenario B
//! statistics (`P = 0.5`, `D = 0.5` on every input — any bias is then
//! pure circuit structure, not input skew):
//!
//! * `maxΔP` / `rmsΔP` — max and RMS absolute deviation of the
//!   independent probabilities from exact, over all nets;
//! * `maxΔD%` — worst relative transition-density deviation;
//! * `ms` — wall-clock of the whole exact pass (build + probabilities +
//!   densities);
//! * `live`/`alloc` — nodes reachable from the net roots vs all-time
//!   allocations (the garbage the collector was free to recycle);
//! * `gc`/`peak` — collections run and the live-count high-water mark
//!   (what the node budget actually had to hold);
//! * ITE-cache hit rate of the build.
//!
//! Since the mark-and-sweep manager bounds the budget by *live* nodes
//! and the density pass stopped materializing difference BDDs, every
//! suite circuit fits the default budget — including `rnd_e`'s 32-input
//! random logic, the classic BDD worst case that used to die at 8 M
//! allocated nodes.
//!
//! Run: `cargo run -p tr-bench --release --bin independence_error`

use std::time::Instant;
use tr_bench::Harness;
use tr_boolean::SignalStats;
use tr_power::{propagate, propagate_exact_bdd_with_stats};

fn main() {
    let h = Harness::new();
    println!(
        "{:<9} {:>5} {:>4} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9} {:>3} {:>8} {:>6}",
        "circuit",
        "gates",
        "PIs",
        "maxdP",
        "rmsdP",
        "maxdD%",
        "ms",
        "live",
        "alloc",
        "gc",
        "peak",
        "hit%"
    );
    for case in tr_netlist::suite::standard_suite(&h.library) {
        let n = case.circuit.primary_inputs().len();
        let pi = vec![SignalStats::default(); n];
        let start = Instant::now();
        let (exact, bdd_stats) =
            match propagate_exact_bdd_with_stats(&case.circuit, &h.library, &pi) {
                Ok(r) => r,
                Err(e) => {
                    println!(
                        "{:<9} {:>5} {:>4} {e}",
                        case.name,
                        case.circuit.gates().len(),
                        n
                    );
                    continue;
                }
            };
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let indep = propagate(&case.circuit, &h.library, &pi);
        let mut max_dp = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut max_dd = 0.0f64;
        for (e, i) in exact.iter().zip(&indep) {
            let dp = (e.probability() - i.probability()).abs();
            max_dp = max_dp.max(dp);
            sum_sq += dp * dp;
            if e.density() > 0.0 {
                max_dd = max_dd.max(100.0 * (e.density() - i.density()).abs() / e.density());
            }
        }
        let rms = (sum_sq / exact.len() as f64).sqrt();
        let hit_rate = if bdd_stats.cache.ite_lookups > 0 {
            100.0 * bdd_stats.cache.ite_hits as f64 / bdd_stats.cache.ite_lookups as f64
        } else {
            0.0
        };
        println!(
            "{:<9} {:>5} {:>4} {:>9.2e} {:>9.2e} {:>8.2} {:>8.2} {:>8} {:>9} {:>3} {:>8} {:>6.1}",
            case.name,
            case.circuit.gates().len(),
            n,
            max_dp,
            rms,
            max_dd,
            wall_ms,
            bdd_stats.live_nodes,
            bdd_stats.allocated_nodes,
            bdd_stats.gc_runs,
            bdd_stats.peak_live,
            hit_rate
        );
    }
}
