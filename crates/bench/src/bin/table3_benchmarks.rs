//! Reproduces **Table 3** (and the Fig. 6 scenarios): for every benchmark
//! circuit and both scenarios, the model-estimated power reduction (M),
//! the switch-level-simulated reduction (S), and the delay increase (D)
//! of the best-for-power netlist versus the original mapping.
//!
//! Paper headline: Scenario A averages S ≈ 12 % with delay ≈ +4 % and
//! model estimate M ≈ 9 % (the model overestimates power by an offset);
//! Scenario B savings are roughly half of Scenario A.
//!
//! Run: `cargo run -p tr-bench --release --bin table3_benchmarks [--quick] [--json PATH]`

use std::collections::BTreeMap;
use tr_bench::{render_table3, table3_json, table3_row, Harness, Table3Row};
use tr_netlist::suite;
use tr_power::scenario::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let h = Harness::new();
    let cases = if quick {
        suite::quick_suite(&h.library)
    } else {
        suite::standard_suite(&h.library)
    };
    eprintln!(
        "table3: {} circuits, {} mode",
        cases.len(),
        if quick { "quick" } else { "full" }
    );

    let mut results: BTreeMap<String, Vec<Table3Row>> = BTreeMap::new();
    for (label, scenario) in [("A", Scenario::a()), ("B", Scenario::b())] {
        let mut rows = Vec::new();
        for (i, case) in cases.iter().enumerate() {
            eprintln!(
                "  scenario {label}: {} ({}/{})",
                case.name,
                i + 1,
                cases.len()
            );
            rows.push(table3_row(
                &h,
                &case.name,
                &case.circuit,
                scenario,
                0xBEEF + i as u64,
                quick,
            ));
        }
        println!("{}", render_table3(label, &rows));
        results.insert(label.to_string(), rows);
    }

    // Headline shape summary.
    let avg = |rows: &[Table3Row], f: fn(&Table3Row) -> f64| -> f64 {
        rows.iter().map(f).sum::<f64>() / rows.len().max(1) as f64
    };
    let a = &results["A"];
    let b = &results["B"];
    let (a_m, a_s, a_d) = (
        avg(a, |r| r.model_reduction),
        avg(a, |r| r.sim_reduction),
        avg(a, |r| r.delay_increase),
    );
    let (b_m, b_s) = (avg(b, |r| r.model_reduction), avg(b, |r| r.sim_reduction));
    println!("shape vs paper:");
    println!("  Scenario A: S = {a_s:.1}% (paper ≈ 12%), M = {a_m:.1}% (paper ≈ 9%), D = {a_d:+.1}% (paper ≈ +4%)");
    println!("  Scenario B: S = {b_s:.1}%, M = {b_m:.1}% (paper: ≈ half of Scenario A)");
    println!(
        "  B/A savings ratio: {:.2} (paper ≈ 0.5)",
        if a_s != 0.0 { b_s / a_s } else { f64::NAN }
    );

    if let Some(path) = json_path {
        std::fs::write(&path, table3_json(&results)).expect("write json");
        eprintln!("wrote {path}");
    }
}
