//! `trace_summary` — fold a Chrome trace-event JSON self-profile
//! (written by `tr-opt --trace` or [`tr_trace::write_chrome_trace`])
//! into a per-span-name table: count, total, mean and exact p99
//! duration, sorted by total time descending.
//!
//! ```text
//! trace_summary out.json
//! ```
//!
//! The fold validates the trace as it goes — balanced B/E pairs per
//! thread, monotone timestamps — so a corrupt file is an error, not a
//! silently wrong table. Exit codes: 0 success, 1 unreadable file, 2
//! usage error, 3 malformed trace.

use std::process::ExitCode;

use tr_trace::summary::fold;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: trace_summary <trace.json>");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    match fold(&src) {
        Ok(summary) => {
            println!(
                "{path}: {} events, wall {:.3} ms",
                summary.events,
                summary.wall_us as f64 / 1.0e3
            );
            print!("{}", summary.render_table());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: malformed trace {path}: {e}");
            ExitCode::from(3)
        }
    }
}
