//! Quantifies the paper's **conclusion (a)**: "current libraries may be
//! upgraded with more instances of the gates with different transistor
//! reorderings, so that an optimization algorithm can choose the best
//! instance for power reduction."
//!
//! For every benchmark we optimize under Scenario A and report how many
//! gates ended up on a *non-default* layout instance — the demand a real
//! library would have to stock — and how much of the power saving
//! survives if the optimizer is restricted to the default instances
//! (i.e. to input rewiring only, the cheap upgrade path).
//!
//! Run: `cargo run -p tr-bench --release --bin conclusion_instances`

use tr_bench::Harness;
use tr_boolean::SignalStats;
use tr_netlist::{suite, Circuit};
use tr_power::scenario::Scenario;
use tr_power::{circuit_power, external_loads, propagate};
use tr_reorder::{instance_demand, optimize, Objective};

/// Optimizes but only within each gate's *current* instance (input
/// rewiring without new layouts).
fn optimize_within_instance(h: &Harness, circuit: &Circuit, stats: &[SignalStats]) -> Circuit {
    let net_stats = propagate(circuit, &h.library, stats);
    let loads = external_loads(circuit, &h.model);
    let mut result = circuit.clone();
    for (i, gate) in circuit.gates().iter().enumerate() {
        let cell = h.library.cell(&gate.cell).expect("library cell");
        let instance = cell.instance_of(gate.config);
        let inputs: Vec<SignalStats> = gate.inputs.iter().map(|n| net_stats[n.0]).collect();
        let load = loads[gate.output.0];
        let best = cell.instances()[instance]
            .configurations
            .iter()
            .copied()
            .min_by(|&a, &b| {
                h.model
                    .gate_power(cell.kind(), a, &inputs, load)
                    .total
                    .total_cmp(&h.model.gate_power(cell.kind(), b, &inputs, load).total)
            })
            .expect("instance has configurations");
        result.set_config(tr_netlist::GateId(i), best);
    }
    result
}

fn main() {
    let h = Harness::new();
    let cases = suite::standard_suite(&h.library);

    println!("Conclusion (a) reproduction — instance demand after optimization");
    println!(
        "{:<10} {:>6} {:>10} {:>12} {:>12} {:>14}",
        "circuit", "G", "full M%", "rewire M%", "new-layouts", "non-default G"
    );
    let mut sums = (0.0f64, 0.0f64, 0usize, 0usize);
    for case in &cases {
        let n = case.circuit.primary_inputs().len();
        let stats = Scenario::a().input_stats(n, 0xC0C0);
        let best = optimize(
            &case.circuit,
            &h.library,
            &h.model,
            &stats,
            Objective::MinimizePower,
        );
        let worst = optimize(
            &case.circuit,
            &h.library,
            &h.model,
            &stats,
            Objective::MaximizePower,
        );
        let full = 100.0 * (worst.power_after - best.power_after) / worst.power_after;

        let rewired = optimize_within_instance(&h, &case.circuit, &stats);
        let net_stats = propagate(&case.circuit, &h.library, &stats);
        let p_rewired = circuit_power(&rewired, &h.model, &net_stats).total;
        let rewire = 100.0 * (worst.power_after - p_rewired) / worst.power_after;

        let demand = instance_demand(&best.circuit, &h.library);
        let extra_layouts = demand.layouts_required() - demand.cells.len();
        sums.0 += full;
        sums.1 += rewire;
        sums.2 += extra_layouts;
        sums.3 += demand.non_default_gates();
        println!(
            "{:<10} {:>6} {:>10.1} {:>12.1} {:>12} {:>11}/{}",
            case.name,
            case.circuit.gates().len(),
            full,
            rewire,
            extra_layouts,
            demand.non_default_gates(),
            demand.total_gates()
        );
    }
    let n = cases.len() as f64;
    println!(
        "{:<10} {:>6} {:>10.1} {:>12.1} {:>12} {:>14}   (averages/totals)",
        "AVG/SUM",
        "",
        sums.0 / n,
        sums.1 / n,
        sums.2,
        sums.3
    );
    println!();
    println!("Reading: `full` optimization needs the extra layout instances the");
    println!("paper proposes; restricting to input rewiring on default layouts");
    println!("(`rewire`) keeps part of the saving but leaves the rest on the");
    println!("table — the gap is the value of stocking `new-layouts` instances.");
}
