//! The partition error-vs-speed table: what the cone-partitioned
//! backend trades for breaking the whole-circuit BDD ceiling.
//!
//! For every circuit of the standard *and* large suites, under
//! Scenario B statistics (`P = 0.5`, `D = 0.5` on every input — any
//! bias is then pure circuit structure), the table compares three
//! backends:
//!
//! * `full ms` — the monolithic exact engine's wall-clock, or `-` where
//!   it blows its default node budget (the ceiling this PR breaks);
//! * `part ms` / `x` — the partitioned backend under two configs
//!   (`acc` = accuracy-biased: few large regions, wide cuts; `def` =
//!   the untuned `--prob part` default), and its speedup over full;
//! * `reg`/`cut`/`apx` — regions, cut nets and the structural
//!   `approx_fraction` (`0` certifies bitwise full-BDD equality);
//! * `maxdP` / `maxdD%` — measured deviation of the partitioned
//!   statistics from full-BDD (only where full-BDD runs), and of
//!   independent from full-BDD in the last column for scale.
//!
//! Run: `cargo run -p tr-bench --release --bin partition_error`

use std::time::Instant;
use tr_bench::Harness;
use tr_boolean::SignalStats;
use tr_power::partition::{
    propagate_partitioned, PartitionConfig, PartitionReport, DEFAULT_CUT_WIDTH,
    DEFAULT_REGION_NODES,
};
use tr_power::{propagate, propagate_exact_bdd};

/// Max |ΔP| and max relative ΔD% against a reference.
fn deviations(reference: &[SignalStats], other: &[SignalStats]) -> (f64, f64) {
    let mut max_dp = 0.0f64;
    let mut max_dd = 0.0f64;
    for (r, o) in reference.iter().zip(other) {
        max_dp = max_dp.max((r.probability() - o.probability()).abs());
        if r.density() > 0.0 {
            max_dd = max_dd.max(100.0 * (r.density() - o.density()).abs() / r.density());
        }
    }
    (max_dp, max_dd)
}

struct PartRun {
    wall_ms: f64,
    stats: Vec<SignalStats>,
    report: PartitionReport,
}

fn run_partitioned(
    circuit: &tr_netlist::Circuit,
    h: &Harness,
    pi: &[SignalStats],
    config: &PartitionConfig,
) -> Option<PartRun> {
    let start = Instant::now();
    let (stats, report) = propagate_partitioned(circuit, &h.library, pi, config).ok()?;
    Some(PartRun {
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        stats,
        report,
    })
}

fn main() {
    let h = Harness::new();
    println!(
        "{:<12} {:>5} {:>4} | {:>8} | {:>4} {:>8} {:>6} {:>4} {:>5} {:>5} {:>9} {:>7} | {:>9}",
        "circuit",
        "gates",
        "PIs",
        "full ms",
        "cfg",
        "part ms",
        "x",
        "reg",
        "cut",
        "apx",
        "maxdP",
        "maxdD%",
        "indep dP"
    );
    let mut cases = tr_netlist::suite::standard_suite(&h.library);
    cases.extend(tr_netlist::suite::large_suite(&h.library));
    for case in cases {
        let n = case.circuit.primary_inputs().len();
        let pi = vec![SignalStats::default(); n];

        let start = Instant::now();
        let full = propagate_exact_bdd(&case.circuit, &h.library, &pi).ok();
        let full_ms = full.as_ref().map(|_| start.elapsed().as_secs_f64() * 1e3);
        let indep = propagate(&case.circuit, &h.library, &pi);

        let configs = [
            (
                "acc",
                PartitionConfig::new(1 << 16, 40).with_region_cost(2048),
            ),
            (
                "def",
                PartitionConfig::new(DEFAULT_REGION_NODES, DEFAULT_CUT_WIDTH),
            ),
        ];
        for (tag, config) in configs {
            let Some(run) = run_partitioned(&case.circuit, &h, &pi, &config) else {
                println!(
                    "{:<12} {:>5} {:>4} | {:>8} | {:>4} blew its per-region budget",
                    case.name,
                    case.circuit.gates().len(),
                    n,
                    full_ms.map_or("-".into(), |ms| format!("{ms:.2}")),
                    tag
                );
                continue;
            };
            let (speedup, max_dp, max_dd) = match &full {
                Some(full) => {
                    let (dp, dd) = deviations(full, &run.stats);
                    (
                        format!("{:.1}", full_ms.unwrap() / run.wall_ms),
                        format!("{dp:.2e}"),
                        format!("{dd:.1}"),
                    )
                }
                None => ("-".into(), "-".into(), "-".into()),
            };
            let indep_dp = match &full {
                Some(full) => format!("{:.2e}", deviations(full, &indep).0),
                None => format!("{:.2e}", deviations(&run.stats, &indep).0),
            };
            println!(
                "{:<12} {:>5} {:>4} | {:>8} | {:>4} {:>8.2} {:>6} {:>4} {:>5} {:>5.2} {:>9} {:>7} | {:>9}",
                case.name,
                case.circuit.gates().len(),
                n,
                full_ms.map_or("-".into(), |ms| format!("{ms:.2}")),
                tag,
                run.wall_ms,
                speedup,
                run.report.regions,
                run.report.cut_nets,
                run.report.approx_fraction,
                max_dp,
                max_dd,
                indep_dp
            );
        }
    }
}
