//! Reproduces **Table 1(b)** and Fig. 1(a): the four configurations of the
//! OAI21 gate `y = ¬((a1+a2)·b)` under two input-activity cases, with
//! powers relative to the configuration that is best in case (2)
//! (the paper's configuration (D)) evaluated in case (1).
//!
//! Paper numbers: case (1) → (A) best, 19 % below (D); case (2) → (D)
//! best, 17 % below (A). All equilibrium probabilities are 0.5.
//!
//! Run: `cargo run -p tr-bench --release --bin table1_motivation`

use tr_bench::Harness;
use tr_boolean::SignalStats;
use tr_gatelib::{CellKind, FEMTO};
use tr_netlist::Circuit;
use tr_sim::{simulate, SimConfig};

fn main() {
    let h = Harness::new();
    let cell = h.library.cell(&CellKind::oai21()).expect("oai21 in lib");
    let n_configs = cell.configurations().len();
    assert_eq!(n_configs, 4, "Fig. 1(a) shows four configurations");

    // The two activity cases of Table 1; x0=a1, x1=a2, x2=b.
    let cases = [
        ("case (1)", [1.0e4, 1.0e5, 1.0e6]),
        ("case (2)", [1.0e6, 1.0e5, 1.0e4]),
    ];
    let load = 8.0 * FEMTO; // a couple of fanout gates

    // Model power for every (case, config).
    let mut model_power = [[0.0f64; 4]; 2];
    for (ci, (_, dens)) in cases.iter().enumerate() {
        let stats: Vec<SignalStats> = dens.iter().map(|&d| SignalStats::new(0.5, d)).collect();
        for (cfg, slot) in model_power[ci].iter_mut().enumerate() {
            *slot = h.model.gate_power(cell.kind(), cfg, &stats, load).total;
        }
    }

    // Label configurations like the paper: (A) = best in case (1),
    // (D) = best in case (2); the remaining two keep case-(1) order.
    let best_case1 = argmin(&model_power[0]);
    let best_case2 = argmin(&model_power[1]);
    let mut rest: Vec<usize> = (0..4)
        .filter(|&c| c != best_case1 && c != best_case2)
        .collect();
    rest.sort_by(|&a, &b| model_power[0][a].total_cmp(&model_power[0][b]));
    let order = [best_case1, rest[0], rest[1], best_case2];
    let labels = ["(A)", "(B)", "(C)", "(D)"];

    println!("Table 1(b) reproduction — OAI21 y = !((a1+a2)·b), P = 0.5 everywhere");
    println!("configurations (labeled per the paper's ranking):");
    for (k, &cfg) in order.iter().enumerate() {
        println!(
            "  {} = config {} [instance {}]: {}",
            labels[k],
            cfg,
            cell.instance_of(cfg),
            cell.configurations()[cfg]
        );
    }
    println!();

    // Reference: (D) in case (1), like the paper.
    let reference = model_power[0][best_case2];
    println!("model power relative to (D) in case (1):");
    println!(
        "{:<28} {:>7} {:>7} {:>7} {:>7}   Red.",
        "activity (a1, a2, b)", "(A)", "(B)", "(C)", "(D)"
    );
    for (ci, (name, dens)) in cases.iter().enumerate() {
        let rel: Vec<f64> = order
            .iter()
            .map(|&c| model_power[ci][c] / reference)
            .collect();
        let best = rel.iter().cloned().fold(f64::MAX, f64::min);
        let worst = rel.iter().cloned().fold(f64::MIN, f64::max);
        let reduction = 100.0 * (worst - best) / worst;
        println!(
            "{name} {:>6.0}K {:>5.0}K {:>6.0}K {:>7.2} {:>7.2} {:>7.2} {:>7.2}   {reduction:.0}%",
            dens[0] / 1e3,
            dens[1] / 1e3,
            dens[2] / 1e3,
            rel[0],
            rel[1],
            rel[2],
            rel[3],
        );
    }
    println!("paper:                          0.81    0.84    0.98    1.00   19%");
    println!("paper:                          0.58    0.53    0.53    0.48   17%");
    println!();

    // Switch-level validation of the winners.
    println!("switch-level simulation (relative to (D) in case (1)):");
    let mut sim_ref = 0.0f64;
    for (ci, (name, dens)) in cases.iter().enumerate() {
        let stats: Vec<SignalStats> = dens.iter().map(|&d| SignalStats::new(0.5, d)).collect();
        let duration = 4.0e-3;
        let mut row: Vec<f64> = Vec::new();
        for &cfg in &order {
            let mut c = Circuit::new("oai21");
            let a1 = c.add_input("a1");
            let a2 = c.add_input("a2");
            let b = c.add_input("b");
            let (g, y) = c.add_gate(CellKind::oai21(), vec![a1, a2, b], "y");
            // Emulate the external load with two inverters on y.
            let (_, z1) = c.add_gate(CellKind::Inv, vec![y], "z1");
            let (_, z2) = c.add_gate(CellKind::Inv, vec![y], "z2");
            c.mark_output(z1);
            c.mark_output(z2);
            c.set_config(g, cfg);
            let r = simulate(
                &c,
                &h.library,
                &h.process,
                &h.timing,
                &stats,
                &SimConfig {
                    duration,
                    warmup: duration * 0.05,
                    seed: 7,
                },
            );
            // Count only the OAI21 gate's own energy, like Table 1.
            row.push(r.per_gate_energy[0] / r.measured_time);
        }
        if ci == 0 {
            sim_ref = row[3];
        }
        let rel: Vec<f64> = row.iter().map(|p| p / sim_ref).collect();
        let best = rel.iter().cloned().fold(f64::MAX, f64::min);
        let worst = rel.iter().cloned().fold(f64::MIN, f64::max);
        println!(
            "{name}                        {:>7.2} {:>7.2} {:>7.2} {:>7.2}   {:.0}%",
            rel[0],
            rel[1],
            rel[2],
            rel[3],
            100.0 * (worst - best) / worst
        );
    }
    println!();
    println!(
        "shape checks: case-1 winner {} case-2 winner, best-vs-worst reductions in the paper's 10–25% band",
        if best_case1 != best_case2 { "differs from" } else { "EQUALS (unexpected!)" }
    );
}

fn argmin(xs: &[f64; 4]) -> usize {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty")
}
