//! Bench regression gate: compares one benchmark's mean between two
//! `--save-baseline` JSON files and fails (exit 1) when the current run
//! regresses past the allowed percentage — CI wires this against the
//! committed previous-PR baseline so a hot-path slowdown fails the job
//! instead of hiding in an artifact.
//!
//! Usage:
//!
//! ```text
//! bench_delta <baseline.json> <current.json> <bench_name> <max_regress_pct>
//! ```
//!
//! Example (the CI invocation):
//!
//! ```text
//! cargo run --release -p tr-bench --bin bench_delta -- \
//!     BENCH_PR4.json BENCH_PR5.json p6_bdd_propagate_mult8 25
//! ```

use std::process::ExitCode;

/// Extracts `mean_ns` for `name` from a `--save-baseline` JSON file
/// (`{"benchmarks": [{"name": "...", "mean_ns": X, "iters": N}, ...]}`).
/// Hand-rolled like the writer in `criterion`'s vendored shim — no JSON
/// dependency.
fn mean_ns(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let key = "\"mean_ns\":";
    let at = rest.find(key)? + key.len();
    let rest = rest[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path, name, max_pct] = match args.as_slice() {
        [a, b, c, d] => [a, b, c, d],
        _ => {
            eprintln!(
                "usage: bench_delta <baseline.json> <current.json> <bench_name> <max_regress_pct>"
            );
            return ExitCode::from(2);
        }
    };
    let max_pct: f64 = match max_pct.parse() {
        Ok(p) => p,
        Err(_) => {
            eprintln!("bench_delta: max_regress_pct must be a number, got {max_pct:?}");
            return ExitCode::from(2);
        }
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_delta: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::from(2);
    };
    let (Some(base), Some(cur)) = (mean_ns(&baseline, name), mean_ns(&current, name)) else {
        eprintln!("bench_delta: benchmark {name:?} missing from one of the files");
        return ExitCode::from(2);
    };
    let delta_pct = 100.0 * (cur - base) / base;
    println!(
        "{name}: baseline {:.3} ms -> current {:.3} ms ({:+.1}%, limit +{max_pct}%)",
        base / 1e6,
        cur / 1e6,
        delta_pct
    );
    if delta_pct > max_pct {
        eprintln!("bench_delta: REGRESSION past the {max_pct}% gate");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
